//! In-memory shuffle service and the shuffle dependency.
//!
//! A shuffle dependency splits the lineage graph into stages: the map
//! stage runs [`ShuffleDependencyBase::run_map_task`] for every parent
//! partition, writing per-reducer buckets into the [`ShuffleManager`];
//! reduce-side RDDs ([`crate::pair::ShuffledRdd`]) then read and merge
//! those buckets. Buckets are stored type-erased (`Arc<dyn Any>`) since
//! all "executors" share one address space — the in-process analogue of
//! Spark's shuffle files.
//!
//! Reads go through [`fetch_bucket`]. A missing bucket (dropped by
//! [`ShuffleManager::remove_output`], an executor loss, or an injected
//! chaos fault) raises a [`FetchFailedSignal`] panic that the scheduler
//! catches and answers by unregistering the lost map output and
//! resubmitting the parent map stage from lineage — the RDD recovery
//! protocol, bounded by `max_stage_retries` resubmissions per shuffle.

use crate::context::SparkContext;
use crate::partitioner::Partitioner;
use crate::rdd::{Data, Rdd, RddBase, TaskContext};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

/// Upcast a typed RDD handle to its scheduler-facing base object.
pub fn as_base<T: Data>(rdd: Arc<dyn Rdd<Item = T>>) -> Arc<dyn RddBase> {
    rdd
}

/// Type-erased map-task output: one `Vec<(K, C)>` per reduce partition.
pub type Bucket = Arc<dyn Any + Send + Sync>;

/// Raised (via `panic_any`) when a shuffle fetch fails — the bucket is
/// gone or a chaos plan faulted the read. The scheduler downcasts panics
/// to this type and resubmits the parent map stage instead of retrying
/// the reading task in place.
#[derive(Debug, Clone, Copy)]
pub struct FetchFailedSignal {
    /// Shuffle whose output could not be fetched.
    pub shuffle_id: usize,
    /// Map partition whose bucket is missing.
    pub map_id: usize,
}

/// Fetch one map task's bucket, or raise [`FetchFailedSignal`] if it is
/// missing or the context's chaos plan faults the read. Every shuffle
/// read path in the engine funnels through here so that lost output is
/// always recoverable, never a hard panic.
pub fn fetch_bucket(ctx: &SparkContext, shuffle_id: usize, map_id: usize) -> Bucket {
    install_quiet_fetch_panic_hook();
    if let Some(chaos) = ctx.chaos() {
        if chaos.fetch_fault(shuffle_id, map_id) {
            std::panic::panic_any(FetchFailedSignal { shuffle_id, map_id });
        }
    }
    match ctx.shuffle_manager().get(shuffle_id, map_id) {
        Some(b) => b,
        None => std::panic::panic_any(FetchFailedSignal { shuffle_id, map_id }),
    }
}

/// Fetch failures travel as panics, which the default hook would spray
/// onto stderr even though the scheduler catches and handles them.
/// Install (once per process) a filtering hook that stays silent for
/// [`FetchFailedSignal`] payloads and delegates everything else.
fn install_quiet_fetch_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FetchFailedSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Stores map-task output buckets, keyed by `(shuffle, map partition)`.
#[derive(Default)]
pub struct ShuffleManager {
    state: Mutex<ShuffleState>,
}

#[derive(Default)]
struct ShuffleState {
    /// (shuffle_id, map_id) -> per-reducer buckets.
    outputs: HashMap<(usize, usize), Bucket>,
    /// (shuffle_id, map_id) -> serialized bytes per reducer bucket,
    /// recorded at write time so consumers (adaptive planning, EXPLAIN
    /// ANALYZE) see measured sizes rather than row counts times a guess.
    sizes: HashMap<(usize, usize), Vec<u64>>,
    /// shuffle_id -> completed map partitions.
    completed: HashMap<usize, HashSet<usize>>,
    /// (shuffle_id, map_id) -> executor that produced the bucket
    /// (`usize::MAX` for the driver), so losing an executor can drop
    /// exactly the outputs it held.
    owners: HashMap<(usize, usize), usize>,
    /// Shuffles that were complete at least once — distinguishes
    /// first-time map stages from recovery recomputation in metrics.
    ever_completed: HashSet<usize>,
}

impl ShuffleManager {
    /// Record the output of one map task together with the byte size of
    /// each per-reducer bucket (`bucket_bytes[r]` = bytes destined for
    /// reduce partition `r`). Returns true when this `(shuffle, map)`
    /// output was newly registered, false when it overwrote an existing
    /// one (a speculative or retried task) — callers use this to avoid
    /// double-counting shuffle-write metrics.
    pub fn put(
        &self,
        shuffle_id: usize,
        map_id: usize,
        bucket: Bucket,
        bucket_bytes: Vec<u64>,
    ) -> bool {
        let owner = crate::pool::current_executor().unwrap_or(usize::MAX);
        let mut st = self.state.lock();
        let fresh = st.outputs.insert((shuffle_id, map_id), bucket).is_none();
        st.sizes.insert((shuffle_id, map_id), bucket_bytes);
        st.owners.insert((shuffle_id, map_id), owner);
        st.completed.entry(shuffle_id).or_default().insert(map_id);
        fresh
    }

    /// Unregister one map task's output (a fetch failure was observed);
    /// the scheduler then resubmits just the missing map partitions.
    pub fn remove_output(&self, shuffle_id: usize, map_id: usize) {
        let mut st = self.state.lock();
        st.outputs.remove(&(shuffle_id, map_id));
        st.sizes.remove(&(shuffle_id, map_id));
        st.owners.remove(&(shuffle_id, map_id));
        if let Some(done) = st.completed.get_mut(&shuffle_id) {
            done.remove(&map_id);
        }
    }

    /// Drop every shuffle bucket the given executor produced — the
    /// shuffle half of losing an executor. Returns the ids of shuffles
    /// that lost output.
    pub fn drop_executor(&self, executor: usize) -> Vec<usize> {
        let mut st = self.state.lock();
        let lost: Vec<(usize, usize)> = st
            .owners
            .iter()
            .filter(|(_, owner)| **owner == executor)
            .map(|(key, _)| *key)
            .collect();
        for key in &lost {
            st.outputs.remove(key);
            st.sizes.remove(key);
            st.owners.remove(key);
            if let Some(done) = st.completed.get_mut(&key.0) {
                done.remove(&key.1);
            }
        }
        let mut shuffles: Vec<usize> = lost.into_iter().map(|(sid, _)| sid).collect();
        shuffles.sort_unstable();
        shuffles.dedup();
        shuffles
    }

    /// Map partitions of `shuffle_id` with no registered output, out of
    /// `num_maps` total.
    pub fn missing_maps(&self, shuffle_id: usize, num_maps: usize) -> Vec<usize> {
        let st = self.state.lock();
        let done = st.completed.get(&shuffle_id);
        (0..num_maps)
            .filter(|m| !done.is_some_and(|s| s.contains(m)))
            .collect()
    }

    /// True when `shuffle_id` was observed complete at some point, even
    /// if output has since been lost.
    pub fn ever_complete(&self, shuffle_id: usize) -> bool {
        self.state.lock().ever_completed.contains(&shuffle_id)
    }

    /// Measured byte sizes of one shuffle's map output, indexed
    /// `[map][reduce]` with maps in ascending map-id order. Empty until
    /// at least one map task of the shuffle has reported.
    pub fn map_output_sizes(&self, shuffle_id: usize) -> Vec<Vec<u64>> {
        let st = self.state.lock();
        let mut map_ids: Vec<usize> = st
            .completed
            .get(&shuffle_id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        map_ids.sort_unstable();
        map_ids
            .iter()
            .filter_map(|m| st.sizes.get(&(shuffle_id, *m)).cloned())
            .collect()
    }

    /// Fetch the output of one map task, if present.
    pub fn get(&self, shuffle_id: usize, map_id: usize) -> Option<Bucket> {
        self.state
            .lock()
            .outputs
            .get(&(shuffle_id, map_id))
            .cloned()
    }

    /// True when every one of `num_maps` map partitions has reported.
    /// Also remembers completion (see [`ShuffleManager::ever_complete`]).
    pub fn is_complete(&self, shuffle_id: usize, num_maps: usize) -> bool {
        let mut st = self.state.lock();
        let complete = st
            .completed
            .get(&shuffle_id)
            .is_some_and(|s| s.len() >= num_maps);
        if complete {
            st.ever_completed.insert(shuffle_id);
        }
        complete
    }

    /// Drop all output of one shuffle. The next job that needs it finds
    /// the shuffle incomplete and reruns its map stage from lineage
    /// (`scheduler::ensure_shuffles`); a concurrent reader instead hits a
    /// [`FetchFailedSignal`] and the scheduler resubmits the map stage.
    pub fn invalidate(&self, shuffle_id: usize) {
        let mut st = self.state.lock();
        st.outputs.retain(|(sid, _), _| *sid != shuffle_id);
        st.sizes.retain(|(sid, _), _| *sid != shuffle_id);
        st.owners.retain(|(sid, _), _| *sid != shuffle_id);
        st.completed.remove(&shuffle_id);
    }

    /// Drop every shuffle output in the context.
    pub fn invalidate_all(&self) {
        let mut st = self.state.lock();
        st.outputs.clear();
        st.sizes.clear();
        st.owners.clear();
        st.completed.clear();
    }

    /// Ids of all shuffles with at least one stored output.
    pub fn known_shuffles(&self) -> Vec<usize> {
        let st = self.state.lock();
        let mut ids: Vec<usize> = st.completed.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// How map output is combined before/after the wire.
pub struct Aggregator<K, V, C> {
    /// Turn the first value for a key into a combiner.
    pub create: Arc<dyn Fn(V) -> C + Send + Sync>,
    /// Fold another value into an existing combiner.
    pub merge_value: Arc<dyn Fn(C, V) -> C + Send + Sync>,
    /// Merge combiners produced by different map tasks.
    pub merge_combiners: Arc<dyn Fn(C, C) -> C + Send + Sync>,
    _k: PhantomData<fn(&K)>,
}

impl<K, V, C> Aggregator<K, V, C> {
    /// Build an aggregator from its three closures.
    pub fn new(
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(C, V) -> C + Send + Sync + 'static,
        merge_combiners: impl Fn(C, C) -> C + Send + Sync + 'static,
    ) -> Self {
        Aggregator {
            create: Arc::new(create),
            merge_value: Arc::new(merge_value),
            merge_combiners: Arc::new(merge_combiners),
            _k: PhantomData,
        }
    }
}

impl<K, V, C> Clone for Aggregator<K, V, C> {
    fn clone(&self) -> Self {
        Aggregator {
            create: self.create.clone(),
            merge_value: self.merge_value.clone(),
            merge_combiners: self.merge_combiners.clone(),
            _k: PhantomData,
        }
    }
}

/// Type-erased face of a shuffle dependency, what the scheduler sees.
pub trait ShuffleDependencyBase: Send + Sync {
    /// Unique shuffle id within the context.
    fn shuffle_id(&self) -> usize;
    /// The map-side RDD.
    fn parent(&self) -> Arc<dyn RddBase>;
    /// Number of reduce partitions.
    fn num_reduce_partitions(&self) -> usize;
    /// Execute the map task for `map_partition`: compute the parent
    /// partition, bucket records by reducer, optionally combine map-side,
    /// and publish to the shuffle manager.
    fn run_map_task(&self, map_partition: usize, tc: &TaskContext);
}

/// Measures the byte footprint of one shuffled record. The engine cannot
/// inspect `Data` values itself (the trait is a blanket impl), so callers
/// that know their record layout — e.g. SQL rows — pass one of these to
/// get real byte accounting instead of `size_of::<(K, C)>()` guesses.
pub type SizeFn<K, C> = Arc<dyn Fn(&K, &C) -> u64 + Send + Sync>;

/// Typed shuffle dependency from an RDD of `(K, V)` pairs to reduce-side
/// combiners of type `C`.
pub struct ShuffleDependency<K: Data, V: Data, C: Data> {
    shuffle_id: usize,
    parent: Arc<dyn Rdd<Item = (K, V)>>,
    partitioner: Arc<dyn Partitioner<K>>,
    aggregator: Option<Aggregator<K, V, C>>,
    map_side_combine: bool,
    size_fn: Option<SizeFn<K, C>>,
    ctx: SparkContext,
}

impl<K, V, C> ShuffleDependency<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    /// Create a dependency; `aggregator: None` means raw repartitioning
    /// (requires `C == V` — enforced by the only constructor that passes
    /// `None`, `PairRdd::partition_by`).
    pub fn new(
        parent: Arc<dyn Rdd<Item = (K, V)>>,
        partitioner: Arc<dyn Partitioner<K>>,
        aggregator: Option<Aggregator<K, V, C>>,
        map_side_combine: bool,
    ) -> Self {
        Self::new_sized(parent, partitioner, aggregator, map_side_combine, None)
    }

    /// Like [`ShuffleDependency::new`], with a caller-supplied record size
    /// measure used for per-bucket byte accounting.
    pub fn new_sized(
        parent: Arc<dyn Rdd<Item = (K, V)>>,
        partitioner: Arc<dyn Partitioner<K>>,
        aggregator: Option<Aggregator<K, V, C>>,
        map_side_combine: bool,
        size_fn: Option<SizeFn<K, C>>,
    ) -> Self {
        let ctx = parent.context();
        ShuffleDependency {
            shuffle_id: ctx.new_shuffle_id(),
            parent,
            partitioner,
            aggregator,
            map_side_combine,
            size_fn,
            ctx,
        }
    }

    /// Bucket type stored in the shuffle manager: one `Vec<(K, C)>` per
    /// reduce partition.
    fn erase(buckets: Vec<Vec<(K, C)>>) -> Bucket {
        Arc::new(buckets)
    }

    /// The aggregator, if this is a combining shuffle.
    pub fn aggregator_ref(&self) -> Option<&Aggregator<K, V, C>> {
        self.aggregator.as_ref()
    }

    /// Downcast a stored bucket back to its typed form.
    pub fn unerase(bucket: &Bucket) -> &Vec<Vec<(K, C)>> {
        bucket
            .downcast_ref::<Vec<Vec<(K, C)>>>()
            .expect("shuffle bucket type mismatch")
    }
}

impl<K, V, C> ShuffleDependencyBase for ShuffleDependency<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    fn shuffle_id(&self) -> usize {
        self.shuffle_id
    }

    fn parent(&self) -> Arc<dyn RddBase> {
        as_base(self.parent.clone())
    }

    fn num_reduce_partitions(&self) -> usize {
        self.partitioner.num_partitions()
    }

    fn run_map_task(&self, map_partition: usize, tc: &TaskContext) {
        let n = self.partitioner.num_partitions();
        let mut buckets: Vec<Vec<(K, C)>> = (0..n).map(|_| Vec::new()).collect();
        let input = self.parent.compute(map_partition, tc);
        let mut written = 0u64;

        match (&self.aggregator, self.map_side_combine) {
            (Some(agg), true) => {
                // Combine per bucket before publishing (Spark's map-side
                // combine; what makes reduce_by_key cheap). Slots hold
                // Option<C> so values fold in without cloning combiners.
                let mut maps: Vec<HashMap<K, Option<C>>> = (0..n).map(|_| HashMap::new()).collect();
                for (k, v) in input {
                    let b = self.partitioner.partition(&k);
                    let slot = maps[b].entry(k).or_insert(None);
                    *slot = Some(match slot.take() {
                        Some(c) => (agg.merge_value)(c, v),
                        None => (agg.create)(v),
                    });
                }
                for (b, m) in maps.into_iter().enumerate() {
                    buckets[b].extend(m.into_iter().map(|(k, c)| (k, c.expect("combiner"))));
                }
            }
            (Some(agg), false) => {
                for (k, v) in input {
                    let b = self.partitioner.partition(&k);
                    buckets[b].push((k, (agg.create)(v)));
                }
            }
            (None, _) => {
                // Raw repartition: C == V by construction; route through
                // Any to convert V -> C without an (unavailable) cast.
                for (k, v) in input {
                    let b = self.partitioner.partition(&k);
                    let any: Box<dyn Any> = Box::new(v);
                    let c = *any.downcast::<C>().expect("raw shuffle requires C == V");
                    buckets[b].push((k, c));
                }
            }
        }

        // Per-bucket byte accounting: measured via the caller's size_fn
        // when available, otherwise approximated from the in-memory record
        // footprint (the store holds typed Vec<(K, C)> buckets, not
        // serialized frames).
        let mut bucket_bytes: Vec<u64> = Vec::with_capacity(n);
        let mut bytes = 0u64;
        for bucket in &buckets {
            written += bucket.len() as u64;
            let b = match &self.size_fn {
                Some(f) => bucket.iter().map(|(k, c)| f(k, c)).sum(),
                None => bucket.len() as u64 * std::mem::size_of::<(K, C)>() as u64,
            };
            bytes += b;
            bucket_bytes.push(b);
        }
        let fresh = self.ctx.shuffle_manager().put(
            self.shuffle_id,
            map_partition,
            Self::erase(buckets),
            bucket_bytes,
        );
        // Only count output the store newly registered; a retried map task
        // overwriting its own bucket must not inflate shuffle volume.
        if fresh {
            self.ctx
                .metrics()
                .record_shuffle_write(self.shuffle_id, written, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_roundtrip_and_invalidate() {
        let m = ShuffleManager::default();
        let buckets: Vec<Vec<(i64, i64)>> = vec![vec![(1, 2)], vec![]];
        m.put(7, 0, Arc::new(buckets), vec![16, 0]);
        assert!(m.get(7, 0).is_some());
        assert!(m.is_complete(7, 1));
        assert!(!m.is_complete(7, 2));
        assert_eq!(m.map_output_sizes(7), vec![vec![16, 0]]);
        m.invalidate(7);
        assert!(m.get(7, 0).is_none());
        assert!(!m.is_complete(7, 1));
        assert!(m.map_output_sizes(7).is_empty());
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let m = ShuffleManager::default();
        m.put(1, 0, Arc::new(Vec::<Vec<(i64, i64)>>::new()), vec![]);
        m.put(2, 0, Arc::new(Vec::<Vec<(i64, i64)>>::new()), vec![]);
        assert_eq!(m.known_shuffles(), vec![1, 2]);
        m.invalidate_all();
        assert!(m.known_shuffles().is_empty());
    }

    #[test]
    fn map_output_sizes_ordered_by_map_id() {
        let m = ShuffleManager::default();
        m.put(3, 1, Arc::new(Vec::<Vec<(i64, i64)>>::new()), vec![8, 24]);
        m.put(3, 0, Arc::new(Vec::<Vec<(i64, i64)>>::new()), vec![0, 48]);
        assert_eq!(m.map_output_sizes(3), vec![vec![0, 48], vec![8, 24]]);
    }

    #[test]
    fn put_reports_whether_output_is_new() {
        let m = ShuffleManager::default();
        assert!(m.put(1, 0, Arc::new(Vec::<Vec<(i64, i64)>>::new()), vec![]));
        assert!(!m.put(1, 0, Arc::new(Vec::<Vec<(i64, i64)>>::new()), vec![]));
        m.remove_output(1, 0);
        assert!(m.put(1, 0, Arc::new(Vec::<Vec<(i64, i64)>>::new()), vec![]));
    }

    #[test]
    fn remove_output_leaves_shuffle_partially_complete() {
        let m = ShuffleManager::default();
        m.put(5, 0, Arc::new(Vec::<Vec<(i64, i64)>>::new()), vec![]);
        m.put(5, 1, Arc::new(Vec::<Vec<(i64, i64)>>::new()), vec![]);
        assert!(m.is_complete(5, 2));
        m.remove_output(5, 1);
        assert!(!m.is_complete(5, 2));
        assert_eq!(m.missing_maps(5, 2), vec![1]);
        assert!(m.get(5, 0).is_some());
        assert!(m.get(5, 1).is_none());
        // Completion is remembered even after loss.
        assert!(m.ever_complete(5));
    }
}
