//! Deterministic failure injection ("chaos") for fault-tolerance testing.
//!
//! A [`ChaosPlan`] decides, from a seed and pure hashing, where faults
//! strike: a task panics at launch, an executor dies (atomically dropping
//! every shuffle bucket and cache block it owns — see
//! [`crate::SparkContext::lose_executor`]), or a shuffle fetch fails even
//! though the bucket exists. Decisions depend only on `(seed, stage,
//! partition)` / `(seed, shuffle, map)`, so a given seed reproduces the
//! same fault schedule on every run — the property the chaos CI job and
//! `chaos_props` sweep rely on.
//!
//! Termination is guaranteed by construction: faults only hit attempt 0
//! of a task, each `(shuffle, map)` fetch fails at most once (unless
//! [`ChaosConf::repeat_fetch_faults`] is set to test retry exhaustion),
//! and every fault kind has a budget. With the default budgets a context
//! absorbs all injected faults well inside `max_task_retries` ×
//! `max_stage_retries`.
//!
//! Setting `ENGINE_CHAOS_SEED` in the environment installs a plan in
//! every new [`crate::SparkContext`] (see [`ChaosConf::from_env`]);
//! `ENGINE_CHAOS_PROB` optionally overrides both fault probabilities.
//! Tests that assert exact task/stage counters opt out with
//! `sc.set_chaos(None)`.

use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// The kinds of fault a [`ChaosPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The task fails at launch (stands in for an uncaught task panic);
    /// the scheduler retries it in place up to `max_task_retries`.
    TaskPanic,
    /// The executor running the task dies: its shuffle buckets and cache
    /// blocks are dropped atomically, then the task fails. Downstream
    /// reads of the dropped buckets surface as fetch failures.
    ExecutorDeath,
    /// A shuffle fetch fails (as if the serving executor's files were
    /// lost); the scheduler unregisters that map output and resubmits the
    /// parent map stage.
    FetchFailure,
}

/// Configuration of a [`ChaosPlan`].
#[derive(Debug, Clone)]
pub struct ChaosConf {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Probability a task launch (attempt 0) is a fault candidate.
    pub task_fault_prob: f64,
    /// Probability a `(shuffle, map)` fetch is a fault candidate.
    pub fetch_fault_prob: f64,
    /// Budget of injected task panics.
    pub max_task_panics: u64,
    /// Budget of injected executor deaths.
    pub max_executor_deaths: u64,
    /// Budget of injected fetch failures.
    pub max_fetch_failures: u64,
    /// Allow the same `(shuffle, map)` fetch to fail repeatedly. Off by
    /// default (each pair fails at most once, so recovery always
    /// converges); tests turn it on to drive stage-retry exhaustion.
    pub repeat_fetch_faults: bool,
}

impl Default for ChaosConf {
    fn default() -> Self {
        ChaosConf {
            seed: 0,
            task_fault_prob: 0.05,
            fetch_fault_prob: 0.05,
            max_task_panics: 2,
            max_executor_deaths: 1,
            max_fetch_failures: 2,
            repeat_fetch_faults: false,
        }
    }
}

impl ChaosConf {
    /// Default configuration with the given seed.
    pub fn seeded(seed: u64) -> Self {
        ChaosConf {
            seed,
            ..Default::default()
        }
    }

    /// Configuration from the environment: `Some` when
    /// `ENGINE_CHAOS_SEED` holds a u64, with `ENGINE_CHAOS_PROB`
    /// optionally overriding both fault probabilities.
    pub fn from_env() -> Option<Self> {
        let seed = std::env::var("ENGINE_CHAOS_SEED")
            .ok()?
            .trim()
            .parse::<u64>()
            .ok()?;
        let mut conf = ChaosConf::seeded(seed);
        if let Ok(p) = std::env::var("ENGINE_CHAOS_PROB") {
            if let Ok(p) = p.trim().parse::<f64>() {
                conf.task_fault_prob = p;
                conf.fetch_fault_prob = p;
            }
        }
        Some(conf)
    }
}

/// Counts of faults a plan has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Injected task panics.
    pub task_panics: u64,
    /// Injected executor deaths.
    pub executor_deaths: u64,
    /// Injected fetch failures.
    pub fetch_failures: u64,
}

/// A seeded, budgeted fault schedule. Install on a context with
/// [`crate::SparkContext::set_chaos`]; the scheduler and the shuffle
/// fetch path consult it at every decision point.
pub struct ChaosPlan {
    conf: ChaosConf,
    task_panics: AtomicU64,
    executor_deaths: AtomicU64,
    fetch_failures: AtomicU64,
    /// `(shuffle, map)` pairs that already failed a fetch, so retried
    /// fetches succeed and recovery converges.
    fetch_seen: Mutex<HashSet<(usize, usize)>>,
}

impl ChaosPlan {
    /// Build a plan from a configuration.
    pub fn new(conf: ChaosConf) -> Self {
        ChaosPlan {
            conf,
            task_panics: AtomicU64::new(0),
            executor_deaths: AtomicU64::new(0),
            fetch_failures: AtomicU64::new(0),
            fetch_seen: Mutex::new(HashSet::new()),
        }
    }

    /// Default-configured plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan::new(ChaosConf::seeded(seed))
    }

    /// The configuration this plan was built from.
    pub fn conf(&self) -> &ChaosConf {
        &self.conf
    }

    /// Decide a launch-time fault for a task. Only attempt 0 is ever
    /// faulted, so in-place retries always make progress.
    pub fn task_fault(
        &self,
        stage_id: usize,
        partition: usize,
        attempt: usize,
    ) -> Option<FaultKind> {
        if attempt != 0 {
            return None;
        }
        let h = hash3(
            self.conf.seed,
            0x7A5C_u64,
            stage_id as u64,
            partition as u64,
        );
        if !below(h, self.conf.task_fault_prob) {
            return None;
        }
        // A second hash picks the kind; fall back to the other when its
        // budget is spent (deaths are the rarer, more disruptive fault).
        let kinds = if hash3(
            self.conf.seed,
            0xDEAD_u64,
            stage_id as u64,
            partition as u64,
        )
        .is_multiple_of(4)
        {
            [FaultKind::ExecutorDeath, FaultKind::TaskPanic]
        } else {
            [FaultKind::TaskPanic, FaultKind::ExecutorDeath]
        };
        for kind in kinds {
            let claimed = match kind {
                FaultKind::TaskPanic => claim(&self.task_panics, self.conf.max_task_panics),
                FaultKind::ExecutorDeath => {
                    claim(&self.executor_deaths, self.conf.max_executor_deaths)
                }
                FaultKind::FetchFailure => false,
            };
            if claimed {
                return Some(kind);
            }
        }
        None
    }

    /// Decide whether fetching map output `(shuffle_id, map_id)` should
    /// fail right now.
    pub fn fetch_fault(&self, shuffle_id: usize, map_id: usize) -> bool {
        let h = hash3(self.conf.seed, 0xFE7C_u64, shuffle_id as u64, map_id as u64);
        if !below(h, self.conf.fetch_fault_prob) {
            return false;
        }
        if !self.conf.repeat_fetch_faults && !self.fetch_seen.lock().insert((shuffle_id, map_id)) {
            return false;
        }
        claim(&self.fetch_failures, self.conf.max_fetch_failures)
    }

    /// How many faults of each kind the plan has injected.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            task_panics: self.task_panics.load(Ordering::Relaxed),
            executor_deaths: self.executor_deaths.load(Ordering::Relaxed),
            fetch_failures: self.fetch_failures.load(Ordering::Relaxed),
        }
    }
}

/// Atomically claim one unit of a budget; false once exhausted.
fn claim(counter: &AtomicU64, max: u64) -> bool {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < max).then_some(n + 1)
        })
        .is_ok()
}

/// splitmix64 finalizer — a well-mixed 64-bit hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash3(seed: u64, tag: u64, a: u64, b: u64) -> u64 {
    mix(seed ^ mix(tag ^ mix(a ^ mix(b))))
}

fn below(hash: u64, prob: f64) -> bool {
    (hash as f64) < prob * (u64::MAX as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = ChaosPlan::seeded(7);
        let b = ChaosPlan::seeded(7);
        for stage in 0..50 {
            for p in 0..8 {
                assert_eq!(a.task_fault(stage, p, 0), b.task_fault(stage, p, 0));
            }
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn budgets_bound_injected_faults() {
        let plan = ChaosPlan::new(ChaosConf {
            task_fault_prob: 1.0,
            fetch_fault_prob: 1.0,
            ..ChaosConf::seeded(3)
        });
        for stage in 0..100 {
            plan.task_fault(stage, 0, 0);
            plan.fetch_fault(stage, 0);
        }
        let s = plan.stats();
        assert_eq!(s.task_panics, 2);
        assert_eq!(s.executor_deaths, 1);
        assert_eq!(s.fetch_failures, 2);
    }

    #[test]
    fn retries_are_never_faulted() {
        let plan = ChaosPlan::new(ChaosConf {
            task_fault_prob: 1.0,
            ..ChaosConf::seeded(1)
        });
        assert!(plan.task_fault(0, 0, 1).is_none());
        assert!(plan.task_fault(0, 0, 2).is_none());
    }

    #[test]
    fn fetch_faults_fire_once_per_map_output() {
        let plan = ChaosPlan::new(ChaosConf {
            fetch_fault_prob: 1.0,
            max_fetch_failures: 100,
            ..ChaosConf::seeded(5)
        });
        assert!(plan.fetch_fault(1, 0));
        assert!(
            !plan.fetch_fault(1, 0),
            "second fetch of the same output must succeed"
        );
        assert!(plan.fetch_fault(1, 1));
    }

    #[test]
    fn repeat_mode_keeps_failing_the_same_fetch() {
        let plan = ChaosPlan::new(ChaosConf {
            fetch_fault_prob: 1.0,
            max_fetch_failures: 100,
            repeat_fetch_faults: true,
            ..ChaosConf::seeded(5)
        });
        assert!(plan.fetch_fault(1, 0));
        assert!(plan.fetch_fault(1, 0));
    }
}
