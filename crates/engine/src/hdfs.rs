//! Simulated distributed file store ("HDFS").
//!
//! A directory of part files with byte-metered reads and writes,
//! reproducing the two dominant costs of a real HDFS round trip that the
//! Figure 10 experiment depends on:
//!
//! * **replication** — HDFS writes every block `dfs.replication` (default
//!   3) times; we write each part file that many times;
//! * **checksumming** — HDFS computes CRCs on write and verifies them on
//!   read; we store a checksum sidecar per part and verify on read.
//!
//! The Figure 10 experiment uses this to model the cost a pipeline pays
//! when a SQL job materializes its result to a file before a separate
//! procedural job reads it back — the overhead the integrated DataFrame
//! pipeline avoids.

use crate::context::SparkContext;
use crate::error::{EngineError, Result};
use crate::metrics::Metrics;
use crate::rdd::RddRef;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Handle to a directory acting as the cluster file system.
pub struct FileStore {
    root: PathBuf,
    replication: usize,
    checksums: bool,
}

/// CRC-32 (IEEE) over a byte slice — what HDFS computes per 512-byte
/// chunk; we apply it per line batch.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl FileStore {
    /// Use (and create) `root` as the store directory, with HDFS-like
    /// defaults (replication 3, checksums on).
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FileStore {
            root,
            replication: 3,
            checksums: true,
        })
    }

    /// Create a store under the OS temp directory with a unique suffix.
    pub fn temp(tag: &str) -> Result<Self> {
        let pid = std::process::id();
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let root = std::env::temp_dir().join(format!("engine-fs-{tag}-{pid}-{nanos}"));
        FileStore::new(root)
    }

    /// Override the replication factor (1 disables the extra copies).
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication.max(1);
        self
    }

    /// Enable/disable checksum sidecars.
    pub fn with_checksums(mut self, checksums: bool) -> Self {
        self.checksums = checksums;
        self
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn dataset_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Write an RDD of lines as `part-NNNNN` files under `name`,
    /// materializing every partition with replication and checksums.
    pub fn save_text(&self, sc: &SparkContext, rdd: &RddRef<String>, name: &str) -> Result<()> {
        let dir = self.dataset_dir(name);
        fs::create_dir_all(&dir)?;
        let dir2 = dir.clone();
        let sc2 = sc.clone();
        let replication = self.replication;
        let checksums = self.checksums;
        rdd.run_job(move |partition, it| {
            // Buffer the partition once; each replica is a full write, as
            // in the HDFS write pipeline.
            let mut content = String::new();
            for line in it {
                content.push_str(&line);
                content.push('\n');
            }
            let bytes = content.as_bytes();
            for r in 0..replication {
                let path = dir2.join(format!("part-{partition:05}.r{r}"));
                let mut file =
                    std::io::BufWriter::new(fs::File::create(&path).expect("create part"));
                file.write_all(bytes).expect("write part");
                file.flush().expect("flush part");
                Metrics::add(&sc2.metrics().fs_bytes_written, bytes.len() as u64);
            }
            if checksums {
                let crc = crc32(bytes);
                let path = dir2.join(format!("part-{partition:05}.crc"));
                fs::write(path, crc.to_le_bytes()).expect("write crc");
            }
        })?;
        Ok(())
    }

    /// Read a dataset written by [`FileStore::save_text`] back as an RDD
    /// with one partition per part file (reads replica 0, verifying the
    /// checksum like an HDFS client).
    pub fn read_text(&self, sc: &SparkContext, name: &str) -> Result<RddRef<String>> {
        let dir = self.dataset_dir(name);
        let mut parts: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "r0"))
            .collect();
        parts.sort();
        if parts.is_empty() {
            return Err(EngineError::Io(format!(
                "no part files under {}",
                dir.display()
            )));
        }
        let sc2 = sc.clone();
        let checksums = self.checksums;
        Ok(sc.generate(parts.len(), move |p| {
            let mut content = String::new();
            fs::File::open(&parts[p])
                .and_then(|mut f| f.read_to_string(&mut content))
                .expect("read part");
            Metrics::add(&sc2.metrics().fs_bytes_read, content.len() as u64);
            if checksums {
                let crc_path = parts[p].with_extension("crc");
                if let Ok(stored) = fs::read(crc_path) {
                    let stored = u32::from_le_bytes(stored.try_into().unwrap_or_default());
                    let computed = crc32(content.as_bytes());
                    assert_eq!(stored, computed, "checksum mismatch reading {:?}", parts[p]);
                }
            }
            let lines: Vec<String> = content.lines().map(|s| s.to_string()).collect();
            Box::new(lines.into_iter())
        }))
    }

    /// Delete a dataset directory if present.
    pub fn delete(&self, name: &str) -> Result<()> {
        let dir = self.dataset_dir(name);
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        Ok(())
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // Best-effort cleanup of temp stores.
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparkContext;

    #[test]
    fn text_roundtrip_preserves_lines() {
        let sc = SparkContext::new(2);
        sc.set_chaos(None); // exact fs byte counts below
        let fs = FileStore::temp("roundtrip").unwrap();
        let lines: Vec<String> = (0..50).map(|i| format!("line-{i}")).collect();
        let rdd = sc.parallelize(lines.clone(), 4);
        fs.save_text(&sc, &rdd, "data").unwrap();
        let back = fs.read_text(&sc, "data").unwrap();
        let mut got = back.collect();
        got.sort();
        let mut want = lines;
        want.sort();
        assert_eq!(got, want);
        // Replication 3: writes are 3x reads.
        let m = sc.metrics().snapshot();
        assert_eq!(m.fs_bytes_written, 3 * m.fs_bytes_read);
    }

    #[test]
    fn replication_one_writes_once() {
        let sc = SparkContext::new(1);
        sc.set_chaos(None); // exact fs byte counts below
        let fs = FileStore::temp("r1").unwrap().with_replication(1);
        let rdd = sc.parallelize(vec!["abc".to_string()], 1);
        fs.save_text(&sc, &rdd, "d").unwrap();
        let m = sc.metrics().snapshot();
        assert_eq!(m.fs_bytes_written, 4); // "abc\n"
    }

    #[test]
    fn delete_removes_dataset() {
        let sc = SparkContext::new(1);
        let fs = FileStore::temp("delete").unwrap();
        let rdd = sc.parallelize(vec!["a".to_string()], 1);
        fs.save_text(&sc, &rdd, "d").unwrap();
        fs.delete("d").unwrap();
        assert!(fs.read_text(&sc, "d").is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }
}
