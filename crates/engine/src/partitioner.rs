//! Key partitioners used on the map side of a shuffle.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// Decides which reduce partition a key belongs to.
pub trait Partitioner<K>: Send + Sync {
    /// Number of reduce partitions.
    fn num_partitions(&self) -> usize;
    /// Partition for `key`; must be `< num_partitions()`.
    fn partition(&self, key: &K) -> usize;
}

/// Hash-based partitioner (the default, like Spark's `HashPartitioner`).
pub struct HashPartitioner<K> {
    partitions: usize,
    _k: PhantomData<fn(&K)>,
}

impl<K> HashPartitioner<K> {
    /// Create a hash partitioner with `partitions` buckets (at least 1).
    pub fn new(partitions: usize) -> Self {
        HashPartitioner {
            partitions: partitions.max(1),
            _k: PhantomData,
        }
    }
}

impl<K: Hash + Send + Sync> Partitioner<K> for HashPartitioner<K> {
    fn num_partitions(&self) -> usize {
        self.partitions
    }

    fn partition(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.partitions as u64) as usize
    }
}

/// Range partitioner for global sorts: keys `< bounds[0]` go to partition
/// 0, keys in `[bounds[i-1], bounds[i])` to partition `i`, the rest to the
/// last partition. Bounds are computed by sampling (see
/// `PairRdd::sort_by_key`).
pub struct RangePartitioner<K: Ord> {
    bounds: Vec<K>,
    ascending: bool,
}

impl<K: Ord + Clone + Send + Sync> RangePartitioner<K> {
    /// Build from pre-computed, sorted upper bounds.
    pub fn new(bounds: Vec<K>, ascending: bool) -> Self {
        RangePartitioner { bounds, ascending }
    }

    /// Compute `partitions - 1` boundary keys from a sample of the data.
    pub fn bounds_from_sample(mut sample: Vec<K>, partitions: usize) -> Vec<K> {
        if partitions <= 1 || sample.is_empty() {
            return vec![];
        }
        sample.sort();
        let n = sample.len();
        let mut bounds = Vec::with_capacity(partitions - 1);
        for i in 1..partitions {
            let idx = (i * n / partitions).min(n - 1);
            bounds.push(sample[idx].clone());
        }
        bounds.dedup();
        bounds
    }
}

impl<K: Ord + Clone + Send + Sync> Partitioner<K> for RangePartitioner<K> {
    fn num_partitions(&self) -> usize {
        self.bounds.len() + 1
    }

    fn partition(&self, key: &K) -> usize {
        // partition_point returns the count of bounds <= key, i.e. the
        // index of the first range whose upper bound exceeds the key.
        let p = self.bounds.partition_point(|b| b <= key);
        if self.ascending {
            p
        } else {
            self.bounds.len() - p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = HashPartitioner::<i64>::new(7);
        for k in 0..1000i64 {
            let a = p.partition(&k);
            let b = p.partition(&k);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    fn hash_partitioner_clamps_zero() {
        let p = HashPartitioner::<i64>::new(0);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition(&42), 0);
    }

    #[test]
    fn range_partitioner_orders_keys() {
        let p = RangePartitioner::new(vec![10, 20], true);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.partition(&5), 0);
        assert_eq!(p.partition(&10), 1);
        assert_eq!(p.partition(&15), 1);
        assert_eq!(p.partition(&20), 2);
        assert_eq!(p.partition(&99), 2);
    }

    #[test]
    fn range_partitioner_descending_reverses() {
        let p = RangePartitioner::new(vec![10, 20], false);
        assert_eq!(p.partition(&5), 2);
        assert_eq!(p.partition(&99), 0);
    }

    #[test]
    fn bounds_from_sample_splits_evenly() {
        let sample: Vec<i64> = (0..100).collect();
        let bounds = RangePartitioner::bounds_from_sample(sample, 4);
        assert_eq!(bounds, vec![25, 50, 75]);
    }

    #[test]
    fn bounds_from_empty_sample() {
        let bounds = RangePartitioner::<i64>::bounds_from_sample(vec![], 4);
        assert!(bounds.is_empty());
    }
}
