//! Lightweight execution metrics.
//!
//! Counters are global to a [`crate::SparkContext`] and cheap to bump from
//! any executor thread. Experiments use them to report shuffle volume and
//! task counts alongside wall-clock time; tests use them to assert that a
//! plan actually avoided work (e.g. predicate pushdown shuffling fewer
//! records).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// I/O volume of one shuffle, keyed by shuffle id — what lets the SQL
/// layer attribute shuffle traffic to the operator that induced the
/// exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Records published by map tasks.
    pub records_written: u64,
    /// Approximate bytes published by map tasks.
    pub bytes_written: u64,
    /// Records fetched by reduce tasks.
    pub records_read: u64,
}

/// Global counters for one context.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Tasks launched (including retries).
    pub tasks_launched: AtomicU64,
    /// Tasks that failed and were retried.
    pub task_failures: AtomicU64,
    /// Records written to the shuffle store by map tasks.
    pub shuffle_records_written: AtomicU64,
    /// Records read from the shuffle store by reduce tasks.
    pub shuffle_records_read: AtomicU64,
    /// Stages executed.
    pub stages_run: AtomicU64,
    /// Jobs executed.
    pub jobs_run: AtomicU64,
    /// Partitions served from the cache manager instead of recomputation.
    pub cache_hits: AtomicU64,
    /// Partitions computed and inserted into the cache manager.
    pub cache_misses: AtomicU64,
    /// Bytes written to the simulated file store.
    pub fs_bytes_written: AtomicU64,
    /// Bytes read from the simulated file store.
    pub fs_bytes_read: AtomicU64,
    /// Wall time spent inside task bodies, summed across executor threads.
    pub task_time_ns: AtomicU64,
    /// Shuffle fetches that failed (missing or chaos-faulted map output).
    pub fetch_failures: AtomicU64,
    /// Map stages resubmitted to regenerate lost shuffle output.
    pub stage_resubmissions: AtomicU64,
    /// Map tasks re-run for a shuffle that had previously completed.
    pub map_tasks_recomputed: AtomicU64,
    /// Executors lost (their shuffle buckets and cache blocks dropped).
    pub executors_lost: AtomicU64,
    /// Cached partitions recomputed from lineage after their block was lost.
    pub cache_recomputes: AtomicU64,
    /// Per-shuffle I/O, keyed by shuffle id.
    per_shuffle: Mutex<HashMap<usize, ShuffleStats>>,
}

impl Metrics {
    /// Add `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Read a counter.
    #[inline]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Record one map task's shuffle output (global counter + per-shuffle).
    pub fn record_shuffle_write(&self, shuffle_id: usize, records: u64, bytes: u64) {
        Metrics::add(&self.shuffle_records_written, records);
        let mut per = self.per_shuffle.lock().unwrap();
        let e = per.entry(shuffle_id).or_default();
        e.records_written += records;
        e.bytes_written += bytes;
    }

    /// Record one reduce task's shuffle fetch (global counter + per-shuffle).
    pub fn record_shuffle_read(&self, shuffle_id: usize, records: u64) {
        Metrics::add(&self.shuffle_records_read, records);
        self.per_shuffle
            .lock()
            .unwrap()
            .entry(shuffle_id)
            .or_default()
            .records_read += records;
    }

    /// I/O stats of one shuffle (zeroes if it never ran).
    pub fn shuffle_stats(&self, shuffle_id: usize) -> ShuffleStats {
        self.per_shuffle
            .lock()
            .unwrap()
            .get(&shuffle_id)
            .copied()
            .unwrap_or_default()
    }

    /// Reset every counter to zero (useful between benchmark phases).
    pub fn reset(&self) {
        self.tasks_launched.store(0, Ordering::Relaxed);
        self.task_failures.store(0, Ordering::Relaxed);
        self.shuffle_records_written.store(0, Ordering::Relaxed);
        self.shuffle_records_read.store(0, Ordering::Relaxed);
        self.stages_run.store(0, Ordering::Relaxed);
        self.jobs_run.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.fs_bytes_written.store(0, Ordering::Relaxed);
        self.fs_bytes_read.store(0, Ordering::Relaxed);
        self.task_time_ns.store(0, Ordering::Relaxed);
        self.fetch_failures.store(0, Ordering::Relaxed);
        self.stage_resubmissions.store(0, Ordering::Relaxed);
        self.map_tasks_recomputed.store(0, Ordering::Relaxed);
        self.executors_lost.store(0, Ordering::Relaxed);
        self.cache_recomputes.store(0, Ordering::Relaxed);
        self.per_shuffle.lock().unwrap().clear();
    }

    /// Snapshot of all counters, for printing in experiment harnesses.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_launched: Metrics::get(&self.tasks_launched),
            task_failures: Metrics::get(&self.task_failures),
            shuffle_records_written: Metrics::get(&self.shuffle_records_written),
            shuffle_records_read: Metrics::get(&self.shuffle_records_read),
            stages_run: Metrics::get(&self.stages_run),
            jobs_run: Metrics::get(&self.jobs_run),
            cache_hits: Metrics::get(&self.cache_hits),
            cache_misses: Metrics::get(&self.cache_misses),
            fs_bytes_written: Metrics::get(&self.fs_bytes_written),
            fs_bytes_read: Metrics::get(&self.fs_bytes_read),
            task_time_ns: Metrics::get(&self.task_time_ns),
            fetch_failures: Metrics::get(&self.fetch_failures),
            stage_resubmissions: Metrics::get(&self.stage_resubmissions),
            map_tasks_recomputed: Metrics::get(&self.map_tasks_recomputed),
            executors_lost: Metrics::get(&self.executors_lost),
            cache_recomputes: Metrics::get(&self.cache_recomputes),
        }
    }
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub tasks_launched: u64,
    pub task_failures: u64,
    pub shuffle_records_written: u64,
    pub shuffle_records_read: u64,
    pub stages_run: u64,
    pub jobs_run: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub fs_bytes_written: u64,
    pub fs_bytes_read: u64,
    pub task_time_ns: u64,
    pub fetch_failures: u64,
    pub stage_resubmissions: u64,
    pub map_tasks_recomputed: u64,
    pub executors_lost: u64,
    pub cache_recomputes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = Metrics::default();
        Metrics::add(&m.tasks_launched, 3);
        Metrics::add(&m.tasks_launched, 2);
        assert_eq!(Metrics::get(&m.tasks_launched), 5);
        m.reset();
        assert_eq!(Metrics::get(&m.tasks_launched), 0);
    }

    #[test]
    fn per_shuffle_stats_accumulate_and_reset() {
        let m = Metrics::default();
        m.record_shuffle_write(3, 10, 160);
        m.record_shuffle_write(3, 5, 80);
        m.record_shuffle_read(3, 15);
        m.record_shuffle_write(4, 1, 16);
        assert_eq!(
            m.shuffle_stats(3),
            ShuffleStats {
                records_written: 15,
                bytes_written: 240,
                records_read: 15
            }
        );
        assert_eq!(m.shuffle_stats(4).records_written, 1);
        assert_eq!(m.shuffle_stats(99), ShuffleStats::default());
        // The global counters moved in lockstep.
        assert_eq!(Metrics::get(&m.shuffle_records_written), 16);
        assert_eq!(Metrics::get(&m.shuffle_records_read), 15);
        m.reset();
        assert_eq!(m.shuffle_stats(3), ShuffleStats::default());
    }

    #[test]
    fn snapshot_copies_all_fields() {
        let m = Metrics::default();
        Metrics::add(&m.shuffle_records_written, 7);
        Metrics::add(&m.fs_bytes_read, 11);
        let s = m.snapshot();
        assert_eq!(s.shuffle_records_written, 7);
        assert_eq!(s.fs_bytes_read, 11);
        assert_eq!(s.tasks_launched, 0);
    }
}
