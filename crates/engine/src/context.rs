//! The driver-side entry point: configuration, id allocation, and the
//! shared services (shuffle store, cache, executor pool, metrics).

use crate::broadcast::Broadcast;
use crate::cache::CacheManager;
use crate::chaos::{ChaosConf, ChaosPlan};
use crate::metrics::Metrics;
use crate::ops::{GeneratedRdd, ParallelCollection};
use crate::pool::ThreadPool;
use crate::rdd::{BoxIter, Data, RddRef};
use crate::shuffle::ShuffleManager;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Where a task failure is about to happen — handed to the failure
/// injector so tests can target specific stages/partitions/attempts.
#[derive(Debug, Clone, Copy)]
pub struct FailureSite {
    /// Stage id of the task.
    pub stage_id: usize,
    /// Partition the task computes.
    pub partition: usize,
    /// Retry attempt (0 = first try).
    pub attempt: usize,
}

/// Decides whether a task should be killed before running.
pub type FailureInjector = Arc<dyn Fn(FailureSite) -> bool + Send + Sync>;

/// Engine configuration.
#[derive(Clone)]
pub struct EngineConf {
    /// Executor threads (simulated cluster cores).
    pub executor_threads: usize,
    /// Max retries per task before the job fails.
    pub max_task_retries: usize,
    /// Max times one shuffle's map stage may be resubmitted after fetch
    /// failures before the job fails.
    pub max_stage_retries: usize,
    /// Default partition count for shuffles when callers pass 0.
    pub default_parallelism: usize,
}

impl Default for EngineConf {
    fn default() -> Self {
        EngineConf {
            executor_threads: 4,
            max_task_retries: 3,
            max_stage_retries: 4,
            default_parallelism: 4,
        }
    }
}

struct ContextInner {
    conf: EngineConf,
    next_rdd_id: AtomicUsize,
    next_shuffle_id: AtomicUsize,
    next_broadcast_id: AtomicUsize,
    next_stage_id: AtomicUsize,
    shuffle: ShuffleManager,
    cache: CacheManager,
    pool: ThreadPool,
    metrics: Metrics,
    failure_injector: parking_lot::RwLock<Option<FailureInjector>>,
    chaos: parking_lot::RwLock<Option<Arc<ChaosPlan>>>,
}

/// Cheaply cloneable handle to the simulated cluster.
#[derive(Clone)]
pub struct SparkContext {
    inner: Arc<ContextInner>,
}

impl SparkContext {
    /// Create a context with `executor_threads` workers and defaults
    /// otherwise.
    pub fn new(executor_threads: usize) -> Self {
        SparkContext::with_conf(EngineConf {
            executor_threads,
            ..Default::default()
        })
    }

    /// Create a context from a full configuration. When
    /// `ENGINE_CHAOS_SEED` is set in the environment a seeded
    /// [`ChaosPlan`] is installed automatically, so an entire test suite
    /// can run under fault injection without code changes.
    pub fn with_conf(conf: EngineConf) -> Self {
        let pool = ThreadPool::new(conf.executor_threads);
        let chaos = ChaosConf::from_env().map(|c| Arc::new(ChaosPlan::new(c)));
        SparkContext {
            inner: Arc::new(ContextInner {
                conf,
                next_rdd_id: AtomicUsize::new(0),
                next_shuffle_id: AtomicUsize::new(0),
                next_broadcast_id: AtomicUsize::new(0),
                next_stage_id: AtomicUsize::new(0),
                shuffle: ShuffleManager::default(),
                cache: CacheManager::default(),
                pool,
                metrics: Metrics::default(),
                failure_injector: parking_lot::RwLock::new(None),
                chaos: parking_lot::RwLock::new(chaos),
            }),
        }
    }

    /// The configuration this context was built with.
    pub fn conf(&self) -> &EngineConf {
        &self.inner.conf
    }

    /// Distribute an in-memory collection over `num_partitions` partitions.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, num_partitions: usize) -> RddRef<T> {
        RddRef::new(Arc::new(ParallelCollection::new(
            self.clone(),
            data,
            num_partitions,
        )))
    }

    /// Create a source RDD whose partitions are produced lazily by `gen`
    /// on the executors (for large synthetic datasets).
    pub fn generate<T: Data>(
        &self,
        num_partitions: usize,
        gen: impl Fn(usize) -> BoxIter<T> + Send + Sync + 'static,
    ) -> RddRef<T> {
        RddRef::new(Arc::new(GeneratedRdd::new(
            self.clone(),
            num_partitions,
            Arc::new(gen),
        )))
    }

    /// Ship a read-only value to every task.
    pub fn broadcast<T: Send + Sync>(&self, value: T, approx_bytes: usize) -> Broadcast<T> {
        Broadcast::new(self.new_broadcast_id(), value, approx_bytes)
    }

    /// Install (or clear) a failure injector for fault-tolerance tests.
    pub fn set_failure_injector(&self, injector: Option<FailureInjector>) {
        *self.inner.failure_injector.write() = injector;
    }

    /// Current failure injector, if any.
    pub fn failure_injector(&self) -> Option<FailureInjector> {
        self.inner.failure_injector.read().clone()
    }

    /// Install (or clear) a chaos fault-injection plan. Passing `None`
    /// also overrides a plan auto-installed from `ENGINE_CHAOS_SEED` —
    /// tests that assert exact task/stage counters use this to opt out
    /// of suite-wide chaos runs.
    pub fn set_chaos(&self, plan: Option<Arc<ChaosPlan>>) {
        *self.inner.chaos.write() = plan;
    }

    /// Current chaos plan, if any.
    pub fn chaos(&self) -> Option<Arc<ChaosPlan>> {
        self.inner.chaos.read().clone()
    }

    /// Kill executor `executor`: atomically drop every shuffle bucket and
    /// cache block it produced. Lineage makes the loss recoverable — the
    /// scheduler reruns the missing map partitions on next access and the
    /// cache manager recomputes lost blocks from their parent RDDs.
    pub fn lose_executor(&self, executor: usize) {
        self.inner.shuffle.drop_executor(executor);
        self.inner.cache.drop_executor(executor);
        Metrics::add(&self.inner.metrics.executors_lost, 1);
    }

    /// The shuffle block store.
    pub fn shuffle_manager(&self) -> &ShuffleManager {
        &self.inner.shuffle
    }

    /// The partition cache.
    pub fn cache_manager(&self) -> &CacheManager {
        &self.inner.cache
    }

    /// The executor thread pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.inner.pool
    }

    /// Execution counters.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Allocate a fresh RDD id.
    pub fn new_rdd_id(&self) -> usize {
        self.inner.next_rdd_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a fresh shuffle id.
    pub fn new_shuffle_id(&self) -> usize {
        self.inner.next_shuffle_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Peek at the next shuffle id without allocating it. Shuffle ids are
    /// allocated eagerly when a shuffle dependency is constructed, so the
    /// SQL layer can snapshot this before and after lowering one operator
    /// to learn which shuffles that operator induced.
    pub fn current_shuffle_id(&self) -> usize {
        self.inner.next_shuffle_id.load(Ordering::Relaxed)
    }

    /// Allocate a fresh broadcast id.
    pub fn new_broadcast_id(&self) -> usize {
        self.inner.next_broadcast_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a fresh stage id.
    pub fn new_stage_id(&self) -> usize {
        self.inner.next_stage_id.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_and_collect_roundtrip() {
        let sc = SparkContext::new(2);
        let data: Vec<i64> = (0..100).collect();
        let rdd = sc.parallelize(data.clone(), 7);
        assert_eq!(rdd.num_partitions(), 7);
        assert_eq!(rdd.collect(), data);
    }

    #[test]
    fn generate_produces_per_partition_data() {
        let sc = SparkContext::new(2);
        let rdd = sc.generate(3, |p| Box::new((0..2).map(move |i| (p, i))));
        let mut got = rdd.collect();
        got.sort();
        assert_eq!(got, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn broadcast_value_is_shared() {
        let sc = SparkContext::new(1);
        let b = sc.broadcast(vec![1, 2, 3], 24);
        assert_eq!(b.value(), &vec![1, 2, 3]);
        assert_eq!(b.approx_bytes(), 24);
        let b2 = b.clone();
        assert_eq!(b2.id(), b.id());
    }

    #[test]
    fn ids_are_unique() {
        let sc = SparkContext::new(1);
        let a = sc.new_rdd_id();
        let b = sc.new_rdd_id();
        assert_ne!(a, b);
    }
}
