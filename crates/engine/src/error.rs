//! Engine error type.

use std::fmt;

/// Errors surfaced by job execution.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// A task failed more times than `max_task_retries` allows.
    TaskFailed {
        /// Stage the task belonged to.
        stage: usize,
        /// Partition index of the failing task.
        partition: usize,
        /// Description of the last failure.
        reason: String,
    },
    /// Fetch failures on one shuffle kept recurring after the map stage
    /// was resubmitted `max_stage_retries` times.
    StageRetriesExhausted {
        /// Stage whose output could not be kept available.
        stage: usize,
        /// Shuffle whose map output kept going missing.
        shuffle_id: usize,
        /// How many resubmissions were attempted before giving up.
        attempts: usize,
    },
    /// The job's [`crate::cancel::CancelToken`] fired before it finished
    /// (explicit cancel or deadline). Not retried.
    Cancelled {
        /// Human-readable cause ("query cancelled" / "query deadline exceeded").
        reason: String,
    },
    /// An I/O problem in the simulated file store.
    Io(String),
    /// Anything else (mis-shapen job, missing shuffle output after retries).
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TaskFailed {
                stage,
                partition,
                reason,
            } => {
                write!(
                    f,
                    "task failed (stage {stage}, partition {partition}): {reason}"
                )
            }
            EngineError::StageRetriesExhausted {
                stage,
                shuffle_id,
                attempts,
            } => write!(
                f,
                "stage {stage} aborted: fetch failures on shuffle {shuffle_id} persisted \
                 after {attempts} map-stage resubmissions"
            ),
            EngineError::Cancelled { reason } => write!(f, "job cancelled: {reason}"),
            EngineError::Io(msg) => write!(f, "io error: {msg}"),
            EngineError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e.to_string())
    }
}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;
