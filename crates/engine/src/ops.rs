//! Concrete narrow-dependency RDDs.

use crate::context::SparkContext;
use crate::rdd::{BoxIter, Data, Dependency, Rdd, RddBase, RddId, TaskContext};
use std::sync::Arc;

/// Deterministic small PRNG (splitmix64) used for sampling so results are
/// reproducible across runs without pulling `rand` into the engine.
#[derive(Clone)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Source RDD over an in-memory collection, split into `num_partitions`
/// contiguous slices (`SparkContext::parallelize`).
pub struct ParallelCollection<T: Data> {
    id: RddId,
    ctx: SparkContext,
    slices: Arc<Vec<Vec<T>>>,
}

impl<T: Data> ParallelCollection<T> {
    pub(crate) fn new(ctx: SparkContext, data: Vec<T>, num_partitions: usize) -> Self {
        let num_partitions = num_partitions.max(1);
        let total = data.len();
        let mut slices: Vec<Vec<T>> = Vec::with_capacity(num_partitions);
        let base = total / num_partitions;
        let extra = total % num_partitions;
        let mut it = data.into_iter();
        for i in 0..num_partitions {
            let len = base + usize::from(i < extra);
            slices.push(it.by_ref().take(len).collect());
        }
        ParallelCollection {
            id: ctx.new_rdd_id(),
            ctx,
            slices: Arc::new(slices),
        }
    }
}

impl<T: Data> RddBase for ParallelCollection<T> {
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.slices.len()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![]
    }
    fn context(&self) -> SparkContext {
        self.ctx.clone()
    }
    fn name(&self) -> &'static str {
        "parallelize"
    }
}

impl<T: Data> Rdd for ParallelCollection<T> {
    type Item = T;
    fn compute(&self, split: usize, _tc: &TaskContext) -> BoxIter<T> {
        let slice = self.slices[split].clone();
        Box::new(slice.into_iter())
    }
}

/// Source RDD whose partitions are produced by a generator function —
/// lets benchmarks create large datasets in parallel without first
/// materializing them on the driver.
pub struct GeneratedRdd<T: Data> {
    id: RddId,
    ctx: SparkContext,
    num_partitions: usize,
    gen: Arc<dyn Fn(usize) -> BoxIter<T> + Send + Sync>,
}

impl<T: Data> GeneratedRdd<T> {
    pub(crate) fn new(
        ctx: SparkContext,
        num_partitions: usize,
        gen: Arc<dyn Fn(usize) -> BoxIter<T> + Send + Sync>,
    ) -> Self {
        GeneratedRdd {
            id: ctx.new_rdd_id(),
            ctx,
            num_partitions: num_partitions.max(1),
            gen,
        }
    }
}

impl<T: Data> RddBase for GeneratedRdd<T> {
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![]
    }
    fn context(&self) -> SparkContext {
        self.ctx.clone()
    }
    fn name(&self) -> &'static str {
        "generate"
    }
}

impl<T: Data> Rdd for GeneratedRdd<T> {
    type Item = T;
    fn compute(&self, split: usize, _tc: &TaskContext) -> BoxIter<T> {
        (self.gen)(split)
    }
}

macro_rules! narrow_base {
    ($ty:ident, $name:literal) => {
        fn id(&self) -> RddId {
            self.id
        }
        fn num_partitions(&self) -> usize {
            self.parent.num_partitions()
        }
        fn dependencies(&self) -> Vec<Dependency> {
            vec![Dependency::Narrow(crate::shuffle::as_base(
                self.parent.clone(),
            ))]
        }
        fn context(&self) -> SparkContext {
            self.parent.context()
        }
        fn name(&self) -> &'static str {
            $name
        }
    };
}

/// `map` over a parent RDD.
pub struct MapRdd<T: Data, U: Data> {
    id: RddId,
    parent: Arc<dyn Rdd<Item = T>>,
    f: Arc<dyn Fn(T) -> U + Send + Sync>,
}

impl<T: Data, U: Data> MapRdd<T, U> {
    pub(crate) fn new(
        parent: Arc<dyn Rdd<Item = T>>,
        f: Arc<dyn Fn(T) -> U + Send + Sync>,
    ) -> Self {
        MapRdd {
            id: parent.context().new_rdd_id(),
            parent,
            f,
        }
    }
}

impl<T: Data, U: Data> RddBase for MapRdd<T, U> {
    narrow_base!(MapRdd, "map");
}

impl<T: Data, U: Data> Rdd for MapRdd<T, U> {
    type Item = U;
    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<U> {
        let f = self.f.clone();
        Box::new(self.parent.compute(split, tc).map(move |t| f(t)))
    }
}

/// `filter` over a parent RDD.
pub struct FilterRdd<T: Data> {
    id: RddId,
    parent: Arc<dyn Rdd<Item = T>>,
    f: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: Data> FilterRdd<T> {
    pub(crate) fn new(
        parent: Arc<dyn Rdd<Item = T>>,
        f: Arc<dyn Fn(&T) -> bool + Send + Sync>,
    ) -> Self {
        FilterRdd {
            id: parent.context().new_rdd_id(),
            parent,
            f,
        }
    }
}

impl<T: Data> RddBase for FilterRdd<T> {
    narrow_base!(FilterRdd, "filter");
}

impl<T: Data> Rdd for FilterRdd<T> {
    type Item = T;
    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<T> {
        let f = self.f.clone();
        Box::new(self.parent.compute(split, tc).filter(move |t| f(t)))
    }
}

/// `flat_map` over a parent RDD.
pub struct FlatMapRdd<T: Data, U: Data> {
    id: RddId,
    parent: Arc<dyn Rdd<Item = T>>,
    f: Arc<dyn Fn(T) -> BoxIter<U> + Send + Sync>,
}

impl<T: Data, U: Data> FlatMapRdd<T, U> {
    pub(crate) fn new(
        parent: Arc<dyn Rdd<Item = T>>,
        f: Arc<dyn Fn(T) -> BoxIter<U> + Send + Sync>,
    ) -> Self {
        FlatMapRdd {
            id: parent.context().new_rdd_id(),
            parent,
            f,
        }
    }
}

impl<T: Data, U: Data> RddBase for FlatMapRdd<T, U> {
    narrow_base!(FlatMapRdd, "flat_map");
}

impl<T: Data, U: Data> Rdd for FlatMapRdd<T, U> {
    type Item = U;
    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<U> {
        let f = self.f.clone();
        Box::new(self.parent.compute(split, tc).flat_map(move |t| f(t)))
    }
}

/// `map_partitions(_with_index)` over a parent RDD.
pub struct MapPartitionsRdd<T: Data, U: Data> {
    id: RddId,
    parent: Arc<dyn Rdd<Item = T>>,
    f: Arc<dyn Fn(usize, BoxIter<T>) -> BoxIter<U> + Send + Sync>,
}

impl<T: Data, U: Data> MapPartitionsRdd<T, U> {
    pub(crate) fn new(
        parent: Arc<dyn Rdd<Item = T>>,
        f: Arc<dyn Fn(usize, BoxIter<T>) -> BoxIter<U> + Send + Sync>,
    ) -> Self {
        MapPartitionsRdd {
            id: parent.context().new_rdd_id(),
            parent,
            f,
        }
    }
}

impl<T: Data, U: Data> RddBase for MapPartitionsRdd<T, U> {
    narrow_base!(MapPartitionsRdd, "map_partitions");
}

impl<T: Data, U: Data> Rdd for MapPartitionsRdd<T, U> {
    type Item = U;
    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<U> {
        (self.f)(split, self.parent.compute(split, tc))
    }
}

/// Concatenation of several RDDs of the same type.
pub struct UnionRdd<T: Data> {
    id: RddId,
    parents: Vec<Arc<dyn Rdd<Item = T>>>,
}

impl<T: Data> UnionRdd<T> {
    pub(crate) fn new(parents: Vec<Arc<dyn Rdd<Item = T>>>) -> Self {
        assert!(!parents.is_empty());
        UnionRdd {
            id: parents[0].context().new_rdd_id(),
            parents,
        }
    }

    fn locate(&self, split: usize) -> (usize, usize) {
        let mut remaining = split;
        for (i, p) in self.parents.iter().enumerate() {
            if remaining < p.num_partitions() {
                return (i, remaining);
            }
            remaining -= p.num_partitions();
        }
        panic!("union partition {split} out of range");
    }
}

impl<T: Data> RddBase for UnionRdd<T> {
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.parents.iter().map(|p| p.num_partitions()).sum()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        self.parents
            .iter()
            .map(|p| Dependency::Narrow(crate::shuffle::as_base(p.clone())))
            .collect()
    }
    fn context(&self) -> SparkContext {
        self.parents[0].context()
    }
    fn name(&self) -> &'static str {
        "union"
    }
}

impl<T: Data> Rdd for UnionRdd<T> {
    type Item = T;
    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<T> {
        let (parent, sub) = self.locate(split);
        self.parents[parent].compute(sub, tc)
    }
}

/// Pairwise partition zip of two equal-width RDDs.
pub struct ZippedPartitionsRdd<A: Data, B: Data, U: Data> {
    id: RddId,
    left: Arc<dyn Rdd<Item = A>>,
    right: Arc<dyn Rdd<Item = B>>,
    f: Arc<dyn Fn(BoxIter<A>, BoxIter<B>) -> BoxIter<U> + Send + Sync>,
}

impl<A: Data, B: Data, U: Data> ZippedPartitionsRdd<A, B, U> {
    pub(crate) fn new(
        left: Arc<dyn Rdd<Item = A>>,
        right: Arc<dyn Rdd<Item = B>>,
        f: Arc<dyn Fn(BoxIter<A>, BoxIter<B>) -> BoxIter<U> + Send + Sync>,
    ) -> Self {
        ZippedPartitionsRdd {
            id: left.context().new_rdd_id(),
            left,
            right,
            f,
        }
    }
}

impl<A: Data, B: Data, U: Data> RddBase for ZippedPartitionsRdd<A, B, U> {
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.left.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![
            Dependency::Narrow(crate::shuffle::as_base(self.left.clone())),
            Dependency::Narrow(crate::shuffle::as_base(self.right.clone())),
        ]
    }
    fn context(&self) -> SparkContext {
        self.left.context()
    }
    fn name(&self) -> &'static str {
        "zip_partitions"
    }
}

impl<A: Data, B: Data, U: Data> Rdd for ZippedPartitionsRdd<A, B, U> {
    type Item = U;
    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<U> {
        (self.f)(self.left.compute(split, tc), self.right.compute(split, tc))
    }
}

/// Bernoulli sample of a parent RDD.
pub struct SampleRdd<T: Data> {
    id: RddId,
    parent: Arc<dyn Rdd<Item = T>>,
    fraction: f64,
    seed: u64,
}

impl<T: Data> SampleRdd<T> {
    pub(crate) fn new(parent: Arc<dyn Rdd<Item = T>>, fraction: f64, seed: u64) -> Self {
        SampleRdd {
            id: parent.context().new_rdd_id(),
            parent,
            fraction,
            seed,
        }
    }
}

impl<T: Data> RddBase for SampleRdd<T> {
    narrow_base!(SampleRdd, "sample");
}

impl<T: Data> Rdd for SampleRdd<T> {
    type Item = T;
    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<T> {
        let mut rng = SplitMix64(self.seed ^ (split as u64).wrapping_mul(0x9E37_79B9));
        let fraction = self.fraction;
        Box::new(
            self.parent
                .compute(split, tc)
                .filter(move |_| rng.next_f64() < fraction),
        )
    }
}

/// Shuffle-free partition-count reduction: each output partition chains a
/// contiguous run of parent partitions.
pub struct CoalescedRdd<T: Data> {
    id: RddId,
    parent: Arc<dyn Rdd<Item = T>>,
    num_partitions: usize,
}

impl<T: Data> CoalescedRdd<T> {
    pub(crate) fn new(parent: Arc<dyn Rdd<Item = T>>, num_partitions: usize) -> Self {
        let num_partitions = num_partitions.min(parent.num_partitions()).max(1);
        CoalescedRdd {
            id: parent.context().new_rdd_id(),
            parent,
            num_partitions,
        }
    }

    /// Parent partition range feeding output partition `split`.
    fn parent_range(&self, split: usize) -> std::ops::Range<usize> {
        let n = self.parent.num_partitions();
        let k = self.num_partitions;
        let start = split * n / k;
        let end = (split + 1) * n / k;
        start..end
    }
}

impl<T: Data> RddBase for CoalescedRdd<T> {
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Narrow(crate::shuffle::as_base(
            self.parent.clone(),
        ))]
    }
    fn context(&self) -> SparkContext {
        self.parent.context()
    }
    fn name(&self) -> &'static str {
        "coalesce"
    }
}

impl<T: Data> Rdd for CoalescedRdd<T> {
    type Item = T;
    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<T> {
        let range = self.parent_range(split);
        let parent = self.parent.clone();
        let tc = *tc;
        Box::new(range.flat_map(move |p| parent.compute(p, &tc)))
    }
}
