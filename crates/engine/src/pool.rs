//! Fixed-size executor thread pool.
//!
//! Each worker thread stands in for one executor core of the simulated
//! cluster. Tasks are `FnOnce` closures delivered over a crossbeam
//! channel; the pool lives as long as the [`crate::SparkContext`].

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads executing submitted closures.
pub struct ThreadPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` worker threads (at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = unbounded::<Task>();
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let rx = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("executor-{i}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        task();
                    }
                })
                .expect("failed to spawn executor thread");
            workers.push(handle);
        }
        ThreadPool { sender: Some(sender), workers }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submit a task for asynchronous execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.sender
            .as_ref()
            .expect("pool shut down")
            .send(Box::new(f))
            .expect("executor pool disconnected");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain outstanding tasks and exit.
        drop(self.sender.take());
        // The pool can be dropped *from* a worker thread (when a task holds
        // the last Arc to the owning context); that worker must detach
        // itself rather than self-join.
        let me = std::thread::current().id();
        for w in self.workers.drain(..) {
            if w.thread().id() == me {
                continue;
            }
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..100 {
            let c = counter.clone();
            let tx = tx.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_waits_for_submitted_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..32 {
                let c = counter.clone();
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }
}
