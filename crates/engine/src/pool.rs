//! Fixed-size executor thread pool.
//!
//! Each worker thread stands in for one executor of the simulated
//! cluster: tasks observe which executor they run on via
//! [`current_executor`], which is what lets fault injection model
//! executor death as "drop everything executor N produced". Tasks are
//! `FnOnce` closures delivered over a crossbeam channel; the pool lives
//! as long as the [`crate::SparkContext`].
//!
//! The driver can also pull queued tasks with [`ThreadPool::try_steal`]
//! and run them on its own thread. The scheduler does this while waiting
//! for stage results so that nested jobs (a task that itself calls
//! `run_job`, e.g. a cache materializer) cannot deadlock a fully blocked
//! pool.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cell::Cell;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static EXECUTOR_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The executor index of the current thread, or `None` on the driver
/// (or any thread outside the pool).
pub fn current_executor() -> Option<usize> {
    EXECUTOR_ID.with(|id| id.get())
}

/// A fixed pool of worker threads executing submitted closures.
pub struct ThreadPool {
    sender: Option<Sender<Task>>,
    /// Extra handle on the task queue so non-worker threads can steal
    /// queued tasks while they wait.
    stealer: Receiver<Task>,
    workers: Vec<JoinHandle<()>>,
    /// Generation counter + condvar that waiters (the scheduler's
    /// result loop) block on instead of polling. Bumped on every task
    /// submission and by [`notify`](Self::notify) when a task result is
    /// posted.
    activity: Arc<(Mutex<u64>, Condvar)>,
}

impl ThreadPool {
    /// Spawn `size` worker threads (at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = unbounded::<Task>();
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let rx = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("executor-{i}"))
                .spawn(move || {
                    EXECUTOR_ID.with(|id| id.set(Some(i)));
                    while let Ok(task) = rx.recv() {
                        task();
                    }
                })
                .expect("failed to spawn executor thread");
            workers.push(handle);
        }
        ThreadPool {
            sender: Some(sender),
            stealer: receiver,
            workers,
            activity: Arc::new((Mutex::new(0), Condvar::new())),
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submit a task for asynchronous execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.sender
            .as_ref()
            .expect("pool shut down")
            .send(Box::new(f))
            .expect("executor pool disconnected");
        // A new task is also something a blocked waiter may want to steal.
        self.notify();
    }

    /// Take one queued task, if any, to run on the calling thread.
    pub fn try_steal(&self) -> Option<Task> {
        self.stealer.try_recv()
    }

    /// Wake every thread blocked in [`wait_for_activity`](Self::wait_for_activity).
    /// Tasks call this after posting a result so the driver's wait loop
    /// re-checks its result channel without spinning.
    pub fn notify(&self) {
        let (gen, cv) = &*self.activity;
        *gen.lock().unwrap() += 1;
        cv.notify_all();
    }

    /// Current activity generation; pass to
    /// [`wait_for_activity`](Self::wait_for_activity).
    pub fn activity_generation(&self) -> u64 {
        *self.activity.0.lock().unwrap()
    }

    /// Block until the activity generation advances past `seen` or
    /// `timeout` elapses. The pattern is: read the generation, re-check
    /// whatever condition you are waiting on, then wait — any event
    /// between the read and the wait bumps the generation and makes the
    /// wait return immediately, so wake-ups cannot be lost.
    pub fn wait_for_activity(&self, seen: u64, timeout: Duration) {
        let (gen, cv) = &*self.activity;
        let mut g = gen.lock().unwrap();
        while *g == seen {
            let (next, result) = cv.wait_timeout(g, timeout).unwrap();
            g = next;
            if result.timed_out() {
                break;
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain outstanding tasks and exit.
        drop(self.sender.take());
        // The pool can be dropped *from* a worker thread (when a task holds
        // the last Arc to the owning context); that worker must detach
        // itself rather than self-join.
        let me = std::thread::current().id();
        for w in self.workers.drain(..) {
            if w.thread().id() == me {
                continue;
            }
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..100 {
            let c = counter.clone();
            let tx = tx.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_waits_for_submitted_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..32 {
                let c = counter.clone();
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn workers_know_their_executor_id_and_driver_does_not() {
        assert_eq!(current_executor(), None);
        let pool = ThreadPool::new(3);
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..16 {
            let tx = tx.clone();
            pool.execute(move || {
                tx.send(current_executor()).unwrap();
            });
        }
        for _ in 0..16 {
            let id = rx.recv().unwrap().expect("worker must have an executor id");
            assert!(id < 3);
        }
    }

    #[test]
    fn wait_for_activity_wakes_on_notify() {
        let pool = Arc::new(ThreadPool::new(1));
        let seen = pool.activity_generation();
        let p = pool.clone();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            p.notify();
        });
        // Must return well before the fallback timeout.
        let start = std::time::Instant::now();
        pool.wait_for_activity(seen, Duration::from_secs(10));
        assert!(start.elapsed() < Duration::from_secs(5));
        waker.join().unwrap();
    }

    #[test]
    fn wait_for_activity_returns_immediately_on_stale_generation() {
        let pool = ThreadPool::new(1);
        let seen = pool.activity_generation();
        pool.notify(); // generation advances before the wait starts
        let start = std::time::Instant::now();
        pool.wait_for_activity(seen, Duration::from_secs(10));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn stolen_tasks_run_on_the_calling_thread() {
        let pool = ThreadPool::new(1);
        // Park the only worker so the next submission stays queued.
        let (hold_tx, hold_rx) = crossbeam::channel::unbounded::<()>();
        let (started_tx, started_rx) = crossbeam::channel::unbounded::<()>();
        pool.execute(move || {
            started_tx.send(()).unwrap();
            let _ = hold_rx.recv();
        });
        started_rx.recv().unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let c = ran.clone();
        pool.execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        // Steal and run it here; the worker is still parked.
        let mut stole = false;
        for _ in 0..1000 {
            if let Some(task) = pool.try_steal() {
                task();
                stole = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(stole);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        hold_tx.send(()).unwrap();
    }
}
