//! Fixed-size executor thread pool.
//!
//! Each worker thread stands in for one executor of the simulated
//! cluster: tasks observe which executor they run on via
//! [`current_executor`], which is what lets fault injection model
//! executor death as "drop everything executor N produced". Tasks are
//! `FnOnce` closures delivered over a crossbeam channel; the pool lives
//! as long as the [`crate::SparkContext`].
//!
//! The driver can also pull queued tasks with [`ThreadPool::try_steal`]
//! and run them on its own thread. The scheduler does this while waiting
//! for stage results so that nested jobs (a task that itself calls
//! `run_job`, e.g. a cache materializer) cannot deadlock a fully blocked
//! pool.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cell::Cell;
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static EXECUTOR_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The executor index of the current thread, or `None` on the driver
/// (or any thread outside the pool).
pub fn current_executor() -> Option<usize> {
    EXECUTOR_ID.with(|id| id.get())
}

/// A fixed pool of worker threads executing submitted closures.
pub struct ThreadPool {
    sender: Option<Sender<Task>>,
    /// Extra handle on the task queue so non-worker threads can steal
    /// queued tasks while they wait.
    stealer: Receiver<Task>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` worker threads (at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = unbounded::<Task>();
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let rx = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("executor-{i}"))
                .spawn(move || {
                    EXECUTOR_ID.with(|id| id.set(Some(i)));
                    while let Ok(task) = rx.recv() {
                        task();
                    }
                })
                .expect("failed to spawn executor thread");
            workers.push(handle);
        }
        ThreadPool {
            sender: Some(sender),
            stealer: receiver,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submit a task for asynchronous execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.sender
            .as_ref()
            .expect("pool shut down")
            .send(Box::new(f))
            .expect("executor pool disconnected");
    }

    /// Take one queued task, if any, to run on the calling thread.
    pub fn try_steal(&self) -> Option<Task> {
        self.stealer.try_recv()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain outstanding tasks and exit.
        drop(self.sender.take());
        // The pool can be dropped *from* a worker thread (when a task holds
        // the last Arc to the owning context); that worker must detach
        // itself rather than self-join.
        let me = std::thread::current().id();
        for w in self.workers.drain(..) {
            if w.thread().id() == me {
                continue;
            }
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..100 {
            let c = counter.clone();
            let tx = tx.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_waits_for_submitted_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..32 {
                let c = counter.clone();
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn workers_know_their_executor_id_and_driver_does_not() {
        assert_eq!(current_executor(), None);
        let pool = ThreadPool::new(3);
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..16 {
            let tx = tx.clone();
            pool.execute(move || {
                tx.send(current_executor()).unwrap();
            });
        }
        for _ in 0..16 {
            let id = rx.recv().unwrap().expect("worker must have an executor id");
            assert!(id < 3);
        }
    }

    #[test]
    fn stolen_tasks_run_on_the_calling_thread() {
        let pool = ThreadPool::new(1);
        // Park the only worker so the next submission stays queued.
        let (hold_tx, hold_rx) = crossbeam::channel::unbounded::<()>();
        let (started_tx, started_rx) = crossbeam::channel::unbounded::<()>();
        pool.execute(move || {
            started_tx.send(()).unwrap();
            let _ = hold_rx.recv();
        });
        started_rx.recv().unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let c = ran.clone();
        pool.execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        // Steal and run it here; the worker is still parked.
        let mut stole = false;
        for _ in 0..1000 {
            if let Some(task) = pool.try_steal() {
                task();
                stole = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(stole);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        hold_tx.send(()).unwrap();
    }
}
