//! Cooperative query cancellation and deadlines.
//!
//! A [`CancelToken`] is shared between the driver thread that owns a job
//! and everything that runs on its behalf. Cancellation is *cooperative*:
//! nothing is killed. Task-side code calls [`check`] at partition
//! boundaries (and every few hundred rows in tight iterators); when the
//! token has fired, the check raises a [`CancelSignal`] panic payload
//! that unwinds the task, releasing memory reservations and spill files
//! via their `Drop` impls — the same mechanism
//! [`crate::shuffle::FetchFailedSignal`] uses for fetch failures. The
//! scheduler recognises the payload and aborts the job with
//! [`crate::EngineError::Cancelled`] instead of retrying the task.
//!
//! The driver side installs the token thread-locally ([`install`]) so the
//! scheduler's result-wait loop can abandon a stage between task
//! completions without plumbing a token through every `run_job` call.
//!
//! Deadlines are just tokens that fire on their own: a token built with
//! [`CancelToken::with_deadline`] reports [`CancelReason::DeadlineExceeded`]
//! once the instant passes, whether or not anyone called
//! [`CancelToken::cancel`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a token fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (client cancel, shutdown, ...).
    Cancelled,
    /// The token's deadline passed before the query finished.
    DeadlineExceeded,
}

impl CancelReason {
    /// Human-readable phrase used in error messages.
    pub fn describe(self) -> &'static str {
        match self {
            CancelReason::Cancelled => "query cancelled",
            CancelReason::DeadlineExceeded => "query deadline exceeded",
        }
    }
}

struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Shared cancellation flag with an optional deadline.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same state.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only fires on an explicit [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Fire the token. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// `Some(reason)` once the token has fired, `None` while live.
    ///
    /// An explicit cancel wins over a deadline when both apply, so a
    /// client that cancels a query just as it times out sees "cancelled".
    pub fn state(&self) -> Option<CancelReason> {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return Some(CancelReason::Cancelled);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// Has the token fired (explicitly or by deadline)?
    pub fn is_cancelled(&self) -> bool {
        self.state().is_some()
    }
}

/// Panic payload raised by [`check`] inside a task. The scheduler
/// downcasts it (like `FetchFailedSignal`) and aborts the job without
/// retrying.
pub struct CancelSignal {
    /// Why the owning token fired.
    pub reason: CancelReason,
}

/// Task-side cancellation point: unwind with a [`CancelSignal`] if the
/// token has fired. Call at partition boundaries and periodically inside
/// long row loops.
pub fn check(token: &CancelToken) {
    if let Some(reason) = token.state() {
        install_quiet_cancel_panic_hook();
        std::panic::panic_any(CancelSignal { reason });
    }
}

/// Cancellation travels as a panic the scheduler catches and turns into
/// `EngineError::Cancelled`; the default hook would still spray a
/// backtrace onto stderr for every routine cancellation. Install (once
/// per process) a filtering hook that stays silent for [`CancelSignal`]
/// payloads and delegates everything else — the same idiom the shuffle
/// layer uses for fetch-failure signals.
fn install_quiet_cancel_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

thread_local! {
    // A stack, not a slot: nested jobs (cache materializers) run under the
    // outermost query's token but must restore it when they pop.
    static CURRENT: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// Install `token` as the current thread's driver-side token until the
/// returned guard drops. The scheduler's wait loop polls it between task
/// completions so a cancelled job stops scheduling new stages promptly.
pub fn install(token: CancelToken) -> InstallGuard {
    CURRENT.with(|c| c.borrow_mut().push(token));
    InstallGuard { _priv: () }
}

/// The innermost token installed on this thread, if any.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// RAII guard returned by [`install`]; pops the token on drop.
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_fires() {
        let t = CancelToken::new();
        assert_eq!(t.state(), None);
        t.cancel();
        assert_eq!(t.state(), Some(CancelReason::Cancelled));
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_fires_on_its_own() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.state(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        t.cancel();
        assert_eq!(t.state(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn check_raises_cancel_signal() {
        let t = CancelToken::new();
        t.cancel();
        let err = std::panic::catch_unwind(|| check(&t)).unwrap_err();
        let sig = err
            .downcast_ref::<CancelSignal>()
            .expect("CancelSignal payload");
        assert_eq!(sig.reason, CancelReason::Cancelled);
    }

    #[test]
    fn install_stacks_and_restores() {
        assert!(current().is_none());
        let outer = CancelToken::new();
        let g1 = install(outer.clone());
        {
            let inner = CancelToken::new();
            let _g2 = install(inner.clone());
            inner.cancel();
            assert!(current().unwrap().is_cancelled());
        }
        assert!(!current().unwrap().is_cancelled());
        drop(g1);
        assert!(current().is_none());
    }
}
