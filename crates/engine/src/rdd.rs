//! Resilient Distributed Dataset traits and the user-facing handle.
//!
//! An RDD is a lazily evaluated, partitioned collection (§2.1 of the
//! paper). Concrete RDDs implement [`Rdd`]; users hold an [`RddRef`],
//! which offers the familiar functional operators (`map`, `filter`,
//! `flat_map`, …) plus output operations (`collect`, `count`, `reduce`)
//! that submit a job to the DAG scheduler.

use crate::cache::CachedRdd;
use crate::context::SparkContext;
use crate::error::Result;
use crate::ops::{
    CoalescedRdd, FilterRdd, FlatMapRdd, MapPartitionsRdd, MapRdd, SampleRdd, UnionRdd,
    ZippedPartitionsRdd,
};
use crate::scheduler;
use std::sync::Arc;

/// Marker bound for element types an RDD may carry.
///
/// Elements cross executor-thread boundaries and may be retained by the
/// shuffle and cache managers, hence `Send + Sync + 'static`; lineage
/// recomputation requires `Clone`.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}

/// Iterator type produced by partition computation.
pub type BoxIter<T> = Box<dyn Iterator<Item = T> + Send>;

/// Unique identifier of an RDD within one context.
pub type RddId = usize;

/// Per-task metadata handed to `compute`.
#[derive(Debug, Clone, Copy)]
pub struct TaskContext {
    /// Stage the task belongs to.
    pub stage_id: usize,
    /// Partition index being computed.
    pub partition: usize,
    /// Zero-based retry attempt.
    pub attempt: usize,
}

impl TaskContext {
    /// Context for driver-local evaluation (tests, single-partition reads).
    pub fn driver() -> Self {
        TaskContext {
            stage_id: usize::MAX,
            partition: 0,
            attempt: 0,
        }
    }
}

/// A dependency edge in the lineage graph.
#[derive(Clone)]
pub enum Dependency {
    /// Each partition of the child depends on a bounded set of parent
    /// partitions; computed in the same stage (pipelined).
    Narrow(Arc<dyn RddBase>),
    /// Requires a shuffle: the parent's stage must run to completion and
    /// write map output before the child can read it.
    Shuffle(Arc<dyn crate::shuffle::ShuffleDependencyBase>),
}

/// Type-erased view of an RDD, used by the scheduler to walk lineage.
pub trait RddBase: Send + Sync {
    /// Unique id within the owning context.
    fn id(&self) -> RddId;
    /// Number of partitions.
    fn num_partitions(&self) -> usize;
    /// Lineage edges to parent RDDs.
    fn dependencies(&self) -> Vec<Dependency>;
    /// The owning context.
    fn context(&self) -> SparkContext;
    /// Human-readable operator name for debug output.
    fn name(&self) -> &'static str {
        "rdd"
    }
}

/// A typed RDD: knows how to compute one partition as an iterator.
pub trait Rdd: RddBase {
    /// Element type.
    type Item: Data;

    /// Compute the contents of `split` from parent data (or source data).
    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<Self::Item>;
}

/// Cheaply cloneable user-facing handle around a concrete RDD.
pub struct RddRef<T: Data> {
    inner: Arc<dyn Rdd<Item = T>>,
}

impl<T: Data> Clone for RddRef<T> {
    fn clone(&self) -> Self {
        RddRef {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Data> RddRef<T> {
    /// Wrap a concrete RDD.
    pub fn new(inner: Arc<dyn Rdd<Item = T>>) -> Self {
        RddRef { inner }
    }

    /// The underlying trait object (for building derived RDDs).
    pub fn as_inner(&self) -> Arc<dyn Rdd<Item = T>> {
        self.inner.clone()
    }

    /// The owning context.
    pub fn context(&self) -> SparkContext {
        self.inner.context()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.inner.num_partitions()
    }

    // ---- transformations (lazy) ----

    /// Apply `f` to every element.
    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> RddRef<U> {
        RddRef::new(Arc::new(MapRdd::new(self.inner.clone(), Arc::new(f))))
    }

    /// Keep elements for which `f` returns true.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> RddRef<T> {
        RddRef::new(Arc::new(FilterRdd::new(self.inner.clone(), Arc::new(f))))
    }

    /// Apply `f` and flatten the results.
    pub fn flat_map<U: Data, I>(&self, f: impl Fn(T) -> I + Send + Sync + 'static) -> RddRef<U>
    where
        I: IntoIterator<Item = U>,
        I::IntoIter: Send + 'static,
    {
        let g = move |t: T| -> BoxIter<U> { Box::new(f(t).into_iter()) };
        RddRef::new(Arc::new(FlatMapRdd::new(self.inner.clone(), Arc::new(g))))
    }

    /// Transform a whole partition iterator at once (pipelined, no
    /// per-element closure overhead; what physical operators compile to).
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(BoxIter<T>) -> BoxIter<U> + Send + Sync + 'static,
    ) -> RddRef<U> {
        let g = move |_idx: usize, it: BoxIter<T>| f(it);
        RddRef::new(Arc::new(MapPartitionsRdd::new(
            self.inner.clone(),
            Arc::new(g),
        )))
    }

    /// Like [`RddRef::map_partitions`] but also passes the partition index.
    pub fn map_partitions_with_index<U: Data>(
        &self,
        f: impl Fn(usize, BoxIter<T>) -> BoxIter<U> + Send + Sync + 'static,
    ) -> RddRef<U> {
        RddRef::new(Arc::new(MapPartitionsRdd::new(
            self.inner.clone(),
            Arc::new(f),
        )))
    }

    /// Concatenate two RDDs (partitions of both, in order).
    pub fn union(&self, other: &RddRef<T>) -> RddRef<T> {
        RddRef::new(Arc::new(UnionRdd::new(vec![
            self.inner.clone(),
            other.inner.clone(),
        ])))
    }

    /// Pairwise combine equal-numbered partitions of two RDDs.
    ///
    /// Panics if partition counts differ. This is the narrow-dependency
    /// primitive used by co-partitioned shuffled hash joins.
    pub fn zip_partitions<B: Data, U: Data>(
        &self,
        other: &RddRef<B>,
        f: impl Fn(BoxIter<T>, BoxIter<B>) -> BoxIter<U> + Send + Sync + 'static,
    ) -> RddRef<U> {
        assert_eq!(
            self.num_partitions(),
            other.num_partitions(),
            "zip_partitions requires equal partition counts"
        );
        RddRef::new(Arc::new(ZippedPartitionsRdd::new(
            self.inner.clone(),
            other.as_inner(),
            Arc::new(f),
        )))
    }

    /// Bernoulli sample of roughly `fraction` of the elements.
    pub fn sample(&self, fraction: f64, seed: u64) -> RddRef<T> {
        RddRef::new(Arc::new(SampleRdd::new(self.inner.clone(), fraction, seed)))
    }

    /// Reduce the number of partitions without a shuffle by grouping
    /// consecutive parent partitions.
    pub fn coalesce(&self, num_partitions: usize) -> RddRef<T> {
        RddRef::new(Arc::new(CoalescedRdd::new(
            self.inner.clone(),
            num_partitions.max(1),
        )))
    }

    /// Persist computed partitions in the cache manager; later jobs read
    /// the cached data instead of recomputing lineage (§2.1, §3.6).
    pub fn cache(&self) -> RddRef<T> {
        RddRef::new(Arc::new(CachedRdd::new(self.inner.clone())))
    }

    // ---- actions (launch a job) ----

    /// Run a function over every partition and gather the results.
    pub fn run_job<U: Send + 'static>(
        &self,
        f: impl Fn(usize, BoxIter<T>) -> U + Send + Sync + 'static,
    ) -> Result<Vec<U>> {
        scheduler::run_job(&self.context(), self.inner.clone(), Arc::new(f))
    }

    /// Gather every element to the driver.
    pub fn collect(&self) -> Vec<T> {
        self.try_collect().expect("job failed")
    }

    /// Gather every element to the driver, surfacing job errors.
    pub fn try_collect(&self) -> Result<Vec<T>> {
        let parts = self.run_job(|_, it| it.collect::<Vec<T>>())?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// Count elements.
    pub fn count(&self) -> u64 {
        self.run_job(|_, it| it.count() as u64)
            .expect("job failed")
            .into_iter()
            .sum()
    }

    /// Combine all elements with an associative function.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> Option<T> {
        let f = Arc::new(f);
        let g = f.clone();
        let partials = self
            .run_job(move |_, it| it.reduce(|a, b| f(a, b)))
            .expect("job failed");
        partials.into_iter().flatten().reduce(move |a, b| g(a, b))
    }

    /// Fold with a zero value per partition, then across partitions.
    pub fn fold<U: Data>(
        &self,
        zero: U,
        fold_part: impl Fn(U, T) -> U + Send + Sync + 'static,
        combine: impl Fn(U, U) -> U + Send + Sync + 'static,
    ) -> U {
        let z = zero.clone();
        let partials = self
            .run_job(move |_, it| it.fold(z.clone(), &fold_part))
            .expect("job failed");
        partials.into_iter().fold(zero, combine)
    }

    /// First `n` elements (scans partitions in order on the driver).
    pub fn take(&self, n: usize) -> Vec<T> {
        if n == 0 {
            return vec![];
        }
        // One job that caps each partition at n, then trim on the driver.
        let parts = self
            .run_job(move |_, it| it.take(n).collect::<Vec<T>>())
            .expect("job failed");
        let mut out = Vec::with_capacity(n);
        for p in parts {
            for t in p {
                if out.len() == n {
                    return out;
                }
                out.push(t);
            }
        }
        out
    }

    /// First element, if any.
    pub fn first(&self) -> Option<T> {
        self.take(1).into_iter().next()
    }

    /// Run `f` for its side effects on every element.
    pub fn for_each(&self, f: impl Fn(T) + Send + Sync + 'static) {
        self.run_job(move |_, it| it.for_each(&f))
            .expect("job failed");
    }
}

impl<T: Data + std::hash::Hash + Eq> RddRef<T> {
    /// Remove duplicates (shuffles by value).
    pub fn distinct(&self, num_partitions: usize) -> RddRef<T> {
        use crate::pair::PairRdd;
        self.map(|t| (t, ()))
            .reduce_by_key(|a, _| a, num_partitions)
            .map(|(t, _)| t)
    }
}
