//! A Spark-like in-process distributed execution engine.
//!
//! This crate reproduces the substrate that Spark SQL (Armbrust et al.,
//! SIGMOD 2015) runs on: lazily evaluated, partitioned, fault-tolerant
//! distributed collections ("RDDs", §2.1 of the paper) executed by a DAG
//! scheduler that splits the lineage graph into stages at shuffle
//! boundaries and runs tasks on a pool of executor threads.
//!
//! The "cluster" is simulated inside one process: executors are worker
//! threads, the shuffle service is an in-memory block store, broadcast is
//! an `Arc` handed to every task, and "HDFS" is a directory of part files
//! (used by the Figure 10 pipeline experiment to model materialization
//! between separate jobs).
//!
//! # Fault tolerance
//!
//! Recovery follows the RDD lineage protocol end to end:
//!
//! * **Task failure** — a panicking (or fault-injected) task is retried
//!   in place up to `max_task_retries` times.
//! * **Fetch failure** — a missing shuffle bucket raises a
//!   [`shuffle::FetchFailedSignal`]; the scheduler unregisters the lost
//!   map output and resubmits the parent map stage (only missing
//!   partitions), bounded by `max_stage_retries` resubmissions per
//!   shuffle ([`EngineError::StageRetriesExhausted`] beyond that).
//! * **Executor loss** — [`SparkContext::lose_executor`] atomically
//!   drops every shuffle bucket and cache block that executor produced;
//!   shuffle output is recomputed on next access and cached partitions
//!   are recomputed from their parent RDDs.
//!
//! Faults are driven either by the targeted
//! [`context::FailureInjector`] hook or by a seeded, budgeted
//! [`chaos::ChaosPlan`] (auto-installed when `ENGINE_CHAOS_SEED` is set)
//! that deterministically schedules task panics, fetch failures, and
//! executor deaths — the chaos test harness runs whole suites under it.
//!
//! # Example
//!
//! ```
//! use engine::SparkContext;
//!
//! let sc = SparkContext::new(4);
//! let lines = sc.parallelize(vec!["ERROR a", "ok", "ERROR b"], 2);
//! let errors = lines.filter(|s| s.contains("ERROR"));
//! assert_eq!(errors.count(), 2);
//! ```

#![allow(clippy::type_complexity)] // Arc<dyn Fn(...)> closure-table types are the crate's idiom

pub mod broadcast;
pub mod cache;
pub mod cancel;
pub mod chaos;
pub mod context;
pub mod error;
pub mod exchange;
pub mod hdfs;
pub mod memory;
pub mod metrics;
pub mod ops;
pub mod pair;
pub mod partitioner;
pub mod pool;
pub mod rdd;
pub mod scheduler;
pub mod shuffle;

pub use broadcast::Broadcast;
pub use cache::{CacheBudgetStats, EvictionPolicy};
pub use cancel::{CancelReason, CancelSignal, CancelToken};
pub use chaos::{ChaosConf, ChaosPlan, ChaosStats, FaultKind};
pub use context::{EngineConf, SparkContext};
pub use error::{EngineError, Result};
pub use exchange::{MaterializedShuffle, ShuffleReadSpec};
pub use memory::{MemoryPool, MemoryReservation, MemoryStats, SpillFile};
pub use pair::PairRdd;
pub use partitioner::{HashPartitioner, Partitioner, RangePartitioner};
pub use rdd::{BoxIter, Data, Rdd, RddBase, RddRef};
