//! A Spark-like in-process distributed execution engine.
//!
//! This crate reproduces the substrate that Spark SQL (Armbrust et al.,
//! SIGMOD 2015) runs on: lazily evaluated, partitioned, fault-tolerant
//! distributed collections ("RDDs", §2.1 of the paper) executed by a DAG
//! scheduler that splits the lineage graph into stages at shuffle
//! boundaries and runs tasks on a pool of executor threads.
//!
//! The "cluster" is simulated inside one process: executors are worker
//! threads, the shuffle service is an in-memory block store, broadcast is
//! an `Arc` handed to every task, and "HDFS" is a directory of part files
//! (used by the Figure 10 pipeline experiment to model materialization
//! between separate jobs). Fault tolerance is real in the sense that
//! matters for the paper: tasks can be made to fail via an injector, and
//! lost shuffle output or cached partitions are recomputed from lineage.
//!
//! # Example
//!
//! ```
//! use engine::SparkContext;
//!
//! let sc = SparkContext::new(4);
//! let lines = sc.parallelize(vec!["ERROR a", "ok", "ERROR b"], 2);
//! let errors = lines.filter(|s| s.contains("ERROR"));
//! assert_eq!(errors.count(), 2);
//! ```

#![allow(clippy::type_complexity)] // Arc<dyn Fn(...)> closure-table types are the crate's idiom

pub mod broadcast;
pub mod cache;
pub mod context;
pub mod error;
pub mod exchange;
pub mod hdfs;
pub mod metrics;
pub mod ops;
pub mod pair;
pub mod partitioner;
pub mod pool;
pub mod rdd;
pub mod scheduler;
pub mod shuffle;

pub use broadcast::Broadcast;
pub use context::{EngineConf, SparkContext};
pub use error::{EngineError, Result};
pub use exchange::{MaterializedShuffle, ShuffleReadSpec};
pub use pair::PairRdd;
pub use partitioner::{HashPartitioner, Partitioner, RangePartitioner};
pub use rdd::{BoxIter, Data, Rdd, RddBase, RddRef};
