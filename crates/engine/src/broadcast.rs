//! Broadcast variables.
//!
//! Spark ships a read-only value to every executor once via a peer-to-peer
//! broadcast facility (used by the cost-based planner for broadcast hash
//! joins, §4.3.3 footnote 5). In-process this is an `Arc`, but we keep the
//! id and a byte estimate so experiments can report what *would* travel
//! over the wire.

use std::sync::Arc;

/// A read-only value shared with every task.
pub struct Broadcast<T: Send + Sync> {
    id: usize,
    value: Arc<T>,
    approx_bytes: usize,
}

impl<T: Send + Sync> Broadcast<T> {
    pub(crate) fn new(id: usize, value: T, approx_bytes: usize) -> Self {
        Broadcast {
            id,
            value: Arc::new(value),
            approx_bytes,
        }
    }

    /// Broadcast id within the context.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Access the broadcast value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Clone the inner `Arc` (what a task captures).
    pub fn value_arc(&self) -> Arc<T> {
        self.value.clone()
    }

    /// Caller-supplied estimate of the serialized size.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }
}

impl<T: Send + Sync> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            id: self.id,
            value: self.value.clone(),
            approx_bytes: self.approx_bytes,
        }
    }
}
