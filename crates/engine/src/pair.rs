//! Operations on RDDs of key-value pairs: shuffles, joins, sorting.

use crate::partitioner::{HashPartitioner, Partitioner, RangePartitioner};
use crate::rdd::{BoxIter, Data, Dependency, Rdd, RddBase, RddId, RddRef, TaskContext};
use crate::shuffle::{Aggregator, ShuffleDependency, ShuffleDependencyBase};
use crate::SparkContext;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Reduce-side RDD of a shuffle: partition `i` merges bucket `i` of every
/// map task's output.
pub struct ShuffledRdd<K: Data, V: Data, C: Data> {
    id: RddId,
    dep: Arc<ShuffleDependency<K, V, C>>,
    ctx: SparkContext,
    num_reduce: usize,
    num_maps: usize,
    aggregated: bool,
}

impl<K, V, C> ShuffledRdd<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    /// Build a shuffled RDD from a pair RDD, a partitioner and an optional
    /// aggregator.
    pub fn new(
        parent: Arc<dyn Rdd<Item = (K, V)>>,
        partitioner: Arc<dyn Partitioner<K>>,
        aggregator: Option<Aggregator<K, V, C>>,
        map_side_combine: bool,
    ) -> Self {
        let ctx = parent.context();
        let num_maps = parent.num_partitions();
        let num_reduce = partitioner.num_partitions();
        let aggregated = aggregator.is_some();
        let dep = Arc::new(ShuffleDependency::new(
            parent,
            partitioner,
            aggregator,
            map_side_combine,
        ));
        ShuffledRdd {
            id: ctx.new_rdd_id(),
            dep,
            ctx,
            num_reduce,
            num_maps,
            aggregated,
        }
    }

    /// Internal: fetch and merge all buckets for reduce partition `split`.
    fn fetch(&self, split: usize) -> Vec<(K, C)> {
        let sid = self.dep.shuffle_id();
        let mut read = 0u64;
        let out = if self.aggregated {
            let agg = self.dep_aggregator();
            let mut merged: HashMap<K, Option<C>> = HashMap::new();
            for map_id in 0..self.num_maps {
                let bucket = crate::shuffle::fetch_bucket(&self.ctx, sid, map_id);
                let typed = ShuffleDependency::<K, V, C>::unerase(&bucket);
                for (k, c) in &typed[split] {
                    read += 1;
                    let slot = merged.entry(k.clone()).or_insert(None);
                    *slot = Some(match slot.take() {
                        Some(prev) => (agg.merge_combiners)(prev, c.clone()),
                        None => c.clone(),
                    });
                }
            }
            merged
                .into_iter()
                .map(|(k, c)| (k, c.expect("combiner")))
                .collect()
        } else {
            let mut all = Vec::new();
            for map_id in 0..self.num_maps {
                let bucket = crate::shuffle::fetch_bucket(&self.ctx, sid, map_id);
                let typed = ShuffleDependency::<K, V, C>::unerase(&bucket);
                read += typed[split].len() as u64;
                all.extend(typed[split].iter().cloned());
            }
            all
        };
        self.ctx.metrics().record_shuffle_read(sid, read);
        out
    }

    fn dep_aggregator(&self) -> Aggregator<K, V, C> {
        self.dep
            .aggregator_ref()
            .cloned()
            .expect("aggregated shuffle without aggregator")
    }
}

impl<K, V, C> RddBase for ShuffledRdd<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.num_reduce
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Shuffle(
            self.dep.clone() as Arc<dyn ShuffleDependencyBase>
        )]
    }
    fn context(&self) -> SparkContext {
        self.ctx.clone()
    }
    fn name(&self) -> &'static str {
        "shuffle"
    }
}

impl<K, V, C> Rdd for ShuffledRdd<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    type Item = (K, C);
    fn compute(&self, split: usize, _tc: &TaskContext) -> BoxIter<(K, C)> {
        Box::new(self.fetch(split).into_iter())
    }
}

/// Reduce-side RDD co-grouping two shuffles with the same partitioner —
/// the substrate for engine-level joins.
pub struct CoGroupedRdd<K: Data, V: Data, W: Data> {
    id: RddId,
    left: Arc<ShuffleDependency<K, V, V>>,
    right: Arc<ShuffleDependency<K, W, W>>,
    ctx: SparkContext,
    num_reduce: usize,
    left_maps: usize,
    right_maps: usize,
}

impl<K, V, W> CoGroupedRdd<K, V, W>
where
    K: Data + Hash + Eq,
    V: Data,
    W: Data,
{
    /// Shuffle both sides with `partitions` hash buckets.
    pub fn new(
        left: Arc<dyn Rdd<Item = (K, V)>>,
        right: Arc<dyn Rdd<Item = (K, W)>>,
        partitions: usize,
    ) -> Self {
        let ctx = left.context();
        let left_maps = left.num_partitions();
        let right_maps = right.num_partitions();
        let lp: Arc<dyn Partitioner<K>> = Arc::new(HashPartitioner::new(partitions));
        let rp: Arc<dyn Partitioner<K>> = Arc::new(HashPartitioner::new(partitions));
        CoGroupedRdd {
            id: ctx.new_rdd_id(),
            left: Arc::new(ShuffleDependency::new(left, lp, None, false)),
            right: Arc::new(ShuffleDependency::new(right, rp, None, false)),
            ctx,
            num_reduce: partitions.max(1),
            left_maps,
            right_maps,
        }
    }
}

impl<K, V, W> RddBase for CoGroupedRdd<K, V, W>
where
    K: Data + Hash + Eq,
    V: Data,
    W: Data,
{
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.num_reduce
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![
            Dependency::Shuffle(self.left.clone() as Arc<dyn ShuffleDependencyBase>),
            Dependency::Shuffle(self.right.clone() as Arc<dyn ShuffleDependencyBase>),
        ]
    }
    fn context(&self) -> SparkContext {
        self.ctx.clone()
    }
    fn name(&self) -> &'static str {
        "cogroup"
    }
}

impl<K, V, W> Rdd for CoGroupedRdd<K, V, W>
where
    K: Data + Hash + Eq,
    V: Data,
    W: Data,
{
    type Item = (K, (Vec<V>, Vec<W>));

    fn compute(&self, split: usize, _tc: &TaskContext) -> BoxIter<(K, (Vec<V>, Vec<W>))> {
        let mut groups: HashMap<K, (Vec<V>, Vec<W>)> = HashMap::new();
        let mut left_read = 0u64;
        for map_id in 0..self.left_maps {
            let bucket = crate::shuffle::fetch_bucket(&self.ctx, self.left.shuffle_id(), map_id);
            let typed = ShuffleDependency::<K, V, V>::unerase(&bucket);
            for (k, v) in &typed[split] {
                left_read += 1;
                groups.entry(k.clone()).or_default().0.push(v.clone());
            }
        }
        let mut right_read = 0u64;
        for map_id in 0..self.right_maps {
            let bucket = crate::shuffle::fetch_bucket(&self.ctx, self.right.shuffle_id(), map_id);
            let typed = ShuffleDependency::<K, W, W>::unerase(&bucket);
            for (k, w) in &typed[split] {
                right_read += 1;
                groups.entry(k.clone()).or_default().1.push(w.clone());
            }
        }
        self.ctx
            .metrics()
            .record_shuffle_read(self.left.shuffle_id(), left_read);
        self.ctx
            .metrics()
            .record_shuffle_read(self.right.shuffle_id(), right_read);
        Box::new(groups.into_iter())
    }
}

/// Key-value operations available on `RddRef<(K, V)>`.
pub trait PairRdd<K: Data + Hash + Eq, V: Data> {
    /// General combine-by-key with an explicit partitioner (the primitive
    /// the rest are built on).
    fn combine_by_key<C: Data>(
        &self,
        aggregator: Aggregator<K, V, C>,
        partitioner: Arc<dyn Partitioner<K>>,
        map_side_combine: bool,
    ) -> RddRef<(K, C)>;

    /// Merge values per key with an associative function.
    fn reduce_by_key(
        &self,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
        num_partitions: usize,
    ) -> RddRef<(K, V)>;

    /// Collect all values per key.
    fn group_by_key(&self, num_partitions: usize) -> RddRef<(K, Vec<V>)>;

    /// Fold values per key starting from `zero`.
    fn aggregate_by_key<C: Data>(
        &self,
        zero: C,
        seq: impl Fn(C, V) -> C + Send + Sync + 'static,
        comb: impl Fn(C, C) -> C + Send + Sync + 'static,
        num_partitions: usize,
    ) -> RddRef<(K, C)>;

    /// Repartition by key without combining values.
    fn partition_by(&self, partitioner: Arc<dyn Partitioner<K>>) -> RddRef<(K, V)>;

    /// Inner join on key.
    fn join<W: Data>(&self, other: &RddRef<(K, W)>, num_partitions: usize) -> RddRef<(K, (V, W))>;

    /// Full co-group on key.
    fn cogroup<W: Data>(
        &self,
        other: &RddRef<(K, W)>,
        num_partitions: usize,
    ) -> RddRef<(K, (Vec<V>, Vec<W>))>;

    /// Count records per key on the driver.
    fn count_by_key(&self) -> HashMap<K, u64>;

    /// Just the keys.
    fn keys(&self) -> RddRef<K>;

    /// Just the values.
    fn values(&self) -> RddRef<V>;

    /// Map the value, keeping the key.
    fn map_values<U: Data>(&self, f: impl Fn(V) -> U + Send + Sync + 'static) -> RddRef<(K, U)>;
}

impl<K: Data + Hash + Eq, V: Data> PairRdd<K, V> for RddRef<(K, V)> {
    fn combine_by_key<C: Data>(
        &self,
        aggregator: Aggregator<K, V, C>,
        partitioner: Arc<dyn Partitioner<K>>,
        map_side_combine: bool,
    ) -> RddRef<(K, C)> {
        RddRef::new(Arc::new(ShuffledRdd::new(
            self.as_inner(),
            partitioner,
            Some(aggregator),
            map_side_combine,
        )))
    }

    fn reduce_by_key(
        &self,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
        num_partitions: usize,
    ) -> RddRef<(K, V)> {
        let f = Arc::new(f);
        let f2 = f.clone();
        let agg = Aggregator::new(|v| v, move |c, v| f(c, v), move |a, b| f2(a, b));
        self.combine_by_key(agg, Arc::new(HashPartitioner::new(num_partitions)), true)
    }

    fn group_by_key(&self, num_partitions: usize) -> RddRef<(K, Vec<V>)> {
        let agg = Aggregator::new(
            |v| vec![v],
            |mut c: Vec<V>, v| {
                c.push(v);
                c
            },
            |mut a: Vec<V>, mut b| {
                a.append(&mut b);
                a
            },
        );
        self.combine_by_key(agg, Arc::new(HashPartitioner::new(num_partitions)), true)
    }

    fn aggregate_by_key<C: Data>(
        &self,
        zero: C,
        seq: impl Fn(C, V) -> C + Send + Sync + 'static,
        comb: impl Fn(C, C) -> C + Send + Sync + 'static,
        num_partitions: usize,
    ) -> RddRef<(K, C)> {
        let seq = Arc::new(seq);
        let seq2 = seq.clone();
        let agg = Aggregator::new(move |v| seq(zero.clone(), v), move |c, v| seq2(c, v), comb);
        self.combine_by_key(agg, Arc::new(HashPartitioner::new(num_partitions)), true)
    }

    fn partition_by(&self, partitioner: Arc<dyn Partitioner<K>>) -> RddRef<(K, V)> {
        RddRef::new(Arc::new(ShuffledRdd::<K, V, V>::new(
            self.as_inner(),
            partitioner,
            None,
            false,
        )))
    }

    fn join<W: Data>(&self, other: &RddRef<(K, W)>, num_partitions: usize) -> RddRef<(K, (V, W))> {
        self.cogroup(other, num_partitions)
            .flat_map(|(k, (vs, ws))| {
                let mut out = Vec::with_capacity(vs.len() * ws.len());
                for v in &vs {
                    for w in &ws {
                        out.push((k.clone(), (v.clone(), w.clone())));
                    }
                }
                out
            })
    }

    fn cogroup<W: Data>(
        &self,
        other: &RddRef<(K, W)>,
        num_partitions: usize,
    ) -> RddRef<(K, (Vec<V>, Vec<W>))> {
        RddRef::new(Arc::new(CoGroupedRdd::new(
            self.as_inner(),
            other.as_inner(),
            num_partitions,
        )))
    }

    fn count_by_key(&self) -> HashMap<K, u64> {
        self.map(|(k, _)| (k, 1u64))
            .reduce_by_key(|a, b| a + b, 1)
            .collect()
            .into_iter()
            .collect()
    }

    fn keys(&self) -> RddRef<K> {
        self.map(|(k, _)| k)
    }

    fn values(&self) -> RddRef<V> {
        self.map(|(_, v)| v)
    }

    fn map_values<U: Data>(&self, f: impl Fn(V) -> U + Send + Sync + 'static) -> RddRef<(K, U)> {
        self.map(move |(k, v)| (k, f(v)))
    }
}

/// Sorting for pair RDDs with ordered keys.
pub trait SortedPairRdd<K: Data + Hash + Eq + Ord, V: Data> {
    /// Globally sort by key via sampled range partitioning followed by a
    /// per-partition sort (Spark's `sortByKey`). Panics if the sampling
    /// jobs fail; fallible callers (e.g. services running queries on
    /// worker threads) should use [`SortedPairRdd::try_sort_by_key`].
    fn sort_by_key(&self, ascending: bool, num_partitions: usize) -> RddRef<(K, V)> {
        self.try_sort_by_key(ascending, num_partitions)
            .expect("job failed")
    }

    /// Like [`SortedPairRdd::sort_by_key`], but surfaces failures (task
    /// errors, cancellation) from the driver-side sampling jobs instead
    /// of panicking.
    fn try_sort_by_key(
        &self,
        ascending: bool,
        num_partitions: usize,
    ) -> crate::Result<RddRef<(K, V)>>;
}

impl<K: Data + Hash + Eq + Ord, V: Data> SortedPairRdd<K, V> for RddRef<(K, V)> {
    fn try_sort_by_key(
        &self,
        ascending: bool,
        num_partitions: usize,
    ) -> crate::Result<RddRef<(K, V)>> {
        // Sample ~20 keys per output partition to pick range boundaries.
        let total = (num_partitions * 20).max(20);
        let sample: Vec<K> = {
            let keys = self.keys();
            let approx: u64 = keys.run_job(|_, it| it.count() as u64)?.into_iter().sum();
            if approx == 0 {
                return Ok(self.clone());
            }
            let fraction = (total as f64 / approx as f64).min(1.0);
            keys.sample(fraction, 0xC0FFEE).try_collect()?
        };
        let bounds = RangePartitioner::bounds_from_sample(sample, num_partitions);
        let partitioner: Arc<dyn Partitioner<K>> =
            Arc::new(RangePartitioner::new(bounds, ascending));
        Ok(self.partition_by(partitioner).map_partitions(move |it| {
            let mut rows: Vec<(K, V)> = it.collect();
            if ascending {
                rows.sort_by(|a, b| a.0.cmp(&b.0));
            } else {
                rows.sort_by(|a, b| b.0.cmp(&a.0));
            }
            Box::new(rows.into_iter())
        }))
    }
}
