//! Materialized shuffle exchanges: the engine half of adaptive query
//! execution.
//!
//! A [`MaterializedShuffle`] eagerly runs a shuffle's map stage (plus any
//! shuffles upstream of it) via [`crate::scheduler::materialize_shuffle`],
//! then exposes the *measured* per-bucket byte sizes recorded by the
//! [`crate::shuffle::ShuffleManager`]. A consumer can inspect those sizes
//! and read the output back through arbitrary [`ShuffleReadSpec`] windows:
//! several reduce buckets merged into one output partition (partition
//! coalescing), or a single oversized reduce bucket split by map-task
//! ranges into several output partitions (skew splitting). The classic
//! one-partition-per-reducer shape is [`MaterializedShuffle::read_all`].
//!
//! Reads keep a [`Dependency::Shuffle`] edge on the originating
//! dependency, so lineage-based recovery still works: if the shuffle
//! output is invalidated, the next job re-runs the map stage.

use crate::error::Result;
use crate::partitioner::Partitioner;
use crate::rdd::{BoxIter, Data, Dependency, Rdd, RddBase, RddId, RddRef, TaskContext};
use crate::scheduler;
use crate::shuffle::{Aggregator, ShuffleDependency, ShuffleDependencyBase, SizeFn};
use crate::SparkContext;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// One output partition of a range shuffle read: the reduce buckets
/// `[reduce_start, reduce_end)` of map outputs `[map_start, map_end)`.
///
/// Correctness caveats are the caller's to uphold:
/// - coalescing (reduce_end - reduce_start > 1) is always safe as long as
///   the reduce ranges are disjoint;
/// - map-range splitting (map ranges narrower than all maps) must only be
///   used on *raw* (non-aggregated) shuffles — a map-side-combined key can
///   appear in several map outputs, and splitting would emit it once per
///   range instead of merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuffleReadSpec {
    /// First reduce bucket (inclusive).
    pub reduce_start: usize,
    /// Last reduce bucket (exclusive).
    pub reduce_end: usize,
    /// First map output (inclusive).
    pub map_start: usize,
    /// Last map output (exclusive).
    pub map_end: usize,
}

impl ShuffleReadSpec {
    /// A spec covering reduce buckets `[reduce_start, reduce_end)` across
    /// all `num_maps` map outputs.
    pub fn reducers(reduce_start: usize, reduce_end: usize, num_maps: usize) -> Self {
        ShuffleReadSpec {
            reduce_start,
            reduce_end,
            map_start: 0,
            map_end: num_maps,
        }
    }

    /// A spec for one reduce bucket restricted to map outputs
    /// `[map_start, map_end)` — a skew sub-partition.
    pub fn map_range(reduce: usize, map_start: usize, map_end: usize) -> Self {
        ShuffleReadSpec {
            reduce_start: reduce,
            reduce_end: reduce + 1,
            map_start,
            map_end,
        }
    }
}

/// A shuffle whose map stage has already run, with measured output sizes.
pub struct MaterializedShuffle<K: Data, V: Data, C: Data> {
    dep: Arc<ShuffleDependency<K, V, C>>,
    ctx: SparkContext,
    num_maps: usize,
    num_reduce: usize,
}

impl<K, V, C> MaterializedShuffle<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    /// Shuffle `parent` through `partitioner` and block until the map
    /// stage (and everything upstream of it) has completed.
    pub fn create(
        parent: &RddRef<(K, V)>,
        partitioner: Arc<dyn Partitioner<K>>,
        aggregator: Option<Aggregator<K, V, C>>,
        map_side_combine: bool,
        size_fn: Option<SizeFn<K, C>>,
    ) -> Result<Self> {
        let inner = parent.as_inner();
        let ctx = inner.context();
        let num_maps = inner.num_partitions();
        let num_reduce = partitioner.num_partitions();
        let dep = Arc::new(ShuffleDependency::new_sized(
            inner,
            partitioner,
            aggregator,
            map_side_combine,
            size_fn,
        ));
        scheduler::materialize_shuffle(&ctx, dep.clone() as Arc<dyn ShuffleDependencyBase>)?;
        Ok(MaterializedShuffle {
            dep,
            ctx,
            num_maps,
            num_reduce,
        })
    }

    /// The shuffle id assigned by the context.
    pub fn shuffle_id(&self) -> usize {
        self.dep.shuffle_id()
    }

    /// Number of completed map outputs.
    pub fn num_maps(&self) -> usize {
        self.num_maps
    }

    /// Number of reduce buckets per map output.
    pub fn num_reduce(&self) -> usize {
        self.num_reduce
    }

    /// Measured bytes per bucket, indexed `[map][reduce]`.
    pub fn map_output_sizes(&self) -> Vec<Vec<u64>> {
        self.ctx
            .shuffle_manager()
            .map_output_sizes(self.dep.shuffle_id())
    }

    /// Measured bytes per reduce partition (summed over map outputs).
    pub fn reduce_sizes(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.num_reduce];
        for per_map in self.map_output_sizes() {
            for (r, b) in per_map.iter().enumerate() {
                out[r] += b;
            }
        }
        out
    }

    /// Measured bytes each map task contributed to reduce bucket `r`.
    pub fn map_sizes_for(&self, r: usize) -> Vec<u64> {
        self.map_output_sizes()
            .iter()
            .map(|m| m.get(r).copied().unwrap_or(0))
            .collect()
    }

    /// Total measured bytes of the map output.
    pub fn total_bytes(&self) -> u64 {
        self.reduce_sizes().iter().sum()
    }

    /// Read the materialized output through `specs`, one output partition
    /// per spec.
    pub fn read(&self, specs: Vec<ShuffleReadSpec>) -> RddRef<(K, C)> {
        RddRef::new(Arc::new(ShuffleRangeReaderRdd {
            id: self.ctx.new_rdd_id(),
            dep: self.dep.clone(),
            ctx: self.ctx.clone(),
            specs: Arc::new(specs),
        }))
    }

    /// Read everything back in the classic one-partition-per-reducer shape.
    pub fn read_all(&self) -> RddRef<(K, C)> {
        let specs = (0..self.num_reduce)
            .map(|r| ShuffleReadSpec::reducers(r, r + 1, self.num_maps))
            .collect();
        self.read(specs)
    }
}

/// Reduce-side RDD over arbitrary bucket/map windows of a materialized
/// shuffle; partition `i` reads `specs[i]`.
struct ShuffleRangeReaderRdd<K: Data, V: Data, C: Data> {
    id: RddId,
    dep: Arc<ShuffleDependency<K, V, C>>,
    ctx: SparkContext,
    specs: Arc<Vec<ShuffleReadSpec>>,
}

impl<K, V, C> RddBase for ShuffleRangeReaderRdd<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.specs.len()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Shuffle(
            self.dep.clone() as Arc<dyn ShuffleDependencyBase>
        )]
    }
    fn context(&self) -> SparkContext {
        self.ctx.clone()
    }
    fn name(&self) -> &'static str {
        "shuffle_range_read"
    }
}

impl<K, V, C> Rdd for ShuffleRangeReaderRdd<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    type Item = (K, C);

    fn compute(&self, split: usize, _tc: &TaskContext) -> BoxIter<(K, C)> {
        let spec = &self.specs[split];
        let sid = self.dep.shuffle_id();
        let mut read = 0u64;
        let out: Vec<(K, C)> = if let Some(agg) = self.dep.aggregator_ref() {
            let mut merged: HashMap<K, Option<C>> = HashMap::new();
            for map_id in spec.map_start..spec.map_end {
                let bucket = crate::shuffle::fetch_bucket(&self.ctx, sid, map_id);
                let typed = ShuffleDependency::<K, V, C>::unerase(&bucket);
                for reduce in &typed[spec.reduce_start..spec.reduce_end] {
                    for (k, c) in reduce {
                        read += 1;
                        let slot = merged.entry(k.clone()).or_insert(None);
                        *slot = Some(match slot.take() {
                            Some(prev) => (agg.merge_combiners)(prev, c.clone()),
                            None => c.clone(),
                        });
                    }
                }
            }
            merged
                .into_iter()
                .map(|(k, c)| (k, c.expect("combiner")))
                .collect()
        } else {
            let mut all = Vec::new();
            for map_id in spec.map_start..spec.map_end {
                let bucket = crate::shuffle::fetch_bucket(&self.ctx, sid, map_id);
                let typed = ShuffleDependency::<K, V, C>::unerase(&bucket);
                for reduce in &typed[spec.reduce_start..spec.reduce_end] {
                    read += reduce.len() as u64;
                    all.extend(reduce.iter().cloned());
                }
            }
            all
        };
        self.ctx.metrics().record_shuffle_read(sid, read);
        Box::new(out.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::HashPartitioner;
    use crate::SparkContext;

    fn materialize_mod4(sc: &SparkContext) -> MaterializedShuffle<i64, i64, i64> {
        let pairs: Vec<(i64, i64)> = (0..100).map(|i| (i % 10, i)).collect();
        let rdd = sc.parallelize(pairs, 4);
        MaterializedShuffle::create(
            &rdd,
            Arc::new(HashPartitioner::new(4)),
            None,
            false,
            Some(Arc::new(|_k: &i64, _v: &i64| 16)),
        )
        .expect("materialize")
    }

    #[test]
    fn sizes_are_measured_and_reads_cover_everything() {
        let sc = SparkContext::new(2);
        let mat = materialize_mod4(&sc);
        assert_eq!(mat.num_maps(), 4);
        assert_eq!(mat.total_bytes(), 100 * 16);
        assert_eq!(mat.reduce_sizes().len(), 4);

        // Full read equals the plain shuffled result.
        let mut all: Vec<(i64, i64)> = mat.read_all().collect();
        all.sort_unstable();
        let mut expect: Vec<(i64, i64)> = (0..100).map(|i| (i % 10, i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn coalesced_and_split_reads_preserve_the_multiset() {
        let sc = SparkContext::new(2);
        let mat = materialize_mod4(&sc);

        // Coalesce all four reducers into one partition.
        let coalesced = mat.read(vec![ShuffleReadSpec::reducers(0, 4, mat.num_maps())]);
        assert_eq!(coalesced.num_partitions(), 1);
        let mut got: Vec<(i64, i64)> = coalesced.collect();
        got.sort_unstable();

        // Split reducer 0 by map ranges, keep the rest whole.
        let split = mat.read(vec![
            ShuffleReadSpec::map_range(0, 0, 2),
            ShuffleReadSpec::map_range(0, 2, 4),
            ShuffleReadSpec::reducers(1, 4, mat.num_maps()),
        ]);
        assert_eq!(split.num_partitions(), 3);
        let mut got2: Vec<(i64, i64)> = split.collect();
        got2.sort_unstable();
        assert_eq!(got, got2);

        let mut expect: Vec<(i64, i64)> = (0..100).map(|i| (i % 10, i)).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn aggregated_reads_merge_across_maps() {
        let sc = SparkContext::new(2);
        let pairs: Vec<(i64, i64)> = (0..100).map(|i| (i % 5, 1)).collect();
        let rdd = sc.parallelize(pairs, 4);
        let agg = Aggregator::new(|v: i64| v, |c, v| c + v, |a, b| a + b);
        let mat = MaterializedShuffle::create(
            &rdd,
            Arc::new(HashPartitioner::new(3)),
            Some(agg),
            true,
            None,
        )
        .expect("materialize");
        let mut got: Vec<(i64, i64)> = mat
            .read(vec![ShuffleReadSpec::reducers(0, 3, mat.num_maps())])
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 20), (1, 20), (2, 20), (3, 20), (4, 20)]);
    }
}
