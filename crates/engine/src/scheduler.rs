//! DAG scheduler: splits the lineage graph into stages at shuffle
//! boundaries, runs map stages in dependency order, then the result stage,
//! retrying failed tasks up to `max_task_retries`.
//!
//! Stage skipping works like Spark's: if a shuffle's map output is already
//! complete in the [`crate::shuffle::ShuffleManager`] (e.g. an earlier job
//! computed it), the map stage is not rerun. Invalidated shuffle output is
//! recomputed from lineage on the next job — the engine's fault-tolerance
//! story, exercised by the failure-injection tests.

use crate::context::{FailureSite, SparkContext};
use crate::error::{EngineError, Result};
use crate::metrics::Metrics;
use crate::rdd::{BoxIter, Data, Dependency, Rdd, RddBase, TaskContext};
use crate::shuffle::ShuffleDependencyBase;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Walk the lineage graph and return every shuffle dependency reachable
/// from `root`, parents before children (topological order).
pub fn collect_shuffle_dependencies(root: Arc<dyn RddBase>) -> Vec<Arc<dyn ShuffleDependencyBase>> {
    let mut out: Vec<Arc<dyn ShuffleDependencyBase>> = Vec::new();
    let mut seen_rdds: HashSet<usize> = HashSet::new();
    let mut seen_shuffles: HashSet<usize> = HashSet::new();

    fn visit(
        rdd: Arc<dyn RddBase>,
        out: &mut Vec<Arc<dyn ShuffleDependencyBase>>,
        seen_rdds: &mut HashSet<usize>,
        seen_shuffles: &mut HashSet<usize>,
    ) {
        if !seen_rdds.insert(rdd.id()) {
            return;
        }
        for dep in rdd.dependencies() {
            match dep {
                Dependency::Narrow(parent) => visit(parent, out, seen_rdds, seen_shuffles),
                Dependency::Shuffle(sd) => {
                    if seen_shuffles.insert(sd.shuffle_id()) {
                        visit(sd.parent(), out, seen_rdds, seen_shuffles);
                        out.push(sd);
                    }
                }
            }
        }
    }

    visit(root, &mut out, &mut seen_rdds, &mut seen_shuffles);
    out
}

/// Run `task` for `num_tasks` partitions on the executor pool, retrying
/// failures (injected or panicking) up to the configured limit.
fn run_tasks<R: Send + 'static>(
    sc: &SparkContext,
    stage_id: usize,
    num_tasks: usize,
    task: Arc<dyn Fn(&TaskContext) -> R + Send + Sync>,
) -> Result<Vec<R>> {
    Metrics::add(&sc.metrics().stages_run, 1);
    if num_tasks == 0 {
        return Ok(vec![]);
    }
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, usize, std::result::Result<R, String>)>();

    let submit = |partition: usize, attempt: usize| {
        let tx = tx.clone();
        let task = task.clone();
        let injector = sc.failure_injector();
        let metrics_tasks = Metrics::get(&sc.metrics().tasks_launched); // touch to keep handle simple
        let _ = metrics_tasks;
        let sc2 = sc.clone();
        sc.pool().execute(move || {
            Metrics::add(&sc2.metrics().tasks_launched, 1);
            let tc = TaskContext { stage_id, partition, attempt };
            if let Some(inj) = &injector {
                if inj(FailureSite { stage_id, partition, attempt }) {
                    let _ = tx.send((partition, attempt, Err("injected task failure".into())));
                    return;
                }
            }
            let start = std::time::Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| task(&tc)));
            Metrics::add(&sc2.metrics().task_time_ns, start.elapsed().as_nanos() as u64);
            let msg = match result {
                Ok(r) => Ok(r),
                Err(p) => Err(panic_message(p)),
            };
            let _ = tx.send((partition, attempt, msg));
        });
    };

    for p in 0..num_tasks {
        submit(p, 0);
    }

    let max_retries = sc.conf().max_task_retries;
    let mut results: Vec<Option<R>> = (0..num_tasks).map(|_| None).collect();
    let mut remaining = num_tasks;
    while remaining > 0 {
        let (partition, attempt, res) = rx
            .recv()
            .map_err(|_| EngineError::Internal("executor pool disconnected".into()))?;
        match res {
            Ok(r) => {
                if results[partition].is_none() {
                    results[partition] = Some(r);
                    remaining -= 1;
                }
            }
            Err(reason) => {
                Metrics::add(&sc.metrics().task_failures, 1);
                if attempt + 1 > max_retries {
                    return Err(EngineError::TaskFailed { stage: stage_id, partition, reason });
                }
                submit(partition, attempt + 1);
            }
        }
    }
    Ok(results.into_iter().map(|r| r.expect("task result")).collect())
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

/// Materialize one shuffle's map output — and, recursively, every shuffle
/// upstream of it — without running a result stage. Already-complete
/// shuffles are skipped, so re-materializing is free. This is the
/// primitive adaptive query execution uses: run a stage, observe its real
/// output sizes via [`crate::shuffle::ShuffleManager::map_output_sizes`],
/// then plan the next stage.
pub fn materialize_shuffle(sc: &SparkContext, dep: Arc<dyn ShuffleDependencyBase>) -> Result<()> {
    let mut stages = collect_shuffle_dependencies(dep.parent());
    stages.push(dep);
    for sd in stages {
        let num_maps = sd.parent().num_partitions();
        if sc.shuffle_manager().is_complete(sd.shuffle_id(), num_maps) {
            continue; // stage skipping
        }
        let stage_id = sc.new_stage_id();
        let sd2 = sd.clone();
        run_tasks(
            sc,
            stage_id,
            num_maps,
            Arc::new(move |tc: &TaskContext| sd2.run_map_task(tc.partition, tc)),
        )?;
    }
    Ok(())
}

/// Execute a job: ensure every upstream shuffle is materialized, then run
/// `func` over each partition of `rdd` and return the per-partition
/// results in partition order.
pub fn run_job<T: Data, U: Send + 'static>(
    sc: &SparkContext,
    rdd: Arc<dyn Rdd<Item = T>>,
    func: Arc<dyn Fn(usize, BoxIter<T>) -> U + Send + Sync>,
) -> Result<Vec<U>> {
    Metrics::add(&sc.metrics().jobs_run, 1);

    // Map stages, parents first.
    let shuffles = collect_shuffle_dependencies(crate::shuffle::as_base(rdd.clone()));
    for sd in shuffles {
        let num_maps = sd.parent().num_partitions();
        if sc.shuffle_manager().is_complete(sd.shuffle_id(), num_maps) {
            continue; // stage skipping
        }
        let stage_id = sc.new_stage_id();
        let sd2 = sd.clone();
        run_tasks(
            sc,
            stage_id,
            num_maps,
            Arc::new(move |tc: &TaskContext| sd2.run_map_task(tc.partition, tc)),
        )?;
    }

    // Result stage.
    let stage_id = sc.new_stage_id();
    let n = rdd.num_partitions();
    run_tasks(
        sc,
        stage_id,
        n,
        Arc::new(move |tc: &TaskContext| func(tc.partition, rdd.compute(tc.partition, tc))),
    )
}
