//! DAG scheduler: splits the lineage graph into stages at shuffle
//! boundaries, runs map stages in dependency order, then the result
//! stage, retrying failed tasks up to `max_task_retries`.
//!
//! Stage skipping works like Spark's: if a shuffle's map output is
//! already complete in the [`crate::shuffle::ShuffleManager`] (e.g. an
//! earlier job computed it), the map stage is not rerun.
//!
//! Fault recovery follows the lineage protocol:
//!
//! * A task that fails outright (panic or injected fault) is retried in
//!   place, up to `max_task_retries` attempts.
//! * A task that raises [`FetchFailedSignal`] is *not* retried in place —
//!   the input it needs is gone. The scheduler unregisters the lost map
//!   output, resubmits the parent map stage (only its missing
//!   partitions), and reruns the failed stage. Resubmissions are bounded
//!   by `max_stage_retries` per shuffle; exhausting them aborts the job
//!   with [`EngineError::StageRetriesExhausted`].
//! * Executor loss (`SparkContext::lose_executor`) drops every bucket
//!   the executor produced; map stages re-check completeness after
//!   running so mid-stage losses are recomputed before dependents run.
//!
//! While a stage is in flight the driver thread steals queued pool tasks
//! and runs them itself ([`crate::pool::ThreadPool::try_steal`]), so jobs
//! nested inside tasks (e.g. a cache materializer) make progress even
//! when every worker is blocked.

use crate::context::{FailureSite, SparkContext};
use crate::error::{EngineError, Result};
use crate::metrics::Metrics;
use crate::rdd::{BoxIter, Data, Dependency, Rdd, RddBase, TaskContext};
use crate::shuffle::{FetchFailedSignal, ShuffleDependencyBase};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Walk the lineage graph and return every shuffle dependency reachable
/// from `root`, parents before children (topological order).
pub fn collect_shuffle_dependencies(root: Arc<dyn RddBase>) -> Vec<Arc<dyn ShuffleDependencyBase>> {
    let mut out: Vec<Arc<dyn ShuffleDependencyBase>> = Vec::new();
    let mut seen_rdds: HashSet<usize> = HashSet::new();
    let mut seen_shuffles: HashSet<usize> = HashSet::new();

    fn visit(
        rdd: Arc<dyn RddBase>,
        out: &mut Vec<Arc<dyn ShuffleDependencyBase>>,
        seen_rdds: &mut HashSet<usize>,
        seen_shuffles: &mut HashSet<usize>,
    ) {
        if !seen_rdds.insert(rdd.id()) {
            return;
        }
        for dep in rdd.dependencies() {
            match dep {
                Dependency::Narrow(parent) => visit(parent, out, seen_rdds, seen_shuffles),
                Dependency::Shuffle(sd) => {
                    if seen_shuffles.insert(sd.shuffle_id()) {
                        visit(sd.parent(), out, seen_rdds, seen_shuffles);
                        out.push(sd);
                    }
                }
            }
        }
    }

    visit(root, &mut out, &mut seen_rdds, &mut seen_shuffles);
    out
}

/// How one stage attempt ended.
enum StageError {
    /// A task observed missing shuffle output; the parent map stage must
    /// be resubmitted.
    Fetch { shuffle_id: usize, map_id: usize },
    /// A terminal error (task retries exhausted, pool gone, ...).
    Err(EngineError),
}

enum TaskOutcome<R> {
    Ok(R),
    FetchFailed { shuffle_id: usize, map_id: usize },
    Cancelled(crate::cancel::CancelReason),
    Failed(String),
}

/// Run `task` for the given partitions on the executor pool, retrying
/// plain failures up to the configured limit. Returns results in the
/// order of `partitions`. A fetch failure aborts the attempt immediately
/// (it can never be fixed by an in-place retry) and is reported to the
/// caller for map-stage resubmission.
fn run_tasks<R: Send + 'static>(
    sc: &SparkContext,
    stage_id: usize,
    partitions: Vec<usize>,
    task: Arc<dyn Fn(&TaskContext) -> R + Send + Sync>,
) -> std::result::Result<Vec<R>, StageError> {
    Metrics::add(&sc.metrics().stages_run, 1);
    if partitions.is_empty() {
        return Ok(vec![]);
    }
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, usize, TaskOutcome<R>)>();

    let submit = |partition: usize, attempt: usize| {
        let tx = tx.clone();
        let task = task.clone();
        let injector = sc.failure_injector();
        let sc2 = sc.clone();
        sc.pool().execute(move || {
            Metrics::add(&sc2.metrics().tasks_launched, 1);
            let tc = TaskContext {
                stage_id,
                partition,
                attempt,
            };
            if let Some(inj) = &injector {
                if inj(FailureSite {
                    stage_id,
                    partition,
                    attempt,
                }) {
                    let _ = tx.send((
                        partition,
                        attempt,
                        TaskOutcome::Failed("injected task failure".into()),
                    ));
                    return;
                }
            }
            if let Some(chaos) = sc2.chaos() {
                if let Some(kind) = chaos.task_fault(stage_id, partition, attempt) {
                    use crate::chaos::FaultKind;
                    let reason = match kind {
                        FaultKind::ExecutorDeath => {
                            // Stolen tasks run on the driver; its blocks
                            // live under the DRIVER_OWNER slot, so "the
                            // node running this task" is always killable.
                            let ex = crate::pool::current_executor()
                                .unwrap_or(crate::cache::DRIVER_OWNER);
                            sc2.lose_executor(ex);
                            format!("chaos: executor {ex} died running stage {stage_id}")
                        }
                        _ => "chaos: injected task panic".to_string(),
                    };
                    let _ = tx.send((partition, attempt, TaskOutcome::Failed(reason)));
                    return;
                }
            }
            let start = std::time::Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| task(&tc)));
            Metrics::add(
                &sc2.metrics().task_time_ns,
                start.elapsed().as_nanos() as u64,
            );
            let outcome = match result {
                Ok(r) => TaskOutcome::Ok(r),
                Err(p) => {
                    if let Some(sig) = p.downcast_ref::<FetchFailedSignal>() {
                        TaskOutcome::FetchFailed {
                            shuffle_id: sig.shuffle_id,
                            map_id: sig.map_id,
                        }
                    } else if let Some(sig) = p.downcast_ref::<crate::cancel::CancelSignal>() {
                        TaskOutcome::Cancelled(sig.reason)
                    } else {
                        TaskOutcome::Failed(panic_message(p))
                    }
                }
            };
            let _ = tx.send((partition, attempt, outcome));
            // Wake the driver's result-wait loop (it blocks on the pool's
            // activity condvar, not on the channel).
            sc2.pool().notify();
        });
    };

    let index: HashMap<usize, usize> = partitions
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, i))
        .collect();
    for &p in &partitions {
        submit(p, 0);
    }

    let max_retries = sc.conf().max_task_retries;
    let mut results: Vec<Option<R>> = partitions.iter().map(|_| None).collect();
    let mut remaining = partitions.len();
    // Submitted tasks that have not reported an outcome yet. Cancellation
    // waits for these to unwind before returning, so a cancelled job's
    // resources (memory reservations, spill files) are released — not
    // merely *about to be* released — when the error surfaces.
    let mut outstanding = partitions.len();
    let drain_on_cancel = |mut outstanding: usize| {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while outstanding > 0 && std::time::Instant::now() < deadline {
            let generation = sc.pool().activity_generation();
            if rx.try_recv().is_some() {
                outstanding -= 1;
                continue;
            }
            // Queued tasks of this stage must still run (each hits its
            // cancel check at open and unwinds immediately); keep the
            // pool moving so the drain can't starve itself.
            if let Some(stolen) = sc.pool().try_steal() {
                stolen();
                continue;
            }
            sc.pool()
                .wait_for_activity(generation, Duration::from_millis(25));
        }
    };
    while remaining > 0 {
        // Wait for a result, but keep the pool moving: run queued tasks
        // on this thread so a nested job can't starve a blocked pool.
        // Blocking is event-driven — the pool's activity generation is
        // bumped by every submission and result, and the generation is
        // sampled *before* re-checking the channel, so a result that
        // lands between the check and the wait wakes us immediately
        // rather than being missed. The timeout is only a liveness bound
        // for conditions nothing notifies about (a deadline expiring on
        // an otherwise idle job), not a polling interval.
        let cancel_token = crate::cancel::current();
        let wait_bound = if cancel_token.is_some() {
            Duration::from_millis(25)
        } else {
            Duration::from_millis(500)
        };
        let (partition, attempt, outcome) = loop {
            let generation = sc.pool().activity_generation();
            if let Some(msg) = rx.try_recv() {
                break msg;
            }
            if let Some(token) = &cancel_token {
                if let Some(reason) = token.state() {
                    // Abandon the stage, but only after in-flight tasks
                    // hit their own cancellation checks and unwind.
                    drain_on_cancel(outstanding);
                    return Err(StageError::Err(EngineError::Cancelled {
                        reason: reason.describe().to_string(),
                    }));
                }
            }
            if let Some(stolen) = sc.pool().try_steal() {
                stolen();
                continue;
            }
            sc.pool().wait_for_activity(generation, wait_bound);
        };
        let slot = index[&partition];
        outstanding -= 1;
        match outcome {
            TaskOutcome::Ok(r) => {
                if results[slot].is_none() {
                    results[slot] = Some(r);
                    remaining -= 1;
                }
            }
            TaskOutcome::FetchFailed { shuffle_id, map_id } => {
                // Not a task-level failure: the input is gone. Hand the
                // stage back for map-stage resubmission; straggler sends
                // into the dropped channel are harmless.
                return Err(StageError::Fetch { shuffle_id, map_id });
            }
            TaskOutcome::Cancelled(reason) => {
                // Cooperative cancellation is never retried: the token
                // stays fired, so a rerun would cancel itself again.
                // Sibling tasks unwind on their own checks; wait them out
                // so cancellation implies resources are released.
                drain_on_cancel(outstanding);
                return Err(StageError::Err(EngineError::Cancelled {
                    reason: reason.describe().to_string(),
                }));
            }
            TaskOutcome::Failed(reason) => {
                Metrics::add(&sc.metrics().task_failures, 1);
                if attempt + 1 > max_retries {
                    return Err(StageError::Err(EngineError::TaskFailed {
                        stage: stage_id,
                        partition,
                        reason,
                    }));
                }
                submit(partition, attempt + 1);
                outstanding += 1;
            }
        }
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("task result"))
        .collect())
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

/// Per-job bookkeeping of map-stage resubmissions, bounding recovery.
#[derive(Default)]
struct RecoveryState {
    /// shuffle_id -> resubmissions so far.
    resubmissions: HashMap<usize, usize>,
}

impl RecoveryState {
    /// React to an observed fetch failure: unregister the lost output and
    /// charge one resubmission against the shuffle, failing the job once
    /// `max_stage_retries` is exceeded.
    fn note_fetch_failure(
        &mut self,
        sc: &SparkContext,
        stage_id: usize,
        shuffle_id: usize,
        map_id: usize,
    ) -> Result<()> {
        Metrics::add(&sc.metrics().fetch_failures, 1);
        sc.shuffle_manager().remove_output(shuffle_id, map_id);
        let count = self.resubmissions.entry(shuffle_id).or_insert(0);
        *count += 1;
        let max = sc.conf().max_stage_retries;
        if *count > max {
            return Err(EngineError::StageRetriesExhausted {
                stage: stage_id,
                shuffle_id,
                attempts: max,
            });
        }
        Metrics::add(&sc.metrics().stage_resubmissions, 1);
        Ok(())
    }
}

/// Bring every shuffle in `shuffles` (parents before children) to a
/// complete state, running only missing map partitions. Fetch failures
/// inside a map task restart the sweep from the first shuffle so lost
/// parent output is regenerated before its dependents rerun.
fn ensure_shuffles(
    sc: &SparkContext,
    shuffles: &[Arc<dyn ShuffleDependencyBase>],
    rec: &mut RecoveryState,
) -> Result<()> {
    'restart: loop {
        for sd in shuffles {
            let sid = sd.shuffle_id();
            let num_maps = sd.parent().num_partitions();
            loop {
                let missing = sc.shuffle_manager().missing_maps(sid, num_maps);
                if missing.is_empty() {
                    // Record completion (feeds ever_complete).
                    sc.shuffle_manager().is_complete(sid, num_maps);
                    break;
                }
                if sc.shuffle_manager().ever_complete(sid) {
                    // This shuffle was whole before: we are recomputing
                    // lost output from lineage, not running a fresh stage.
                    Metrics::add(&sc.metrics().map_tasks_recomputed, missing.len() as u64);
                }
                let stage_id = sc.new_stage_id();
                let sd2 = sd.clone();
                match run_tasks(
                    sc,
                    stage_id,
                    missing,
                    Arc::new(move |tc: &TaskContext| sd2.run_map_task(tc.partition, tc)),
                ) {
                    // Re-check completeness: an executor death during the
                    // stage can drop buckets that had already reported.
                    Ok(_) => continue,
                    Err(StageError::Fetch { shuffle_id, map_id }) => {
                        rec.note_fetch_failure(sc, stage_id, shuffle_id, map_id)?;
                        continue 'restart;
                    }
                    Err(StageError::Err(e)) => return Err(e),
                }
            }
        }
        return Ok(());
    }
}

/// Materialize one shuffle's map output — and, recursively, every shuffle
/// upstream of it — without running a result stage. Already-complete
/// shuffles are skipped, so re-materializing is free. This is the
/// primitive adaptive query execution uses: run a stage, observe its real
/// output sizes via [`crate::shuffle::ShuffleManager::map_output_sizes`],
/// then plan the next stage. Lost output is recomputed from lineage under
/// the same bounded-resubmission rules as a full job.
pub fn materialize_shuffle(sc: &SparkContext, dep: Arc<dyn ShuffleDependencyBase>) -> Result<()> {
    let mut stages = collect_shuffle_dependencies(dep.parent());
    stages.push(dep);
    let mut rec = RecoveryState::default();
    ensure_shuffles(sc, &stages, &mut rec)
}

/// Execute a job: ensure every upstream shuffle is materialized, then run
/// `func` over each partition of `rdd` and return the per-partition
/// results in partition order. Fetch failures in the result stage
/// resubmit the owning map stage from lineage and rerun the result stage,
/// bounded by `max_stage_retries` resubmissions per shuffle.
pub fn run_job<T: Data, U: Send + 'static>(
    sc: &SparkContext,
    rdd: Arc<dyn Rdd<Item = T>>,
    func: Arc<dyn Fn(usize, BoxIter<T>) -> U + Send + Sync>,
) -> Result<Vec<U>> {
    Metrics::add(&sc.metrics().jobs_run, 1);

    let shuffles = collect_shuffle_dependencies(crate::shuffle::as_base(rdd.clone()));
    let mut rec = RecoveryState::default();
    loop {
        // Map stages, parents first.
        ensure_shuffles(sc, &shuffles, &mut rec)?;

        // Result stage.
        let stage_id = sc.new_stage_id();
        let n = rdd.num_partitions();
        let rdd2 = rdd.clone();
        let func2 = func.clone();
        match run_tasks(
            sc,
            stage_id,
            (0..n).collect(),
            Arc::new(move |tc: &TaskContext| func2(tc.partition, rdd2.compute(tc.partition, tc))),
        ) {
            Ok(results) => return Ok(results),
            Err(StageError::Fetch { shuffle_id, map_id }) => {
                rec.note_fetch_failure(sc, stage_id, shuffle_id, map_id)?;
            }
            Err(StageError::Err(e)) => return Err(e),
        }
    }
}
