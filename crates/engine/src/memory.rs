//! Central memory accounting for buffering operators, plus disk-backed
//! spill files.
//!
//! A [`MemoryPool`] holds one execution's byte budget. Operators that
//! buffer unbounded input (hash join build sides, hash aggregation
//! tables, sort buffers) register a [`MemoryReservation`] and ask it to
//! grow as their buffers fill; a denied grow is the signal to spill the
//! buffer to a [`SpillFile`] and release the reservation. The pool grants
//! requests fairly: no single consumer may hold more than
//! `budget / active_consumers` (the DataFusion "fair spill" policy), so a
//! query with several buffering operators degrades to spilling instead of
//! letting one operator starve the rest.
//!
//! Accounting is advisory — the pool tracks what consumers *report*, not
//! what the allocator hands out — but the invariant the property tests
//! lean on is hard: granted reservations never sum past the budget, so
//! `peak() <= budget()` always holds.
//!
//! [`SpillFile`]s are length-prefixed block files in the pool's spill
//! directory. They delete themselves on `Drop`, which is also the
//! task-failure cleanup path: a panicking task unwinds through the
//! operator state that owns its spill files, so injected faults (chaos
//! task panics, executor deaths) cannot leak disk. The pool counts
//! files created/deleted so tests can assert exactly that.

use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Byte budget shared by every buffering operator of one execution.
pub struct MemoryPool {
    /// Budget in bytes; `u64::MAX` means unbounded (never deny).
    budget: u64,
    /// Directory spill files are created in (created lazily).
    spill_dir: PathBuf,
    state: Mutex<PoolState>,
    peak: AtomicU64,
    spill_count: AtomicU64,
    spill_bytes: AtomicU64,
    files_created: AtomicU64,
    files_deleted: AtomicU64,
    file_seq: AtomicU64,
}

#[derive(Default)]
struct PoolState {
    used: u64,
    consumers: u64,
}

/// Point-in-time counters of a [`MemoryPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Budget in bytes (`u64::MAX` = unbounded).
    pub budget: u64,
    /// Currently reserved bytes.
    pub used: u64,
    /// High-water mark of reserved bytes.
    pub peak: u64,
    /// Buffers spilled to disk.
    pub spill_count: u64,
    /// Bytes written to spill files.
    pub spill_bytes: u64,
    /// Spill files created.
    pub spill_files_created: u64,
    /// Spill files deleted (on drop; equals created when nothing leaked).
    pub spill_files_deleted: u64,
}

impl MemoryPool {
    /// A pool enforcing `budget` bytes, spilling under `spill_dir`.
    pub fn bounded(budget: u64, spill_dir: PathBuf) -> Arc<MemoryPool> {
        Arc::new(MemoryPool {
            budget,
            spill_dir,
            state: Mutex::new(PoolState::default()),
            peak: AtomicU64::new(0),
            spill_count: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            files_created: AtomicU64::new(0),
            files_deleted: AtomicU64::new(0),
            file_seq: AtomicU64::new(0),
        })
    }

    /// A pool that never denies growth (the in-memory fast path).
    pub fn unbounded() -> Arc<MemoryPool> {
        MemoryPool::bounded(u64::MAX, std::env::temp_dir())
    }

    /// Does this pool enforce a finite budget?
    pub fn is_bounded(&self) -> bool {
        self.budget != u64::MAX
    }

    /// The byte budget (`u64::MAX` = unbounded).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Register a new consumer. Its reservation starts at zero bytes and
    /// frees itself (and deregisters) on drop.
    pub fn register(self: &Arc<MemoryPool>) -> MemoryReservation {
        self.state.lock().consumers += 1;
        MemoryReservation {
            pool: self.clone(),
            size: 0,
        }
    }

    /// Grant `delta` more bytes to a consumer currently holding
    /// `current`, or deny. Denial means: spill.
    fn try_grow_inner(&self, current: u64, delta: u64) -> bool {
        if !self.is_bounded() {
            return true;
        }
        let mut st = self.state.lock();
        let share = self.budget / st.consumers.max(1);
        if st.used.saturating_add(delta) > self.budget || current.saturating_add(delta) > share {
            return false;
        }
        st.used += delta;
        self.peak.fetch_max(st.used, Ordering::Relaxed);
        true
    }

    fn shrink_inner(&self, delta: u64) {
        if !self.is_bounded() {
            return;
        }
        let mut st = self.state.lock();
        st.used = st.used.saturating_sub(delta);
    }

    fn deregister(&self, size: u64) {
        if self.is_bounded() {
            let mut st = self.state.lock();
            st.used = st.used.saturating_sub(size);
            st.consumers = st.consumers.saturating_sub(1);
        } else {
            self.state.lock().consumers -= 1;
        }
    }

    /// Record one buffer spilled as `bytes` on disk.
    pub fn record_spill(&self, bytes: u64) {
        self.spill_count.fetch_add(1, Ordering::Relaxed);
        self.spill_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Create an empty spill file in the pool's spill directory. The file
    /// removes itself from disk when dropped.
    pub fn spill_file(self: &Arc<MemoryPool>) -> std::io::Result<SpillFile> {
        std::fs::create_dir_all(&self.spill_dir)?;
        let seq = self.file_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.spill_dir.join(format!(
            "spill-{}-{:p}-{}.bin",
            std::process::id(),
            self as &MemoryPool as *const MemoryPool,
            seq
        ));
        let file = File::create(&path)?;
        self.files_created.fetch_add(1, Ordering::Relaxed);
        Ok(SpillFile {
            path,
            file: Some(file),
            bytes: 0,
            pool: self.clone(),
        })
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> MemoryStats {
        let st = self.state.lock();
        MemoryStats {
            budget: self.budget,
            used: st.used,
            peak: self.peak.load(Ordering::Relaxed),
            spill_count: self.spill_count.load(Ordering::Relaxed),
            spill_bytes: self.spill_bytes.load(Ordering::Relaxed),
            spill_files_created: self.files_created.load(Ordering::Relaxed),
            spill_files_deleted: self.files_deleted.load(Ordering::Relaxed),
        }
    }
}

/// One consumer's slice of a [`MemoryPool`]. Frees itself on drop.
pub struct MemoryReservation {
    pool: Arc<MemoryPool>,
    size: u64,
}

impl MemoryReservation {
    /// Ask for `delta` more bytes. `false` means the pool is full (or
    /// this consumer is past its fair share) — time to spill.
    pub fn try_grow(&mut self, delta: u64) -> bool {
        if self.pool.try_grow_inner(self.size, delta) {
            self.size += delta;
            true
        } else {
            false
        }
    }

    /// Return `delta` bytes to the pool (saturating at zero).
    pub fn shrink(&mut self, delta: u64) {
        let delta = delta.min(self.size);
        self.size -= delta;
        self.pool.shrink_inner(delta);
    }

    /// Return everything to the pool.
    pub fn free(&mut self) {
        let size = self.size;
        self.shrink(size);
    }

    /// Bytes currently held.
    pub fn size(&self) -> u64 {
        self.size
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.pool.deregister(self.size);
        self.size = 0;
    }
}

/// A disk file of length-prefixed blocks, deleted on drop.
///
/// Writers call [`SpillFile::append`] with encoded blocks; readers get
/// them back in order via [`SpillFile::blocks`]. Block encoding is the
/// caller's business (the SQL layer uses the colfile column codec).
pub struct SpillFile {
    path: PathBuf,
    /// Write handle; dropped (flushed) on the first read.
    file: Option<File>,
    bytes: u64,
    pool: Arc<MemoryPool>,
}

impl SpillFile {
    /// Append one block.
    pub fn append(&mut self, block: &[u8]) -> std::io::Result<()> {
        let f = self
            .file
            .as_mut()
            .ok_or_else(|| std::io::Error::other("spill file already sealed for reading"))?;
        f.write_all(&(block.len() as u64).to_le_bytes())?;
        f.write_all(block)?;
        self.bytes += 8 + block.len() as u64;
        Ok(())
    }

    /// Total bytes written (including block length prefixes).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Seal the file and iterate its blocks in write order.
    pub fn blocks(&mut self) -> std::io::Result<SpillBlockIter> {
        if let Some(f) = self.file.take() {
            f.sync_all().ok();
        }
        Ok(SpillBlockIter {
            reader: BufReader::new(File::open(&self.path)?),
        })
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        self.file.take();
        if std::fs::remove_file(&self.path).is_ok() {
            self.pool.files_deleted.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Streaming reader over a [`SpillFile`]'s blocks.
pub struct SpillBlockIter {
    reader: BufReader<File>,
}

impl Iterator for SpillBlockIter {
    type Item = std::io::Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut len = [0u8; 8];
        match self.reader.read_exact(&mut len) {
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return None,
            Err(e) => return Some(Err(e)),
            Ok(()) => {}
        }
        let mut block = vec![0u8; u64::from_le_bytes(len) as usize];
        match self.reader.read_exact(&mut block) {
            Err(e) => Some(Err(e)),
            Ok(()) => Some(Ok(block)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_pool_always_grants() {
        let pool = MemoryPool::unbounded();
        let mut r = pool.register();
        assert!(r.try_grow(u64::MAX / 2));
        assert!(!pool.is_bounded());
        drop(r);
    }

    #[test]
    fn bounded_pool_enforces_budget_and_fair_share() {
        let pool = MemoryPool::bounded(1000, std::env::temp_dir());
        let mut a = pool.register();
        assert!(a.try_grow(900));
        assert!(!a.try_grow(200), "over budget");
        // A second consumer halves the fair share; `a` is already past it.
        let mut b = pool.register();
        assert!(!a.try_grow(1));
        assert!(!b.try_grow(200), "pool has only 100 left");
        assert!(b.try_grow(100));
        assert_eq!(pool.stats().used, 1000);
        assert_eq!(pool.stats().peak, 1000);
        a.shrink(500);
        assert_eq!(pool.stats().used, 500);
        // Fair share (500 each) still caps `a` at its current 400 + 100.
        assert!(a.try_grow(100));
        assert!(!a.try_grow(1));
        drop(a);
        drop(b);
        assert_eq!(pool.stats().used, 0);
        assert_eq!(pool.stats().peak, 1000);
    }

    #[test]
    fn reservation_drop_frees_and_deregisters() {
        let pool = MemoryPool::bounded(100, std::env::temp_dir());
        {
            let mut a = pool.register();
            assert!(a.try_grow(60));
            // Registered second consumer shrinks a's share but not its holdings.
            let b = pool.register();
            drop(b);
        }
        assert_eq!(pool.stats().used, 0);
        let mut c = pool.register();
        assert!(c.try_grow(100), "full budget available again");
    }

    #[test]
    fn spill_file_roundtrip_and_self_delete() {
        let dir = std::env::temp_dir().join(format!("engine-mem-{}", std::process::id()));
        let pool = MemoryPool::bounded(10, dir.clone());
        let path;
        {
            let mut f = pool.spill_file().unwrap();
            f.append(b"hello").unwrap();
            f.append(b"").unwrap();
            f.append(b"world!").unwrap();
            pool.record_spill(f.bytes_written());
            let blocks: Vec<Vec<u8>> = f.blocks().unwrap().map(|b| b.unwrap()).collect();
            assert_eq!(blocks, vec![b"hello".to_vec(), vec![], b"world!".to_vec()]);
            path = dir.clone();
            assert_eq!(pool.stats().spill_files_created, 1);
            assert_eq!(pool.stats().spill_files_deleted, 0);
            assert_eq!(pool.stats().spill_count, 1);
            assert!(pool.stats().spill_bytes > 0);
        }
        let s = pool.stats();
        assert_eq!(s.spill_files_created, s.spill_files_deleted);
        std::fs::remove_dir_all(path).ok();
    }
}
