//! Block cache manager and the caching RDD wrapper.
//!
//! `RddRef::cache()` wraps an RDD in a [`CachedRdd`]; the first job to
//! touch a partition computes and stores it, later jobs read the stored
//! block. Evicting blocks (or calling [`CacheManager::clear`]) forces
//! lineage recomputation — the fault-tolerance path the paper's RDD model
//! relies on (§2.1).

use crate::context::SparkContext;
use crate::metrics::Metrics;
use crate::rdd::{BoxIter, Data, Dependency, Rdd, RddBase, RddId, TaskContext};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

type Block = Arc<dyn Any + Send + Sync>;

/// Stores computed partitions keyed by `(rdd id, partition)`.
#[derive(Default)]
pub struct CacheManager {
    blocks: Mutex<HashMap<(RddId, usize), Block>>,
}

impl CacheManager {
    /// Fetch a cached partition.
    pub fn get(&self, rdd: RddId, partition: usize) -> Option<Block> {
        self.blocks.lock().get(&(rdd, partition)).cloned()
    }

    /// Store a computed partition.
    pub fn put(&self, rdd: RddId, partition: usize, block: Block) {
        self.blocks.lock().insert((rdd, partition), block);
    }

    /// Drop a single partition (simulates losing an executor's block).
    pub fn evict(&self, rdd: RddId, partition: usize) -> bool {
        self.blocks.lock().remove(&(rdd, partition)).is_some()
    }

    /// Drop every block of one RDD.
    pub fn evict_rdd(&self, rdd: RddId) {
        self.blocks.lock().retain(|(id, _), _| *id != rdd);
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.blocks.lock().clear();
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.blocks.lock().len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.lock().is_empty()
    }
}

/// An RDD whose partitions are served from the cache when available.
pub struct CachedRdd<T: Data> {
    id: RddId,
    parent: Arc<dyn Rdd<Item = T>>,
    ctx: SparkContext,
}

impl<T: Data> CachedRdd<T> {
    pub(crate) fn new(parent: Arc<dyn Rdd<Item = T>>) -> Self {
        let ctx = parent.context();
        CachedRdd { id: ctx.new_rdd_id(), parent, ctx }
    }

    /// The id under which blocks are stored (for eviction in tests).
    pub fn cache_id(&self) -> RddId {
        self.id
    }
}

impl<T: Data> RddBase for CachedRdd<T> {
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Narrow(crate::shuffle::as_base(self.parent.clone()))]
    }
    fn context(&self) -> SparkContext {
        self.ctx.clone()
    }
    fn name(&self) -> &'static str {
        "cache"
    }
}

impl<T: Data> Rdd for CachedRdd<T> {
    type Item = T;

    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<T> {
        let cm = self.ctx.cache_manager();
        if let Some(block) = cm.get(self.id, split) {
            Metrics::add(&self.ctx.metrics().cache_hits, 1);
            let data = block.downcast_ref::<Vec<T>>().expect("cache block type").clone();
            return Box::new(data.into_iter());
        }
        Metrics::add(&self.ctx.metrics().cache_misses, 1);
        let data: Vec<T> = self.parent.compute(split, tc).collect();
        cm.put(self.id, split, Arc::new(data.clone()));
        Box::new(data.into_iter())
    }
}
