//! Block cache manager and the caching RDD wrapper.
//!
//! `RddRef::cache()` wraps an RDD in a [`CachedRdd`]; the first job to
//! touch a partition computes and stores it, later jobs read the stored
//! block. Evicting blocks — explicitly, via [`CacheManager::clear`], or
//! because the executor holding them died — forces lineage
//! recomputation on next access: the fault-tolerance path the paper's
//! RDD model relies on (§2.1). Blocks remember which executor produced
//! them so [`crate::SparkContext::lose_executor`] can drop exactly that
//! executor's blocks, and losses are tracked so recomputation after a
//! failure is distinguishable (in metrics) from a first-time fill.

use crate::context::SparkContext;
use crate::metrics::Metrics;
use crate::rdd::{BoxIter, Data, Dependency, Rdd, RddBase, RddId, TaskContext};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

type Block = Arc<dyn Any + Send + Sync>;

/// Owner id recorded for blocks stored from the driver thread.
pub const DRIVER_OWNER: usize = usize::MAX;

/// Which block to sacrifice when the cache exceeds its byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used sized block.
    #[default]
    Lru,
    /// Evict the block with the lowest `(hits + 1) / bytes` density —
    /// cheap-to-keep, frequently-read blocks survive; large cold ones go
    /// first (the reference-count/cost-aware family of Yang et al.,
    /// PAPERS.md). Ties fall back to LRU order.
    CostAware,
}

impl EvictionPolicy {
    /// Parse a conf string ("lru" / "cost"), defaulting to LRU.
    pub fn parse(s: &str) -> EvictionPolicy {
        match s.to_ascii_lowercase().as_str() {
            "cost" | "costaware" | "cost-aware" => EvictionPolicy::CostAware,
            _ => EvictionPolicy::Lru,
        }
    }
}

/// Accounting metadata kept for blocks stored with a byte size.
struct BlockMeta {
    bytes: u64,
    /// Logical clock of the last get (or the put, if never read).
    last_access: u64,
    hits: u64,
}

/// Budget and eviction counters, readable at any time via
/// [`CacheManager::budget_stats`]. Query-level observability diffs two
/// snapshots, so counters are cumulative for the manager's lifetime.
#[derive(Debug, Clone, Copy)]
pub struct CacheBudgetStats {
    /// Byte budget, `None` when unbounded.
    pub budget: Option<u64>,
    /// Bytes currently held by sized blocks.
    pub used_bytes: u64,
    /// Sized blocks currently resident.
    pub resident_blocks: usize,
    /// Blocks evicted to stay within budget (not failure drops).
    pub evictions: u64,
    /// Bytes freed by budget evictions.
    pub evicted_bytes: u64,
}

#[derive(Default)]
struct CacheState {
    /// (rdd id, partition) -> (block, producing executor).
    blocks: HashMap<(RddId, usize), (Block, usize)>,
    /// Keys whose block was dropped after having been stored — consulted
    /// (and consumed) by readers to count failure-driven recomputation.
    /// Budget evictions deliberately do *not* land here: refilling an
    /// evicted block is a cold miss, not failure recovery.
    lost: HashSet<(RddId, usize)>,
    /// Size/recency/frequency accounting for blocks stored via
    /// [`CacheManager::put_sized`]. Unsized blocks are exempt from the
    /// budget (their size is unknown) and never evicted by it.
    meta: HashMap<(RddId, usize), BlockMeta>,
    clock: u64,
    used_bytes: u64,
    budget: Option<u64>,
    policy: EvictionPolicy,
    evictions: u64,
    evicted_bytes: u64,
}

impl CacheState {
    fn forget(&mut self, key: &(RddId, usize)) {
        if let Some(meta) = self.meta.remove(key) {
            self.used_bytes -= meta.bytes;
        }
    }

    /// Evict sized blocks (never `keep`) until `used_bytes` fits the
    /// budget or no candidates remain.
    fn enforce_budget(&mut self, keep: Option<(RddId, usize)>) {
        let Some(budget) = self.budget else { return };
        while self.used_bytes > budget {
            let victim = self
                .meta
                .iter()
                .filter(|(k, _)| Some(**k) != keep)
                .min_by(|(_, a), (_, b)| match self.policy {
                    EvictionPolicy::Lru => a.last_access.cmp(&b.last_access),
                    EvictionPolicy::CostAware => {
                        let da = (a.hits + 1) as f64 / a.bytes.max(1) as f64;
                        let db = (b.hits + 1) as f64 / b.bytes.max(1) as f64;
                        da.total_cmp(&db)
                            .then_with(|| a.last_access.cmp(&b.last_access))
                    }
                })
                .map(|(k, _)| *k);
            let Some(key) = victim else { break };
            self.blocks.remove(&key);
            let meta = self.meta.remove(&key).expect("victim has meta");
            self.used_bytes -= meta.bytes;
            self.evictions += 1;
            self.evicted_bytes += meta.bytes;
        }
    }
}

/// Stores computed partitions keyed by `(rdd id, partition)`.
#[derive(Default)]
pub struct CacheManager {
    state: Mutex<CacheState>,
}

impl CacheManager {
    /// Fetch a cached partition, updating recency/frequency accounting.
    pub fn get(&self, rdd: RddId, partition: usize) -> Option<Block> {
        let mut st = self.state.lock();
        st.clock += 1;
        let clock = st.clock;
        if let Some(meta) = st.meta.get_mut(&(rdd, partition)) {
            meta.last_access = clock;
            meta.hits += 1;
        }
        st.blocks.get(&(rdd, partition)).map(|(b, _)| b.clone())
    }

    /// Set (or clear) the byte budget and eviction policy. Shrinking the
    /// budget below current usage evicts immediately.
    pub fn set_budget(&self, budget: Option<u64>, policy: EvictionPolicy) {
        let mut st = self.state.lock();
        st.budget = budget;
        st.policy = policy;
        st.enforce_budget(None);
    }

    /// Current budget usage and cumulative eviction counters.
    pub fn budget_stats(&self) -> CacheBudgetStats {
        let st = self.state.lock();
        CacheBudgetStats {
            budget: st.budget,
            used_bytes: st.used_bytes,
            resident_blocks: st.meta.len(),
            evictions: st.evictions,
            evicted_bytes: st.evicted_bytes,
        }
    }

    /// Store a computed partition, owned by the calling thread's executor
    /// (the driver when called outside the pool).
    pub fn put(&self, rdd: RddId, partition: usize, block: Block) {
        let owner = crate::pool::current_executor().unwrap_or(DRIVER_OWNER);
        self.put_owned(rdd, partition, block, owner);
    }

    /// Store a computed partition under an explicit owner. Callers that
    /// materialize many partitions from one driver-side job use this to
    /// spread ownership across executors, so simulated executor loss
    /// exercises cached-block recovery.
    pub fn put_owned(&self, rdd: RddId, partition: usize, block: Block, owner: usize) {
        let mut st = self.state.lock();
        st.blocks.insert((rdd, partition), (block, owner));
        st.forget(&(rdd, partition));
        st.lost.remove(&(rdd, partition));
    }

    /// Store a computed partition with a known byte size, making it
    /// subject to the cache budget. The just-inserted block is never its
    /// own victim, so a single block larger than the budget still caches
    /// (and evicts everything else sized) rather than thrashing forever.
    pub fn put_sized(&self, rdd: RddId, partition: usize, block: Block, owner: usize, bytes: u64) {
        let mut st = self.state.lock();
        st.blocks.insert((rdd, partition), (block, owner));
        st.lost.remove(&(rdd, partition));
        st.forget(&(rdd, partition));
        st.clock += 1;
        let clock = st.clock;
        st.meta.insert(
            (rdd, partition),
            BlockMeta {
                bytes,
                last_access: clock,
                hits: 0,
            },
        );
        st.used_bytes += bytes;
        st.enforce_budget(Some((rdd, partition)));
    }

    /// Drop a single partition (simulates losing an executor's block).
    pub fn evict(&self, rdd: RddId, partition: usize) -> bool {
        let mut st = self.state.lock();
        let had = st.blocks.remove(&(rdd, partition)).is_some();
        if had {
            st.lost.insert((rdd, partition));
            st.forget(&(rdd, partition));
        }
        had
    }

    /// Drop every block of one RDD.
    pub fn evict_rdd(&self, rdd: RddId) {
        let mut st = self.state.lock();
        let keys: Vec<_> = st
            .blocks
            .keys()
            .filter(|(id, _)| *id == rdd)
            .copied()
            .collect();
        for k in keys {
            st.blocks.remove(&k);
            st.lost.insert(k);
            st.forget(&k);
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        let keys: Vec<_> = st.blocks.keys().copied().collect();
        for k in keys {
            st.blocks.remove(&k);
            st.lost.insert(k);
            st.forget(&k);
        }
    }

    /// Drop every block the given executor produced — the cache half of
    /// losing an executor. Returns how many blocks were dropped.
    pub fn drop_executor(&self, executor: usize) -> usize {
        let mut st = self.state.lock();
        let keys: Vec<_> = st
            .blocks
            .iter()
            .filter(|(_, (_, owner))| *owner == executor)
            .map(|(k, _)| *k)
            .collect();
        for k in &keys {
            st.blocks.remove(k);
            st.lost.insert(*k);
            st.forget(k);
        }
        keys.len()
    }

    /// True (once) if this partition's block was lost after being cached.
    /// Readers call this on a cache miss to tell recovery recomputation
    /// apart from a cold first fill.
    pub fn take_lost(&self, rdd: RddId, partition: usize) -> bool {
        self.state.lock().lost.remove(&(rdd, partition))
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.state.lock().blocks.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.state.lock().blocks.is_empty()
    }
}

/// An RDD whose partitions are served from the cache when available.
pub struct CachedRdd<T: Data> {
    id: RddId,
    parent: Arc<dyn Rdd<Item = T>>,
    ctx: SparkContext,
}

impl<T: Data> CachedRdd<T> {
    pub(crate) fn new(parent: Arc<dyn Rdd<Item = T>>) -> Self {
        let ctx = parent.context();
        CachedRdd {
            id: ctx.new_rdd_id(),
            parent,
            ctx,
        }
    }

    /// The id under which blocks are stored (for eviction in tests).
    pub fn cache_id(&self) -> RddId {
        self.id
    }
}

impl<T: Data> RddBase for CachedRdd<T> {
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Narrow(crate::shuffle::as_base(
            self.parent.clone(),
        ))]
    }
    fn context(&self) -> SparkContext {
        self.ctx.clone()
    }
    fn name(&self) -> &'static str {
        "cache"
    }
}

impl<T: Data> Rdd for CachedRdd<T> {
    type Item = T;

    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<T> {
        let cm = self.ctx.cache_manager();
        if let Some(block) = cm.get(self.id, split) {
            Metrics::add(&self.ctx.metrics().cache_hits, 1);
            let data = block
                .downcast_ref::<Vec<T>>()
                .expect("cache block type")
                .clone();
            return Box::new(data.into_iter());
        }
        Metrics::add(&self.ctx.metrics().cache_misses, 1);
        if cm.take_lost(self.id, split) {
            Metrics::add(&self.ctx.metrics().cache_recomputes, 1);
        }
        let data: Vec<T> = self.parent.compute(split, tc).collect();
        cm.put(self.id, split, Arc::new(data.clone()));
        Box::new(data.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_executor_removes_only_its_blocks() {
        let cm = CacheManager::default();
        cm.put_owned(1, 0, Arc::new(vec![1i64]), 0);
        cm.put_owned(1, 1, Arc::new(vec![2i64]), 1);
        cm.put_owned(2, 0, Arc::new(vec![3i64]), 0);
        assert_eq!(cm.drop_executor(0), 2);
        assert!(cm.get(1, 0).is_none());
        assert!(cm.get(2, 0).is_none());
        assert!(cm.get(1, 1).is_some());
        // Lost markers fire once per partition.
        assert!(cm.take_lost(1, 0));
        assert!(!cm.take_lost(1, 0));
        assert!(!cm.take_lost(1, 1));
    }

    #[test]
    fn lru_budget_evicts_least_recently_used() {
        let cm = CacheManager::default();
        cm.set_budget(Some(100), EvictionPolicy::Lru);
        cm.put_sized(1, 0, Arc::new(vec![0u8; 40]), 0, 40);
        cm.put_sized(1, 1, Arc::new(vec![0u8; 40]), 0, 40);
        // Touch partition 0 so partition 1 becomes the LRU victim.
        assert!(cm.get(1, 0).is_some());
        cm.put_sized(1, 2, Arc::new(vec![0u8; 40]), 0, 40);
        assert!(cm.get(1, 1).is_none(), "LRU victim evicted");
        assert!(cm.get(1, 0).is_some());
        assert!(cm.get(1, 2).is_some());
        let stats = cm.budget_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.evicted_bytes, 40);
        assert_eq!(stats.used_bytes, 80);
        // Budget evictions are not failures: no recompute marker.
        assert!(!cm.take_lost(1, 1));
    }

    #[test]
    fn cost_aware_keeps_hot_dense_blocks() {
        let cm = CacheManager::default();
        cm.set_budget(Some(100), EvictionPolicy::CostAware);
        // Big cold block vs small hot block.
        cm.put_sized(1, 0, Arc::new(vec![0u8; 60]), 0, 60);
        cm.put_sized(1, 1, Arc::new(vec![0u8; 20]), 0, 20);
        for _ in 0..5 {
            assert!(cm.get(1, 1).is_some());
        }
        // Recency now favors partition 1 *and* so does density; but also
        // touch partition 0 last so pure LRU would evict partition 1.
        assert!(cm.get(1, 0).is_some());
        cm.put_sized(1, 2, Arc::new(vec![0u8; 60]), 0, 60);
        assert!(cm.get(1, 0).is_none(), "cold low-density block evicted");
        assert!(cm.get(1, 1).is_some(), "hot dense block survives");
    }

    #[test]
    fn oversized_block_still_caches_without_thrashing() {
        let cm = CacheManager::default();
        cm.set_budget(Some(10), EvictionPolicy::Lru);
        cm.put_sized(3, 0, Arc::new(vec![0u8; 64]), 0, 64);
        assert!(cm.get(3, 0).is_some(), "own insert is never its own victim");
        // The next sized insert evicts it.
        cm.put_sized(3, 1, Arc::new(vec![0u8; 8]), 0, 8);
        assert!(cm.get(3, 0).is_none());
        assert!(cm.get(3, 1).is_some());
    }

    #[test]
    fn shrinking_budget_evicts_immediately() {
        let cm = CacheManager::default();
        cm.put_sized(5, 0, Arc::new(vec![0u8; 32]), 0, 32);
        cm.put_sized(5, 1, Arc::new(vec![0u8; 32]), 0, 32);
        assert_eq!(cm.budget_stats().used_bytes, 64);
        cm.set_budget(Some(40), EvictionPolicy::Lru);
        let stats = cm.budget_stats();
        assert!(stats.used_bytes <= 40);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn unsized_blocks_are_exempt_from_budget() {
        let cm = CacheManager::default();
        cm.set_budget(Some(10), EvictionPolicy::Lru);
        cm.put_owned(9, 0, Arc::new(vec![0u8; 1000]), 0);
        cm.put_sized(9, 1, Arc::new(vec![0u8; 8]), 0, 8);
        assert!(cm.get(9, 0).is_some(), "unsized block never evicted");
        assert_eq!(cm.budget_stats().used_bytes, 8);
    }

    #[test]
    fn refill_clears_lost_marker() {
        let cm = CacheManager::default();
        cm.put_owned(7, 0, Arc::new(vec![1i64]), 0);
        assert!(cm.evict(7, 0));
        cm.put_owned(7, 0, Arc::new(vec![1i64]), 1);
        assert!(!cm.take_lost(7, 0), "refilled block is no longer lost");
    }
}
