//! Block cache manager and the caching RDD wrapper.
//!
//! `RddRef::cache()` wraps an RDD in a [`CachedRdd`]; the first job to
//! touch a partition computes and stores it, later jobs read the stored
//! block. Evicting blocks — explicitly, via [`CacheManager::clear`], or
//! because the executor holding them died — forces lineage
//! recomputation on next access: the fault-tolerance path the paper's
//! RDD model relies on (§2.1). Blocks remember which executor produced
//! them so [`crate::SparkContext::lose_executor`] can drop exactly that
//! executor's blocks, and losses are tracked so recomputation after a
//! failure is distinguishable (in metrics) from a first-time fill.

use crate::context::SparkContext;
use crate::metrics::Metrics;
use crate::rdd::{BoxIter, Data, Dependency, Rdd, RddBase, RddId, TaskContext};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

type Block = Arc<dyn Any + Send + Sync>;

/// Owner id recorded for blocks stored from the driver thread.
pub const DRIVER_OWNER: usize = usize::MAX;

#[derive(Default)]
struct CacheState {
    /// (rdd id, partition) -> (block, producing executor).
    blocks: HashMap<(RddId, usize), (Block, usize)>,
    /// Keys whose block was dropped after having been stored — consulted
    /// (and consumed) by readers to count failure-driven recomputation.
    lost: HashSet<(RddId, usize)>,
}

/// Stores computed partitions keyed by `(rdd id, partition)`.
#[derive(Default)]
pub struct CacheManager {
    state: Mutex<CacheState>,
}

impl CacheManager {
    /// Fetch a cached partition.
    pub fn get(&self, rdd: RddId, partition: usize) -> Option<Block> {
        self.state
            .lock()
            .blocks
            .get(&(rdd, partition))
            .map(|(b, _)| b.clone())
    }

    /// Store a computed partition, owned by the calling thread's executor
    /// (the driver when called outside the pool).
    pub fn put(&self, rdd: RddId, partition: usize, block: Block) {
        let owner = crate::pool::current_executor().unwrap_or(DRIVER_OWNER);
        self.put_owned(rdd, partition, block, owner);
    }

    /// Store a computed partition under an explicit owner. Callers that
    /// materialize many partitions from one driver-side job use this to
    /// spread ownership across executors, so simulated executor loss
    /// exercises cached-block recovery.
    pub fn put_owned(&self, rdd: RddId, partition: usize, block: Block, owner: usize) {
        let mut st = self.state.lock();
        st.blocks.insert((rdd, partition), (block, owner));
        st.lost.remove(&(rdd, partition));
    }

    /// Drop a single partition (simulates losing an executor's block).
    pub fn evict(&self, rdd: RddId, partition: usize) -> bool {
        let mut st = self.state.lock();
        let had = st.blocks.remove(&(rdd, partition)).is_some();
        if had {
            st.lost.insert((rdd, partition));
        }
        had
    }

    /// Drop every block of one RDD.
    pub fn evict_rdd(&self, rdd: RddId) {
        let mut st = self.state.lock();
        let keys: Vec<_> = st
            .blocks
            .keys()
            .filter(|(id, _)| *id == rdd)
            .copied()
            .collect();
        for k in keys {
            st.blocks.remove(&k);
            st.lost.insert(k);
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        let keys: Vec<_> = st.blocks.keys().copied().collect();
        for k in keys {
            st.blocks.remove(&k);
            st.lost.insert(k);
        }
    }

    /// Drop every block the given executor produced — the cache half of
    /// losing an executor. Returns how many blocks were dropped.
    pub fn drop_executor(&self, executor: usize) -> usize {
        let mut st = self.state.lock();
        let keys: Vec<_> = st
            .blocks
            .iter()
            .filter(|(_, (_, owner))| *owner == executor)
            .map(|(k, _)| *k)
            .collect();
        for k in &keys {
            st.blocks.remove(k);
            st.lost.insert(*k);
        }
        keys.len()
    }

    /// True (once) if this partition's block was lost after being cached.
    /// Readers call this on a cache miss to tell recovery recomputation
    /// apart from a cold first fill.
    pub fn take_lost(&self, rdd: RddId, partition: usize) -> bool {
        self.state.lock().lost.remove(&(rdd, partition))
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.state.lock().blocks.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.state.lock().blocks.is_empty()
    }
}

/// An RDD whose partitions are served from the cache when available.
pub struct CachedRdd<T: Data> {
    id: RddId,
    parent: Arc<dyn Rdd<Item = T>>,
    ctx: SparkContext,
}

impl<T: Data> CachedRdd<T> {
    pub(crate) fn new(parent: Arc<dyn Rdd<Item = T>>) -> Self {
        let ctx = parent.context();
        CachedRdd {
            id: ctx.new_rdd_id(),
            parent,
            ctx,
        }
    }

    /// The id under which blocks are stored (for eviction in tests).
    pub fn cache_id(&self) -> RddId {
        self.id
    }
}

impl<T: Data> RddBase for CachedRdd<T> {
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Narrow(crate::shuffle::as_base(
            self.parent.clone(),
        ))]
    }
    fn context(&self) -> SparkContext {
        self.ctx.clone()
    }
    fn name(&self) -> &'static str {
        "cache"
    }
}

impl<T: Data> Rdd for CachedRdd<T> {
    type Item = T;

    fn compute(&self, split: usize, tc: &TaskContext) -> BoxIter<T> {
        let cm = self.ctx.cache_manager();
        if let Some(block) = cm.get(self.id, split) {
            Metrics::add(&self.ctx.metrics().cache_hits, 1);
            let data = block
                .downcast_ref::<Vec<T>>()
                .expect("cache block type")
                .clone();
            return Box::new(data.into_iter());
        }
        Metrics::add(&self.ctx.metrics().cache_misses, 1);
        if cm.take_lost(self.id, split) {
            Metrics::add(&self.ctx.metrics().cache_recomputes, 1);
        }
        let data: Vec<T> = self.parent.compute(split, tc).collect();
        cm.put(self.id, split, Arc::new(data.clone()));
        Box::new(data.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_executor_removes_only_its_blocks() {
        let cm = CacheManager::default();
        cm.put_owned(1, 0, Arc::new(vec![1i64]), 0);
        cm.put_owned(1, 1, Arc::new(vec![2i64]), 1);
        cm.put_owned(2, 0, Arc::new(vec![3i64]), 0);
        assert_eq!(cm.drop_executor(0), 2);
        assert!(cm.get(1, 0).is_none());
        assert!(cm.get(2, 0).is_none());
        assert!(cm.get(1, 1).is_some());
        // Lost markers fire once per partition.
        assert!(cm.take_lost(1, 0));
        assert!(!cm.take_lost(1, 0));
        assert!(!cm.take_lost(1, 1));
    }

    #[test]
    fn refill_clears_lost_marker() {
        let cm = CacheManager::default();
        cm.put_owned(7, 0, Arc::new(vec![1i64]), 0);
        assert!(cm.evict(7, 0));
        cm.put_owned(7, 0, Arc::new(vec![1i64]), 1);
        assert!(!cm.take_lost(7, 0), "refilled block is no longer lost");
    }
}
