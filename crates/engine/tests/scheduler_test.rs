//! DAG scheduler structure tests: stage construction, topological
//! ordering of shuffle dependencies, stage skipping, and metrics.

use engine::metrics::Metrics;
use engine::scheduler::collect_shuffle_dependencies;
use engine::{PairRdd, SparkContext};

#[test]
fn narrow_only_jobs_have_no_shuffle_stages() {
    let sc = SparkContext::new(2);
    let rdd = sc.parallelize((0..100i64).collect(), 4).map(|x| x + 1).filter(|x| x % 2 == 0);
    let deps = collect_shuffle_dependencies(rdd.as_inner());
    assert!(deps.is_empty());
    rdd.count();
    // One job, one (result) stage.
    assert_eq!(Metrics::get(&sc.metrics().jobs_run), 1);
    assert_eq!(Metrics::get(&sc.metrics().stages_run), 1);
}

#[test]
fn chained_shuffles_order_parents_first() {
    let sc = SparkContext::new(2);
    // Two chained shuffles: reduce_by_key then a re-key + reduce again.
    let stage1 = sc
        .parallelize((0..100i64).map(|i| (i % 10, i)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 4);
    let stage2 = stage1.map(|(k, v)| (k % 2, v)).reduce_by_key(|a, b| a + b, 2);
    let deps = collect_shuffle_dependencies(stage2.as_inner());
    assert_eq!(deps.len(), 2);
    // Parent (first shuffle) must come before the dependent one, and the
    // parent's map-side RDD must not itself depend on the later shuffle.
    assert!(deps[0].shuffle_id() < deps[1].shuffle_id());
    let parent_deps = collect_shuffle_dependencies(deps[0].parent());
    assert!(parent_deps.is_empty());
    let child_deps = collect_shuffle_dependencies(deps[1].parent());
    assert_eq!(child_deps.len(), 1);
}

#[test]
fn diamond_lineage_runs_each_shuffle_once() {
    let sc = SparkContext::new(2);
    let base = sc
        .parallelize((0..100i64).map(|i| (i % 5, i)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 4);
    // Diamond: two branches from the same shuffled RDD, joined by union.
    let a = base.map(|(k, v)| (k, v + 1));
    let b = base.map(|(k, v)| (k, v - 1));
    let merged = a.union(&b);
    let deps = collect_shuffle_dependencies(merged.as_inner());
    assert_eq!(deps.len(), 1, "shared shuffle dependency must be deduplicated");
    assert_eq!(merged.count(), 10);
    // Map stage ran exactly once: 4 map tasks (+ 2×4 narrow result reads).
    assert_eq!(Metrics::get(&sc.metrics().stages_run), 2);
}

#[test]
fn stage_skipping_across_jobs_counts_stages() {
    let sc = SparkContext::new(2);
    let rdd = sc
        .parallelize((0..100i64).map(|i| (i % 4, i)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 2);
    rdd.count(); // job 1: map stage + result stage
    let after_first = Metrics::get(&sc.metrics().stages_run);
    assert_eq!(after_first, 2);
    rdd.count(); // job 2: result stage only (map output reused)
    assert_eq!(Metrics::get(&sc.metrics().stages_run), 3);
    // Invalidate, forcing the map stage to rerun.
    sc.shuffle_manager().invalidate_all();
    rdd.count();
    assert_eq!(Metrics::get(&sc.metrics().stages_run), 5);
}

#[test]
fn task_counts_include_retries() {
    let sc = SparkContext::new(2);
    sc.set_failure_injector(Some(std::sync::Arc::new(|site| {
        site.attempt == 0 && site.partition == 0
    })));
    let rdd = sc.parallelize((0..10i64).collect(), 2);
    assert_eq!(rdd.count(), 10);
    sc.set_failure_injector(None);
    // 2 partitions + 1 retry.
    assert_eq!(Metrics::get(&sc.metrics().tasks_launched), 3);
    assert_eq!(Metrics::get(&sc.metrics().task_failures), 1);
}

#[test]
fn shuffle_metrics_reflect_combining() {
    let sc = SparkContext::new(2);
    // 1000 records, 10 keys, 4 map partitions: map-side combine should
    // write at most 10 combiners per map task (40), not 1000 records.
    let rdd = sc
        .parallelize((0..1000i64).map(|i| (i % 10, 1i64)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 2);
    let out = rdd.collect();
    assert_eq!(out.len(), 10);
    let written = Metrics::get(&sc.metrics().shuffle_records_written);
    assert!(written <= 40, "map-side combine failed: {written} records written");
    assert_eq!(Metrics::get(&sc.metrics().shuffle_records_read), written);
}
