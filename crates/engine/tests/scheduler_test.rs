//! DAG scheduler structure tests: stage construction, topological
//! ordering of shuffle dependencies, stage skipping, fault recovery,
//! and metrics.
//!
//! Tests asserting exact task/stage counters call `sc.set_chaos(None)`
//! so they stay deterministic when the suite runs under
//! `ENGINE_CHAOS_SEED` (the chaos CI job).

use engine::metrics::Metrics;
use engine::scheduler::collect_shuffle_dependencies;
use engine::{
    ChaosConf, ChaosPlan, EngineError, HashPartitioner, MaterializedShuffle, PairRdd, SparkContext,
};
use std::sync::Arc;

#[test]
fn narrow_only_jobs_have_no_shuffle_stages() {
    let sc = SparkContext::new(2);
    sc.set_chaos(None);
    let rdd = sc
        .parallelize((0..100i64).collect(), 4)
        .map(|x| x + 1)
        .filter(|x| x % 2 == 0);
    let deps = collect_shuffle_dependencies(rdd.as_inner());
    assert!(deps.is_empty());
    rdd.count();
    // One job, one (result) stage.
    assert_eq!(Metrics::get(&sc.metrics().jobs_run), 1);
    assert_eq!(Metrics::get(&sc.metrics().stages_run), 1);
}

#[test]
fn chained_shuffles_order_parents_first() {
    let sc = SparkContext::new(2);
    // Two chained shuffles: reduce_by_key then a re-key + reduce again.
    let stage1 = sc
        .parallelize((0..100i64).map(|i| (i % 10, i)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 4);
    let stage2 = stage1
        .map(|(k, v)| (k % 2, v))
        .reduce_by_key(|a, b| a + b, 2);
    let deps = collect_shuffle_dependencies(stage2.as_inner());
    assert_eq!(deps.len(), 2);
    // Parent (first shuffle) must come before the dependent one, and the
    // parent's map-side RDD must not itself depend on the later shuffle.
    assert!(deps[0].shuffle_id() < deps[1].shuffle_id());
    let parent_deps = collect_shuffle_dependencies(deps[0].parent());
    assert!(parent_deps.is_empty());
    let child_deps = collect_shuffle_dependencies(deps[1].parent());
    assert_eq!(child_deps.len(), 1);
}

#[test]
fn diamond_lineage_runs_each_shuffle_once() {
    let sc = SparkContext::new(2);
    sc.set_chaos(None);
    let base = sc
        .parallelize((0..100i64).map(|i| (i % 5, i)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 4);
    // Diamond: two branches from the same shuffled RDD, joined by union.
    let a = base.map(|(k, v)| (k, v + 1));
    let b = base.map(|(k, v)| (k, v - 1));
    let merged = a.union(&b);
    let deps = collect_shuffle_dependencies(merged.as_inner());
    assert_eq!(
        deps.len(),
        1,
        "shared shuffle dependency must be deduplicated"
    );
    assert_eq!(merged.count(), 10);
    // Map stage ran exactly once: 4 map tasks (+ 2×4 narrow result reads).
    assert_eq!(Metrics::get(&sc.metrics().stages_run), 2);
}

#[test]
fn stage_skipping_across_jobs_counts_stages() {
    let sc = SparkContext::new(2);
    sc.set_chaos(None);
    let rdd = sc
        .parallelize((0..100i64).map(|i| (i % 4, i)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 2);
    rdd.count(); // job 1: map stage + result stage
    let after_first = Metrics::get(&sc.metrics().stages_run);
    assert_eq!(after_first, 2);
    rdd.count(); // job 2: result stage only (map output reused)
    assert_eq!(Metrics::get(&sc.metrics().stages_run), 3);
    // Invalidate, forcing the map stage to rerun.
    sc.shuffle_manager().invalidate_all();
    rdd.count();
    assert_eq!(Metrics::get(&sc.metrics().stages_run), 5);
}

#[test]
fn task_counts_include_retries() {
    let sc = SparkContext::new(2);
    sc.set_chaos(None);
    sc.set_failure_injector(Some(std::sync::Arc::new(|site| {
        site.attempt == 0 && site.partition == 0
    })));
    let rdd = sc.parallelize((0..10i64).collect(), 2);
    assert_eq!(rdd.count(), 10);
    sc.set_failure_injector(None);
    // 2 partitions + 1 retry.
    assert_eq!(Metrics::get(&sc.metrics().tasks_launched), 3);
    assert_eq!(Metrics::get(&sc.metrics().task_failures), 1);
}

#[test]
fn shuffle_metrics_reflect_combining() {
    let sc = SparkContext::new(2);
    sc.set_chaos(None);
    // 1000 records, 10 keys, 4 map partitions: map-side combine should
    // write at most 10 combiners per map task (40), not 1000 records.
    let rdd = sc
        .parallelize((0..1000i64).map(|i| (i % 10, 1i64)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 2);
    let out = rdd.collect();
    assert_eq!(out.len(), 10);
    let written = Metrics::get(&sc.metrics().shuffle_records_written);
    assert!(
        written <= 40,
        "map-side combine failed: {written} records written"
    );
    assert_eq!(Metrics::get(&sc.metrics().shuffle_records_read), written);
}

#[test]
fn fetch_failure_resubmits_map_stage_and_recovers() {
    let sc = SparkContext::new(2);
    sc.set_chaos(None);
    let rdd = sc
        .parallelize((0..100i64).map(|i| (i % 10, i)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 2);
    let baseline = {
        let mut v = rdd.collect();
        v.sort();
        v
    };
    // Fresh fault-free state, then exactly one injected fetch failure.
    sc.shuffle_manager().invalidate_all();
    sc.metrics().reset();
    sc.set_chaos(Some(Arc::new(ChaosPlan::new(ChaosConf {
        task_fault_prob: 0.0,
        fetch_fault_prob: 1.0,
        max_fetch_failures: 1,
        ..ChaosConf::seeded(11)
    }))));
    let mut got = rdd.collect();
    got.sort();
    assert_eq!(
        got, baseline,
        "recovered run must match the fault-free result"
    );
    let m = sc.metrics().snapshot();
    assert!(
        m.fetch_failures >= 1,
        "the injected fetch failure must be observed"
    );
    assert!(
        m.stage_resubmissions >= 1,
        "the map stage must be resubmitted"
    );
    assert!(
        m.map_tasks_recomputed >= 1,
        "the lost map output must be recomputed"
    );
    // A fetch failure is not a task failure: no in-place retry happened.
    assert_eq!(m.task_failures, 0);
}

#[test]
fn stage_retry_exhaustion_names_stage_and_attempts() {
    let sc = SparkContext::new(2);
    // Every fetch of this shuffle fails, forever: recovery must give up
    // after max_stage_retries resubmissions with a descriptive error.
    sc.set_chaos(Some(Arc::new(ChaosPlan::new(ChaosConf {
        task_fault_prob: 0.0,
        fetch_fault_prob: 1.0,
        max_fetch_failures: u64::MAX,
        repeat_fetch_faults: true,
        ..ChaosConf::seeded(5)
    }))));
    let rdd = sc
        .parallelize((0..40i64).map(|i| (i % 4, i)).collect(), 2)
        .reduce_by_key(|a, b| a + b, 2);
    let err = rdd
        .try_collect()
        .expect_err("unrecoverable fetch failures must fail the job");
    let max = sc.conf().max_stage_retries;
    match &err {
        EngineError::StageRetriesExhausted { attempts, .. } => assert_eq!(*attempts, max),
        other => panic!("expected StageRetriesExhausted, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("aborted"),
        "error must name the aborted stage: {msg}"
    );
    assert!(
        msg.contains(&format!("{max} map-stage resubmissions")),
        "error must state the resubmission count: {msg}"
    );
    assert_eq!(Metrics::get(&sc.metrics().stage_resubmissions), max as u64);
}

#[test]
fn executor_death_mid_materialize_is_retried_not_deadlocked() {
    let sc = SparkContext::new(2);
    // Kill an executor on the first faulted task of the map stage; the
    // materialization must re-check completeness, rerun the dropped
    // buckets, and finish (no task panics, exactly one death allowed).
    sc.set_chaos(Some(Arc::new(ChaosPlan::new(ChaosConf {
        task_fault_prob: 1.0,
        fetch_fault_prob: 0.0,
        max_task_panics: 0,
        max_executor_deaths: 1,
        ..ChaosConf::seeded(7)
    }))));
    let parent = sc.parallelize((0..200i64).map(|i| (i % 8, 1i64)).collect(), 4);
    let mat: MaterializedShuffle<i64, i64, i64> = MaterializedShuffle::create(
        &parent,
        Arc::new(HashPartitioner::new(4)),
        None,
        false,
        None,
    )
    .expect("materialization must survive executor death");
    let mut got = mat.read_all().collect();
    got.sort();
    let mut want: Vec<(i64, i64)> = (0..200i64).map(|i| (i % 8, 1i64)).collect();
    want.sort();
    assert_eq!(got, want);
    assert_eq!(Metrics::get(&sc.metrics().executors_lost), 1);
    // Sizes stay consistent after recovery: every map reported again.
    assert_eq!(mat.map_output_sizes().len(), 4);
}

#[test]
fn lost_executor_shuffle_and_cache_recompute_from_lineage() {
    let sc = SparkContext::new(2);
    sc.set_chaos(None);
    let cached = sc
        .parallelize((0..60i64).collect(), 4)
        .map(|x| x * 3)
        .cache();
    let summed = cached.map(|x| (x % 5, x)).reduce_by_key(|a, b| a + b, 2);
    let baseline = {
        let mut v = summed.collect();
        v.sort();
        v
    };
    assert!(sc.cache_manager().len() >= 4);
    // Kill both executors, plus the driver-owner slot (the driver can run
    // stolen tasks, so some blocks may be registered to it): every
    // shuffle bucket and cache block vanishes.
    sc.lose_executor(0);
    sc.lose_executor(1);
    sc.lose_executor(usize::MAX);
    assert!(sc.cache_manager().is_empty());
    let mut got = summed.collect();
    got.sort();
    assert_eq!(got, baseline);
    let m = sc.metrics().snapshot();
    assert_eq!(m.executors_lost, 3);
    assert!(
        m.map_tasks_recomputed >= 1,
        "lost map output must be recomputed"
    );
    assert!(
        m.cache_recomputes >= 1,
        "lost cache blocks must be recomputed"
    );
}
