//! Property tests: engine transformations agree with sequential
//! reference implementations for arbitrary data and partitioning.

use engine::pair::SortedPairRdd;
use engine::{PairRdd, SparkContext};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn map_filter_matches_iterator(data in proptest::collection::vec(any::<i32>(), 0..300),
                                   parts in 1usize..9) {
        let sc = SparkContext::new(2);
        let got = sc
            .parallelize(data.clone(), parts)
            .map(|x| x as i64 * 3)
            .filter(|x| x % 2 == 0)
            .collect();
        let want: Vec<i64> =
            data.iter().map(|&x| x as i64 * 3).filter(|x| x % 2 == 0).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reduce_by_key_matches_reference(
        data in proptest::collection::vec((0i64..30, -100i64..100), 0..300),
        parts in 1usize..9,
        reducers in 1usize..9,
    ) {
        let sc = SparkContext::new(2);
        let mut got: Vec<(i64, i64)> = sc
            .parallelize(data.clone(), parts)
            .reduce_by_key(|a, b| a + b, reducers)
            .collect();
        got.sort_unstable();
        let mut reference: HashMap<i64, i64> = HashMap::new();
        for (k, v) in &data {
            *reference.entry(*k).or_insert(0) += v;
        }
        let mut want: Vec<(i64, i64)> = reference.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sort_by_key_totally_orders(
        data in proptest::collection::vec(any::<i32>(), 0..300),
        parts in 1usize..7,
        out_parts in 1usize..7,
        ascending in any::<bool>(),
    ) {
        let sc = SparkContext::new(2);
        let keyed: Vec<(i32, ())> = data.iter().map(|&k| (k, ())).collect();
        let got: Vec<i32> = sc
            .parallelize(keyed, parts)
            .sort_by_key(ascending, out_parts)
            .keys()
            .collect();
        let mut want = data;
        want.sort_unstable();
        if !ascending {
            want.reverse();
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn distinct_equals_set(data in proptest::collection::vec(0i32..40, 0..300)) {
        let sc = SparkContext::new(2);
        let mut got = sc.parallelize(data.clone(), 4).distinct(3).collect();
        got.sort_unstable();
        let mut want: Vec<i32> = data.into_iter().collect::<std::collections::BTreeSet<_>>()
            .into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn join_matches_reference(
        left in proptest::collection::vec((0i64..10, 0i32..100), 0..60),
        right in proptest::collection::vec((0i64..10, 0i32..100), 0..60),
    ) {
        let sc = SparkContext::new(2);
        let mut got = sc
            .parallelize(left.clone(), 3)
            .join(&sc.parallelize(right.clone(), 2), 4)
            .collect();
        got.sort_unstable();
        let mut want = Vec::new();
        for (lk, lv) in &left {
            for (rk, rv) in &right {
                if lk == rk {
                    want.push((*lk, (*lv, *rv)));
                }
            }
        }
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn union_preserves_multiplicity(
        a in proptest::collection::vec(any::<i16>(), 0..150),
        b in proptest::collection::vec(any::<i16>(), 0..150),
    ) {
        let sc = SparkContext::new(2);
        let got = sc.parallelize(a.clone(), 3).union(&sc.parallelize(b.clone(), 2)).collect();
        let mut want = a;
        want.extend(b);
        prop_assert_eq!(got, want);
    }

    /// Partition count never changes results, only layout.
    #[test]
    fn partitioning_is_transparent(
        data in proptest::collection::vec((0i64..20, any::<i16>()), 0..200),
        p1 in 1usize..10,
        p2 in 1usize..10,
    ) {
        let sc = SparkContext::new(3);
        let run = |parts: usize| {
            let mut v = sc
                .parallelize(data.clone(), parts)
                .map_values(|v| v as i64)
                .group_by_key(4)
                .map(|(k, mut vs)| {
                    vs.sort_unstable();
                    (k, vs)
                })
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(run(p1), run(p2));
    }
}
