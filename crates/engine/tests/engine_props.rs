//! Property tests: engine transformations agree with sequential
//! reference implementations for arbitrary data and partitioning.
//!
//! Deterministic seeded sweeps (formerly proptest; rewritten because the
//! build environment vendors only a minimal rand shim).

use engine::pair::SortedPairRdd;
use engine::{PairRdd, SparkContext};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::collections::HashMap;

const CASES: usize = 24;

fn vec_i32(rng: &mut StdRng, max_len: usize) -> Vec<i32> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| rng.next_u64() as i32).collect()
}

#[test]
fn map_filter_matches_iterator() {
    let mut rng = StdRng::seed_from_u64(0x5EED_3001);
    let sc = SparkContext::new(2);
    for _ in 0..CASES {
        let data = vec_i32(&mut rng, 300);
        let parts = rng.random_range(1usize..9);
        let got = sc
            .parallelize(data.clone(), parts)
            .map(|x| x as i64 * 3)
            .filter(|x| x % 2 == 0)
            .collect();
        let want: Vec<i64> = data
            .iter()
            .map(|&x| x as i64 * 3)
            .filter(|x| x % 2 == 0)
            .collect();
        assert_eq!(got, want);
    }
}

#[test]
fn reduce_by_key_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x5EED_3002);
    let sc = SparkContext::new(2);
    for _ in 0..CASES {
        let len = rng.random_range(0usize..300);
        let data: Vec<(i64, i64)> = (0..len)
            .map(|_| (rng.random_range(0i64..30), rng.random_range(-100i64..100)))
            .collect();
        let parts = rng.random_range(1usize..9);
        let reducers = rng.random_range(1usize..9);
        let mut got: Vec<(i64, i64)> = sc
            .parallelize(data.clone(), parts)
            .reduce_by_key(|a, b| a + b, reducers)
            .collect();
        got.sort_unstable();
        let mut reference: HashMap<i64, i64> = HashMap::new();
        for (k, v) in &data {
            *reference.entry(*k).or_insert(0) += v;
        }
        let mut want: Vec<(i64, i64)> = reference.into_iter().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn sort_by_key_totally_orders() {
    let mut rng = StdRng::seed_from_u64(0x5EED_3003);
    let sc = SparkContext::new(2);
    for _ in 0..CASES {
        let data = vec_i32(&mut rng, 300);
        let parts = rng.random_range(1usize..7);
        let out_parts = rng.random_range(1usize..7);
        let ascending = rng.random_bool(0.5);
        let keyed: Vec<(i32, ())> = data.iter().map(|&k| (k, ())).collect();
        let got: Vec<i32> = sc
            .parallelize(keyed, parts)
            .sort_by_key(ascending, out_parts)
            .keys()
            .collect();
        let mut want = data;
        want.sort_unstable();
        if !ascending {
            want.reverse();
        }
        assert_eq!(got, want);
    }
}

#[test]
fn distinct_equals_set() {
    let mut rng = StdRng::seed_from_u64(0x5EED_3004);
    let sc = SparkContext::new(2);
    for _ in 0..CASES {
        let len = rng.random_range(0usize..300);
        let data: Vec<i32> = (0..len).map(|_| rng.random_range(0i32..40)).collect();
        let mut got = sc.parallelize(data.clone(), 4).distinct(3).collect();
        got.sort_unstable();
        let mut want: Vec<i32> = data
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn join_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x5EED_3005);
    let sc = SparkContext::new(2);
    for _ in 0..CASES {
        let pairs = |rng: &mut StdRng, max: usize| -> Vec<(i64, i32)> {
            let len = rng.random_range(0..max);
            (0..len)
                .map(|_| (rng.random_range(0i64..10), rng.random_range(0i32..100)))
                .collect()
        };
        let left = pairs(&mut rng, 60);
        let right = pairs(&mut rng, 60);
        let mut got = sc
            .parallelize(left.clone(), 3)
            .join(&sc.parallelize(right.clone(), 2), 4)
            .collect();
        got.sort_unstable();
        let mut want = Vec::new();
        for (lk, lv) in &left {
            for (rk, rv) in &right {
                if lk == rk {
                    want.push((*lk, (*lv, *rv)));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn union_preserves_multiplicity() {
    let mut rng = StdRng::seed_from_u64(0x5EED_3006);
    let sc = SparkContext::new(2);
    for _ in 0..CASES {
        let shorts = |rng: &mut StdRng| -> Vec<i16> {
            let len = rng.random_range(0usize..150);
            (0..len).map(|_| rng.next_u64() as i16).collect()
        };
        let a = shorts(&mut rng);
        let b = shorts(&mut rng);
        let got = sc
            .parallelize(a.clone(), 3)
            .union(&sc.parallelize(b.clone(), 2))
            .collect();
        let mut want = a;
        want.extend(b);
        assert_eq!(got, want);
    }
}

/// Partition count never changes results, only layout.
#[test]
fn partitioning_is_transparent() {
    let mut rng = StdRng::seed_from_u64(0x5EED_3007);
    let sc = SparkContext::new(3);
    for _ in 0..CASES {
        let len = rng.random_range(0usize..200);
        let data: Vec<(i64, i16)> = (0..len)
            .map(|_| (rng.random_range(0i64..20), rng.next_u64() as i16))
            .collect();
        let p1 = rng.random_range(1usize..10);
        let p2 = rng.random_range(1usize..10);
        let run = |parts: usize| {
            let mut v = sc
                .parallelize(data.clone(), parts)
                .map_values(|v| v as i64)
                .group_by_key(4)
                .map(|(k, mut vs)| {
                    vs.sort_unstable();
                    (k, vs)
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(run(p1), run(p2));
    }
}
