//! Integration tests for the execution engine: transformations, shuffles,
//! joins, sorting, caching, and fault tolerance.

use engine::metrics::Metrics;
use engine::pair::SortedPairRdd;
use engine::{PairRdd, SparkContext};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn map_filter_pipeline() {
    let sc = SparkContext::new(4);
    let rdd = sc.parallelize((0..1000i64).collect(), 8);
    let out = rdd.map(|x| x * 2).filter(|x| x % 3 == 0).count();
    assert_eq!(
        out,
        (0..1000i64).filter(|x| (x * 2) % 3 == 0).count() as u64
    );
}

#[test]
fn flat_map_and_union() {
    let sc = SparkContext::new(2);
    let a = sc
        .parallelize(vec!["a b", "c"], 2)
        .flat_map(|s: &str| s.split(' ').map(|w| w.to_string()).collect::<Vec<_>>());
    let b = sc.parallelize(vec!["d".to_string()], 1);
    let mut out = a.union(&b).collect();
    out.sort();
    assert_eq!(out, vec!["a", "b", "c", "d"]);
}

#[test]
fn reduce_by_key_matches_sequential() {
    let sc = SparkContext::new(4);
    let pairs: Vec<(i64, i64)> = (0..10_000).map(|i| (i % 100, i)).collect();
    let mut expected = std::collections::HashMap::new();
    for (k, v) in &pairs {
        *expected.entry(*k).or_insert(0i64) += v;
    }
    let rdd = sc.parallelize(pairs, 16);
    let mut got = rdd.reduce_by_key(|a, b| a + b, 8).collect();
    got.sort();
    let mut want: Vec<(i64, i64)> = expected.into_iter().collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn group_by_key_collects_all_values() {
    let sc = SparkContext::new(2);
    let rdd = sc.parallelize(vec![(1, "a"), (2, "b"), (1, "c")], 3);
    let grouped = rdd.group_by_key(2).collect();
    let map: std::collections::HashMap<i32, Vec<&str>> = grouped
        .into_iter()
        .map(|(k, mut vs)| {
            vs.sort();
            (k, vs)
        })
        .collect();
    assert_eq!(map[&1], vec!["a", "c"]);
    assert_eq!(map[&2], vec!["b"]);
}

#[test]
fn aggregate_by_key_computes_averages() {
    let sc = SparkContext::new(4);
    let pairs: Vec<(i64, f64)> = (0..1000).map(|i| (i % 10, i as f64)).collect();
    let rdd = sc.parallelize(pairs.clone(), 8);
    let avgs: std::collections::HashMap<i64, f64> = rdd
        .aggregate_by_key(
            (0.0f64, 0u64),
            |(s, c), v| (s + v, c + 1),
            |(s1, c1), (s2, c2)| (s1 + s2, c1 + c2),
            4,
        )
        .map(|(k, (s, c))| (k, s / c as f64))
        .collect()
        .into_iter()
        .collect();
    for k in 0..10i64 {
        let vals: Vec<f64> = pairs
            .iter()
            .filter(|(kk, _)| *kk == k)
            .map(|(_, v)| *v)
            .collect();
        let want = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((avgs[&k] - want).abs() < 1e-9);
    }
}

#[test]
fn join_produces_cross_product_per_key() {
    let sc = SparkContext::new(2);
    let left = sc.parallelize(vec![(1, "l1"), (1, "l2"), (2, "l3")], 2);
    let right = sc.parallelize(vec![(1, "r1"), (3, "r2")], 2);
    let mut out = left.join(&right, 4).collect();
    out.sort();
    assert_eq!(out, vec![(1, ("l1", "r1")), (1, ("l2", "r1"))]);
}

#[test]
fn cogroup_keeps_unmatched_keys() {
    let sc = SparkContext::new(2);
    let left = sc.parallelize(vec![(1, 10), (2, 20)], 1);
    let right = sc.parallelize(vec![(2, 200), (3, 300)], 1);
    let out: std::collections::HashMap<i32, (Vec<i32>, Vec<i32>)> =
        left.cogroup(&right, 2).collect().into_iter().collect();
    assert_eq!(out[&1], (vec![10], vec![]));
    assert_eq!(out[&2], (vec![20], vec![200]));
    assert_eq!(out[&3], (vec![], vec![300]));
}

#[test]
fn sort_by_key_orders_globally() {
    let sc = SparkContext::new(4);
    let mut data: Vec<(i64, ())> = (0..5000).map(|i| ((i * 7919) % 5000, ())).collect();
    let rdd = sc.parallelize(data.clone(), 8);
    let sorted: Vec<i64> = rdd.sort_by_key(true, 4).keys().collect();
    data.sort();
    let want: Vec<i64> = data.into_iter().map(|(k, _)| k).collect();
    assert_eq!(sorted, want);
}

#[test]
fn sort_by_key_descending() {
    let sc = SparkContext::new(2);
    let rdd = sc.parallelize(vec![(3, ()), (1, ()), (2, ())], 2);
    let keys: Vec<i32> = rdd.sort_by_key(false, 2).keys().collect();
    assert_eq!(keys, vec![3, 2, 1]);
}

#[test]
fn distinct_removes_duplicates() {
    let sc = SparkContext::new(2);
    let rdd = sc.parallelize(vec![1, 2, 2, 3, 3, 3], 3);
    let mut out = rdd.distinct(2).collect();
    out.sort();
    assert_eq!(out, vec![1, 2, 3]);
}

#[test]
fn take_and_first_respect_partition_order() {
    let sc = SparkContext::new(2);
    let rdd = sc.parallelize((0..100).collect::<Vec<i32>>(), 5);
    assert_eq!(rdd.take(3), vec![0, 1, 2]);
    assert_eq!(rdd.first(), Some(0));
    assert_eq!(rdd.take(0), Vec::<i32>::new());
}

#[test]
fn caching_avoids_recomputation() {
    let sc = SparkContext::new(2);
    sc.set_chaos(None); // exact recomputation counts below
    let computed = Arc::new(AtomicUsize::new(0));
    let c = computed.clone();
    let rdd = sc
        .parallelize((0..100i64).collect(), 4)
        .map(move |x| {
            c.fetch_add(1, Ordering::SeqCst);
            x * 2
        })
        .cache();
    assert_eq!(rdd.count(), 100);
    let first_pass = computed.load(Ordering::SeqCst);
    assert_eq!(first_pass, 100);
    assert_eq!(rdd.count(), 100);
    // Served from cache: no extra upstream computation.
    assert_eq!(computed.load(Ordering::SeqCst), first_pass);
    assert!(Metrics::get(&sc.metrics().cache_hits) >= 4);
}

#[test]
fn evicted_cache_recomputes_from_lineage() {
    let sc = SparkContext::new(2);
    sc.set_chaos(None); // exact recomputation counts below
    let computed = Arc::new(AtomicUsize::new(0));
    let c = computed.clone();
    let rdd = sc
        .parallelize((0..10i64).collect(), 2)
        .map(move |x| {
            c.fetch_add(1, Ordering::SeqCst);
            x
        })
        .cache();
    assert_eq!(rdd.count(), 10);
    sc.cache_manager().clear();
    assert_eq!(rdd.count(), 10);
    // Lineage recomputation ran the map again.
    assert_eq!(computed.load(Ordering::SeqCst), 20);
}

#[test]
fn injected_task_failures_are_retried() {
    let sc = SparkContext::new(2);
    // Fail the first attempt of every task, succeed afterwards.
    sc.set_failure_injector(Some(Arc::new(|site| site.attempt == 0)));
    let rdd = sc.parallelize((0..100i64).collect(), 4);
    assert_eq!(rdd.map(|x| x + 1).count(), 100);
    assert!(Metrics::get(&sc.metrics().task_failures) >= 4);
    sc.set_failure_injector(None);
}

#[test]
fn persistent_failures_fail_the_job() {
    let sc = SparkContext::new(2);
    sc.set_failure_injector(Some(Arc::new(|_| true)));
    let rdd = sc.parallelize(vec![1, 2, 3], 1);
    let res = rdd.try_collect();
    assert!(res.is_err());
    sc.set_failure_injector(None);
}

#[test]
fn panicking_task_is_retried_and_recovers() {
    let sc = SparkContext::new(2);
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = attempts.clone();
    let rdd = sc.parallelize(vec![1i64], 1).map(move |x| {
        if a.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("transient failure");
        }
        x
    });
    assert_eq!(rdd.collect(), vec![1]);
}

#[test]
fn shuffle_reuse_skips_map_stage() {
    let sc = SparkContext::new(2);
    sc.set_chaos(None); // exact shuffle-write counts below
    let rdd = sc
        .parallelize((0..100i64).map(|i| (i % 4, i)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 2);
    rdd.count();
    let written_once = Metrics::get(&sc.metrics().shuffle_records_written);
    rdd.count();
    // Second job reuses the shuffle output (stage skipping).
    assert_eq!(
        Metrics::get(&sc.metrics().shuffle_records_written),
        written_once
    );
}

#[test]
fn invalidated_shuffle_is_recomputed() {
    let sc = SparkContext::new(2);
    let rdd = sc
        .parallelize((0..100i64).map(|i| (i % 4, i)).collect(), 4)
        .reduce_by_key(|a, b| a + b, 2);
    let first = {
        let mut v = rdd.collect();
        v.sort();
        v
    };
    sc.shuffle_manager().invalidate_all();
    let second = {
        let mut v = rdd.collect();
        v.sort();
        v
    };
    assert_eq!(first, second);
}

#[test]
fn zip_partitions_combines_sides() {
    let sc = SparkContext::new(2);
    let a = sc.parallelize(vec![1, 2, 3, 4], 2);
    let b = sc.parallelize(vec![10, 20, 30, 40], 2);
    let out = a.zip_partitions(&b, |l, r| {
        let total: i32 = l.sum::<i32>() + r.sum::<i32>();
        Box::new(std::iter::once(total))
    });
    assert_eq!(out.collect().iter().sum::<i32>(), 110);
}

#[test]
fn sample_is_deterministic_and_roughly_proportional() {
    let sc = SparkContext::new(2);
    let rdd = sc.parallelize((0..10_000i64).collect(), 4);
    let s1 = rdd.sample(0.1, 42).collect();
    let s2 = rdd.sample(0.1, 42).collect();
    assert_eq!(s1, s2);
    assert!(s1.len() > 500 && s1.len() < 1500, "got {}", s1.len());
}

#[test]
fn coalesce_reduces_partitions_without_losing_data() {
    let sc = SparkContext::new(2);
    let rdd = sc.parallelize((0..100i64).collect(), 10).coalesce(3);
    assert_eq!(rdd.num_partitions(), 3);
    assert_eq!(rdd.collect(), (0..100i64).collect::<Vec<_>>());
}

#[test]
fn fold_and_reduce_agree() {
    let sc = SparkContext::new(2);
    let rdd = sc.parallelize((1..=100i64).collect(), 7);
    assert_eq!(rdd.reduce(|a, b| a + b), Some(5050));
    assert_eq!(rdd.fold(0i64, |a, b| a + b, |a, b| a + b), 5050);
}

#[test]
fn count_by_key_counts() {
    let sc = SparkContext::new(2);
    let rdd = sc.parallelize(vec![("a", 1), ("b", 1), ("a", 1)], 2);
    let counts = rdd.count_by_key();
    assert_eq!(counts[&"a"], 2);
    assert_eq!(counts[&"b"], 1);
}

#[test]
fn empty_rdd_operations() {
    let sc = SparkContext::new(2);
    let rdd = sc.parallelize(Vec::<i64>::new(), 4);
    assert_eq!(rdd.count(), 0);
    assert_eq!(rdd.collect(), Vec::<i64>::new());
    assert_eq!(rdd.reduce(|a, b| a + b), None);
    assert_eq!(rdd.first(), None);
    let pairs = rdd.map(|x| (x, x));
    assert_eq!(pairs.reduce_by_key(|a, b| a + b, 2).count(), 0);
}
