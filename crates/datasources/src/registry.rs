//! Data source provider registry: maps `USING <name>` to a factory that
//! builds a relation from key-value options — the `createRelation`
//! contract of §4.4.1.

use crate::colfile::ColFileRelation;
use crate::csv::{CsvOptions, CsvRelation};
use crate::jdbc::{lookup_database, JdbcRelation};
use crate::json::JsonRelation;
use catalyst::error::{CatalystError, Result};
use catalyst::source::BaseRelation;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Options passed via `OPTIONS(k 'v', …)`.
pub type Options = BTreeMap<String, String>;

/// A provider factory.
pub type RelationFactory = Arc<dyn Fn(&Options) -> Result<Arc<dyn BaseRelation>> + Send + Sync>;

/// Registry of named data source providers.
pub struct DataSourceRegistry {
    providers: RwLock<HashMap<String, RelationFactory>>,
}

impl Default for DataSourceRegistry {
    fn default() -> Self {
        DataSourceRegistry::with_builtins()
    }
}

impl DataSourceRegistry {
    /// Registry with no providers.
    pub fn empty() -> Self {
        DataSourceRegistry {
            providers: RwLock::new(HashMap::new()),
        }
    }

    /// Registry preloaded with the built-in providers: `csv`, `json`,
    /// `colfile` (+ alias `parquet`), and `jdbc`.
    pub fn with_builtins() -> Self {
        let reg = DataSourceRegistry::empty();
        reg.register("csv", |opts: &Options| {
            let path = require(opts, "path")?;
            let mut csv_opts = CsvOptions::default();
            if let Some(d) = opts.get("delimiter") {
                csv_opts.delimiter = d.chars().next().unwrap_or(',');
            }
            if let Some(h) = opts.get("header") {
                csv_opts.header = h.eq_ignore_ascii_case("true");
            }
            if let Some(p) = opts.get("partitions") {
                csv_opts.num_partitions = p.parse().unwrap_or(2);
            }
            if let Some(ddl) = opts.get("schema") {
                csv_opts.schema = Some(crate::ddl::parse_schema_ddl(ddl)?);
            }
            Ok(Arc::new(CsvRelation::from_path(path, &csv_opts)?) as Arc<dyn BaseRelation>)
        });
        reg.register("json", |opts: &Options| {
            let path = require(opts, "path")?;
            let partitions = opts
                .get("partitions")
                .and_then(|p| p.parse().ok())
                .unwrap_or(2);
            Ok(Arc::new(JsonRelation::from_path(path, partitions)?) as Arc<dyn BaseRelation>)
        });
        let colfile = |opts: &Options| {
            let path = require(opts, "path")?;
            Ok(Arc::new(ColFileRelation::from_path(path)?) as Arc<dyn BaseRelation>)
        };
        reg.register("colfile", colfile);
        reg.register("parquet", colfile);
        reg.register("jdbc", |opts: &Options| {
            let url = require(opts, "url")?;
            let table = require(opts, "table")?;
            let db = lookup_database(url).ok_or_else(|| {
                CatalystError::DataSource(format!("no database registered at '{url}'"))
            })?;
            let shards = opts
                .get("numshards")
                .and_then(|s| s.parse().ok())
                .unwrap_or(1);
            let shard_col = opts.get("shardcolumn").map(String::as_str);
            Ok(
                Arc::new(JdbcRelation::connect(db, table.clone(), shard_col, shards)?)
                    as Arc<dyn BaseRelation>,
            )
        });
        reg
    }

    /// Register (or replace) a provider — the user extension point.
    pub fn register(
        &self,
        name: impl Into<String>,
        factory: impl Fn(&Options) -> Result<Arc<dyn BaseRelation>> + Send + Sync + 'static,
    ) {
        self.providers
            .write()
            .insert(name.into().to_ascii_lowercase(), Arc::new(factory));
    }

    /// Create a relation via a named provider.
    pub fn create_relation(
        &self,
        provider: &str,
        options: &Options,
    ) -> Result<Arc<dyn BaseRelation>> {
        let factory = self
            .providers
            .read()
            .get(&provider.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| {
                CatalystError::DataSource(format!(
                    "unknown data source provider '{provider}'; known: [{}]",
                    self.provider_names().join(", ")
                ))
            })?;
        factory(options)
    }

    /// Registered provider names (sorted).
    pub fn provider_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.providers.read().keys().cloned().collect();
        names.sort();
        names
    }
}

fn require<'a>(opts: &'a Options, key: &str) -> Result<&'a String> {
    opts.get(key)
        .ok_or_else(|| CatalystError::DataSource(format!("data source requires option '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyst::source::ScanCapability;

    #[test]
    fn builtin_providers_exist() {
        let reg = DataSourceRegistry::default();
        let names = reg.provider_names();
        for p in ["csv", "json", "colfile", "parquet", "jdbc"] {
            assert!(names.contains(&p.to_string()), "{names:?}");
        }
    }

    #[test]
    fn unknown_provider_lists_candidates() {
        let reg = DataSourceRegistry::default();
        let err = match reg.create_relation("avro", &Options::new()) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected error"),
        };
        assert!(err.contains("avro"));
        assert!(err.contains("json"));
    }

    #[test]
    fn missing_required_option_errors() {
        let reg = DataSourceRegistry::default();
        let err = match reg.create_relation("json", &Options::new()) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected error"),
        };
        assert!(err.contains("path"));
    }

    #[test]
    fn custom_provider_registration() {
        use catalyst::schema::Schema;
        use catalyst::source::MemoryTable;
        let reg = DataSourceRegistry::default();
        reg.register("empty", |_opts| {
            Ok(
                Arc::new(MemoryTable::new("empty", Schema::empty(), vec![], 1))
                    as Arc<dyn BaseRelation>,
            )
        });
        let rel = reg.create_relation("EMPTY", &Options::new()).unwrap();
        assert_eq!(rel.capability(), ScanCapability::TableScan);
    }

    #[test]
    fn json_provider_roundtrip_via_file() {
        let dir = std::env::temp_dir().join(format!("dsreg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.json");
        std::fs::write(&path, "{\"a\": 1}\n{\"a\": 2}\n").unwrap();
        let reg = DataSourceRegistry::default();
        let mut opts = Options::new();
        opts.insert("path".into(), path.to_str().unwrap().to_string());
        let rel = reg.create_relation("json", &opts).unwrap();
        assert_eq!(rel.row_count(), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
