//! Schema ⇄ DDL string conversion.
//!
//! The unified reader API carries a user-supplied schema through the
//! provider registry as an ordinary string option (`schema`), the way
//! Spark's `DataFrameReader.schema(ddl)` accepts `"a INT, b STRING"`.
//! [`schema_to_ddl`] renders exactly what [`parse_schema_ddl`] accepts;
//! the type grammar matches `DataType`'s `Display` form, including
//! nested `ARRAY<…>`, `STRUCT<…>`, `MAP<…, …>` and `DECIMAL(p,s)`.

use catalyst::error::{CatalystError, Result};
use catalyst::schema::{Schema, SchemaRef};
use catalyst::types::{DataType, StructField};
use std::sync::Arc;

/// Render a schema as a DDL field list: `a INT NOT NULL, b STRING`.
pub fn schema_to_ddl(schema: &Schema) -> String {
    schema
        .fields()
        .iter()
        .map(|f| {
            let mut s = format!("{} {}", f.name, f.dtype);
            if !f.nullable {
                s.push_str(" NOT NULL");
            }
            s
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parse a DDL field list (`a INT, b ARRAY<STRING> NOT NULL`) into a
/// schema. Type names are case-insensitive; fields are nullable unless
/// marked `NOT NULL`.
pub fn parse_schema_ddl(ddl: &str) -> Result<SchemaRef> {
    Ok(Arc::new(Schema::new(parse_field_list(ddl)?)))
}

fn parse_field_list(text: &str) -> Result<Vec<StructField>> {
    let mut fields = Vec::new();
    for part in split_top_level(text) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        fields.push(parse_field(part)?);
    }
    Ok(fields)
}

fn parse_field(text: &str) -> Result<StructField> {
    let (name, rest) = text.split_once(char::is_whitespace).ok_or_else(|| {
        CatalystError::DataSource(format!("schema DDL field '{text}' is missing a type"))
    })?;
    let mut type_text = rest.trim();
    let mut nullable = true;
    if let Some(stripped) = strip_suffix_ci(type_text, "NOT NULL") {
        nullable = false;
        type_text = stripped.trim_end();
    }
    Ok(StructField::new(
        name,
        parse_data_type(type_text)?,
        nullable,
    ))
}

fn strip_suffix_ci<'a>(text: &'a str, suffix: &str) -> Option<&'a str> {
    let cut = text.len().checked_sub(suffix.len())?;
    (text.is_char_boundary(cut) && text[cut..].eq_ignore_ascii_case(suffix)).then(|| &text[..cut])
}

/// Parse one type in `DataType` display syntax.
pub fn parse_data_type(text: &str) -> Result<DataType> {
    let text = text.trim();
    let upper = text.to_ascii_uppercase();
    let scalar = match upper.as_str() {
        "NULL" => Some(DataType::Null),
        "BOOLEAN" | "BOOL" => Some(DataType::Boolean),
        "INT" | "INTEGER" => Some(DataType::Int),
        "LONG" | "BIGINT" => Some(DataType::Long),
        "FLOAT" => Some(DataType::Float),
        "DOUBLE" => Some(DataType::Double),
        "STRING" => Some(DataType::String),
        "DATE" => Some(DataType::Date),
        "TIMESTAMP" => Some(DataType::Timestamp),
        "BINARY" => Some(DataType::Binary),
        _ => None,
    };
    if let Some(t) = scalar {
        return Ok(t);
    }
    if let Some(args) = delimited(&upper, text, "DECIMAL", '(', ')') {
        let (p, s) = args.split_once(',').ok_or_else(|| {
            CatalystError::DataSource(format!("DECIMAL needs (precision,scale): '{text}'"))
        })?;
        let parse = |v: &str| {
            v.trim()
                .parse::<u8>()
                .map_err(|_| CatalystError::DataSource(format!("bad DECIMAL argument in '{text}'")))
        };
        return Ok(DataType::Decimal(parse(p)?, parse(s)?));
    }
    if let Some(inner) = delimited(&upper, text, "ARRAY", '<', '>') {
        return Ok(DataType::Array(Box::new(parse_data_type(inner)?)));
    }
    if let Some(inner) = delimited(&upper, text, "MAP", '<', '>') {
        let parts = split_top_level(inner);
        if parts.len() != 2 {
            return Err(CatalystError::DataSource(format!(
                "MAP needs exactly two type arguments: '{text}'"
            )));
        }
        return Ok(DataType::Map(
            Box::new(parse_data_type(parts[0])?),
            Box::new(parse_data_type(parts[1])?),
        ));
    }
    if let Some(inner) = delimited(&upper, text, "STRUCT", '<', '>') {
        return Ok(DataType::struct_type(parse_field_list(inner)?));
    }
    Err(CatalystError::DataSource(format!(
        "unknown data type '{text}' in schema DDL"
    )))
}

/// If `text` is `NAME<open>…<close>` (name matched case-insensitively via
/// the pre-uppercased copy), return the delimited interior.
fn delimited<'a>(
    upper: &str,
    text: &'a str,
    name: &str,
    open: char,
    close: char,
) -> Option<&'a str> {
    let body = upper.strip_prefix(name)?.trim_start();
    if !(body.starts_with(open) && body.ends_with(close)) {
        return None;
    }
    let start = text.find(open)?;
    let end = text.rfind(close)?;
    (start < end).then(|| &text[start + 1..end])
}

/// Split on commas at nesting depth zero (`<>`/`()` aware).
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        match c {
            '<' | '(' => depth += 1,
            '>' | ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let schema = Schema::new(vec![
            StructField::new("a", DataType::Int, false),
            StructField::new("b", DataType::String, true),
            StructField::new("c", DataType::Decimal(10, 2), true),
        ]);
        let ddl = schema_to_ddl(&schema);
        assert_eq!(ddl, "a INT NOT NULL, b STRING, c DECIMAL(10,2)");
        let parsed = parse_schema_ddl(&ddl).unwrap();
        assert_eq!(parsed.fields(), schema.fields());
    }

    #[test]
    fn nested_types_roundtrip() {
        let schema = Schema::new(vec![
            StructField::new("xs", DataType::Array(Box::new(DataType::Long)), true),
            StructField::new(
                "kv",
                DataType::Map(Box::new(DataType::String), Box::new(DataType::Double)),
                true,
            ),
            StructField::new(
                "s",
                DataType::struct_type(vec![
                    StructField::new("x", DataType::Int, false),
                    StructField::new("y", DataType::Array(Box::new(DataType::String)), true),
                ]),
                false,
            ),
        ]);
        let ddl = schema_to_ddl(&schema);
        let parsed = parse_schema_ddl(&ddl).unwrap();
        assert_eq!(parsed.fields(), schema.fields());
    }

    #[test]
    fn case_insensitive_and_aliases() {
        let parsed = parse_schema_ddl("a integer, b bigint not null, c array<string>").unwrap();
        assert_eq!(parsed.fields()[0].dtype, DataType::Int);
        assert_eq!(parsed.fields()[1].dtype, DataType::Long);
        assert!(!parsed.fields()[1].nullable);
        assert_eq!(
            parsed.fields()[2].dtype,
            DataType::Array(Box::new(DataType::String))
        );
    }

    #[test]
    fn bad_ddl_errors() {
        assert!(parse_schema_ddl("a").is_err());
        assert!(parse_schema_ddl("a WIBBLE").is_err());
        assert!(parse_schema_ddl("a MAP<INT>").is_err());
        assert!(parse_schema_ddl("a DECIMAL(10)").is_err());
    }
}
