//! Query federation to external databases (§5.3), simulated.
//!
//! The paper's JDBC source pushes column pruning and filter predicates
//! into MySQL to minimize communication. Here [`RemoteDb`] is an
//! in-process "database server" with its own mini filter engine and a
//! byte-metered link: every row that crosses the simulated wire is
//! counted, and every generated remote query is logged (mirroring the
//! rewritten MySQL query the paper shows). Tests and the federation
//! example assert pushdown by watching bytes-transferred drop.
//!
//! Like the real source, a table can be *sharded* on a numeric column so
//! ranges are scanned in parallel (§5.3 footnote 8).

use catalyst::error::{CatalystError, Result};
use catalyst::row::Row;
use catalyst::schema::SchemaRef;
use catalyst::source::{BaseRelation, Filter, RowIter, ScanCapability};
use catalyst::value::Value;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct RemoteTable {
    schema: SchemaRef,
    rows: Vec<Row>,
}

/// A simulated remote RDBMS reachable over a metered link.
#[derive(Default)]
pub struct RemoteDb {
    tables: RwLock<HashMap<String, Arc<RemoteTable>>>,
    bytes_transferred: AtomicU64,
    rows_transferred: AtomicU64,
    query_log: Mutex<Vec<String>>,
}

impl RemoteDb {
    /// Create an empty database.
    pub fn new() -> Arc<Self> {
        Arc::new(RemoteDb::default())
    }

    /// Create or replace a table.
    pub fn create_table(&self, name: impl Into<String>, schema: SchemaRef, rows: Vec<Row>) {
        self.tables.write().insert(
            name.into().to_ascii_lowercase(),
            Arc::new(RemoteTable { schema, rows }),
        );
    }

    /// Bytes that crossed the simulated wire so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred.load(Ordering::Relaxed)
    }

    /// Rows that crossed the simulated wire so far.
    pub fn rows_transferred(&self) -> u64 {
        self.rows_transferred.load(Ordering::Relaxed)
    }

    /// Reset the wire meters.
    pub fn reset_meters(&self) {
        self.bytes_transferred.store(0, Ordering::Relaxed);
        self.rows_transferred.store(0, Ordering::Relaxed);
    }

    /// Queries the "server" has executed (SQL text, like the paper's
    /// generated MySQL query).
    pub fn query_log(&self) -> Vec<String> {
        self.query_log.lock().clone()
    }

    fn table(&self, name: &str) -> Result<Arc<RemoteTable>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| CatalystError::DataSource(format!("remote table '{name}' not found")))
    }

    /// Execute a remote scan: the server evaluates filters and projection
    /// locally, then "transfers" only the surviving rows.
    pub fn query(
        &self,
        table: &str,
        projection: Option<&[usize]>,
        filters: &[Filter],
        shard: Option<(String, Value, Value)>, // column, lo (incl), hi (excl)
    ) -> Result<Vec<Row>> {
        let t = self.table(table)?;
        self.query_log
            .lock()
            .push(render_query(table, &t.schema, projection, filters, &shard));

        let mut out = Vec::new();
        'rows: for row in &t.rows {
            if let Some((col, lo, hi)) = &shard {
                let i = t.schema.index_of(col)?;
                let v = row.get(i);
                use std::cmp::Ordering::*;
                if v.sql_cmp(lo) == Some(Less) || !matches!(v.sql_cmp(hi), Some(Less)) {
                    continue;
                }
            }
            for f in filters {
                let i = t.schema.index_of(f.column())?;
                if !f.matches(row.get(i)) {
                    continue 'rows;
                }
            }
            let transferred = match projection {
                Some(p) => row.project(p),
                None => row.clone(),
            };
            self.bytes_transferred
                .fetch_add(transferred.approx_bytes(), Ordering::Relaxed);
            self.rows_transferred.fetch_add(1, Ordering::Relaxed);
            out.push(transferred);
        }
        Ok(out)
    }
}

fn render_query(
    table: &str,
    schema: &SchemaRef,
    projection: Option<&[usize]>,
    filters: &[Filter],
    shard: &Option<(String, Value, Value)>,
) -> String {
    let cols = match projection {
        Some(p) => p
            .iter()
            .map(|&i| schema.field(i).name.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        None => "*".to_string(),
    };
    let mut preds: Vec<String> = filters
        .iter()
        .map(|f| match f {
            Filter::Eq(c, v) => format!("{c} = {v}"),
            Filter::Gt(c, v) => format!("{c} > {v}"),
            Filter::GtEq(c, v) => format!("{c} >= {v}"),
            Filter::Lt(c, v) => format!("{c} < {v}"),
            Filter::LtEq(c, v) => format!("{c} <= {v}"),
            Filter::In(c, vs) => format!(
                "{c} IN ({})",
                vs.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Filter::IsNull(c) => format!("{c} IS NULL"),
            Filter::IsNotNull(c) => format!("{c} IS NOT NULL"),
            Filter::StringStartsWith(c, p) => format!("{c} LIKE '{p}%'"),
            Filter::StringContains(c, p) => format!("{c} LIKE '%{p}%'"),
        })
        .collect();
    if let Some((c, lo, hi)) = shard {
        preds.push(format!("{c} >= {lo} AND {c} < {hi}"));
    }
    if preds.is_empty() {
        format!("SELECT {cols} FROM {table}")
    } else {
        format!("SELECT {cols} FROM {table} WHERE {}", preds.join(" AND "))
    }
}

/// Global URL → database registry so `USING jdbc OPTIONS(url '…')` can
/// find its server, as a connection pool would.
static GLOBAL_DBS: Mutex<Option<HashMap<String, Arc<RemoteDb>>>> = Mutex::new(None);

/// Register a database under a connection URL.
pub fn register_database(url: impl Into<String>, db: Arc<RemoteDb>) {
    GLOBAL_DBS
        .lock()
        .get_or_insert_with(HashMap::new)
        .insert(url.into(), db);
}

/// Resolve a registered database.
pub fn lookup_database(url: &str) -> Option<Arc<RemoteDb>> {
    GLOBAL_DBS.lock().as_ref().and_then(|m| m.get(url).cloned())
}

/// A relation federated from a [`RemoteDb`] table.
pub struct JdbcRelation {
    db: Arc<RemoteDb>,
    table: String,
    schema: SchemaRef,
    shards: Vec<Option<(String, Value, Value)>>,
}

impl JdbcRelation {
    /// Connect to a table, optionally sharding a numeric `shard_column`
    /// into `num_shards` ranges read in parallel.
    pub fn connect(
        db: Arc<RemoteDb>,
        table: impl Into<String>,
        shard_column: Option<&str>,
        num_shards: usize,
    ) -> Result<Self> {
        let table = table.into();
        let t = db.table(&table)?;
        let schema = t.schema.clone();
        let shards = match shard_column {
            None => vec![None],
            Some(col) => {
                let i = schema.index_of(col)?;
                let mut lo = None::<Value>;
                let mut hi = None::<Value>;
                for r in &t.rows {
                    let v = r.get(i);
                    if v.is_null() {
                        continue;
                    }
                    if lo.as_ref().is_none_or(|l| v < l) {
                        lo = Some(v.clone());
                    }
                    if hi.as_ref().is_none_or(|h| v > h) {
                        hi = Some(v.clone());
                    }
                }
                match (lo.and_then(|v| v.as_f64()), hi.and_then(|v| v.as_f64())) {
                    (Some(lo), Some(hi)) if num_shards > 1 => {
                        let width = (hi - lo) / num_shards as f64;
                        (0..num_shards)
                            .map(|s| {
                                let a = lo + width * s as f64;
                                // Last shard is open-ended past the max.
                                let b = if s + 1 == num_shards {
                                    hi + 1.0
                                } else {
                                    lo + width * (s + 1) as f64
                                };
                                Some((col.to_string(), Value::Double(a), Value::Double(b)))
                            })
                            .collect()
                    }
                    _ => vec![None],
                }
            }
        };
        Ok(JdbcRelation {
            db,
            table,
            schema,
            shards,
        })
    }

    /// The backing database handle.
    pub fn db(&self) -> &Arc<RemoteDb> {
        &self.db
    }
}

impl BaseRelation for JdbcRelation {
    fn name(&self) -> String {
        format!("jdbc:{}", self.table)
    }

    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn size_in_bytes(&self) -> Option<u64> {
        let t = self.db.table(&self.table).ok()?;
        Some(t.rows.iter().map(Row::approx_bytes).sum())
    }

    fn row_count(&self) -> Option<u64> {
        self.db.table(&self.table).ok().map(|t| t.rows.len() as u64)
    }

    fn capability(&self) -> ScanCapability {
        ScanCapability::PrunedFilteredScan
    }

    fn num_partitions(&self) -> usize {
        self.shards.len()
    }

    fn scan_partition(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> Result<RowIter> {
        let rows = self.db.query(
            &self.table,
            projection,
            filters,
            self.shards[partition].clone(),
        )?;
        Ok(Box::new(rows.into_iter()))
    }

    fn handled_filters(&self, filters: &[Filter]) -> Vec<bool> {
        // The remote engine evaluates the full advisory language exactly
        // when it knows the column.
        filters
            .iter()
            .map(|f| self.schema.index_of(f.column()).is_ok())
            .collect()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyst::schema::Schema;
    use catalyst::types::{DataType, StructField};

    fn users_db() -> Arc<RemoteDb> {
        let db = RemoteDb::new();
        let schema = Arc::new(Schema::new(vec![
            StructField::new("id", DataType::Long, false),
            StructField::new("name", DataType::String, false),
            StructField::new("registrationDate", DataType::Date, false),
        ]));
        let rows: Vec<Row> = (0..100)
            .map(|i| {
                Row::new(vec![
                    Value::Long(i),
                    Value::str(format!("user{i}")),
                    Value::Date(16000 + i as i32 * 10),
                ])
            })
            .collect();
        db.create_table("users", schema, rows);
        db
    }

    #[test]
    fn pushdown_reduces_bytes_on_the_wire() {
        let db = users_db();
        let rel = JdbcRelation::connect(db.clone(), "users", None, 1).unwrap();

        // Full scan.
        let all: Vec<Row> = rel.scan_partition(0, None, &[]).unwrap().collect();
        assert_eq!(all.len(), 100);
        let full_bytes = db.bytes_transferred();
        db.reset_meters();

        // Filtered + projected scan (the §5.3 query shape).
        let filters = [Filter::Gt("registrationDate".into(), Value::Date(16800))];
        let some: Vec<Row> = rel
            .scan_partition(0, Some(&[0, 1]), &filters)
            .unwrap()
            .collect();
        assert!(some.len() < 30);
        assert!(
            db.bytes_transferred() < full_bytes / 3,
            "pushdown should cut wire bytes: {} vs {full_bytes}",
            db.bytes_transferred()
        );
    }

    #[test]
    fn generated_remote_query_shows_pushdown() {
        let db = users_db();
        let rel = JdbcRelation::connect(db.clone(), "users", None, 1).unwrap();
        let filters = [Filter::Gt("registrationDate".into(), Value::Date(16436))];
        let _: Vec<Row> = rel
            .scan_partition(0, Some(&[0, 1]), &filters)
            .unwrap()
            .collect();
        let log = db.query_log();
        let q = log.last().unwrap();
        // Mirrors the paper's: SELECT users.id, users.name FROM users
        // WHERE users.registrationDate > "2015-01-01".
        assert!(q.starts_with("SELECT id, name FROM users WHERE"), "{q}");
        assert!(q.contains("registrationDate >"), "{q}");
        assert!(q.contains("2015-01-01"), "{q}");
    }

    #[test]
    fn sharded_scans_partition_ranges() {
        let db = users_db();
        let rel = JdbcRelation::connect(db, "users", Some("id"), 4).unwrap();
        assert_eq!(rel.num_partitions(), 4);
        let mut all = Vec::new();
        for p in 0..4 {
            all.extend(rel.scan_partition(p, None, &[]).unwrap());
        }
        assert_eq!(all.len(), 100, "shards must cover every row exactly once");
        let mut ids: Vec<i64> = all.iter().map(|r| r.get_long(0)).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn global_registry_resolves_urls() {
        let db = users_db();
        register_database("jdbc:mysql://userDB/users", db.clone());
        let found = lookup_database("jdbc:mysql://userDB/users").unwrap();
        assert!(Arc::ptr_eq(&db, &found));
        assert!(lookup_database("jdbc:mysql://nope").is_none());
    }

    #[test]
    fn missing_table_errors() {
        let db = RemoteDb::new();
        assert!(JdbcRelation::connect(db, "ghost", None, 1).is_err());
    }
}
