//! Data sources for the Spark SQL reproduction (§4.4.1, §5.1, §5.3).
//!
//! Implements the paper's source lineup against the Catalyst
//! [`catalyst::source::BaseRelation`] API:
//!
//! * [`csv`] — whole-file scans with optional user schema and type
//!   inference;
//! * [`json`] — newline-delimited JSON with single-pass "most specific
//!   supertype" schema inference (reproduces Figures 5–6);
//! * [`colfile`] — a Parquet-like columnar binary format with
//!   dictionary/RLE encodings, column pruning, and statistics-based
//!   row-group skipping;
//! * [`jdbc`] — query federation to a simulated remote database with
//!   exact filter/projection pushdown over a byte-metered link;
//! * [`registry`] — the `USING <provider> OPTIONS(…)` factory registry.

#![warn(missing_docs)]

pub mod colfile;
pub mod csv;
pub mod ddl;
pub mod jdbc;
pub mod json;
pub mod registry;

pub use colfile::{read_colfile, write_colfile, ColFileRelation};
pub use csv::{CsvOptions, CsvRelation};
pub use ddl::{parse_schema_ddl, schema_to_ddl};
pub use jdbc::{lookup_database, register_database, JdbcRelation, RemoteDb};
pub use json::JsonRelation;
pub use registry::{DataSourceRegistry, Options};
