//! JSON schema inference (§5.1).
//!
//! One pass over the records: each record yields a schema (a tree of
//! STRUCT types), and schemata are merged with an associative "most
//! specific supertype" function — the same reduce-friendly formulation
//! the paper uses, which makes the algorithm single-pass and
//! communication-efficient. Fields that appear as both integers and
//! fractions generalize to FLOAT; incompatible types generalize to
//! STRING, preserving the original JSON representation.

use super::parse::Json;
use catalyst::schema::Schema;
use catalyst::types::{DataType, StructField};

/// Infer the type of one JSON value. Integers that fit 32 bits infer as
/// INT, larger as LONG; fractions as FLOAT (widening to DOUBLE happens
/// only via merging with DOUBLE values).
pub fn infer_value_type(v: &Json) -> DataType {
    match v {
        Json::Null => DataType::Null,
        Json::Bool(_) => DataType::Boolean,
        Json::Int(i) => {
            if *i >= i32::MIN as i64 && *i <= i32::MAX as i64 {
                DataType::Int
            } else {
                DataType::Long
            }
        }
        Json::Float(_) => DataType::Float,
        Json::Str(_) => DataType::String,
        Json::Array(items) => {
            // "Most specific supertype" over the observed elements.
            let elem = items
                .iter()
                .map(infer_value_type)
                .reduce(|a, b| DataType::tightest_common_type(&a, &b).unwrap_or(DataType::String))
                .unwrap_or(DataType::Null);
            DataType::Array(Box::new(elem))
        }
        Json::Object(fields) => DataType::struct_type(
            fields
                .iter()
                .map(|(k, v)| {
                    StructField::new(k.as_str(), infer_value_type(v), matches!(v, Json::Null))
                })
                .collect(),
        ),
    }
}

/// Merge two record schemata (associative; identity = empty struct).
pub fn merge_types(a: &DataType, b: &DataType) -> DataType {
    DataType::tightest_common_type(a, b).unwrap_or(DataType::String)
}

/// Infer a relation schema from a set of JSON records (each must be an
/// object). This is the "single reduce operation over the data".
pub fn infer_schema<'a>(records: impl IntoIterator<Item = &'a Json>) -> Schema {
    let merged = records
        .into_iter()
        .map(infer_value_type)
        .reduce(|a, b| merge_types(&a, &b));
    match merged {
        Some(DataType::Struct(fields)) => Schema::new(fields.as_ref().clone()),
        _ => Schema::new(vec![]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse::parse_json;

    /// The paper's Figure 5 records must infer the Figure 6 schema.
    #[test]
    fn figure5_infers_figure6() {
        let records = [
            r##"{"text": "This is a tweet about #Spark", "tags": ["#Spark"],
                "loc": {"lat": 45.1, "long": 90}}"##,
            r#"{"text": "This is another tweet", "tags": [],
                "loc": {"lat": 39, "long": 88.5}}"#,
            r##"{"text": "A #tweet without #location", "tags": ["#tweet", "#location"]}"##,
        ];
        let parsed: Vec<_> = records.iter().map(|r| parse_json(r).unwrap()).collect();
        let schema = infer_schema(parsed.iter());

        // text STRING NOT NULL
        let text = &schema.fields()[schema.index_of("text").unwrap()];
        assert_eq!(text.dtype, DataType::String);
        assert!(!text.nullable);

        // tags ARRAY<STRING NOT NULL> NOT NULL
        let tags = &schema.fields()[schema.index_of("tags").unwrap()];
        assert_eq!(tags.dtype, DataType::Array(Box::new(DataType::String)));
        assert!(!tags.nullable);

        // loc STRUCT<lat FLOAT NOT NULL, long FLOAT NOT NULL> — nullable
        // because the third tweet has no loc; lat/long generalize
        // INT ∨ FLOAT → FLOAT exactly as the paper describes.
        let loc = &schema.fields()[schema.index_of("loc").unwrap()];
        assert!(loc.nullable);
        match &loc.dtype {
            DataType::Struct(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].name.as_ref(), "lat");
                assert_eq!(fields[0].dtype, DataType::Float);
                assert!(!fields[0].nullable);
                assert_eq!(fields[1].dtype, DataType::Float);
            }
            other => panic!("expected struct, got {other}"),
        }
    }

    #[test]
    fn int_widens_to_long_and_float() {
        let a = parse_json(r#"{"n": 1}"#).unwrap();
        let b = parse_json(r#"{"n": 10000000000}"#).unwrap();
        let schema = infer_schema([&a, &b]);
        assert_eq!(schema.fields()[0].dtype, DataType::Long);

        let c = parse_json(r#"{"n": 1.5}"#).unwrap();
        let schema = infer_schema([&a, &c]);
        assert_eq!(schema.fields()[0].dtype, DataType::Float);
    }

    #[test]
    fn mixed_types_generalize_to_string() {
        let a = parse_json(r#"{"v": 1}"#).unwrap();
        let b = parse_json(r#"{"v": true}"#).unwrap();
        let schema = infer_schema([&a, &b]);
        assert_eq!(schema.fields()[0].dtype, DataType::String);
    }

    #[test]
    fn null_then_value_is_nullable_typed() {
        let a = parse_json(r#"{"v": null}"#).unwrap();
        let b = parse_json(r#"{"v": 3}"#).unwrap();
        let schema = infer_schema([&a, &b]);
        assert_eq!(schema.fields()[0].dtype, DataType::Int);
        assert!(schema.fields()[0].nullable);
    }

    #[test]
    fn merge_is_associative_on_samples() {
        let records = [
            r#"{"a": 1, "b": "x"}"#,
            r#"{"a": 2.5, "c": [1]}"#,
            r#"{"b": "y", "c": [2.5]}"#,
        ];
        let parsed: Vec<_> = records.iter().map(|r| parse_json(r).unwrap()).collect();
        let types: Vec<_> = parsed.iter().map(infer_value_type).collect();
        let left = merge_types(&merge_types(&types[0], &types[1]), &types[2]);
        let right = merge_types(&types[0], &merge_types(&types[1], &types[2]));
        assert_eq!(left, right);
    }

    #[test]
    fn deep_nesting() {
        let a = parse_json(r#"{"u": {"addr": {"city": "SF", "zip": 94107}}}"#).unwrap();
        let b = parse_json(r#"{"u": {"addr": {"city": "NYC"}, "age": 3}}"#).unwrap();
        let schema = infer_schema([&a, &b]);
        let u = &schema.fields()[0];
        let DataType::Struct(u_fields) = &u.dtype else {
            panic!()
        };
        let addr = u_fields.iter().find(|f| f.name.as_ref() == "addr").unwrap();
        let DataType::Struct(addr_fields) = &addr.dtype else {
            panic!()
        };
        let zip = addr_fields
            .iter()
            .find(|f| f.name.as_ref() == "zip")
            .unwrap();
        assert!(zip.nullable, "zip missing in one record");
        let age = u_fields.iter().find(|f| f.name.as_ref() == "age").unwrap();
        assert!(age.nullable);
    }
}
