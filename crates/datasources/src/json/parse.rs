//! A small self-contained JSON parser (no external JSON crate in the
//! allowed dependency set). Integers and fractions are kept distinct so
//! the §5.1 inference algorithm can pick INT / LONG / FLOAT faithfully.

use catalyst::error::{CatalystError, Result};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral number.
    Int(i64),
    /// Fractional number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object — insertion order preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parse one JSON document.
pub fn parse_json(text: &str) -> Result<Json> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = JsonParser { chars, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(CatalystError::DataSource(format!(
            "trailing JSON content at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct JsonParser {
    chars: Vec<char>,
    pos: usize,
}

impl JsonParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(CatalystError::DataSource(format!(
                "expected '{c}' at offset {}, found {got:?}",
                self.pos - 1
            ))),
        }
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(CatalystError::DataSource(format!(
                "unexpected JSON character {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        for expected in word.chars() {
            match self.bump() {
                Some(c) if c == expected => {}
                _ => {
                    return Err(CatalystError::DataSource(format!(
                        "bad JSON literal, expected '{word}'"
                    )))
                }
            }
        }
        Ok(value)
    }

    fn object(&mut self) -> Result<Json> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => break,
                other => {
                    return Err(CatalystError::DataSource(format!(
                        "expected ',' or '}}' in object, found {other:?}"
                    )))
                }
            }
        }
        Ok(Json::Object(fields))
    }

    fn array(&mut self) -> Result<Json> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => break,
                other => {
                    return Err(CatalystError::DataSource(format!(
                        "expected ',' or ']' in array, found {other:?}"
                    )))
                }
            }
        }
        Ok(Json::Array(items))
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(CatalystError::DataSource("unterminated JSON string".into())),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump().ok_or_else(|| {
                                CatalystError::DataSource("truncated \\u escape".into())
                            })?;
                            code = code * 16
                                + c.to_digit(16).ok_or_else(|| {
                                    CatalystError::DataSource("bad \\u escape".into())
                                })?;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(CatalystError::DataSource(format!("bad escape \\{other:?}")))
                    }
                },
                Some(c) => s.push(c),
            }
        }
        Ok(s)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    self.bump();
                }
                '.' | 'e' | 'E' | '+' | '-' => {
                    fractional = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if fractional {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| CatalystError::DataSource(format!("bad number '{text}'")))
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(Json::Int(v)),
                // Overflowing integers degrade to float.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| CatalystError::DataSource(format!("bad number '{text}'"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_tweet() {
        let j = parse_json(
            r##"{"text": "This is a tweet about #Spark", "tags": ["#Spark"],
                "loc": {"lat": 45.1, "long": 90}}"##,
        )
        .unwrap();
        assert_eq!(
            j.get("text"),
            Some(&Json::Str("This is a tweet about #Spark".into()))
        );
        assert_eq!(j.get("loc").unwrap().get("lat"), Some(&Json::Float(45.1)));
        assert_eq!(j.get("loc").unwrap().get("long"), Some(&Json::Int(90)));
    }

    #[test]
    fn numbers_keep_int_float_distinction() {
        assert_eq!(parse_json("42").unwrap(), Json::Int(42));
        assert_eq!(parse_json("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse_json("4.5").unwrap(), Json::Float(4.5));
        assert_eq!(parse_json("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(
            parse_json(r#""a\"b\nA""#).unwrap(),
            Json::Str("a\"b\nA".into())
        );
    }

    #[test]
    fn arrays_and_nesting() {
        let j = parse_json(r#"[1, [2, 3], {"k": null}]"#).unwrap();
        match j {
            Json::Array(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("k"), Some(&Json::Null));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
        assert!(parse_json("tru").is_err());
        assert!(parse_json("1 2").is_err());
    }
}
