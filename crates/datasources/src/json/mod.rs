//! JSON data source with automatic schema inference (§5.1).

pub mod infer;
pub mod parse;

pub use infer::{infer_schema, infer_value_type, merge_types};
pub use parse::{parse_json, Json};

use catalyst::error::{CatalystError, Result};
use catalyst::row::Row;
use catalyst::schema::{Schema, SchemaRef};
use catalyst::source::{BaseRelation, Filter, RowIter, ScanCapability};
use catalyst::types::DataType;
use catalyst::value::Value;
use std::sync::Arc;

/// Convert a JSON value to a Catalyst [`Value`] of the target type,
/// coercing numerics and representing mismatches as the original text
/// when the target is STRING (the §5.1 "preserving the original JSON
/// representation" rule).
pub fn json_to_value(v: &Json, target: &DataType) -> Value {
    match (v, target) {
        (Json::Null, _) => Value::Null,
        (Json::Bool(b), DataType::Boolean) => Value::Boolean(*b),
        (Json::Int(i), DataType::Int) => Value::Int(*i as i32),
        (Json::Int(i), DataType::Long) => Value::Long(*i),
        (Json::Int(i), DataType::Float) => Value::Float(*i as f32),
        (Json::Int(i), DataType::Double) => Value::Double(*i as f64),
        (Json::Float(f), DataType::Float) => Value::Float(*f as f32),
        (Json::Float(f), DataType::Double) => Value::Double(*f),
        (Json::Float(f), DataType::Long) => Value::Long(*f as i64),
        (Json::Float(f), DataType::Int) => Value::Int(*f as i32),
        (Json::Str(s), DataType::String) => Value::str(s),
        (Json::Array(items), DataType::Array(elem)) => Value::Array(Arc::new(
            items.iter().map(|i| json_to_value(i, elem)).collect(),
        )),
        (Json::Object(_), DataType::Struct(fields)) => {
            let values: Vec<Value> = fields
                .iter()
                .map(|f| match v.get(&f.name) {
                    Some(inner) => json_to_value(inner, &f.dtype),
                    None => Value::Null,
                })
                .collect();
            Value::Struct(Arc::new(values))
        }
        // STRING absorbs anything, keeping the original representation.
        (other, DataType::String) => Value::str(render_json(other)),
        _ => Value::Null,
    }
}

fn render_json(v: &Json) -> String {
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Int(i) => i.to_string(),
        Json::Float(f) => f.to_string(),
        Json::Str(s) => s.clone(),
        Json::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_json).collect();
            format!("[{}]", inner.join(","))
        }
        Json::Object(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{k}\":{}", render_json(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// Convert one top-level record into a row for `schema`.
pub fn json_to_row(record: &Json, schema: &Schema) -> Row {
    Row::new(
        schema
            .fields()
            .iter()
            .map(|f| match record.get(&f.name) {
                Some(v) => json_to_value(v, &f.dtype),
                None => Value::Null,
            })
            .collect(),
    )
}

/// A table over newline-delimited JSON records, with inferred or supplied
/// schema.
pub struct JsonRelation {
    name: String,
    schema: SchemaRef,
    partitions: Vec<Arc<Vec<Row>>>,
    bytes: u64,
}

impl JsonRelation {
    /// Build from record lines, inferring the schema (optionally from a
    /// sample of `sample` records, as §5.1 allows).
    pub fn from_lines(
        name: impl Into<String>,
        lines: impl IntoIterator<Item = impl AsRef<str>>,
        num_partitions: usize,
        sample: Option<usize>,
    ) -> Result<Self> {
        let mut records = Vec::new();
        let mut bytes = 0u64;
        for line in lines {
            let line = line.as_ref().trim();
            if line.is_empty() {
                continue;
            }
            bytes += line.len() as u64;
            records.push(parse_json(line)?);
        }
        let inferred = match sample {
            Some(n) => infer_schema(records.iter().take(n.max(1))),
            None => infer_schema(records.iter()),
        };
        Self::with_schema_records(name, Arc::new(inferred), records, num_partitions, bytes)
    }

    /// Build with a user-provided schema.
    pub fn from_lines_with_schema(
        name: impl Into<String>,
        schema: SchemaRef,
        lines: impl IntoIterator<Item = impl AsRef<str>>,
        num_partitions: usize,
    ) -> Result<Self> {
        let mut records = Vec::new();
        let mut bytes = 0u64;
        for line in lines {
            let line = line.as_ref().trim();
            if line.is_empty() {
                continue;
            }
            bytes += line.len() as u64;
            records.push(parse_json(line)?);
        }
        Self::with_schema_records(name, schema, records, num_partitions, bytes)
    }

    /// Build from a file of newline-delimited records.
    pub fn from_path(path: &str, num_partitions: usize) -> Result<Self> {
        let content = std::fs::read_to_string(path)
            .map_err(|e| CatalystError::DataSource(format!("cannot read '{path}': {e}")))?;
        Self::from_lines(path, content.lines(), num_partitions, None)
    }

    fn with_schema_records(
        name: impl Into<String>,
        schema: SchemaRef,
        records: Vec<Json>,
        num_partitions: usize,
        bytes: u64,
    ) -> Result<Self> {
        let rows: Vec<Row> = records.iter().map(|r| json_to_row(r, &schema)).collect();
        let num_partitions = num_partitions.max(1);
        let base = rows.len() / num_partitions;
        let extra = rows.len() % num_partitions;
        let mut it = rows.into_iter();
        let mut partitions = Vec::with_capacity(num_partitions);
        for i in 0..num_partitions {
            let len = base + usize::from(i < extra);
            partitions.push(Arc::new(it.by_ref().take(len).collect::<Vec<Row>>()));
        }
        Ok(JsonRelation {
            name: name.into(),
            schema,
            partitions,
            bytes,
        })
    }

    /// Total record count.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// True when there are no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BaseRelation for JsonRelation {
    fn name(&self) -> String {
        format!("json:{}", self.name)
    }

    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn size_in_bytes(&self) -> Option<u64> {
        Some(self.bytes)
    }

    fn row_count(&self) -> Option<u64> {
        Some(self.len() as u64)
    }

    fn capability(&self) -> ScanCapability {
        // Pruning supported; filters advisory (rows re-checked above).
        ScanCapability::PrunedScan
    }

    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn scan_partition(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        _filters: &[Filter],
    ) -> Result<RowIter> {
        let rows = self.partitions[partition].clone();
        let proj: Option<Vec<usize>> = projection.map(|p| p.to_vec());
        Ok(Box::new((0..rows.len()).map(move |i| match &proj {
            Some(p) => rows[i].project(p),
            None => rows[i].clone(),
        })))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_infers_and_scans() {
        let lines = [
            r#"{"a": 1, "b": "x"}"#,
            r#"{"a": 2.5}"#,
            r#"{"a": 3, "b": "y"}"#,
        ];
        let rel = JsonRelation::from_lines("t", lines, 2, None).unwrap();
        assert_eq!(rel.schema().len(), 2);
        assert_eq!(rel.schema().field(0).dtype, DataType::Float);
        let mut rows = Vec::new();
        for p in 0..rel.num_partitions() {
            rows.extend(rel.scan_partition(p, None, &[]).unwrap());
        }
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(0), &Value::Float(1.0));
        assert_eq!(rows[1].get(1), &Value::Null); // b missing
    }

    #[test]
    fn projection_prunes_columns() {
        let lines = [r#"{"a": 1, "b": "x"}"#];
        let rel = JsonRelation::from_lines("t", lines, 1, None).unwrap();
        let b_idx = rel.schema().index_of("b").unwrap();
        let rows: Vec<Row> = rel
            .scan_partition(0, Some(&[b_idx]), &[])
            .unwrap()
            .collect();
        assert_eq!(rows[0], Row::new(vec![Value::str("x")]));
    }

    #[test]
    fn mixed_type_field_keeps_original_representation() {
        let lines = [r#"{"v": 1}"#, r#"{"v": {"nested": true}}"#];
        let rel = JsonRelation::from_lines("t", lines, 1, None).unwrap();
        assert_eq!(rel.schema().field(0).dtype, DataType::String);
        let rows: Vec<Row> = rel.scan_partition(0, None, &[]).unwrap().collect();
        assert_eq!(rows[0].get(0), &Value::str("1"));
        assert_eq!(rows[1].get(0), &Value::str(r#"{"nested":true}"#));
    }

    #[test]
    fn sampled_inference_uses_prefix() {
        let lines = [r#"{"v": 1}"#, r#"{"v": "later surprise"}"#];
        let rel = JsonRelation::from_lines("t", lines, 1, Some(1)).unwrap();
        // Sampled on the first record only: INT; the later string row
        // degrades to NULL for that column.
        assert_eq!(rel.schema().field(0).dtype, DataType::Int);
        let rows: Vec<Row> = rel.scan_partition(0, None, &[]).unwrap().collect();
        assert_eq!(rows[1].get(0), &Value::Null);
    }
}
