//! "ColFile": a self-describing columnar file format — the reproduction's
//! stand-in for Parquet (§4.4.1: "a columnar file format for which we
//! support column pruning as well as filters").
//!
//! Layout: magic, schema, then row groups; each row group stores one
//! encoded column chunk per field (dictionary/RLE/bit-packed, with null
//! bitmap and min/max statistics). Scans prune columns (untouched chunks
//! are never decoded) and skip entire row groups whose statistics cannot
//! match the pushed filters.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use catalyst::error::{CatalystError, Result};
use catalyst::row::Row;
use catalyst::schema::{Schema, SchemaRef};
use catalyst::source::{BaseRelation, BatchIter, Filter, RowIter, ScanCapability};
use catalyst::types::{DataType, StructField};
use catalyst::value::Value;
use columnar::{Bitmap, ColumnData, ColumnStats, ColumnarBatch, EncodedColumn};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"RCF1";

// ---- value serialization (tagged) ----

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Boolean(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(x) => {
            buf.put_u8(2);
            buf.put_i32(*x);
        }
        Value::Long(x) => {
            buf.put_u8(3);
            buf.put_i64(*x);
        }
        Value::Float(x) => {
            buf.put_u8(4);
            buf.put_f32(*x);
        }
        Value::Double(x) => {
            buf.put_u8(5);
            buf.put_f64(*x);
        }
        Value::Decimal(u, p, s) => {
            buf.put_u8(6);
            buf.put_i128(*u);
            buf.put_u8(*p);
            buf.put_u8(*s);
        }
        Value::Str(s) => {
            buf.put_u8(7);
            put_str(buf, s);
        }
        Value::Date(d) => {
            buf.put_u8(8);
            buf.put_i32(*d);
        }
        Value::Timestamp(t) => {
            buf.put_u8(9);
            buf.put_i64(*t);
        }
        Value::Binary(b) => {
            buf.put_u8(10);
            buf.put_u32(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Array(items) => {
            buf.put_u8(11);
            buf.put_u32(items.len() as u32);
            for i in items.iter() {
                put_value(buf, i);
            }
        }
        Value::Struct(items) => {
            buf.put_u8(12);
            buf.put_u32(items.len() as u32);
            for i in items.iter() {
                put_value(buf, i);
            }
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    let tag = checked_u8(buf)?;
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Boolean(checked_u8(buf)? != 0),
        2 => Value::Int(checked(buf, 4)?.get_i32()),
        3 => Value::Long(checked(buf, 8)?.get_i64()),
        4 => Value::Float(checked(buf, 4)?.get_f32()),
        5 => Value::Double(checked(buf, 8)?.get_f64()),
        6 => {
            let u = checked(buf, 16)?.get_i128();
            let p = checked_u8(buf)?;
            let s = checked_u8(buf)?;
            Value::Decimal(u, p, s)
        }
        7 => Value::Str(Arc::from(get_str(buf)?)),
        8 => Value::Date(checked(buf, 4)?.get_i32()),
        9 => Value::Timestamp(checked(buf, 8)?.get_i64()),
        10 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = vec![0u8; n];
            checked(buf, n)?.copy_to_slice(&mut v);
            Value::Binary(Arc::from(v.into_boxed_slice()))
        }
        11 | 12 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get_value(buf)?);
            }
            if tag == 11 {
                Value::Array(Arc::new(items))
            } else {
                Value::Struct(Arc::new(items))
            }
        }
        other => return Err(corrupt(format!("bad value tag {other}"))),
    })
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    let n = checked(buf, 4)?.get_u32() as usize;
    let mut v = vec![0u8; n];
    checked(buf, n)?.copy_to_slice(&mut v);
    String::from_utf8(v).map_err(|_| corrupt("invalid utf8"))
}

fn corrupt(msg: impl Into<String>) -> CatalystError {
    CatalystError::DataSource(format!("corrupt colfile: {}", msg.into()))
}

fn checked(buf: &mut Bytes, n: usize) -> Result<&mut Bytes> {
    if buf.remaining() < n {
        Err(corrupt("unexpected end of file"))
    } else {
        Ok(buf)
    }
}

fn checked_u8(buf: &mut Bytes) -> Result<u8> {
    Ok(checked(buf, 1)?.get_u8())
}

// ---- data type serialization ----

fn put_dtype(buf: &mut BytesMut, t: &DataType) {
    match t {
        DataType::Null => buf.put_u8(0),
        DataType::Boolean => buf.put_u8(1),
        DataType::Int => buf.put_u8(2),
        DataType::Long => buf.put_u8(3),
        DataType::Float => buf.put_u8(4),
        DataType::Double => buf.put_u8(5),
        DataType::Decimal(p, s) => {
            buf.put_u8(6);
            buf.put_u8(*p);
            buf.put_u8(*s);
        }
        DataType::String => buf.put_u8(7),
        DataType::Date => buf.put_u8(8),
        DataType::Timestamp => buf.put_u8(9),
        DataType::Binary => buf.put_u8(10),
        DataType::Array(e) => {
            buf.put_u8(11);
            put_dtype(buf, e);
        }
        DataType::Struct(fields) => {
            buf.put_u8(12);
            buf.put_u32(fields.len() as u32);
            for f in fields.iter() {
                put_str(buf, &f.name);
                put_dtype(buf, &f.dtype);
                buf.put_u8(u8::from(f.nullable));
            }
        }
        DataType::Map(k, v) => {
            buf.put_u8(13);
            put_dtype(buf, k);
            put_dtype(buf, v);
        }
    }
}

fn get_dtype(buf: &mut Bytes) -> Result<DataType> {
    Ok(match checked_u8(buf)? {
        0 => DataType::Null,
        1 => DataType::Boolean,
        2 => DataType::Int,
        3 => DataType::Long,
        4 => DataType::Float,
        5 => DataType::Double,
        6 => DataType::Decimal(checked_u8(buf)?, checked_u8(buf)?),
        7 => DataType::String,
        8 => DataType::Date,
        9 => DataType::Timestamp,
        10 => DataType::Binary,
        11 => DataType::Array(Box::new(get_dtype(buf)?)),
        12 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = get_str(buf)?;
                let dtype = get_dtype(buf)?;
                let nullable = checked_u8(buf)? != 0;
                fields.push(StructField::new(name, dtype, nullable));
            }
            DataType::struct_type(fields)
        }
        13 => DataType::Map(Box::new(get_dtype(buf)?), Box::new(get_dtype(buf)?)),
        other => return Err(corrupt(format!("bad type tag {other}"))),
    })
}

// ---- column serialization ----

fn put_column(buf: &mut BytesMut, c: &EncodedColumn) {
    put_dtype(buf, &c.dtype);
    buf.put_u64(c.len() as u64);
    match &c.nulls {
        None => buf.put_u8(0),
        Some(b) => {
            buf.put_u8(1);
            buf.put_u32(b.words().len() as u32);
            for w in b.words() {
                buf.put_u64(*w);
            }
        }
    }
    // Stats.
    put_value(buf, &c.stats.min.clone().unwrap_or(Value::Null));
    put_value(buf, &c.stats.max.clone().unwrap_or(Value::Null));
    buf.put_u64(c.stats.null_count);
    buf.put_u64(c.stats.row_count);
    // Payload.
    match &c.data {
        ColumnData::Int(v) => {
            buf.put_u8(0);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|x| buf.put_i32(*x));
        }
        ColumnData::Long(v) => {
            buf.put_u8(1);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|x| buf.put_i64(*x));
        }
        ColumnData::RleInt(runs) => {
            buf.put_u8(2);
            buf.put_u32(runs.len() as u32);
            runs.iter().for_each(|(x, n)| {
                buf.put_i32(*x);
                buf.put_u32(*n);
            });
        }
        ColumnData::RleLong(runs) => {
            buf.put_u8(3);
            buf.put_u32(runs.len() as u32);
            runs.iter().for_each(|(x, n)| {
                buf.put_i64(*x);
                buf.put_u32(*n);
            });
        }
        ColumnData::Float(v) => {
            buf.put_u8(4);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|x| buf.put_f32(*x));
        }
        ColumnData::Double(v) => {
            buf.put_u8(5);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|x| buf.put_f64(*x));
        }
        ColumnData::Str(v) => {
            buf.put_u8(6);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|s| put_str(buf, s));
        }
        ColumnData::DictStr { dict, codes } => {
            buf.put_u8(7);
            buf.put_u32(dict.len() as u32);
            dict.iter().for_each(|s| put_str(buf, s));
            buf.put_u32(codes.len() as u32);
            codes.iter().for_each(|c| buf.put_u32(*c));
        }
        ColumnData::Bool { words, len } => {
            buf.put_u8(8);
            buf.put_u64(*len as u64);
            buf.put_u32(words.len() as u32);
            words.iter().for_each(|w| buf.put_u64(*w));
        }
        ColumnData::Values(v) => {
            buf.put_u8(9);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|x| put_value(buf, x));
        }
        ColumnData::StructCols(cols) => {
            buf.put_u8(10);
            buf.put_u32(cols.len() as u32);
            cols.iter().for_each(|c| put_column(buf, c));
        }
    }
}

fn get_column(buf: &mut Bytes) -> Result<EncodedColumn> {
    let dtype = get_dtype(buf)?;
    let len = checked(buf, 8)?.get_u64() as usize;
    let nulls = match checked_u8(buf)? {
        0 => None,
        _ => {
            let nwords = checked(buf, 4)?.get_u32() as usize;
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(checked(buf, 8)?.get_u64());
            }
            Some(Bitmap::from_words(words, len))
        }
    };
    let min = get_value(buf)?;
    let max = get_value(buf)?;
    let null_count = checked(buf, 8)?.get_u64();
    let row_count = checked(buf, 8)?.get_u64();
    let stats = ColumnStats {
        min: if min.is_null() { None } else { Some(min) },
        max: if max.is_null() { None } else { Some(max) },
        null_count,
        row_count,
    };
    let data = match checked_u8(buf)? {
        0 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(checked(buf, 4)?.get_i32());
            }
            ColumnData::Int(v)
        }
        1 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(checked(buf, 8)?.get_i64());
            }
            ColumnData::Long(v)
        }
        2 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let x = checked(buf, 4)?.get_i32();
                let c = checked(buf, 4)?.get_u32();
                v.push((x, c));
            }
            ColumnData::RleInt(v)
        }
        3 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let x = checked(buf, 8)?.get_i64();
                let c = checked(buf, 4)?.get_u32();
                v.push((x, c));
            }
            ColumnData::RleLong(v)
        }
        4 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(checked(buf, 4)?.get_f32());
            }
            ColumnData::Float(v)
        }
        5 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(checked(buf, 8)?.get_f64());
            }
            ColumnData::Double(v)
        }
        6 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(Arc::from(get_str(buf)?));
            }
            ColumnData::Str(v)
        }
        7 => {
            let nd = checked(buf, 4)?.get_u32() as usize;
            let mut dict = Vec::with_capacity(nd);
            for _ in 0..nd {
                dict.push(Arc::from(get_str(buf)?));
            }
            let nc = checked(buf, 4)?.get_u32() as usize;
            let mut codes = Vec::with_capacity(nc);
            for _ in 0..nc {
                codes.push(checked(buf, 4)?.get_u32());
            }
            ColumnData::DictStr { dict, codes }
        }
        8 => {
            let blen = checked(buf, 8)?.get_u64() as usize;
            let nwords = checked(buf, 4)?.get_u32() as usize;
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(checked(buf, 8)?.get_u64());
            }
            ColumnData::Bool { words, len: blen }
        }
        9 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(get_value(buf)?);
            }
            ColumnData::Values(v)
        }
        10 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                cols.push(get_column(buf)?);
            }
            ColumnData::StructCols(cols)
        }
        other => return Err(corrupt(format!("bad column tag {other}"))),
    };
    Ok(EncodedColumn::from_parts(dtype, nulls, stats, data, len))
}

// ---- file-level API ----

/// Serialize rows into colfile bytes with `rows_per_group` per row group.
pub fn write_colfile(schema: &SchemaRef, rows: &[Row], rows_per_group: usize) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    // Schema.
    put_dtype(&mut buf, &schema.as_struct_type());
    let groups: Vec<&[Row]> = rows.chunks(rows_per_group.max(1)).collect();
    buf.put_u32(groups.len() as u32);
    for g in groups {
        let batch = ColumnarBatch::from_rows(schema.clone(), g.to_vec());
        buf.put_u64(g.len() as u64);
        for c in batch.columns() {
            put_column(&mut buf, c);
        }
    }
    buf.freeze()
}

/// Parsed colfile: schema + row groups of encoded columns.
pub struct ColFile {
    /// Schema.
    pub schema: SchemaRef,
    /// Row groups.
    pub groups: Vec<ColumnarBatch>,
}

/// Deserialize a colfile.
pub fn read_colfile(mut data: Bytes) -> Result<ColFile> {
    let mut magic = [0u8; 4];
    checked(&mut data, 4)?.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let schema = match get_dtype(&mut data)? {
        DataType::Struct(fields) => Arc::new(Schema::new(fields.as_ref().clone())),
        _ => return Err(corrupt("schema is not a struct")),
    };
    let ngroups = checked(&mut data, 4)?.get_u32() as usize;
    let mut groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        let nrows = checked(&mut data, 8)?.get_u64() as usize;
        let mut columns = Vec::with_capacity(schema.len());
        for _ in 0..schema.len() {
            columns.push(get_column(&mut data)?);
        }
        groups.push(ColumnarBatch::from_columns(schema.clone(), columns, nrows));
    }
    Ok(ColFile { schema, groups })
}

/// A relation over a colfile (in memory or loaded from disk), with column
/// pruning and statistics-based row-group skipping.
pub struct ColFileRelation {
    name: String,
    file: ColFile,
    bytes: u64,
    /// Row groups skipped via statistics since creation (observability
    /// for tests and the ablation bench).
    groups_skipped: AtomicU64,
    /// Row groups actually decoded.
    groups_read: AtomicU64,
}

impl ColFileRelation {
    /// Wrap parsed bytes.
    pub fn from_bytes(name: impl Into<String>, data: Bytes) -> Result<Self> {
        let bytes = data.len() as u64;
        Ok(ColFileRelation {
            name: name.into(),
            file: read_colfile(data)?,
            bytes,
            groups_skipped: AtomicU64::new(0),
            groups_read: AtomicU64::new(0),
        })
    }

    /// Load from a file path.
    pub fn from_path(path: &str) -> Result<Self> {
        let data = std::fs::read(path)
            .map_err(|e| CatalystError::DataSource(format!("cannot read '{path}': {e}")))?;
        Self::from_bytes(path, Bytes::from(data))
    }

    /// Write rows to a colfile on disk.
    pub fn write_path(path: &str, schema: &SchemaRef, rows: &[Row], rows_per_group: usize) -> Result<()> {
        let data = write_colfile(schema, rows, rows_per_group);
        std::fs::write(path, &data)
            .map_err(|e| CatalystError::DataSource(format!("cannot write '{path}': {e}")))
    }

    /// Row groups skipped by statistics so far.
    pub fn groups_skipped(&self) -> u64 {
        self.groups_skipped.load(Ordering::Relaxed)
    }

    /// Row groups decoded so far.
    pub fn groups_read(&self) -> u64 {
        self.groups_read.load(Ordering::Relaxed)
    }
}

impl BaseRelation for ColFileRelation {
    fn name(&self) -> String {
        format!("colfile:{}", self.name)
    }

    fn schema(&self) -> SchemaRef {
        self.file.schema.clone()
    }

    fn size_in_bytes(&self) -> Option<u64> {
        Some(self.bytes)
    }

    fn row_count(&self) -> Option<u64> {
        Some(self.file.groups.iter().map(|g| g.num_rows() as u64).sum())
    }

    fn capability(&self) -> ScanCapability {
        ScanCapability::PrunedFilteredScan
    }

    fn num_partitions(&self) -> usize {
        self.file.groups.len().max(1)
    }

    fn scan_partition(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> Result<RowIter> {
        let Some(group) = self.file.groups.get(partition) else {
            return Ok(Box::new(std::iter::empty()));
        };
        // Statistics-based row-group skipping.
        if !group.may_match(filters) {
            self.groups_skipped.fetch_add(1, Ordering::Relaxed);
            return Ok(Box::new(std::iter::empty()));
        }
        self.groups_read.fetch_add(1, Ordering::Relaxed);
        // Decode only the needed columns; re-check advisory filters per
        // row against the *projected* row when possible, else decode the
        // filter columns too. We keep it exact by evaluating filters on
        // the full row before projecting.
        let schema = group.schema().clone();
        let rows = group.decode(None);
        let filters = filters.to_vec();
        let proj: Option<Vec<usize>> = projection.map(|p| p.to_vec());
        Ok(Box::new(rows.into_iter().filter_map(move |row| {
            for f in &filters {
                if let Ok(i) = schema.index_of(f.column()) {
                    if !f.matches(row.get(i)) {
                        return None;
                    }
                }
            }
            Some(match &proj {
                Some(p) => row.project(p),
                None => row,
            })
        })))
    }

    fn scan_partition_vectors(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> Result<Option<BatchIter>> {
        let Some(group) = self.file.groups.get(partition) else {
            return Ok(Some(Box::new(std::iter::empty())));
        };
        if !group.may_match(filters) {
            self.groups_skipped.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(Box::new(std::iter::empty())));
        }
        self.groups_read.fetch_add(1, Ordering::Relaxed);
        // One row group = one partition: decode the needed columns into
        // vectors, filters become the batch's selection vector — no Row
        // materialization on the way to the executor.
        let batch = group.scan_to_row_batch(projection, filters);
        Ok(Some(Box::new(std::iter::once(batch))))
    }

    fn handled_filters(&self, filters: &[Filter]) -> Vec<bool> {
        // Filters on known columns are evaluated exactly.
        filters
            .iter()
            .map(|f| self.file.schema.index_of(f.column()).is_ok())
            .collect()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            StructField::new("id", DataType::Long, false),
            StructField::new("cat", DataType::String, false),
            StructField::new("score", DataType::Double, true),
        ]))
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Long(i as i64),
                    Value::str(format!("c{}", i % 3)),
                    if i % 10 == 0 { Value::Null } else { Value::Double(i as f64 / 2.0) },
                ])
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_rows() {
        let schema = sample_schema();
        let rows = sample_rows(1000);
        let bytes = write_colfile(&schema, &rows, 128);
        let file = read_colfile(bytes).unwrap();
        assert_eq!(*file.schema, *schema);
        let decoded: Vec<Row> = file.groups.iter().flat_map(|g| g.decode(None)).collect();
        assert_eq!(decoded, rows);
    }

    #[test]
    fn relation_scans_with_projection_and_filters() {
        let schema = sample_schema();
        let rows = sample_rows(1000);
        let rel =
            ColFileRelation::from_bytes("t", write_colfile(&schema, &rows, 100)).unwrap();
        assert_eq!(rel.num_partitions(), 10);
        let filters = [Filter::Gt("id".into(), Value::Long(950))];
        let mut out = Vec::new();
        for p in 0..rel.num_partitions() {
            out.extend(rel.scan_partition(p, Some(&[0]), &filters).unwrap());
        }
        assert_eq!(out.len(), 49);
        assert_eq!(out[0].len(), 1); // projected
        // 9 of 10 groups skipped by min/max stats.
        assert_eq!(rel.groups_skipped(), 9);
        assert_eq!(rel.groups_read(), 1);
    }

    #[test]
    fn filters_are_exact_for_known_columns() {
        let schema = sample_schema();
        let rel = ColFileRelation::from_bytes(
            "t",
            write_colfile(&schema, &sample_rows(10), 10),
        )
        .unwrap();
        let fs = [
            Filter::Gt("id".into(), Value::Long(1)),
            Filter::Eq("missing".into(), Value::Long(1)),
        ];
        assert_eq!(rel.handled_filters(&fs), vec![true, false]);
    }

    #[test]
    fn corrupt_files_error() {
        assert!(read_colfile(Bytes::from_static(b"NOPE")).is_err());
        assert!(read_colfile(Bytes::from_static(b"RCF1")).is_err());
        let schema = sample_schema();
        let good = write_colfile(&schema, &sample_rows(10), 10);
        let truncated = good.slice(0..good.len() - 5);
        assert!(read_colfile(truncated).is_err());
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("colfile-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rcf");
        let schema = sample_schema();
        let rows = sample_rows(100);
        ColFileRelation::write_path(path.to_str().unwrap(), &schema, &rows, 50).unwrap();
        let rel = ColFileRelation::from_path(path.to_str().unwrap()).unwrap();
        assert_eq!(rel.row_count(), Some(100));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
