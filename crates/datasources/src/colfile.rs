//! "ColFile": a self-describing columnar file format — the reproduction's
//! stand-in for Parquet (§4.4.1: "a columnar file format for which we
//! support column pruning as well as filters").
//!
//! Layout: magic, schema, then row groups; each row group stores one
//! encoded column chunk per field (dictionary/RLE/bit-packed, with null
//! bitmap and min/max statistics). Scans prune columns (untouched chunks
//! are never decoded) and skip entire row groups whose statistics cannot
//! match the pushed filters.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use catalyst::error::{CatalystError, Result};
use catalyst::row::Row;
use catalyst::schema::{Schema, SchemaRef};
use catalyst::source::{BaseRelation, BatchIter, Filter, RowIter, ScanCapability};
use catalyst::types::DataType;
use columnar::serde::{checked, get_column, get_dtype, put_column, put_dtype};
use columnar::ColumnarBatch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"RCF1";

// Value/type/column serialization lives in `columnar::serde` (shared
// with operator spill files); this module supplies the file framing.

fn corrupt(msg: impl Into<String>) -> CatalystError {
    CatalystError::DataSource(format!("corrupt colfile: {}", msg.into()))
}

// ---- file-level API ----

/// Serialize rows into colfile bytes with `rows_per_group` per row group.
pub fn write_colfile(schema: &SchemaRef, rows: &[Row], rows_per_group: usize) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    // Schema.
    put_dtype(&mut buf, &schema.as_struct_type());
    let groups: Vec<&[Row]> = rows.chunks(rows_per_group.max(1)).collect();
    buf.put_u32(groups.len() as u32);
    for g in groups {
        let batch = ColumnarBatch::from_rows(schema.clone(), g.to_vec());
        buf.put_u64(g.len() as u64);
        for c in batch.columns() {
            put_column(&mut buf, c);
        }
    }
    buf.freeze()
}

/// Parsed colfile: schema + row groups of encoded columns.
pub struct ColFile {
    /// Schema.
    pub schema: SchemaRef,
    /// Row groups.
    pub groups: Vec<ColumnarBatch>,
}

/// Deserialize a colfile.
pub fn read_colfile(mut data: Bytes) -> Result<ColFile> {
    let mut magic = [0u8; 4];
    checked(&mut data, 4)?.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let schema = match get_dtype(&mut data)? {
        DataType::Struct(fields) => Arc::new(Schema::new(fields.as_ref().clone())),
        _ => return Err(corrupt("schema is not a struct")),
    };
    let ngroups = checked(&mut data, 4)?.get_u32() as usize;
    let mut groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        let nrows = checked(&mut data, 8)?.get_u64() as usize;
        let mut columns = Vec::with_capacity(schema.len());
        for _ in 0..schema.len() {
            columns.push(get_column(&mut data)?);
        }
        groups.push(ColumnarBatch::from_columns(schema.clone(), columns, nrows));
    }
    Ok(ColFile { schema, groups })
}

/// A relation over a colfile (in memory or loaded from disk), with column
/// pruning and statistics-based row-group skipping.
pub struct ColFileRelation {
    name: String,
    file: ColFile,
    bytes: u64,
    /// Row groups skipped via statistics since creation (observability
    /// for tests and the ablation bench).
    groups_skipped: AtomicU64,
    /// Row groups actually decoded.
    groups_read: AtomicU64,
}

impl ColFileRelation {
    /// Wrap parsed bytes.
    pub fn from_bytes(name: impl Into<String>, data: Bytes) -> Result<Self> {
        let bytes = data.len() as u64;
        Ok(ColFileRelation {
            name: name.into(),
            file: read_colfile(data)?,
            bytes,
            groups_skipped: AtomicU64::new(0),
            groups_read: AtomicU64::new(0),
        })
    }

    /// Load from a file path.
    pub fn from_path(path: &str) -> Result<Self> {
        let data = std::fs::read(path)
            .map_err(|e| CatalystError::DataSource(format!("cannot read '{path}': {e}")))?;
        Self::from_bytes(path, Bytes::from(data))
    }

    /// Write rows to a colfile on disk.
    pub fn write_path(
        path: &str,
        schema: &SchemaRef,
        rows: &[Row],
        rows_per_group: usize,
    ) -> Result<()> {
        let data = write_colfile(schema, rows, rows_per_group);
        std::fs::write(path, &data)
            .map_err(|e| CatalystError::DataSource(format!("cannot write '{path}': {e}")))
    }

    /// Row groups skipped by statistics so far.
    pub fn groups_skipped(&self) -> u64 {
        self.groups_skipped.load(Ordering::Relaxed)
    }

    /// Row groups decoded so far.
    pub fn groups_read(&self) -> u64 {
        self.groups_read.load(Ordering::Relaxed)
    }
}

impl BaseRelation for ColFileRelation {
    fn name(&self) -> String {
        format!("colfile:{}", self.name)
    }

    fn schema(&self) -> SchemaRef {
        self.file.schema.clone()
    }

    fn size_in_bytes(&self) -> Option<u64> {
        Some(self.bytes)
    }

    fn row_count(&self) -> Option<u64> {
        Some(self.file.groups.iter().map(|g| g.num_rows() as u64).sum())
    }

    fn column_statistics(&self) -> Option<Vec<catalyst::source::ColumnStatistics>> {
        columnar::stats::relation_statistics(self.file.groups.iter(), self.file.schema.len())
    }

    fn capability(&self) -> ScanCapability {
        ScanCapability::PrunedFilteredScan
    }

    fn num_partitions(&self) -> usize {
        self.file.groups.len().max(1)
    }

    fn scan_partition(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> Result<RowIter> {
        let Some(group) = self.file.groups.get(partition) else {
            return Ok(Box::new(std::iter::empty()));
        };
        // Statistics-based row-group skipping.
        if !group.may_match(filters) {
            self.groups_skipped.fetch_add(1, Ordering::Relaxed);
            return Ok(Box::new(std::iter::empty()));
        }
        self.groups_read.fetch_add(1, Ordering::Relaxed);
        // Decode only the needed columns; re-check advisory filters per
        // row against the *projected* row when possible, else decode the
        // filter columns too. We keep it exact by evaluating filters on
        // the full row before projecting.
        let schema = group.schema().clone();
        let rows = group.decode(None);
        let filters = filters.to_vec();
        let proj: Option<Vec<usize>> = projection.map(|p| p.to_vec());
        Ok(Box::new(rows.into_iter().filter_map(move |row| {
            for f in &filters {
                if let Ok(i) = schema.index_of(f.column()) {
                    if !f.matches(row.get(i)) {
                        return None;
                    }
                }
            }
            Some(match &proj {
                Some(p) => row.project(p),
                None => row,
            })
        })))
    }

    fn scan_partition_vectors(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> Result<Option<BatchIter>> {
        let Some(group) = self.file.groups.get(partition) else {
            return Ok(Some(Box::new(std::iter::empty())));
        };
        if !group.may_match(filters) {
            self.groups_skipped.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(Box::new(std::iter::empty())));
        }
        self.groups_read.fetch_add(1, Ordering::Relaxed);
        // One row group = one partition: decode the needed columns into
        // vectors, filters become the batch's selection vector — no Row
        // materialization on the way to the executor.
        let batch = group.scan_to_row_batch(projection, filters);
        Ok(Some(Box::new(std::iter::once(batch))))
    }

    fn handled_filters(&self, filters: &[Filter]) -> Vec<bool> {
        // Filters on known columns are evaluated exactly.
        filters
            .iter()
            .map(|f| self.file.schema.index_of(f.column()).is_ok())
            .collect()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyst::types::StructField;
    use catalyst::value::Value;

    fn sample_schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            StructField::new("id", DataType::Long, false),
            StructField::new("cat", DataType::String, false),
            StructField::new("score", DataType::Double, true),
        ]))
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Long(i as i64),
                    Value::str(format!("c{}", i % 3)),
                    if i % 10 == 0 {
                        Value::Null
                    } else {
                        Value::Double(i as f64 / 2.0)
                    },
                ])
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_rows() {
        let schema = sample_schema();
        let rows = sample_rows(1000);
        let bytes = write_colfile(&schema, &rows, 128);
        let file = read_colfile(bytes).unwrap();
        assert_eq!(*file.schema, *schema);
        let decoded: Vec<Row> = file.groups.iter().flat_map(|g| g.decode(None)).collect();
        assert_eq!(decoded, rows);
    }

    #[test]
    fn relation_scans_with_projection_and_filters() {
        let schema = sample_schema();
        let rows = sample_rows(1000);
        let rel = ColFileRelation::from_bytes("t", write_colfile(&schema, &rows, 100)).unwrap();
        assert_eq!(rel.num_partitions(), 10);
        let filters = [Filter::Gt("id".into(), Value::Long(950))];
        let mut out = Vec::new();
        for p in 0..rel.num_partitions() {
            out.extend(rel.scan_partition(p, Some(&[0]), &filters).unwrap());
        }
        assert_eq!(out.len(), 49);
        assert_eq!(out[0].len(), 1); // projected
                                     // 9 of 10 groups skipped by min/max stats.
        assert_eq!(rel.groups_skipped(), 9);
        assert_eq!(rel.groups_read(), 1);
    }

    #[test]
    fn filters_are_exact_for_known_columns() {
        let schema = sample_schema();
        let rel =
            ColFileRelation::from_bytes("t", write_colfile(&schema, &sample_rows(10), 10)).unwrap();
        let fs = [
            Filter::Gt("id".into(), Value::Long(1)),
            Filter::Eq("missing".into(), Value::Long(1)),
        ];
        assert_eq!(rel.handled_filters(&fs), vec![true, false]);
    }

    #[test]
    fn corrupt_files_error() {
        assert!(read_colfile(Bytes::from_static(b"NOPE")).is_err());
        assert!(read_colfile(Bytes::from_static(b"RCF1")).is_err());
        let schema = sample_schema();
        let good = write_colfile(&schema, &sample_rows(10), 10);
        let truncated = good.slice(0..good.len() - 5);
        assert!(read_colfile(truncated).is_err());
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("colfile-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rcf");
        let schema = sample_schema();
        let rows = sample_rows(100);
        ColFileRelation::write_path(path.to_str().unwrap(), &schema, &rows, 50).unwrap();
        let rel = ColFileRelation::from_path(path.to_str().unwrap()).unwrap();
        assert_eq!(rel.row_count(), Some(100));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
