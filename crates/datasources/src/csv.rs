//! CSV data source: "simply scans the whole file, but allows users to
//! specify a schema" (§4.4.1). Includes the type-inference convenience the
//! paper lists as future work for CSV.

use catalyst::error::{CatalystError, Result};
use catalyst::row::Row;
use catalyst::schema::{Schema, SchemaRef};
use catalyst::source::{BaseRelation, Filter, RowIter, ScanCapability};
use catalyst::types::{DataType, StructField};
use catalyst::value::Value;
use std::sync::Arc;

/// Split one CSV line honoring double-quoted fields with `""` escapes.
pub fn split_csv_line(line: &str, delimiter: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    fields.push(cur);
    fields
}

/// Infer a column type from sample texts: INT → LONG → DOUBLE → BOOLEAN →
/// DATE → STRING.
fn infer_column_type(samples: &[&str]) -> DataType {
    let mut candidate = DataType::Null;
    for s in samples {
        let s = s.trim();
        if s.is_empty() {
            continue;
        }
        let t = if s.parse::<i32>().is_ok() {
            DataType::Int
        } else if s.parse::<i64>().is_ok() {
            DataType::Long
        } else if s.parse::<f64>().is_ok() {
            DataType::Double
        } else if s.eq_ignore_ascii_case("true") || s.eq_ignore_ascii_case("false") {
            DataType::Boolean
        } else if catalyst::value::parse_date(s).is_some() && s.len() == 10 {
            DataType::Date
        } else {
            DataType::String
        };
        candidate = DataType::tightest_common_type(&candidate, &t).unwrap_or(DataType::String);
    }
    if candidate == DataType::Null {
        DataType::String
    } else {
        candidate
    }
}

fn parse_field(text: &str, dtype: &DataType) -> Value {
    let t = text.trim();
    if t.is_empty() {
        return Value::Null;
    }
    match dtype {
        DataType::Int => t.parse().map(Value::Int).unwrap_or(Value::Null),
        DataType::Long => t.parse().map(Value::Long).unwrap_or(Value::Null),
        DataType::Float => t.parse().map(Value::Float).unwrap_or(Value::Null),
        DataType::Double => t.parse().map(Value::Double).unwrap_or(Value::Null),
        DataType::Boolean => match t.to_ascii_lowercase().as_str() {
            "true" | "1" => Value::Boolean(true),
            "false" | "0" => Value::Boolean(false),
            _ => Value::Null,
        },
        DataType::Date => catalyst::value::parse_date(t)
            .map(Value::Date)
            .unwrap_or(Value::Null),
        _ => Value::str(text),
    }
}

/// A CSV-backed relation.
pub struct CsvRelation {
    name: String,
    schema: SchemaRef,
    partitions: Vec<Arc<Vec<Row>>>,
    bytes: u64,
}

/// CSV options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter.
    pub delimiter: char,
    /// First line is a header?
    pub header: bool,
    /// User-specified schema (skips inference).
    pub schema: Option<SchemaRef>,
    /// Partitions to split into.
    pub num_partitions: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            header: true,
            schema: None,
            num_partitions: 2,
        }
    }
}

impl CsvRelation {
    /// Build from text lines.
    pub fn from_lines(
        name: impl Into<String>,
        lines: impl IntoIterator<Item = impl AsRef<str>>,
        options: &CsvOptions,
    ) -> Result<Self> {
        let mut raw: Vec<Vec<String>> = Vec::new();
        let mut header: Option<Vec<String>> = None;
        let mut bytes = 0u64;
        for line in lines {
            let line = line.as_ref();
            if line.trim().is_empty() {
                continue;
            }
            bytes += line.len() as u64;
            let fields = split_csv_line(line, options.delimiter);
            if options.header && header.is_none() {
                header = Some(fields);
            } else {
                raw.push(fields);
            }
        }
        let width = raw
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or_else(|| header.as_ref().map(Vec::len).unwrap_or(0));

        let schema = match &options.schema {
            Some(s) => s.clone(),
            None => {
                let names: Vec<String> = match &header {
                    Some(h) => h.iter().map(|s| s.trim().to_string()).collect(),
                    None => (0..width).map(|i| format!("_c{i}")).collect(),
                };
                let fields: Vec<StructField> = (0..width)
                    .map(|i| {
                        let samples: Vec<&str> = raw
                            .iter()
                            .take(1000)
                            .filter_map(|r| r.get(i).map(String::as_str))
                            .collect();
                        StructField::new(
                            names.get(i).cloned().unwrap_or_else(|| format!("_c{i}")),
                            infer_column_type(&samples),
                            true,
                        )
                    })
                    .collect();
                Arc::new(Schema::new(fields))
            }
        };

        if schema.len() < width {
            return Err(CatalystError::DataSource(format!(
                "CSV has {width} columns but schema has {}",
                schema.len()
            )));
        }

        let rows: Vec<Row> = raw
            .iter()
            .map(|fields| {
                Row::new(
                    schema
                        .fields()
                        .iter()
                        .enumerate()
                        .map(|(i, f)| match fields.get(i) {
                            Some(text) => parse_field(text, &f.dtype),
                            None => Value::Null,
                        })
                        .collect(),
                )
            })
            .collect();

        let np = options.num_partitions.max(1);
        let base = rows.len() / np;
        let extra = rows.len() % np;
        let mut it = rows.into_iter();
        let mut partitions = Vec::with_capacity(np);
        for i in 0..np {
            let len = base + usize::from(i < extra);
            partitions.push(Arc::new(it.by_ref().take(len).collect::<Vec<Row>>()));
        }
        Ok(CsvRelation {
            name: name.into(),
            schema,
            partitions,
            bytes,
        })
    }

    /// Build from a file path.
    pub fn from_path(path: &str, options: &CsvOptions) -> Result<Self> {
        let content = std::fs::read_to_string(path)
            .map_err(|e| CatalystError::DataSource(format!("cannot read '{path}': {e}")))?;
        Self::from_lines(path, content.lines(), options)
    }

    /// Total row count.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BaseRelation for CsvRelation {
    fn name(&self) -> String {
        format!("csv:{}", self.name)
    }

    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn size_in_bytes(&self) -> Option<u64> {
        Some(self.bytes)
    }

    fn row_count(&self) -> Option<u64> {
        Some(self.len() as u64)
    }

    fn capability(&self) -> ScanCapability {
        ScanCapability::TableScan // CSV "simply scans the whole file"
    }

    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn scan_partition(
        &self,
        partition: usize,
        _projection: Option<&[usize]>,
        _filters: &[Filter],
    ) -> Result<RowIter> {
        let rows = self.partitions[partition].clone();
        Ok(Box::new((0..rows.len()).map(move |i| rows[i].clone())))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Serialize rows back to CSV text (write path).
pub fn rows_to_csv(schema: &Schema, rows: &[Row], delimiter: char) -> String {
    let mut out = String::new();
    let names: Vec<&str> = schema.fields().iter().map(|f| f.name.as_ref()).collect();
    out.push_str(&names.join(&delimiter.to_string()));
    out.push('\n');
    for r in rows {
        let fields: Vec<String> = r
            .values()
            .iter()
            .map(|v| {
                let s = if v.is_null() {
                    String::new()
                } else {
                    v.to_string()
                };
                if s.contains(delimiter) || s.contains('"') || s.contains('\n') {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s
                }
            })
            .collect();
        out.push_str(&fields.join(&delimiter.to_string()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoted_field_splitting() {
        assert_eq!(split_csv_line("a,b,c", ','), vec!["a", "b", "c"]);
        assert_eq!(split_csv_line(r#""a,b",c"#, ','), vec!["a,b", "c"]);
        assert_eq!(
            split_csv_line(r#""he said ""hi""",x"#, ','),
            vec![r#"he said "hi""#, "x"]
        );
        assert_eq!(split_csv_line("a,,c", ','), vec!["a", "", "c"]);
    }

    #[test]
    fn header_and_type_inference() {
        let rel = CsvRelation::from_lines(
            "t",
            [
                "id,name,score,ok,day",
                "1,alice,9.5,true,2015-01-01",
                "2,bob,7.25,false,2015-06-30",
            ],
            &CsvOptions::default(),
        )
        .unwrap();
        let s = rel.schema();
        assert_eq!(s.field(0).dtype, DataType::Int);
        assert_eq!(s.field(1).dtype, DataType::String);
        assert_eq!(s.field(2).dtype, DataType::Double);
        assert_eq!(s.field(3).dtype, DataType::Boolean);
        assert_eq!(s.field(4).dtype, DataType::Date);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn user_schema_overrides_inference() {
        let schema = Arc::new(Schema::new(vec![
            StructField::new("a", DataType::Long, true),
            StructField::new("b", DataType::String, true),
        ]));
        let rel = CsvRelation::from_lines(
            "t",
            ["1,hello", "2,world"],
            &CsvOptions {
                header: false,
                schema: Some(schema),
                ..Default::default()
            },
        )
        .unwrap();
        let rows: Vec<Row> = rel.scan_partition(0, None, &[]).unwrap().collect();
        assert_eq!(rows[0].get(0), &Value::Long(1));
    }

    #[test]
    fn empty_fields_become_null() {
        let rel = CsvRelation::from_lines(
            "t",
            ["a,b", "1,", ",2"],
            &CsvOptions {
                num_partitions: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let rows: Vec<Row> = rel.scan_partition(0, None, &[]).unwrap().collect();
        assert!(rows[0].get(1).is_null());
        assert!(rows[1].get(0).is_null());
    }

    #[test]
    fn roundtrip_via_writer() {
        let schema = Schema::new(vec![
            StructField::new("x", DataType::Int, true),
            StructField::new("s", DataType::String, true),
        ]);
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::str("plain")]),
            Row::new(vec![Value::Int(2), Value::str("has,comma")]),
        ];
        let text = rows_to_csv(&schema, &rows, ',');
        let rel = CsvRelation::from_lines(
            "t",
            text.lines(),
            &CsvOptions {
                num_partitions: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let back: Vec<Row> = rel.scan_partition(0, None, &[]).unwrap().collect();
        assert_eq!(back[1].get_str(1), "has,comma");
    }
}
