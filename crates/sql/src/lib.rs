//! SQL front end for the Spark SQL reproduction: lexer, recursive-descent
//! parser, and direct construction of unresolved Catalyst logical plans.
//!
//! Supported surface: `SELECT [DISTINCT] … FROM … [JOIN … ON …]
//! [WHERE …] [GROUP BY …] [HAVING …] [UNION ALL …] [ORDER BY …]
//! [LIMIT n]`, subqueries in FROM, CASE/CAST/LIKE/IN/BETWEEN/IS NULL,
//! aggregate and scalar functions, plus the paper's data source DDL
//! (`CREATE TEMPORARY TABLE … USING … OPTIONS(…)`), `CACHE TABLE`, and
//! `EXPLAIN`.

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::Statement;
pub use parser::{parse, parse_query};
