//! Recursive-descent SQL parser producing unresolved Catalyst logical
//! plans (the "AST returned by a SQL parser" entering analysis, §4.3.1).

use crate::ast::Statement;
use crate::lexer::{tokenize, Token};
use catalyst::error::{CatalystError, Result};
use catalyst::expr::{Expr, FrameBound, FrameUnits, SortOrder, WindowFrame, WindowFunc};
use catalyst::plan::{JoinType, LogicalPlan};
use catalyst::tree::Transformed;
use catalyst::types::DataType;
use catalyst::value::Value;
use std::collections::BTreeMap;

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a query (errors on DDL).
pub fn parse_query(sql: &str) -> Result<LogicalPlan> {
    match parse(sql)? {
        Statement::Query(p) => Ok(p),
        other => Err(CatalystError::Parse(format!(
            "expected a query, got {other:?}"
        ))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(CatalystError::Parse(format!(
                "expected {kw}, found '{}'",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CatalystError::Parse(format!(
                "expected '{t}', found '{}'",
                self.peek()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        match self.peek() {
            Token::Eof => Ok(()),
            other => Err(CatalystError::Parse(format!(
                "unexpected trailing input at '{other}'"
            ))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            other => Err(CatalystError::Parse(format!(
                "expected identifier, found '{other}'"
            ))),
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Statement> {
        if self.at_keyword("CREATE") {
            return self.create_temp_table();
        }
        if self.at_keyword("EXPLAIN") {
            self.next();
            if self.eat_keyword("LINT") {
                return Ok(Statement::ExplainLint(self.query()?));
            }
            return Ok(Statement::Explain(self.query()?));
        }
        if self.at_keyword("CACHE") {
            self.next();
            self.expect_keyword("TABLE")?;
            return Ok(Statement::CacheTable {
                name: self.ident()?,
            });
        }
        if self.at_keyword("UNCACHE") {
            self.next();
            self.expect_keyword("TABLE")?;
            return Ok(Statement::UncacheTable {
                name: self.ident()?,
            });
        }
        if self.at_keyword("SHOW") {
            self.next();
            self.expect_keyword("TABLES")?;
            return Ok(Statement::ShowTables);
        }
        if self.at_keyword("DESCRIBE") || self.at_keyword("DESC") {
            self.next();
            return Ok(Statement::Describe {
                name: self.ident()?,
            });
        }
        if self.at_keyword("SET") {
            self.next();
            return self.set_statement();
        }
        Ok(Statement::Query(self.query()?))
    }

    /// `SET` | `SET key` | `SET key = value`. Keys are dotted identifiers
    /// (`spark.sql.shuffle.partitions`); values are a string literal or a
    /// bare token run (`false`, `8`, `64k`, `2.5`).
    fn set_statement(&mut self) -> Result<Statement> {
        if matches!(self.peek(), Token::Eof) {
            return Ok(Statement::Set {
                key: None,
                value: None,
            });
        }
        let mut key = self.ident()?;
        while self.eat(&Token::Dot) {
            key.push('.');
            key.push_str(&self.ident()?);
        }
        if !self.eat(&Token::Eq) {
            return Ok(Statement::Set {
                key: Some(key),
                value: None,
            });
        }
        let value = match self.peek().clone() {
            Token::StringLit(s) => {
                self.next();
                s
            }
            _ => {
                // Unquoted values: join the remaining token texts with no
                // separator, so `64k` (lexed as `64`, `k`) and `1.5` come
                // back out intact.
                let mut out = String::new();
                loop {
                    match self.next() {
                        Token::Ident(s) | Token::QuotedIdent(s) => out.push_str(&s),
                        Token::Number(n) => out.push_str(&n.to_string()),
                        Token::Float(f) => out.push_str(&f.to_string()),
                        Token::Minus => out.push('-'),
                        Token::Dot => out.push('.'),
                        Token::Eof => break,
                        other => {
                            return Err(CatalystError::Parse(format!(
                                "unexpected '{other}' in SET value (quote it?)"
                            )))
                        }
                    }
                    if matches!(self.peek(), Token::Eof) {
                        break;
                    }
                }
                if out.is_empty() {
                    return Err(CatalystError::Parse(
                        "SET is missing a value after '='".into(),
                    ));
                }
                out
            }
        };
        Ok(Statement::Set {
            key: Some(key),
            value: Some(value),
        })
    }

    fn create_temp_table(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        self.eat_keyword("TEMPORARY");
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect_keyword("USING")?;
        // Provider names may be dotted package names
        // (com.databricks.spark.avro, §4.4.1) — take the last segment.
        let mut provider = self.ident()?;
        while self.eat(&Token::Dot) {
            provider = self.ident()?;
        }
        let mut options = BTreeMap::new();
        if self.eat_keyword("OPTIONS") {
            self.expect(&Token::LParen)?;
            loop {
                let key = self.ident()?;
                let value = match self.next() {
                    Token::StringLit(s) | Token::QuotedIdent(s) => s,
                    other => {
                        return Err(CatalystError::Parse(format!(
                            "expected option value string, found '{other}'"
                        )))
                    }
                };
                options.insert(key.to_ascii_lowercase(), value);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let query = if self.eat_keyword("AS") {
            Some(self.query()?)
        } else {
            None
        };
        Ok(Statement::CreateTempTable {
            name,
            provider,
            options,
            query,
        })
    }

    // ---- queries ----

    fn query(&mut self) -> Result<LogicalPlan> {
        let mut plan = self.select_core()?;
        // UNION ALL chains.
        let mut unioned = Vec::new();
        while self.at_keyword("UNION") {
            self.next();
            self.expect_keyword("ALL")?;
            unioned.push(self.select_core()?);
        }
        if !unioned.is_empty() {
            plan = plan.union(unioned);
        }
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let orders = self.order_list()?;
            plan = plan.sort(orders);
        }
        if self.eat_keyword("LIMIT") {
            match self.next() {
                Token::Number(n) if n >= 0 => plan = plan.limit(n as usize),
                other => {
                    return Err(CatalystError::Parse(format!(
                        "expected LIMIT count, found '{other}'"
                    )))
                }
            }
        }
        Ok(plan)
    }

    fn order_list(&mut self) -> Result<Vec<SortOrder>> {
        let mut orders = Vec::new();
        loop {
            let e = self.expr()?;
            let ascending = if self.eat_keyword("DESC") {
                false
            } else {
                self.eat_keyword("ASC");
                true
            };
            orders.push(SortOrder { expr: e, ascending });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(orders)
    }

    fn select_core(&mut self) -> Result<LogicalPlan> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let items = self.select_list()?;

        let mut plan = if self.eat_keyword("FROM") {
            self.parse_from_clause()?
        } else {
            // SELECT without FROM: one empty row.
            LogicalPlan::LocalRelation {
                output: vec![],
                rows: std::sync::Arc::new(vec![catalyst::row::Row::empty()]),
            }
        };

        if self.eat_keyword("WHERE") {
            let pred = self.expr()?;
            if pred.contains_window() {
                return Err(CatalystError::Parse(
                    "window functions are not allowed in WHERE".into(),
                ));
            }
            plan = plan.filter(pred);
        }

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        if group_by.iter().any(|e| e.contains_window())
            || having.as_ref().is_some_and(|h| h.contains_window())
        {
            return Err(CatalystError::Parse(
                "window functions are not allowed in GROUP BY or HAVING".into(),
            ));
        }

        let is_aggregate = !group_by.is_empty()
            || items.iter().any(|(e, _)| contains_agg_call(e))
            || having.as_ref().is_some_and(contains_agg_call);

        let has_window = items.iter().any(|(e, _)| e.contains_window());
        if has_window {
            if is_aggregate {
                return Err(CatalystError::Parse(
                    "window functions cannot be combined with GROUP BY or plain \
                     aggregates in one SELECT (wrap the aggregate in a subquery)"
                        .into(),
                ));
            }
            // Pull every window call out of the select items: each becomes
            // an aliased `_w{i}` output of a Window node (one node per
            // distinct PARTITION BY / ORDER BY spec, stacked in
            // first-appearance order), and the call site in the item is
            // replaced by a reference to that alias.
            let mut specs: Vec<(Vec<Expr>, Vec<SortOrder>)> = Vec::new();
            let mut spec_exprs: Vec<Vec<Expr>> = Vec::new();
            let mut counter = 0usize;
            let items: Vec<(Expr, Option<String>)> = items
                .into_iter()
                .map(|(e, alias)| {
                    let alias = alias.or_else(|| {
                        // Keep the SQL text as the column name for a bare
                        // window call (`SELECT rank() OVER (...) FROM t`).
                        matches!(e, Expr::WindowFunction { .. }).then(|| e.auto_name())
                    });
                    let rewritten = e.rewrite_up(&mut |x| match x {
                        Expr::WindowFunction {
                            func,
                            args,
                            partition_by,
                            order_by,
                            frame,
                        } => {
                            let name = format!("_w{counter}");
                            counter += 1;
                            let key = (partition_by.clone(), order_by.clone());
                            let idx = specs.iter().position(|s| *s == key).unwrap_or_else(|| {
                                specs.push(key);
                                spec_exprs.push(Vec::new());
                                specs.len() - 1
                            });
                            spec_exprs[idx].push(
                                Expr::WindowFunction {
                                    func,
                                    args,
                                    partition_by,
                                    order_by,
                                    frame,
                                }
                                .alias(name.as_str()),
                            );
                            Transformed::yes(Expr::UnresolvedAttribute {
                                qualifier: None,
                                name,
                            })
                        }
                        other => Transformed::no(other),
                    });
                    (rewritten.data, alias)
                })
                .collect();
            for ((partition_by, order_by), wexprs) in specs.into_iter().zip(spec_exprs) {
                plan = plan.window(wexprs, partition_by, order_by);
            }
            let exprs = items
                .into_iter()
                .map(|(e, alias)| match alias {
                    Some(a) => e.alias(a),
                    None => e,
                })
                .collect();
            plan = plan.project(exprs);
            if distinct {
                plan = plan.distinct();
            }
            return Ok(plan);
        }

        if is_aggregate {
            // Non-trivial outputs get a deterministic alias so HAVING can
            // re-project by name; plain column references stay unaliased
            // to preserve their qualifiers (e.g. ORDER BY dept.id).
            let named: Vec<(Expr, String, bool)> = items
                .into_iter()
                .map(|(e, alias)| match alias {
                    Some(a) => (e, a, true),
                    None => {
                        let name = e.auto_name();
                        let needs = !matches!(
                            e,
                            Expr::UnresolvedAttribute { .. } | Expr::Column(_) | Expr::Alias { .. }
                        );
                        (e, name, needs)
                    }
                })
                .collect();
            let mut agg_exprs: Vec<Expr> = named
                .iter()
                .map(|(e, name, needs_alias)| {
                    if *needs_alias {
                        e.clone().alias(name.as_str())
                    } else {
                        e.clone()
                    }
                })
                .collect();
            match having {
                Some(h) => {
                    agg_exprs.push(h.alias("__having__"));
                    plan = plan.aggregate(group_by, agg_exprs);
                    plan = plan.filter(catalyst::expr::col("__having__"));
                    plan = plan.project(
                        named
                            .iter()
                            .map(|(_, name, _)| catalyst::expr::col(name.as_str()))
                            .collect(),
                    );
                }
                None => {
                    plan = plan.aggregate(group_by, agg_exprs);
                }
            }
        } else {
            if having.is_some() {
                return Err(CatalystError::Parse(
                    "HAVING requires GROUP BY or aggregate functions".into(),
                ));
            }
            // Plain projection; skip for a bare `SELECT *`.
            let is_bare_star =
                items.len() == 1 && matches!(items[0], (Expr::Wildcard { qualifier: None }, None));
            if !is_bare_star {
                let exprs = items
                    .into_iter()
                    .map(|(e, alias)| match alias {
                        Some(a) => e.alias(a),
                        None => e,
                    })
                    .collect();
                plan = plan.project(exprs);
            }
        }

        if distinct {
            plan = plan.distinct();
        }
        Ok(plan)
    }

    /// `expr [AS? alias]` list. Returns (expr, explicit alias).
    fn select_list(&mut self) -> Result<Vec<(Expr, Option<String>)>> {
        let mut items = Vec::new();
        loop {
            let e = self.expr()?;
            let alias = if self.eat_keyword("AS") {
                Some(self.ident()?)
            } else {
                // Bare alias: an identifier that is not a clause keyword.
                match self.peek() {
                    Token::Ident(s) if !is_reserved(s) => {
                        let a = s.clone();
                        self.next();
                        Some(a)
                    }
                    Token::QuotedIdent(s) => {
                        let a = s.clone();
                        self.next();
                        Some(a)
                    }
                    _ => None,
                }
            };
            items.push((e, alias));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    // ---- FROM / joins ----

    fn parse_from_clause(&mut self) -> Result<LogicalPlan> {
        let mut plan = self.table_ref()?;
        loop {
            if self.eat(&Token::Comma) {
                let right = self.table_ref()?;
                plan = plan.join(right, JoinType::Cross, None);
                continue;
            }
            let join_type = if self.eat_keyword("JOIN") {
                JoinType::Inner
            } else if self.at_keyword("INNER") {
                self.next();
                self.expect_keyword("JOIN")?;
                JoinType::Inner
            } else if self.at_keyword("LEFT") {
                self.next();
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinType::Left
            } else if self.at_keyword("RIGHT") {
                self.next();
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinType::Right
            } else if self.at_keyword("FULL") {
                self.next();
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinType::Full
            } else if self.at_keyword("CROSS") {
                self.next();
                self.expect_keyword("JOIN")?;
                JoinType::Cross
            } else {
                break;
            };
            let right = self.table_ref()?;
            let condition = if self.eat_keyword("ON") {
                Some(self.expr()?)
            } else {
                None
            };
            let jt = if condition.is_none() && join_type == JoinType::Inner {
                JoinType::Cross
            } else {
                join_type
            };
            plan = plan.join(right, jt, condition);
        }
        Ok(plan)
    }

    fn table_ref(&mut self) -> Result<LogicalPlan> {
        if self.eat(&Token::LParen) {
            let sub = self.query()?;
            self.expect(&Token::RParen)?;
            self.eat_keyword("AS");
            let alias = self.ident()?;
            return Ok(sub.subquery_alias(alias));
        }
        let name = self.ident()?;
        let plan = LogicalPlan::UnresolvedRelation { name };
        // Optional alias.
        if self.eat_keyword("AS") {
            let alias = self.ident()?;
            return Ok(plan.subquery_alias(alias));
        }
        if let Token::Ident(s) = self.peek() {
            if !is_reserved(s) {
                let alias = s.clone();
                self.next();
                return Ok(plan.subquery_alias(alias));
            }
        }
        Ok(plan)
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_keyword("OR") {
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_keyword("AND") {
            e = e.and(self.not_expr()?);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            return Ok(self.not_expr()?.not());
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let mut e = self.additive()?;
        loop {
            if self.eat(&Token::Eq) {
                e = e.eq(self.additive()?);
            } else if self.eat(&Token::NotEq) {
                e = e.not_eq(self.additive()?);
            } else if self.eat(&Token::LtEq) {
                e = e.lt_eq(self.additive()?);
            } else if self.eat(&Token::Lt) {
                e = e.lt(self.additive()?);
            } else if self.eat(&Token::GtEq) {
                e = e.gt_eq(self.additive()?);
            } else if self.eat(&Token::Gt) {
                e = e.gt(self.additive()?);
            } else if self.at_keyword("IS") {
                self.next();
                let negated = self.eat_keyword("NOT");
                self.expect_keyword("NULL")?;
                e = if negated {
                    e.is_not_null()
                } else {
                    e.is_null()
                };
            } else if self.at_keyword("LIKE") {
                self.next();
                let pattern = self.additive()?;
                e = Expr::Like {
                    expr: Box::new(e),
                    pattern: Box::new(pattern),
                    negated: false,
                };
            } else if self.at_keyword("IN") {
                self.next();
                self.expect(&Token::LParen)?;
                let mut list = Vec::new();
                loop {
                    list.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                e = Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: false,
                };
            } else if self.at_keyword("BETWEEN") {
                self.next();
                let low = self.additive()?;
                self.expect_keyword("AND")?;
                let high = self.additive()?;
                e = e.between(low, high);
            } else if self.at_keyword("NOT") {
                // NOT LIKE / NOT IN / NOT BETWEEN.
                let save = self.pos;
                self.next();
                if self.at_keyword("LIKE") {
                    self.next();
                    let pattern = self.additive()?;
                    e = Expr::Like {
                        expr: Box::new(e),
                        pattern: Box::new(pattern),
                        negated: true,
                    };
                } else if self.at_keyword("IN") {
                    self.next();
                    self.expect(&Token::LParen)?;
                    let mut list = Vec::new();
                    loop {
                        list.push(self.expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                    e = Expr::InList {
                        expr: Box::new(e),
                        list,
                        negated: true,
                    };
                } else if self.at_keyword("BETWEEN") {
                    self.next();
                    let low = self.additive()?;
                    self.expect_keyword("AND")?;
                    let high = self.additive()?;
                    e = e.between(low, high).not();
                } else {
                    self.pos = save;
                    break;
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut e = self.multiplicative()?;
        loop {
            if self.eat(&Token::Plus) {
                e = e.add(self.multiplicative()?);
            } else if self.eat(&Token::Minus) {
                e = e.sub(self.multiplicative()?);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut e = self.unary()?;
        loop {
            if self.eat(&Token::Star) {
                e = e.mul(self.unary()?);
            } else if self.eat(&Token::Slash) {
                e = e.div(self.unary()?);
            } else if self.eat(&Token::Percent) {
                e = e.rem(self.unary()?);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            return Ok(self.unary()?.neg());
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Token::Number(n) => Ok(Expr::Literal(
                if n >= i32::MIN as i64 && n <= i32::MAX as i64 {
                    Value::Int(n as i32)
                } else {
                    Value::Long(n)
                },
            )),
            Token::Float(v) => Ok(Expr::Literal(Value::Double(v))),
            Token::StringLit(s) => Ok(Expr::Literal(Value::str(s))),
            Token::Star => Ok(Expr::Wildcard { qualifier: None }),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(word) => self.ident_led(word),
            Token::QuotedIdent(word) => self.dotted_reference(word),
            other => Err(CatalystError::Parse(format!("unexpected token '{other}'"))),
        }
    }

    fn ident_led(&mut self, word: String) -> Result<Expr> {
        let upper = word.to_ascii_uppercase();
        match upper.as_str() {
            "TRUE" => return Ok(Expr::Literal(Value::Boolean(true))),
            "FALSE" => return Ok(Expr::Literal(Value::Boolean(false))),
            "NULL" => return Ok(Expr::Literal(Value::Null)),
            "DATE" => {
                if let Token::StringLit(s) = self.peek() {
                    let s = s.clone();
                    self.next();
                    return match catalyst::value::parse_date(&s) {
                        Some(d) => Ok(Expr::Literal(Value::Date(d))),
                        None => Err(CatalystError::Parse(format!("bad DATE literal '{s}'"))),
                    };
                }
            }
            "CAST" => {
                self.expect(&Token::LParen)?;
                let e = self.expr()?;
                self.expect_keyword("AS")?;
                let dtype = self.type_name()?;
                self.expect(&Token::RParen)?;
                return Ok(e.cast(dtype));
            }
            "CASE" => return self.case_expr(),
            _ => {}
        }

        // Reserved words can't start a column reference.
        if is_reserved(&word) {
            return Err(CatalystError::Parse(format!(
                "unexpected keyword '{word}' in expression"
            )));
        }

        // Function call?
        if self.peek() == &Token::LParen {
            self.next();
            let distinct = self.eat_keyword("DISTINCT");
            let mut args = Vec::new();
            if self.peek() != &Token::RParen {
                loop {
                    if self.peek() == &Token::Star {
                        self.next();
                        args.push(Expr::Wildcard { qualifier: None });
                    } else {
                        args.push(self.expr()?);
                    }
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            if self.at_keyword("OVER") {
                return self.over_clause(word, args, distinct);
            }
            return Ok(Expr::UnresolvedFunction {
                name: word,
                args,
                distinct,
            });
        }

        self.dotted_reference(word)
    }

    /// `OVER ( [PARTITION BY …] [ORDER BY …] [ROWS|RANGE frame] )` after a
    /// function call.
    fn over_clause(&mut self, name: String, args: Vec<Expr>, distinct: bool) -> Result<Expr> {
        self.expect_keyword("OVER")?;
        let func = WindowFunc::from_name(&name)
            .ok_or_else(|| CatalystError::Parse(format!("'{name}' is not a window function")))?;
        if distinct {
            return Err(CatalystError::Parse(
                "DISTINCT is not supported in window functions".into(),
            ));
        }
        if args.iter().any(|a| matches!(a, Expr::Wildcard { .. }))
            && func != WindowFunc::Agg(catalyst::expr::AggFunc::Count)
        {
            return Err(CatalystError::Parse(format!(
                "'*' is only valid as an argument of count(), not {name}()"
            )));
        }
        // `count(*) OVER …` keeps an empty argument list (the documented
        // `Expr::WindowFunction` contract); a surviving wildcard would be
        // rejected by the analyzer's resolution check.
        let args: Vec<Expr> = args
            .into_iter()
            .filter(|a| !matches!(a, Expr::Wildcard { .. }))
            .collect();
        self.expect(&Token::LParen)?;
        let mut partition_by = Vec::new();
        if self.eat_keyword("PARTITION") {
            self.expect_keyword("BY")?;
            loop {
                partition_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            order_by = self.order_list()?;
        }
        let frame = if self.at_keyword("ROWS") || self.at_keyword("RANGE") {
            let units = if self.eat_keyword("ROWS") {
                FrameUnits::Rows
            } else {
                self.expect_keyword("RANGE")?;
                FrameUnits::Range
            };
            let (start, end) = if self.eat_keyword("BETWEEN") {
                let s = self.frame_bound()?;
                self.expect_keyword("AND")?;
                (s, self.frame_bound()?)
            } else {
                (self.frame_bound()?, FrameBound::CurrentRow)
            };
            if units == FrameUnits::Range
                && [start, end]
                    .iter()
                    .any(|b| matches!(b, FrameBound::Preceding(_) | FrameBound::Following(_)))
            {
                return Err(CatalystError::Parse(
                    "RANGE frames support only UNBOUNDED and CURRENT ROW bounds".into(),
                ));
            }
            WindowFrame { units, start, end }
        } else {
            WindowFrame::default_for(!order_by.is_empty())
        };
        self.expect(&Token::RParen)?;
        Ok(Expr::WindowFunction {
            func,
            args,
            partition_by,
            order_by,
            frame,
        })
    }

    fn frame_bound(&mut self) -> Result<FrameBound> {
        if self.eat_keyword("UNBOUNDED") {
            if self.eat_keyword("PRECEDING") {
                return Ok(FrameBound::UnboundedPreceding);
            }
            self.expect_keyword("FOLLOWING")?;
            return Ok(FrameBound::UnboundedFollowing);
        }
        if self.eat_keyword("CURRENT") {
            self.expect_keyword("ROW")?;
            return Ok(FrameBound::CurrentRow);
        }
        let n = match self.next() {
            Token::Number(n) if n >= 0 => n as u64,
            other => {
                return Err(CatalystError::Parse(format!(
                    "expected frame bound, found '{other}'"
                )))
            }
        };
        if self.eat_keyword("PRECEDING") {
            Ok(FrameBound::Preceding(n))
        } else {
            self.expect_keyword("FOLLOWING")?;
            Ok(FrameBound::Following(n))
        }
    }

    /// `a`, `a.b`, `a.b.c`, `a.*`.
    fn dotted_reference(&mut self, first: String) -> Result<Expr> {
        if !self.eat(&Token::Dot) {
            return Ok(Expr::UnresolvedAttribute {
                qualifier: None,
                name: first,
            });
        }
        if self.eat(&Token::Star) {
            return Ok(Expr::Wildcard {
                qualifier: Some(first),
            });
        }
        let second = self.ident()?;
        let mut e = Expr::UnresolvedAttribute {
            qualifier: Some(first),
            name: second,
        };
        // Deeper paths are struct-field accesses.
        while self.eat(&Token::Dot) {
            let field = self.ident()?;
            e = e.get_field(field);
        }
        Ok(e)
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let operand = if self.at_keyword("WHEN") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let cond = self.expr()?;
            self.expect_keyword("THEN")?;
            let result = self.expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(CatalystError::Parse(
                "CASE requires at least one WHEN".into(),
            ));
        }
        let else_expr = if self.eat_keyword("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }

    fn type_name(&mut self) -> Result<DataType> {
        let name = self.ident()?.to_ascii_uppercase();
        Ok(match name.as_str() {
            "INT" | "INTEGER" => DataType::Int,
            "BIGINT" | "LONG" => DataType::Long,
            "FLOAT" | "REAL" => DataType::Float,
            "DOUBLE" => DataType::Double,
            "STRING" | "VARCHAR" | "TEXT" => DataType::String,
            "BOOLEAN" | "BOOL" => DataType::Boolean,
            "DATE" => DataType::Date,
            "TIMESTAMP" => DataType::Timestamp,
            "BINARY" => DataType::Binary,
            "DECIMAL" => {
                if self.eat(&Token::LParen) {
                    let p = match self.next() {
                        Token::Number(n) => n as u8,
                        other => {
                            return Err(CatalystError::Parse(format!(
                                "expected precision, found '{other}'"
                            )))
                        }
                    };
                    self.expect(&Token::Comma)?;
                    let s = match self.next() {
                        Token::Number(n) => n as u8,
                        other => {
                            return Err(CatalystError::Parse(format!(
                                "expected scale, found '{other}'"
                            )))
                        }
                    };
                    self.expect(&Token::RParen)?;
                    DataType::Decimal(p, s)
                } else {
                    DataType::Decimal(38, 18)
                }
            }
            other => return Err(CatalystError::Parse(format!("unknown type '{other}'"))),
        })
    }
}

/// Does the expression contain an aggregate function call (by name, since
/// resolution hasn't run yet)?
fn contains_agg_call(e: &Expr) -> bool {
    let mut found = false;
    e.for_each_node(&mut |e| {
        if let Expr::UnresolvedFunction { name, .. } = e {
            if catalyst::expr::AggFunc::from_name(name).is_some() {
                found = true;
            }
        }
        if matches!(e, Expr::Agg { .. }) {
            found = true;
        }
    });
    found
}

/// Keywords that terminate a bare alias position.
fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "LIMIT",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "OUTER",
        "CROSS",
        "ON",
        "AND",
        "OR",
        "NOT",
        "AS",
        "UNION",
        "ALL",
        "DISTINCT",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "LIKE",
        "IN",
        "IS",
        "NULL",
        "BETWEEN",
        "ASC",
        "DESC",
        "USING",
        "OPTIONS",
        "CREATE",
        "TEMPORARY",
        "TABLE",
        "CACHE",
        "UNCACHE",
        "EXPLAIN",
        "OVER",
        "PARTITION",
        "ROWS",
        "RANGE",
        "UNBOUNDED",
        "PRECEDING",
        "FOLLOWING",
        "CURRENT",
        "ROW",
    ];
    RESERVED.iter().any(|k| k.eq_ignore_ascii_case(word))
}
