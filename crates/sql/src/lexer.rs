//! SQL lexer: turns query text into a token stream.

use catalyst::error::{CatalystError, Result};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (case preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// `"quoted"` or `` `quoted` `` identifier.
    QuotedIdent(String),
    /// String literal (single quotes, `''` escapes).
    StringLit(String),
    /// Integral literal.
    Number(i64),
    /// Fractional literal.
    Float(f64),
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::QuotedIdent(s) => write!(f, "\"{s}\""),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize SQL text. Supports `--` line comments.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < n && chars[i + 1] == '-' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(CatalystError::Parse("unterminated string literal".into()));
                    }
                    if chars[i] == '\'' {
                        if i + 1 < n && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                tokens.push(Token::StringLit(s));
            }
            '"' | '`' => {
                let quote = c;
                i += 1;
                let start = i;
                while i < n && chars[i] != quote {
                    i += 1;
                }
                if i >= n {
                    return Err(CatalystError::Parse(
                        "unterminated quoted identifier".into(),
                    ));
                }
                tokens.push(Token::QuotedIdent(chars[start..i].iter().collect()));
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                // Scientific notation.
                if i < n && (chars[i] == 'e' || chars[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (chars[j] == '+' || chars[j] == '-') {
                        j += 1;
                    }
                    if j < n && chars[j].is_ascii_digit() {
                        i = j;
                        while i < n && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if text.contains('.') || text.contains('e') || text.contains('E') {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| CatalystError::Parse(format!("bad number '{text}'")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| CatalystError::Parse(format!("bad number '{text}'")))?;
                    tokens.push(Token::Number(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < n && chars[i + 1] == '=' => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < n && chars[i + 1] == '>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => i += 1, // trailing semicolons are harmless
            other => {
                return Err(CatalystError::Parse(format!(
                    "unexpected character '{other}'"
                )));
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_simple_query() {
        let t = tokenize("SELECT a, b FROM t WHERE a >= 10").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert!(t.contains(&Token::GtEq));
        assert!(t.contains(&Token::Number(10)));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn strings_support_quote_escapes() {
        let t = tokenize("'it''s'").unwrap();
        assert_eq!(t[0], Token::StringLit("it's".into()));
    }

    #[test]
    fn numbers_int_vs_float() {
        let t = tokenize("1 2.5 3e2").unwrap();
        assert_eq!(t[0], Token::Number(1));
        assert_eq!(t[1], Token::Float(2.5));
        assert_eq!(t[2], Token::Float(300.0));
    }

    #[test]
    fn comments_are_skipped() {
        let t = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert!(t.contains(&Token::Number(2)));
        assert!(!t
            .iter()
            .any(|t| matches!(t, Token::Ident(s) if s == "trailing")));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn quoted_identifiers() {
        let t = tokenize("SELECT \"weird col\", `another`").unwrap();
        assert_eq!(t[1], Token::QuotedIdent("weird col".into()));
        assert_eq!(t[3], Token::QuotedIdent("another".into()));
    }
}
