//! Top-level SQL statements.
//!
//! Queries parse directly into Catalyst logical plans (the parser *is*
//! the plan builder); DDL statements carry the information the session
//! layer needs to act on them.

use catalyst::plan::LogicalPlan;
use std::collections::BTreeMap;

/// A parsed SQL statement.
#[derive(Debug, Clone)]
pub enum Statement {
    /// A query producing rows.
    Query(LogicalPlan),
    /// `CREATE TEMPORARY TABLE name USING provider OPTIONS(k 'v', …)` —
    /// the data source registration syntax of §4.4.1.
    CreateTempTable {
        /// Table name to register.
        name: String,
        /// Data source provider name (e.g. `json`, `csv`, `jdbc`,
        /// `colfile`).
        provider: String,
        /// Provider options (path, url, …).
        options: BTreeMap<String, String>,
        /// Optional `AS SELECT …` body materialized through the provider.
        query: Option<LogicalPlan>,
    },
    /// `CACHE TABLE name` — materialize a table in the in-memory columnar
    /// cache (§3.6).
    CacheTable {
        /// Table to cache.
        name: String,
    },
    /// `UNCACHE TABLE name`.
    UncacheTable {
        /// Table to drop from the cache.
        name: String,
    },
    /// `EXPLAIN <query>` — show analyzed/optimized/physical plans.
    Explain(LogicalPlan),
    /// `EXPLAIN LINT <query>` — run the static lint pass and show its
    /// diagnostics instead of executing.
    ExplainLint(LogicalPlan),
    /// `SHOW TABLES` — list registered tables.
    ShowTables,
    /// `DESCRIBE <table>` — show a table's schema.
    Describe {
        /// Table to describe.
        name: String,
    },
    /// `SET` / `SET key` / `SET key=value` — inspect or change session
    /// runtime configuration through the conf registry.
    Set {
        /// Config key (`None` for bare `SET`, which lists everything).
        key: Option<String>,
        /// New value (`None` just reads the key).
        value: Option<String>,
    },
}
