//! Parser tests: statement shapes, precedence, plan construction.

use catalyst::expr::{BinaryOperator, Expr};
use catalyst::plan::{JoinType, LogicalPlan};
use catalyst::tree::TreeNode;
use catalyst::value::Value;
use sql::{parse, parse_query, Statement};

fn count_nodes(plan: &LogicalPlan, pred: impl Fn(&LogicalPlan) -> bool) -> usize {
    let mut n = 0;
    plan.for_each(&mut |p| {
        if pred(p) {
            n += 1;
        }
    });
    n
}

#[test]
fn simple_select() {
    let p = parse_query("SELECT a, b FROM t WHERE a > 1").unwrap();
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Project { .. })),
        1
    );
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Filter { .. })),
        1
    );
    assert_eq!(
        count_nodes(
            &p,
            |p| matches!(p, LogicalPlan::UnresolvedRelation { name } if name == "t")
        ),
        1
    );
}

#[test]
fn select_star_has_no_projection() {
    let p = parse_query("SELECT * FROM t").unwrap();
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Project { .. })),
        0
    );
}

#[test]
fn qualified_star_keeps_projection() {
    let p = parse_query("SELECT t.* FROM t").unwrap();
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Project { .. })),
        1
    );
}

#[test]
fn arithmetic_precedence() {
    let p = parse_query("SELECT 1 + 2 * 3 AS x").unwrap();
    // Expect Add(1, Mul(2, 3)).
    let LogicalPlan::Project { exprs, .. } = &p else {
        panic!("{p}")
    };
    let Expr::Alias { child, .. } = &exprs[0] else {
        panic!()
    };
    match &**child {
        Expr::BinaryOp {
            op: BinaryOperator::Add,
            right,
            ..
        } => {
            assert!(matches!(
                &**right,
                Expr::BinaryOp {
                    op: BinaryOperator::Mul,
                    ..
                }
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn and_or_precedence() {
    let p = parse_query("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
    let mut found = false;
    p.for_each(&mut |n| {
        if let LogicalPlan::Filter { predicate, .. } = n {
            // OR at the top: a=1 OR (b=2 AND c=3).
            assert!(matches!(
                predicate,
                Expr::BinaryOp {
                    op: BinaryOperator::Or,
                    ..
                }
            ));
            found = true;
        }
    });
    assert!(found);
}

#[test]
fn joins_parse_with_types() {
    let p =
        parse_query("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id").unwrap();
    let mut types = vec![];
    p.for_each(&mut |n| {
        if let LogicalPlan::Join { join_type, .. } = n {
            types.push(*join_type);
        }
    });
    assert_eq!(types, vec![JoinType::Left, JoinType::Inner]);
}

#[test]
fn comma_join_is_cross() {
    let p = parse_query("SELECT * FROM a, b WHERE a.x = b.y").unwrap();
    let mut types = vec![];
    p.for_each(&mut |n| {
        if let LogicalPlan::Join { join_type, .. } = n {
            types.push(*join_type);
        }
    });
    assert_eq!(types, vec![JoinType::Cross]);
}

#[test]
fn group_by_builds_aggregate() {
    let p = parse_query("SELECT dept, count(*), avg(salary) FROM emp GROUP BY dept").unwrap();
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Aggregate { .. })),
        1
    );
}

#[test]
fn implicit_global_aggregate() {
    let p = parse_query("SELECT count(*) FROM t").unwrap();
    let mut groupings = None;
    p.for_each(&mut |n| {
        if let LogicalPlan::Aggregate { groupings: g, .. } = n {
            groupings = Some(g.len());
        }
    });
    assert_eq!(groupings, Some(0));
}

#[test]
fn having_adds_filter_and_projection() {
    let p = parse_query("SELECT dept, count(*) AS n FROM emp GROUP BY dept HAVING count(*) > 5")
        .unwrap();
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Aggregate { .. })),
        1
    );
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Filter { .. })),
        1
    );
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Project { .. })),
        1
    );
}

#[test]
fn order_and_limit() {
    let p = parse_query("SELECT * FROM t ORDER BY x DESC, y LIMIT 10").unwrap();
    let mut orders = None;
    p.for_each(&mut |n| {
        if let LogicalPlan::Sort { orders: o, .. } = n {
            orders = Some((o.len(), o[0].ascending, o[1].ascending));
        }
    });
    assert_eq!(orders, Some((2, false, true)));
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Limit { n: 10, .. })),
        1
    );
}

#[test]
fn union_all_chains() {
    let p =
        parse_query("SELECT a FROM t UNION ALL SELECT a FROM u UNION ALL SELECT a FROM v").unwrap();
    let mut width = None;
    p.for_each(&mut |n| {
        if let LogicalPlan::Union { inputs } = n {
            width = Some(inputs.len());
        }
    });
    assert_eq!(width, Some(3));
}

#[test]
fn subquery_in_from() {
    let p = parse_query("SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 0").unwrap();
    assert_eq!(
        count_nodes(
            &p,
            |p| matches!(p, LogicalPlan::SubqueryAlias { alias, .. } if alias.as_ref() == "sub")
        ),
        1
    );
}

#[test]
fn case_when_like_in_between() {
    let p = parse_query(
        "SELECT CASE WHEN x > 0 THEN 'p' ELSE 'n' END FROM t \
         WHERE s LIKE 'a%' AND x IN (1, 2) AND y BETWEEN 1 AND 9 AND z IS NOT NULL",
    )
    .unwrap();
    let mut saw_like = false;
    let mut saw_in = false;
    let mut saw_case = false;
    let mut saw_notnull = false;
    p.for_each(&mut |n| {
        for e in n.expressions() {
            e.for_each_node(&mut |e| match e {
                Expr::Like { .. } => saw_like = true,
                Expr::InList { .. } => saw_in = true,
                Expr::Case { .. } => saw_case = true,
                Expr::IsNotNull(_) => saw_notnull = true,
                _ => {}
            });
        }
    });
    assert!(saw_like && saw_in && saw_case && saw_notnull);
}

#[test]
fn cast_and_literals() {
    let p =
        parse_query("SELECT CAST('12' AS INT), TRUE, NULL, -3, 2.5, DATE '2015-01-01'").unwrap();
    let LogicalPlan::Project { exprs, .. } = &p else {
        panic!()
    };
    assert_eq!(exprs.len(), 6);
    assert!(matches!(&exprs[0], Expr::Cast { .. }));
    assert!(matches!(&exprs[1], Expr::Literal(Value::Boolean(true))));
    assert!(matches!(&exprs[2], Expr::Literal(Value::Null)));
    assert!(matches!(&exprs[5], Expr::Literal(Value::Date(_))));
}

#[test]
fn not_like_and_not_in() {
    let p = parse_query("SELECT * FROM t WHERE a NOT LIKE 'x%' AND b NOT IN (1)").unwrap();
    let mut neg_like = false;
    let mut neg_in = false;
    p.for_each(&mut |n| {
        for e in n.expressions() {
            e.for_each_node(&mut |e| match e {
                Expr::Like { negated: true, .. } => neg_like = true,
                Expr::InList { negated: true, .. } => neg_in = true,
                _ => {}
            });
        }
    });
    assert!(neg_like && neg_in);
}

#[test]
fn create_temp_table_using_options() {
    // The paper's §4.4.1 example.
    let stmt = parse(
        "CREATE TEMPORARY TABLE messages USING com.databricks.spark.avro \
         OPTIONS (path 'messages.avro')",
    )
    .unwrap();
    match stmt {
        Statement::CreateTempTable {
            name,
            provider,
            options,
            query,
        } => {
            assert_eq!(name, "messages");
            assert_eq!(provider, "avro");
            assert_eq!(options["path"], "messages.avro");
            assert!(query.is_none());
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn cache_and_explain() {
    assert!(matches!(
        parse("CACHE TABLE t").unwrap(),
        Statement::CacheTable { name } if name == "t"
    ));
    assert!(matches!(
        parse("EXPLAIN SELECT 1").unwrap(),
        Statement::Explain(_)
    ));
}

#[test]
fn errors_are_parse_errors() {
    assert!(parse_query("SELEC a FROM t").is_err());
    assert!(parse_query("SELECT FROM t").is_err());
    assert!(parse_query("SELECT a FROM t WHERE").is_err());
    assert!(parse_query("SELECT a FROM t GROUP").is_err());
    assert!(parse_query("SELECT a FROM t extra garbage !!").is_err());
}

#[test]
fn select_without_from() {
    let p = parse_query("SELECT 1 + 1 AS two").unwrap();
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::LocalRelation { .. })),
        1
    );
}

#[test]
fn distinct_parses() {
    let p = parse_query("SELECT DISTINCT a FROM t").unwrap();
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Distinct { .. })),
        1
    );
}

#[test]
fn genomics_range_join_shape() {
    // §7.2's range join parses into a cross join + inequality filter.
    let p = parse_query(
        "SELECT * FROM a JOIN b \
         WHERE a.start < a.end AND b.start < b.end \
           AND a.start < b.start AND b.start < a.end",
    )
    .unwrap();
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Join { .. })),
        1
    );
    assert_eq!(
        count_nodes(&p, |p| matches!(p, LogicalPlan::Filter { .. })),
        1
    );
}

#[test]
fn nested_struct_path() {
    // Figures 5-6: SELECT loc.lat FROM tweets.
    let p = parse_query("SELECT loc.lat, loc.long FROM tweets WHERE tags IS NOT NULL").unwrap();
    let LogicalPlan::Project { exprs, .. } = &p else {
        panic!("{p}")
    };
    assert!(matches!(
        &exprs[0],
        Expr::UnresolvedAttribute { qualifier: Some(q), name } if q == "loc" && name == "lat"
    ));
}
