//! Parser robustness properties: arbitrary input never panics, and
//! well-formed queries over generated identifiers round-trip to plans.
//!
//! Deterministic seeded sweeps (formerly proptest; rewritten because the
//! build environment vendors only a minimal rand shim).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sql::parse;

/// A printable-ish random string with occasional exotic characters.
fn arb_input(rng: &mut StdRng) -> String {
    let len = rng.random_range(0usize..120);
    (0..len)
        .map(|_| match rng.random_range(0u32..20) {
            0..=14 => char::from(rng.random_range(0x20u8..0x7f)),
            15 => '\u{00e9}',
            16 => '\u{4e2d}',
            17 => '\n',
            18 => '\t',
            _ => char::from_u32(rng.random_range(1u32..0xD7FF)).unwrap_or('?'),
        })
        .collect()
}

/// The parser returns Ok or Err but never panics, whatever the input.
#[test]
fn never_panics_on_arbitrary_input() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for _ in 0..256 {
        let input = arb_input(&mut rng);
        let _ = parse(&input);
    }
}

/// SQL-looking token soup never panics either.
#[test]
fn never_panics_on_token_soup() {
    const TOKENS: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "JOIN", "ON", "AND", "OR",
        "NOT", "(", ")", ",", "*", "+", "-", "=", "<", "x", "t", "1", "'s'", "CASE", "WHEN",
        "THEN", "END", "AS",
    ];
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for _ in 0..256 {
        let n = rng.random_range(0usize..25);
        let soup: Vec<&str> = (0..n)
            .map(|_| TOKENS[rng.random_range(0..TOKENS.len())])
            .collect();
        let _ = parse(&soup.join(" "));
    }
}

fn ident(rng: &mut StdRng, prefix: &str) -> String {
    let len = rng.random_range(1usize..7);
    let mut s = String::from(prefix);
    for _ in 0..len {
        s.push(char::from(rng.random_range(b'a'..b'z' + 1)));
    }
    s
}

/// Generated well-formed filters always parse.
#[test]
fn well_formed_filters_parse() {
    const OPS: &[&str] = &["=", "<>", "<", "<=", ">", ">="];
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for _ in 0..256 {
        let column = ident(&mut rng, "c_");
        let table = ident(&mut rng, "t_");
        let n = rng.random_range(i32::MIN..i32::MAX);
        let op = OPS[rng.random_range(0..OPS.len())];
        let q = format!("SELECT {column} FROM {table} WHERE {column} {op} {n}");
        let parsed = parse(&q);
        assert!(parsed.is_ok(), "{q}: {parsed:?}");
    }
}

/// Numeric literal expressions evaluate without panicking through the
/// whole stack (parse → analyze → fold).
#[test]
fn constant_queries_execute() {
    use spark_sql::SQLContext;
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    let ctx = SQLContext::new_local(1);
    for _ in 0..32 {
        let a = rng.random_range(-1000i32..1000);
        let b = rng.random_range(-1000i32..1000);
        let rows = ctx
            .sql(&format!("SELECT {a} + {b}, {a} * {b}, {a} = {b}"))
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows[0].get(0), &catalyst::value::Value::Int(a + b));
    }
}
