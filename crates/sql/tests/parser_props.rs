//! Parser robustness properties: arbitrary input never panics, and
//! well-formed queries over generated identifiers round-trip to plans.

use proptest::prelude::*;
use sql::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser returns Ok or Err but never panics, whatever the input.
    #[test]
    fn never_panics_on_arbitrary_input(input in ".{0,120}") {
        let _ = parse(&input);
    }

    /// SQL-looking token soup never panics either.
    #[test]
    fn never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            proptest::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "JOIN",
                "ON", "AND", "OR", "NOT", "(", ")", ",", "*", "+", "-", "=", "<",
                "x", "t", "1", "'s'", "CASE", "WHEN", "THEN", "END", "AS",
            ]),
            0..25,
        )
    ) {
        let _ = parse(&tokens.join(" "));
    }

    /// Generated well-formed filters always parse.
    #[test]
    fn well_formed_filters_parse(
        column in "c_[a-z]{1,6}",
        table in "t_[a-z]{1,6}",
        n in any::<i32>(),
        op in proptest::sample::select(vec!["=", "<>", "<", "<=", ">", ">="]),
    ) {
        let q = format!("SELECT {column} FROM {table} WHERE {column} {op} {n}");
        let parsed = parse(&q);
        prop_assert!(parsed.is_ok(), "{q}: {parsed:?}");
    }

    /// Numeric literal expressions evaluate without panicking through the
    /// whole stack (parse → analyze → fold).
    #[test]
    fn constant_queries_execute(a in -1000i32..1000, b in -1000i32..1000) {
        use spark_sql::SQLContext;
        let ctx = SQLContext::new_local(1);
        let rows = ctx
            .sql(&format!("SELECT {a} + {b}, {a} * {b}, {a} = {b}"))
            .unwrap()
            .collect()
            .unwrap();
        prop_assert_eq!(rows[0].get(0), &catalyst::value::Value::Int(a + b));
    }
}
