//! Session configuration — including the ablation switches the benchmark
//! harness flips (codegen, columnar cache, pushdown, broadcast threshold).

use std::sync::OnceLock;

/// Tunable knobs of a [`crate::SQLContext`].
#[derive(Debug, Clone)]
pub struct SqlConf {
    /// Compile expressions to fused closures (§4.3.4) instead of
    /// interpreting them per row. Off ≈ the Shark baseline.
    pub codegen_enabled: bool,
    /// Cache DataFrames as compressed columnar batches (§3.6) instead of
    /// row objects.
    pub columnar_cache_enabled: bool,
    /// Push filters into capable data sources (§4.4.1).
    pub pushdown_enabled: bool,
    /// Prune columns at the source.
    pub column_pruning_enabled: bool,
    /// Broadcast-join threshold in estimated bytes (§4.3.3).
    pub broadcast_threshold: u64,
    /// Reduce-side partitions for shuffles.
    pub shuffle_partitions: usize,
    /// Rows per columnar cache batch.
    pub cache_batch_size: usize,
    /// Execute Scan/Filter/Project over columnar `RowBatch`es with
    /// vectorized expression kernels, falling back to rows for the rest
    /// of the plan. `CATALYST_VECTORIZE=0` in the environment flips the
    /// default off (the pure row path, for differential testing).
    pub vectorize_enabled: bool,
    /// Rows per execution batch on the vectorized path.
    pub vectorize_batch_size: usize,
    /// Re-plan shuffled joins and aggregates at stage boundaries from
    /// *measured* map-output sizes: coalesce small post-shuffle
    /// partitions, demote shuffled hash joins to broadcast when the built
    /// side turns out small, and split skewed reduce partitions.
    /// `CATALYST_ADAPTIVE=0` in the environment flips the default off
    /// (static plans only, for differential testing).
    pub adaptive_enabled: bool,
    /// Target bytes per post-shuffle partition when coalescing; also the
    /// absolute floor below which a partition is never considered skewed.
    pub adaptive_target_partition_bytes: u64,
    /// A reduce partition is skewed when it exceeds this factor times the
    /// median partition size (and the target above).
    pub adaptive_skew_factor: f64,
}

impl Default for SqlConf {
    fn default() -> Self {
        SqlConf {
            codegen_enabled: true,
            columnar_cache_enabled: true,
            pushdown_enabled: true,
            column_pruning_enabled: true,
            broadcast_threshold: 10 * 1024 * 1024,
            shuffle_partitions: 8,
            cache_batch_size: columnar::DEFAULT_BATCH_SIZE,
            vectorize_enabled: vectorize_default(),
            vectorize_batch_size: columnar::DEFAULT_BATCH_SIZE,
            adaptive_enabled: adaptive_default(),
            adaptive_target_partition_bytes: 1 << 20,
            adaptive_skew_factor: 4.0,
        }
    }
}

impl SqlConf {
    /// A configuration approximating Shark (§6.1 baseline): no expression
    /// compilation, no columnar cache, no source pushdown, row-at-a-time
    /// execution.
    pub fn shark_like() -> Self {
        SqlConf {
            codegen_enabled: false,
            columnar_cache_enabled: false,
            pushdown_enabled: false,
            column_pruning_enabled: false,
            vectorize_enabled: false,
            adaptive_enabled: false,
            ..Default::default()
        }
    }
}

/// Default for [`SqlConf::vectorize_enabled`]: on, unless the
/// `CATALYST_VECTORIZE` environment variable disables it ("", "0",
/// "false", "off", "no" — same grammar as `CATALYST_VALIDATE`).
fn vectorize_default() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("CATALYST_VECTORIZE") {
        Err(_) => true,
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !matches!(v.as_str(), "" | "0" | "false" | "off" | "no")
        }
    })
}

/// Default for [`SqlConf::adaptive_enabled`]: on, unless the
/// `CATALYST_ADAPTIVE` environment variable disables it (same grammar as
/// `CATALYST_VECTORIZE`).
fn adaptive_default() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("CATALYST_ADAPTIVE") {
        Err(_) => true,
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !matches!(v.as_str(), "" | "0" | "false" | "off" | "no")
        }
    })
}
