//! Session configuration: the typed knobs of a [`crate::SQLContext`] plus
//! the string-keyed runtime-config registry over them.
//!
//! Every tunable has one source of truth — its field on [`SqlConf`] — and
//! three ways to reach it, in precedence order:
//!
//! 1. explicit sets (`ctx.set("spark.sql.vectorize.enabled", "false")`,
//!    `SET spark.sql.vectorize.enabled=false`, or a `set_conf` closure),
//! 2. environment variables, applied once through the same registry when
//!    the first default configuration is built (legacy names like
//!    `CATALYST_VECTORIZE` are routed here instead of being checked
//!    ad hoc at their point of use),
//! 3. built-in defaults.
//!
//! Unknown keys fail with an error that lists every valid key; values are
//! parsed per key kind (booleans, byte sizes with `k`/`m`/`g` suffixes,
//! counts, floats, strings).

use catalyst::error::{CatalystError, Result};
use std::sync::OnceLock;

/// Tunable knobs of a [`crate::SQLContext`].
#[derive(Debug, Clone)]
pub struct SqlConf {
    /// Compile expressions to fused closures (§4.3.4) instead of
    /// interpreting them per row. Off ≈ the Shark baseline.
    pub codegen_enabled: bool,
    /// Cache DataFrames as compressed columnar batches (§3.6) instead of
    /// row objects.
    pub columnar_cache_enabled: bool,
    /// Push filters into capable data sources (§4.4.1).
    pub pushdown_enabled: bool,
    /// Prune columns at the source.
    pub column_pruning_enabled: bool,
    /// Broadcast-join threshold in estimated bytes (§4.3.3).
    pub broadcast_threshold: u64,
    /// Reduce-side partitions for shuffles.
    pub shuffle_partitions: usize,
    /// Rows per columnar cache batch.
    pub cache_batch_size: usize,
    /// Execute Scan/Filter/Project over columnar `RowBatch`es with
    /// vectorized expression kernels, falling back to rows for the rest
    /// of the plan. `CATALYST_VECTORIZE=0` in the environment flips the
    /// default off (the pure row path, for differential testing).
    pub vectorize_enabled: bool,
    /// Rows per execution batch on the vectorized path.
    pub vectorize_batch_size: usize,
    /// Re-plan shuffled joins and aggregates at stage boundaries from
    /// *measured* map-output sizes: coalesce small post-shuffle
    /// partitions, demote shuffled hash joins to broadcast when the built
    /// side turns out small, and split skewed reduce partitions.
    /// `CATALYST_ADAPTIVE=0` in the environment flips the default off
    /// (static plans only, for differential testing).
    pub adaptive_enabled: bool,
    /// Target bytes per post-shuffle partition when coalescing; also the
    /// absolute floor below which a partition is never considered skewed.
    pub adaptive_target_partition_bytes: u64,
    /// A reduce partition is skewed when it exceeds this factor times the
    /// median partition size (and the target above).
    pub adaptive_skew_factor: f64,
    /// Byte budget for buffering operators (hash join build sides, hash
    /// aggregation tables, sort buffers). `0` means unbounded — the
    /// all-in-memory fast path. When bounded, operators that outgrow
    /// their fair share of the budget spill to disk and merge.
    /// `SPARK_SQL_MEMORY_BUDGET` in the environment sets the default
    /// (plain bytes or `64k` / `16m` / `1g`).
    pub memory_budget_bytes: u64,
    /// Directory for operator spill files; empty means the system temp
    /// directory. `SPARK_SQL_SPILL_DIR` sets the default.
    pub spill_dir: String,
    /// Escape hatch: with `false`, operators ignore the memory budget and
    /// run the unbounded in-memory path even when `memory_budget_bytes`
    /// is set (for differential testing of the spill machinery).
    pub spill_enabled: bool,
    /// Plan-validation override: `Some(b)` forces validation on/off,
    /// `None` defers to [`catalyst::validation::enabled`] (environment,
    /// then build profile). `CATALYST_VALIDATE` routes here.
    pub plan_validation: Option<bool>,
    /// Chaos fault-injection seed for this session's engine context
    /// (`None` = no injected faults). `ENGINE_CHAOS_SEED` routes here;
    /// setting it through the registry installs a fresh
    /// [`engine::ChaosPlan`] on the session's `SparkContext`.
    pub chaos_seed: Option<u64>,
    /// Override for both chaos fault probabilities (`ENGINE_CHAOS_PROB`).
    pub chaos_prob: Option<f64>,
    /// Run the constraint-propagation optimizer phase (nullability +
    /// value-domain abstract interpretation feeding predicate pruning,
    /// `IS NOT NULL` inference, and empty-relation propagation).
    /// `CATALYST_CONSTRAINTS=0` in the environment flips the default off
    /// (for differential testing of the constraint rules).
    pub constraints_enabled: bool,
    /// Run the cost-based optimizer phase (statistics-driven join
    /// reordering, aggregates answered from source stats,
    /// common-subexpression elimination, and build-side selection for
    /// shuffled hash joins). `CATALYST_CBO=0` in the environment flips
    /// the default off (for differential testing of the CBO rules).
    pub cbo_enabled: bool,
    /// Minimum severity the lint pass reports: `off`, `info`, `warn`, or
    /// `error`. `SPARK_SQL_LINT_LEVEL` sets the default.
    pub lint_level: String,
    /// Byte budget for the shared columnar block cache; exceeding it
    /// evicts per `cache_eviction_policy`. `0` means unbounded (no
    /// eviction). `SPARK_SQL_CACHE_BUDGET` sets the default. Applied to
    /// the engine's shared `CacheManager` when set through a session.
    pub cache_budget_bytes: u64,
    /// Which cached block to evict when over budget: `lru` or `cost`
    /// (cost-aware `(hits+1)/bytes` density, per the Yang et al. line of
    /// work). `SPARK_SQL_CACHE_POLICY` sets the default.
    pub cache_eviction_policy: String,
    /// Worker threads the multi-tenant SQL service runs queries on.
    /// `SPARK_SQL_SERVICE_WORKERS` sets the default.
    pub service_workers: usize,
    /// Per-session cap on queries executing at once (fair-scheduler slot
    /// accounting). `SPARK_SQL_SERVICE_SESSION_INFLIGHT` sets the default.
    pub service_session_in_flight: usize,
    /// Admission-control memory budget for the service, in bytes; a query
    /// is only started once its reservation fits. `0` disables admission
    /// control. `SPARK_SQL_SERVICE_ADMISSION_BUDGET` sets the default.
    pub service_admission_budget: u64,
    /// Bytes reserved against the admission budget per admitted query.
    pub service_admission_query_bytes: u64,
    /// Per-session cap on queries waiting to run; submissions beyond it
    /// are rejected outright rather than queued.
    pub service_max_queued: usize,
    /// Default per-query deadline in milliseconds (measured from
    /// submission, so queue time counts); `0` means no deadline.
    pub service_query_timeout_ms: usize,
}

impl SqlConf {
    /// Built-in defaults with no environment applied.
    fn base() -> Self {
        SqlConf {
            codegen_enabled: true,
            columnar_cache_enabled: true,
            pushdown_enabled: true,
            column_pruning_enabled: true,
            broadcast_threshold: 10 * 1024 * 1024,
            shuffle_partitions: 8,
            cache_batch_size: columnar::DEFAULT_BATCH_SIZE,
            vectorize_enabled: true,
            vectorize_batch_size: columnar::DEFAULT_BATCH_SIZE,
            adaptive_enabled: true,
            adaptive_target_partition_bytes: 1 << 20,
            adaptive_skew_factor: 4.0,
            memory_budget_bytes: 0,
            spill_dir: String::new(),
            spill_enabled: true,
            plan_validation: None,
            chaos_seed: None,
            chaos_prob: None,
            constraints_enabled: true,
            cbo_enabled: true,
            lint_level: "warn".to_string(),
            cache_budget_bytes: 0,
            cache_eviction_policy: "lru".to_string(),
            service_workers: 4,
            service_session_in_flight: 2,
            service_admission_budget: 0,
            service_admission_query_bytes: 8 << 20,
            service_max_queued: 64,
            service_query_timeout_ms: 0,
        }
    }

    /// Defaults with environment overrides applied through the registry,
    /// using `lookup` as the environment. Exists (separately from
    /// [`Default`], which uses the real environment) so precedence is
    /// testable without mutating process state.
    pub fn from_env_lookup(lookup: &dyn Fn(&str) -> Option<String>) -> Self {
        let mut conf = SqlConf::base();
        for e in entries() {
            let Some(var) = e.env else { continue };
            let Some(raw) = lookup(var) else { continue };
            // Legacy boolean env vars use a lenient grammar (anything
            // outside the off-list enables); normalize before the strict
            // registry parse. Other kinds ignore unparsable values, like
            // `ChaosConf::from_env` always has.
            let value = if e.kind == Kind::Bool {
                let off = matches!(
                    raw.trim().to_ascii_lowercase().as_str(),
                    "" | "0" | "false" | "off" | "no"
                );
                if off {
                    "false".to_string()
                } else {
                    "true".to_string()
                }
            } else {
                raw
            };
            let _ = (e.set)(&mut conf, value.trim());
        }
        conf
    }

    /// A configuration approximating Shark (§6.1 baseline): no expression
    /// compilation, no columnar cache, no source pushdown, row-at-a-time
    /// execution.
    pub fn shark_like() -> Self {
        SqlConf {
            codegen_enabled: false,
            columnar_cache_enabled: false,
            pushdown_enabled: false,
            column_pruning_enabled: false,
            vectorize_enabled: false,
            adaptive_enabled: false,
            ..Default::default()
        }
    }

    // ---- string-keyed registry ----

    /// Set `key` to `value`. Unknown keys and unparsable values error;
    /// the unknown-key message lists every valid key.
    pub fn set(&mut self, key: &str, value: &str) -> Result<()> {
        match entries().iter().find(|e| e.key.eq_ignore_ascii_case(key)) {
            Some(e) => (e.set)(self, value.trim()),
            None => Err(unknown_key(key)),
        }
    }

    /// Current value of `key`, rendered as a string.
    pub fn get(&self, key: &str) -> Result<String> {
        match entries().iter().find(|e| e.key.eq_ignore_ascii_case(key)) {
            Some(e) => Ok((e.get)(self)),
            None => Err(unknown_key(key)),
        }
    }

    /// Every `(key, value)` pair, sorted by key — what bare `SET` shows.
    pub fn entries(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = entries()
            .iter()
            .map(|e| (e.key.to_string(), (e.get)(self)))
            .collect();
        out.sort();
        out
    }

    /// All valid registry keys, sorted.
    pub fn valid_keys() -> Vec<&'static str> {
        let mut keys: Vec<&'static str> = entries().iter().map(|e| e.key).collect();
        keys.sort_unstable();
        keys
    }

    /// Effective memory budget: `None` when unbounded (no budget, or the
    /// spill escape hatch is off).
    pub fn effective_memory_budget(&self) -> Option<u64> {
        if self.spill_enabled && self.memory_budget_bytes > 0 {
            Some(self.memory_budget_bytes)
        } else {
            None
        }
    }

    /// Directory spill files go to.
    pub fn spill_path(&self) -> std::path::PathBuf {
        if self.spill_dir.is_empty() {
            std::env::temp_dir().join("spark-sql-spill")
        } else {
            std::path::PathBuf::from(&self.spill_dir)
        }
    }
}

impl Default for SqlConf {
    /// Defaults with real environment variables applied (computed once
    /// per process, like the old per-variable `OnceLock`s).
    fn default() -> Self {
        static FROM_ENV: OnceLock<SqlConf> = OnceLock::new();
        FROM_ENV
            .get_or_init(|| SqlConf::from_env_lookup(&|var| std::env::var(var).ok()))
            .clone()
    }
}

fn unknown_key(key: &str) -> CatalystError {
    CatalystError::analysis(format!(
        "unknown config key '{key}'; valid keys: {}",
        SqlConf::valid_keys().join(", ")
    ))
}

// ---- registry table ----

#[derive(PartialEq, Eq, Clone, Copy)]
enum Kind {
    Bool,
    Bytes,
    Count,
    Float,
    Str,
}

struct ConfEntry {
    key: &'static str,
    /// Environment variable routed through this entry at startup.
    env: Option<&'static str>,
    kind: Kind,
    get: fn(&SqlConf) -> String,
    set: fn(&mut SqlConf, &str) -> Result<()>,
}

/// Strict boolean grammar for explicit sets.
fn parse_bool(key: &str, v: &str) -> Result<bool> {
    match v.to_ascii_lowercase().as_str() {
        "true" | "on" | "yes" | "1" => Ok(true),
        "false" | "off" | "no" | "0" => Ok(false),
        _ => Err(CatalystError::analysis(format!(
            "invalid boolean '{v}' for {key} (use true/false)"
        ))),
    }
}

/// Byte sizes: plain integers or `k`/`m`/`g` suffixes (powers of 1024).
fn parse_bytes(key: &str, v: &str) -> Result<u64> {
    let lower = v.to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) => {
            let mult = match lower.as_bytes()[lower.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            };
            (d, mult)
        }
        None => (lower.as_str(), 1),
    };
    digits
        .trim()
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| {
            CatalystError::analysis(format!(
                "invalid byte size '{v}' for {key} (use e.g. 1048576, 64k, 16m, 1g)"
            ))
        })
}

fn parse_count(key: &str, v: &str) -> Result<usize> {
    v.parse::<usize>()
        .map_err(|_| CatalystError::analysis(format!("invalid count '{v}' for {key}")))
}

fn parse_float(key: &str, v: &str) -> Result<f64> {
    v.parse::<f64>()
        .map_err(|_| CatalystError::analysis(format!("invalid number '{v}' for {key}")))
}

macro_rules! bool_entry {
    ($key:literal, $env:expr, $field:ident) => {
        ConfEntry {
            key: $key,
            env: $env,
            kind: Kind::Bool,
            get: |c| c.$field.to_string(),
            set: |c, v| {
                c.$field = parse_bool($key, v)?;
                Ok(())
            },
        }
    };
}

fn entries() -> &'static [ConfEntry] {
    static ENTRIES: OnceLock<Vec<ConfEntry>> = OnceLock::new();
    ENTRIES.get_or_init(|| {
        vec![
            bool_entry!("spark.sql.codegen.enabled", None, codegen_enabled),
            bool_entry!(
                "spark.sql.cache.columnar.enabled",
                None,
                columnar_cache_enabled
            ),
            bool_entry!("spark.sql.pushdown.enabled", None, pushdown_enabled),
            bool_entry!(
                "spark.sql.columnPruning.enabled",
                None,
                column_pruning_enabled
            ),
            bool_entry!(
                "spark.sql.vectorize.enabled",
                Some("CATALYST_VECTORIZE"),
                vectorize_enabled
            ),
            bool_entry!(
                "spark.sql.adaptive.enabled",
                Some("CATALYST_ADAPTIVE"),
                adaptive_enabled
            ),
            bool_entry!(
                "spark.sql.memory.spillEnabled",
                Some("SPARK_SQL_SPILL"),
                spill_enabled
            ),
            bool_entry!(
                "spark.sql.constraints.enabled",
                Some("CATALYST_CONSTRAINTS"),
                constraints_enabled
            ),
            bool_entry!("spark.sql.cbo.enabled", Some("CATALYST_CBO"), cbo_enabled),
            ConfEntry {
                key: "spark.sql.lint.level",
                env: Some("SPARK_SQL_LINT_LEVEL"),
                kind: Kind::Str,
                get: |c| c.lint_level.clone(),
                set: |c, v| {
                    let lv = v.to_ascii_lowercase();
                    if !matches!(lv.as_str(), "off" | "info" | "warn" | "error") {
                        return Err(CatalystError::analysis(format!(
                            "invalid level '{v}' for spark.sql.lint.level \
                             (use off/info/warn/error)"
                        )));
                    }
                    c.lint_level = lv;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.autoBroadcastJoinThreshold",
                env: None,
                kind: Kind::Bytes,
                get: |c| c.broadcast_threshold.to_string(),
                set: |c, v| {
                    c.broadcast_threshold = parse_bytes("spark.sql.autoBroadcastJoinThreshold", v)?;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.shuffle.partitions",
                env: None,
                kind: Kind::Count,
                get: |c| c.shuffle_partitions.to_string(),
                set: |c, v| {
                    let n = parse_count("spark.sql.shuffle.partitions", v)?;
                    if n == 0 {
                        return Err(CatalystError::analysis(
                            "spark.sql.shuffle.partitions must be at least 1",
                        ));
                    }
                    c.shuffle_partitions = n;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.cache.batchSize",
                env: None,
                kind: Kind::Count,
                get: |c| c.cache_batch_size.to_string(),
                set: |c, v| {
                    c.cache_batch_size = parse_count("spark.sql.cache.batchSize", v)?;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.vectorize.batchSize",
                env: None,
                kind: Kind::Count,
                get: |c| c.vectorize_batch_size.to_string(),
                set: |c, v| {
                    c.vectorize_batch_size = parse_count("spark.sql.vectorize.batchSize", v)?;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.adaptive.targetPartitionBytes",
                env: None,
                kind: Kind::Bytes,
                get: |c| c.adaptive_target_partition_bytes.to_string(),
                set: |c, v| {
                    c.adaptive_target_partition_bytes =
                        parse_bytes("spark.sql.adaptive.targetPartitionBytes", v)?;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.adaptive.skewFactor",
                env: None,
                kind: Kind::Float,
                get: |c| c.adaptive_skew_factor.to_string(),
                set: |c, v| {
                    c.adaptive_skew_factor = parse_float("spark.sql.adaptive.skewFactor", v)?;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.memory.budgetBytes",
                env: Some("SPARK_SQL_MEMORY_BUDGET"),
                kind: Kind::Bytes,
                get: |c| c.memory_budget_bytes.to_string(),
                set: |c, v| {
                    c.memory_budget_bytes = parse_bytes("spark.sql.memory.budgetBytes", v)?;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.memory.spillDir",
                env: Some("SPARK_SQL_SPILL_DIR"),
                kind: Kind::Str,
                get: |c| c.spill_dir.clone(),
                set: |c, v| {
                    c.spill_dir = v.to_string();
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.planValidation.enabled",
                env: Some("CATALYST_VALIDATE"),
                kind: Kind::Bool,
                get: |c| {
                    c.plan_validation
                        .unwrap_or_else(catalyst::validation::enabled)
                        .to_string()
                },
                set: |c, v| {
                    c.plan_validation = Some(parse_bool("spark.sql.planValidation.enabled", v)?);
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.cache.budgetBytes",
                env: Some("SPARK_SQL_CACHE_BUDGET"),
                kind: Kind::Bytes,
                get: |c| c.cache_budget_bytes.to_string(),
                set: |c, v| {
                    c.cache_budget_bytes = parse_bytes("spark.sql.cache.budgetBytes", v)?;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.cache.evictionPolicy",
                env: Some("SPARK_SQL_CACHE_POLICY"),
                kind: Kind::Str,
                get: |c| c.cache_eviction_policy.clone(),
                set: |c, v| {
                    let lv = v.to_ascii_lowercase();
                    if !matches!(lv.as_str(), "lru" | "cost") {
                        return Err(CatalystError::analysis(format!(
                            "invalid policy '{v}' for spark.sql.cache.evictionPolicy \
                             (use lru/cost)"
                        )));
                    }
                    c.cache_eviction_policy = lv;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.service.workers",
                env: Some("SPARK_SQL_SERVICE_WORKERS"),
                kind: Kind::Count,
                get: |c| c.service_workers.to_string(),
                set: |c, v| {
                    let n = parse_count("spark.sql.service.workers", v)?;
                    if n == 0 {
                        return Err(CatalystError::analysis(
                            "spark.sql.service.workers must be at least 1",
                        ));
                    }
                    c.service_workers = n;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.service.sessionInFlight",
                env: Some("SPARK_SQL_SERVICE_SESSION_INFLIGHT"),
                kind: Kind::Count,
                get: |c| c.service_session_in_flight.to_string(),
                set: |c, v| {
                    let n = parse_count("spark.sql.service.sessionInFlight", v)?;
                    if n == 0 {
                        return Err(CatalystError::analysis(
                            "spark.sql.service.sessionInFlight must be at least 1",
                        ));
                    }
                    c.service_session_in_flight = n;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.service.admission.budgetBytes",
                env: Some("SPARK_SQL_SERVICE_ADMISSION_BUDGET"),
                kind: Kind::Bytes,
                get: |c| c.service_admission_budget.to_string(),
                set: |c, v| {
                    c.service_admission_budget =
                        parse_bytes("spark.sql.service.admission.budgetBytes", v)?;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.service.admission.queryBytes",
                env: None,
                kind: Kind::Bytes,
                get: |c| c.service_admission_query_bytes.to_string(),
                set: |c, v| {
                    let n = parse_bytes("spark.sql.service.admission.queryBytes", v)?;
                    if n == 0 {
                        return Err(CatalystError::analysis(
                            "spark.sql.service.admission.queryBytes must be at least 1",
                        ));
                    }
                    c.service_admission_query_bytes = n;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.service.maxQueued",
                env: None,
                kind: Kind::Count,
                get: |c| c.service_max_queued.to_string(),
                set: |c, v| {
                    c.service_max_queued = parse_count("spark.sql.service.maxQueued", v)?;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.service.queryTimeoutMs",
                env: None,
                kind: Kind::Count,
                get: |c| c.service_query_timeout_ms.to_string(),
                set: |c, v| {
                    c.service_query_timeout_ms =
                        parse_count("spark.sql.service.queryTimeoutMs", v)?;
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.chaos.seed",
                env: Some("ENGINE_CHAOS_SEED"),
                kind: Kind::Str,
                get: |c| c.chaos_seed.map(|s| s.to_string()).unwrap_or_default(),
                set: |c, v| {
                    if v.is_empty() {
                        c.chaos_seed = None;
                        return Ok(());
                    }
                    c.chaos_seed = Some(v.parse::<u64>().map_err(|_| {
                        CatalystError::analysis(format!(
                            "invalid seed '{v}' for spark.sql.chaos.seed (u64 or empty)"
                        ))
                    })?);
                    Ok(())
                },
            },
            ConfEntry {
                key: "spark.sql.chaos.prob",
                env: Some("ENGINE_CHAOS_PROB"),
                kind: Kind::Str,
                get: |c| c.chaos_prob.map(|p| p.to_string()).unwrap_or_default(),
                set: |c, v| {
                    if v.is_empty() {
                        c.chaos_prob = None;
                        return Ok(());
                    }
                    c.chaos_prob = Some(parse_float("spark.sql.chaos.prob", v)?);
                    Ok(())
                },
            },
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_set_get_roundtrip() {
        let mut c = SqlConf::base();
        c.set("spark.sql.vectorize.enabled", "false").unwrap();
        assert!(!c.vectorize_enabled);
        assert_eq!(c.get("spark.sql.vectorize.enabled").unwrap(), "false");
        c.set("spark.sql.memory.budgetBytes", "64k").unwrap();
        assert_eq!(c.memory_budget_bytes, 64 * 1024);
        c.set("spark.sql.autoBroadcastJoinThreshold", "16m")
            .unwrap();
        assert_eq!(c.broadcast_threshold, 16 << 20);
        c.set("spark.sql.shuffle.partitions", "3").unwrap();
        assert_eq!(c.shuffle_partitions, 3);
        c.set("spark.sql.adaptive.skewFactor", "2.5").unwrap();
        assert_eq!(c.adaptive_skew_factor, 2.5);
        // Keys are case-insensitive.
        c.set("SPARK.SQL.CODEGEN.ENABLED", "off").unwrap();
        assert!(!c.codegen_enabled);
    }

    #[test]
    fn unknown_key_lists_valid_keys() {
        let mut c = SqlConf::base();
        let err = c
            .set("spark.sql.vectorise.enabled", "true")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown config key"), "{err}");
        assert!(err.contains("spark.sql.vectorize.enabled"), "{err}");
        let err = c.get("nope").unwrap_err().to_string();
        assert!(err.contains("spark.sql.memory.budgetBytes"), "{err}");
    }

    #[test]
    fn invalid_values_error() {
        let mut c = SqlConf::base();
        assert!(c.set("spark.sql.vectorize.enabled", "maybe").is_err());
        assert!(c.set("spark.sql.memory.budgetBytes", "lots").is_err());
        assert!(c.set("spark.sql.shuffle.partitions", "0").is_err());
        assert!(c.set("spark.sql.chaos.seed", "x").is_err());
    }

    #[test]
    fn env_routes_through_registry_and_explicit_set_wins() {
        let env = |var: &str| match var {
            "CATALYST_VECTORIZE" => Some("0".to_string()),
            "CATALYST_ADAPTIVE" => Some("weird-but-truthy".to_string()),
            "SPARK_SQL_MEMORY_BUDGET" => Some("1m".to_string()),
            "ENGINE_CHAOS_SEED" => Some("42".to_string()),
            "CATALYST_VALIDATE" => Some("1".to_string()),
            _ => None,
        };
        let mut c = SqlConf::from_env_lookup(&env);
        // Env beat the defaults (lenient legacy bool grammar).
        assert!(!c.vectorize_enabled);
        assert!(c.adaptive_enabled);
        assert_eq!(c.memory_budget_bytes, 1 << 20);
        assert_eq!(c.chaos_seed, Some(42));
        assert_eq!(c.plan_validation, Some(true));
        // Explicit set beats env.
        c.set("spark.sql.vectorize.enabled", "true").unwrap();
        assert!(c.vectorize_enabled);
        c.set("spark.sql.memory.budgetBytes", "0").unwrap();
        assert_eq!(c.memory_budget_bytes, 0);
        // Unparsable env values for non-bool kinds are ignored.
        let c = SqlConf::from_env_lookup(&|v| {
            (v == "SPARK_SQL_MEMORY_BUDGET").then(|| "garbage".to_string())
        });
        assert_eq!(c.memory_budget_bytes, 0);
    }

    #[test]
    fn service_and_cache_keys_roundtrip() {
        let mut c = SqlConf::base();
        c.set("spark.sql.cache.budgetBytes", "4m").unwrap();
        assert_eq!(c.cache_budget_bytes, 4 << 20);
        c.set("spark.sql.cache.evictionPolicy", "cost").unwrap();
        assert_eq!(c.cache_eviction_policy, "cost");
        assert!(c.set("spark.sql.cache.evictionPolicy", "fifo").is_err());
        c.set("spark.sql.service.workers", "8").unwrap();
        assert_eq!(c.service_workers, 8);
        assert!(c.set("spark.sql.service.workers", "0").is_err());
        assert!(c.set("spark.sql.service.sessionInFlight", "0").is_err());
        c.set("spark.sql.service.admission.budgetBytes", "64m")
            .unwrap();
        assert_eq!(c.service_admission_budget, 64 << 20);
        c.set("spark.sql.service.admission.queryBytes", "1m")
            .unwrap();
        assert_eq!(c.service_admission_query_bytes, 1 << 20);
        assert!(c
            .set("spark.sql.service.admission.queryBytes", "0")
            .is_err());
        c.set("spark.sql.service.queryTimeoutMs", "250").unwrap();
        assert_eq!(c.service_query_timeout_ms, 250);
        c.set("spark.sql.service.maxQueued", "5").unwrap();
        assert_eq!(c.service_max_queued, 5);
    }

    #[test]
    fn entries_cover_every_key_and_sort() {
        let c = SqlConf::base();
        let entries = c.entries();
        assert_eq!(entries.len(), SqlConf::valid_keys().len());
        let mut sorted = entries.clone();
        sorted.sort();
        assert_eq!(entries, sorted);
        assert!(entries
            .iter()
            .any(|(k, v)| k == "spark.sql.memory.spillEnabled" && v == "true"));
    }

    #[test]
    fn effective_budget_honors_escape_hatch() {
        let mut c = SqlConf::base();
        assert_eq!(c.effective_memory_budget(), None);
        c.memory_budget_bytes = 4096;
        assert_eq!(c.effective_memory_budget(), Some(4096));
        c.set("spark.sql.memory.spillEnabled", "false").unwrap();
        assert_eq!(c.effective_memory_budget(), None);
    }
}
