//! Physical plan execution: lowers Catalyst physical operators onto the
//! engine's RDDs, so relational queries run on the same substrate —
//! stages, shuffles, broadcasts — as procedural Spark code.
//!
//! Expression evaluation honors `SqlConf::codegen_enabled`: on, operators
//! use compiled fused closures (§4.3.4); off, they fall back to the
//! tree-walking interpreter — which is exactly the Shark-baseline
//! configuration of the Figure 8 experiment.

use crate::conf::SqlConf;
use crate::rdd_table::RddTable;
use crate::spill::{self, SpillCtx};
use catalyst::adaptive::{rules as adaptive_rules, AdaptivePlanChange, AdaptiveRule};
use catalyst::codegen;
use catalyst::error::{CatalystError, Result};
use catalyst::expr::{
    AggFunc, ColumnRef, Expr, FrameBound, FrameUnits, SortOrder, WindowFrame, WindowFunc,
};
use catalyst::interpreter::{self, bind_references};
use catalyst::physical::metrics::{subtree_size, OperatorMetrics, PlanMetrics};
use catalyst::physical::{BuildSide, PhysicalPlan};
use catalyst::plan::JoinType;
use catalyst::row::Row;
use catalyst::source::RowIter;
use catalyst::tree::{Transformed, TreeNode};
use catalyst::types::DataType;
use catalyst::validation::PlanValidator;
use catalyst::value::Value;
use catalyst::vectorized::{self, RowBatch};
use engine::shuffle::SizeFn;
use engine::{
    HashPartitioner, MaterializedShuffle, MemoryPool, PairRdd, RangePartitioner, RddRef,
    ShuffleReadSpec, SparkContext,
};
use std::cmp::Ordering;
use std::hash::Hash;
use std::time::Instant;

fn engine_err(e: engine::EngineError) -> CatalystError {
    CatalystError::Internal(format!("execution failed: {e}"))
}
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Shared recorder of adaptive plan changes for one execution. Cloned
/// handles append to the same list; `QueryExecution` keeps one to render
/// initial-vs-final plans in `explain_analyze`.
#[derive(Clone, Default)]
pub struct AdaptiveLog(Arc<Mutex<Vec<AdaptivePlanChange>>>);

impl AdaptiveLog {
    /// Append one adaptive decision.
    pub fn record(&self, change: AdaptivePlanChange) {
        self.0.lock().unwrap().push(change);
    }

    /// All changes recorded so far, in decision order.
    pub fn snapshot(&self) -> Vec<AdaptivePlanChange> {
        self.0.lock().unwrap().clone()
    }

    /// Drop recorded changes (start of a fresh execution).
    pub fn clear(&self) {
        self.0.lock().unwrap().clear();
    }
}

/// Everything execution needs.
pub struct ExecContext {
    /// The engine.
    pub sc: SparkContext,
    /// Session configuration.
    pub conf: SqlConf,
    /// Per-operator metrics registry, indexed by pre-order node id.
    /// `None` runs uninstrumented (no metering wrappers at all).
    pub metrics: Option<Arc<PlanMetrics>>,
    /// Adaptive decisions made while lowering (stage-by-stage execution
    /// records coalescing, demotions, and skew splits here).
    pub adaptive: AdaptiveLog,
    /// Memory pool governing the buffering operators of this execution.
    /// Bounded when `spark.sql.memory.budgetBytes` is set (and spilling
    /// is not disabled); unbounded pools never deny and never spill.
    pub mem: Arc<MemoryPool>,
    /// Cooperative cancellation token. When set, every operator's
    /// partition iterator checks it at the partition boundary and every
    /// 256 rows (per batch on the vectorized path); a fired token unwinds
    /// the task with [`engine::CancelSignal`], releasing reservations and
    /// spill files on the way out.
    pub cancel: Option<engine::CancelToken>,
}

/// Build the execution's memory pool from session configuration.
fn pool_from_conf(conf: &SqlConf) -> Arc<MemoryPool> {
    match conf.effective_memory_budget() {
        Some(budget) => MemoryPool::bounded(budget, conf.spill_path()),
        None => MemoryPool::unbounded(),
    }
}

impl ExecContext {
    /// An uninstrumented execution context.
    pub fn new(sc: SparkContext, conf: SqlConf) -> Self {
        let mem = pool_from_conf(&conf);
        ExecContext {
            sc,
            conf,
            metrics: None,
            adaptive: AdaptiveLog::default(),
            mem,
            cancel: None,
        }
    }

    /// An instrumented context recording into `metrics`.
    pub fn instrumented(sc: SparkContext, conf: SqlConf, metrics: Arc<PlanMetrics>) -> Self {
        let mem = pool_from_conf(&conf);
        ExecContext {
            sc,
            conf,
            metrics: Some(metrics),
            adaptive: AdaptiveLog::default(),
            mem,
            cancel: None,
        }
    }

    /// Spill context for the operator with pre-order id `id`.
    fn spill_ctx(&self, id: usize) -> SpillCtx {
        SpillCtx {
            pool: self.mem.clone(),
            node: self.metrics.as_ref().map(|pm| pm.node(id)),
        }
    }
}

/// Partition iterator that counts rows and the wall time spent producing
/// them, flushing into an [`OperatorMetrics`] slot when dropped. Time is
/// accumulated around `next()` only, so pipelined *downstream* work is
/// excluded while upstream operators of the same stage are included —
/// matching how per-operator times read in Spark's SQL UI.
struct MeteredIter {
    inner: engine::BoxIter<Row>,
    node: Arc<OperatorMetrics>,
    rows: u64,
    elapsed_ns: u64,
}

impl Iterator for MeteredIter {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        let t0 = Instant::now();
        let item = self.inner.next();
        self.elapsed_ns += t0.elapsed().as_nanos() as u64;
        if item.is_some() {
            self.rows += 1;
        }
        item
    }
}

impl Drop for MeteredIter {
    fn drop(&mut self) {
        self.node.add_rows(self.rows);
        self.node.add_elapsed_ns(self.elapsed_ns);
    }
}

/// Wrap an operator's output RDD so every partition records rows/time.
fn metered(rdd: &RddRef<Row>, node: Arc<OperatorMetrics>) -> RddRef<Row> {
    rdd.map_partitions(move |it| {
        Box::new(MeteredIter {
            inner: it,
            node: node.clone(),
            rows: 0,
            elapsed_ns: 0,
        })
    })
}

/// Cooperative cancellation point in a row pipeline: checks the token
/// when the partition opens and every 256 rows after.
struct CancelCheckIter {
    inner: engine::BoxIter<Row>,
    token: engine::CancelToken,
    count: u32,
}

impl Iterator for CancelCheckIter {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        self.count = self.count.wrapping_add(1);
        if self.count & 0xFF == 0 {
            engine::cancel::check(&self.token);
        }
        self.inner.next()
    }
}

/// Wrap an operator's output so its partitions observe `token`.
fn cancel_checked(rdd: &RddRef<Row>, token: engine::CancelToken) -> RddRef<Row> {
    rdd.map_partitions(move |it| {
        engine::cancel::check(&token);
        Box::new(CancelCheckIter {
            inner: it,
            token: token.clone(),
            count: 0,
        })
    })
}

/// Batch-path cancellation point: per batch (a batch is the row path's
/// "every few hundred rows" in one step).
fn cancel_checked_batches(rdd: &RddRef<RowBatch>, token: engine::CancelToken) -> RddRef<RowBatch> {
    rdd.map_partitions(move |it| {
        engine::cancel::check(&token);
        let token = token.clone();
        Box::new(it.inspect(move |_| engine::cancel::check(&token)))
    })
}

/// Credit driver-side (eager) work to a node's elapsed time.
fn note_eager_ns(ctx: &ExecContext, id: usize, start: Instant) {
    if let Some(pm) = &ctx.metrics {
        pm.node(id)
            .add_elapsed_ns(start.elapsed().as_nanos() as u64);
    }
}

type RowFn = Arc<dyn Fn(&Row) -> Row + Send + Sync>;
type PredFn = Arc<dyn Fn(&Row) -> bool + Send + Sync>;

fn bind_all(exprs: &[Expr], input: &[ColumnRef]) -> Result<Vec<Expr>> {
    exprs
        .iter()
        .map(|e| bind_references(e.clone(), input))
        .collect()
}

/// Build a row→row projector, compiled or interpreted per config.
fn projector(exprs: &[Expr], input: &[ColumnRef], codegen_on: bool) -> Result<RowFn> {
    let bound = bind_all(exprs, input)?;
    if codegen_on {
        let compiled = codegen::compile_projection(&bound);
        Ok(Arc::new(move |row| {
            compiled(row).expect("projection failed")
        }))
    } else {
        Ok(Arc::new(move |row| {
            Row::new(
                bound
                    .iter()
                    .map(|e| interpreter::eval(e, row).expect("projection failed"))
                    .collect(),
            )
        }))
    }
}

/// Build a row predicate, compiled or interpreted per config.
fn predicate(expr: &Expr, input: &[ColumnRef], codegen_on: bool) -> Result<PredFn> {
    let bound = bind_references(expr.clone(), input)?;
    if codegen_on {
        Ok(codegen::compile_predicate(&bound))
    } else {
        Ok(Arc::new(move |row| {
            interpreter::eval_predicate(&bound, row).expect("predicate failed")
        }))
    }
}

type ValueFn = Arc<dyn Fn(&Row) -> Value + Send + Sync>;

/// Build a single-value evaluator, compiled or interpreted per config.
fn value_fn(bound: Expr, codegen_on: bool) -> ValueFn {
    if codegen_on {
        let dtype = bound.data_type().unwrap_or(DataType::String);
        let compiled = codegen::compile(&bound);
        Arc::new(move |row| compiled.eval_value(row, &dtype).expect("expression failed"))
    } else {
        Arc::new(move |row| interpreter::eval(&bound, row).expect("expression failed"))
    }
}

/// Sort key with per-column directions and a total order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SortKey {
    values: Vec<Value>,
    descending_mask: u64,
}

impl SortKey {
    fn new(values: Vec<Value>, orders: &[SortOrder]) -> Self {
        let mut mask = 0u64;
        for (i, o) in orders.iter().enumerate() {
            if !o.ascending {
                mask |= 1 << i;
            }
        }
        SortKey {
            values,
            descending_mask: mask,
        }
    }

    /// The key column values (for flattening into a spillable row).
    pub(crate) fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (i, (a, b)) in self.values.iter().zip(other.values.iter()).enumerate() {
            let mut o = a.total_cmp(b);
            if self.descending_mask & (1 << i) != 0 {
                o = o.reverse();
            }
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    }
}

// ---- aggregation machinery ----

/// One accumulator instance.
#[derive(Debug, Clone)]
pub enum Acc {
    /// COUNT (of non-null args, or all rows for COUNT(*)).
    Count(i64),
    /// SUM.
    Sum(Option<Value>),
    /// MIN.
    Min(Option<Value>),
    /// MAX.
    Max(Option<Value>),
    /// AVG (sum + count).
    Avg(Option<Value>, i64),
    /// Any DISTINCT aggregate: collect the distinct set, finish by func.
    Distinct(HashSet<Value>, AggFunc),
}

/// A planned aggregate call: evaluator for the argument + accumulator
/// factory.
#[derive(Clone)]
struct AggCall {
    func: AggFunc,
    distinct: bool,
    /// Bound argument evaluator (None = COUNT(*)).
    arg: Option<ValueFn>,
}

impl AggCall {
    fn init(&self) -> Acc {
        if self.distinct {
            return Acc::Distinct(HashSet::new(), self.func);
        }
        match self.func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(None),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg(None, 0),
        }
    }

    fn arg_value(&self, row: &Row) -> Value {
        match &self.arg {
            None => Value::Long(1), // COUNT(*): every row counts
            Some(f) => f(row),
        }
    }

    fn update(&self, acc: &mut Acc, row: &Row) {
        let v = self.arg_value(row);
        match acc {
            Acc::Count(n) => {
                if self.arg.is_none() || !v.is_null() {
                    *n += 1;
                }
            }
            Acc::Sum(s) => {
                if !v.is_null() {
                    *s = Some(match s.take() {
                        Some(cur) => cur.add(&v).expect("sum failed"),
                        None => v,
                    });
                }
            }
            Acc::Min(m) => {
                if !v.is_null() && m.as_ref().is_none_or(|cur| v < *cur) {
                    *m = Some(v);
                }
            }
            Acc::Max(m) => {
                if !v.is_null() && m.as_ref().is_none_or(|cur| v > *cur) {
                    *m = Some(v);
                }
            }
            Acc::Avg(s, n) => {
                if !v.is_null() {
                    *s = Some(match s.take() {
                        Some(cur) => cur.add(&v).expect("avg failed"),
                        None => v,
                    });
                    *n += 1;
                }
            }
            Acc::Distinct(set, _) => {
                if !v.is_null() {
                    set.insert(v);
                }
            }
        }
    }
}

impl Acc {
    /// Encode for spilling as a self-describing tagged array. Inverse of
    /// [`Acc::from_value`]; round-trips exactly through the spill codec.
    pub(crate) fn to_value(&self) -> Value {
        let items: Vec<Value> = match self {
            Acc::Count(n) => vec![Value::Long(0), Value::Long(*n)],
            Acc::Sum(s) => vec![Value::Long(1), s.clone().unwrap_or(Value::Null)],
            Acc::Min(m) => vec![Value::Long(2), m.clone().unwrap_or(Value::Null)],
            Acc::Max(m) => vec![Value::Long(3), m.clone().unwrap_or(Value::Null)],
            Acc::Avg(s, n) => {
                vec![
                    Value::Long(4),
                    s.clone().unwrap_or(Value::Null),
                    Value::Long(*n),
                ]
            }
            Acc::Distinct(set, f) => {
                let mut items = vec![Value::Long(5), Value::Long(agg_func_tag(*f))];
                items.extend(set.iter().cloned());
                items
            }
        };
        Value::Array(Arc::new(items))
    }

    /// Decode a spilled accumulator. Panics on malformed input — spill
    /// files are written and read by the same process.
    pub(crate) fn from_value(v: &Value) -> Acc {
        let Value::Array(items) = v else {
            panic!("corrupt spilled accumulator")
        };
        let opt = |v: &Value| if v.is_null() { None } else { Some(v.clone()) };
        match (items.first(), items.get(1)) {
            (Some(Value::Long(0)), Some(Value::Long(n))) => Acc::Count(*n),
            (Some(Value::Long(1)), Some(s)) => Acc::Sum(opt(s)),
            (Some(Value::Long(2)), Some(m)) => Acc::Min(opt(m)),
            (Some(Value::Long(3)), Some(m)) => Acc::Max(opt(m)),
            (Some(Value::Long(4)), Some(s)) => match items.get(2) {
                Some(Value::Long(n)) => Acc::Avg(opt(s), *n),
                _ => panic!("corrupt spilled AVG accumulator"),
            },
            (Some(Value::Long(5)), Some(Value::Long(tag))) => Acc::Distinct(
                items[2..].iter().cloned().collect(),
                agg_func_from_tag(*tag),
            ),
            _ => panic!("corrupt spilled accumulator"),
        }
    }

    /// Rough in-memory footprint, for reservation accounting.
    pub(crate) fn approx_bytes(&self) -> u64 {
        match self {
            Acc::Count(_) => 16,
            Acc::Sum(v) | Acc::Min(v) | Acc::Max(v) => {
                16 + v.as_ref().map_or(0, Value::approx_bytes)
            }
            Acc::Avg(v, _) => 24 + v.as_ref().map_or(0, Value::approx_bytes),
            Acc::Distinct(set, _) => 32 + set.iter().map(|v| 16 + v.approx_bytes()).sum::<u64>(),
        }
    }
}

fn agg_func_tag(f: AggFunc) -> i64 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    }
}

fn agg_func_from_tag(t: i64) -> AggFunc {
    match t {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        _ => panic!("corrupt spilled aggregate function tag {t}"),
    }
}

pub(crate) fn merge_acc(a: Acc, b: Acc) -> Acc {
    match (a, b) {
        (Acc::Count(x), Acc::Count(y)) => Acc::Count(x + y),
        (Acc::Sum(x), Acc::Sum(y)) => Acc::Sum(merge_opt_add(x, y)),
        (Acc::Min(x), Acc::Min(y)) => Acc::Min(merge_opt_by(x, y, |a, b| a <= b)),
        (Acc::Max(x), Acc::Max(y)) => Acc::Max(merge_opt_by(x, y, |a, b| a >= b)),
        (Acc::Avg(xs, xn), Acc::Avg(ys, yn)) => Acc::Avg(merge_opt_add(xs, ys), xn + yn),
        (Acc::Distinct(mut xa, f), Acc::Distinct(yb, _)) => {
            xa.extend(yb);
            Acc::Distinct(xa, f)
        }
        _ => unreachable!("mismatched accumulators"),
    }
}

fn merge_opt_add(a: Option<Value>, b: Option<Value>) -> Option<Value> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.add(&y).expect("merge failed")),
        (x, None) => x,
        (None, y) => y,
    }
}

fn merge_opt_by(
    a: Option<Value>,
    b: Option<Value>,
    keep_left: fn(&Value, &Value) -> bool,
) -> Option<Value> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if keep_left(&x, &y) { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

fn finish_acc(acc: Acc) -> Value {
    match acc {
        Acc::Count(n) => Value::Long(n),
        Acc::Sum(s) => s.unwrap_or(Value::Null),
        Acc::Min(m) | Acc::Max(m) => m.unwrap_or(Value::Null),
        Acc::Avg(s, n) => match (s, n) {
            (Some(sum), n) if n > 0 => match sum.as_f64() {
                Some(f) => Value::Double(f / n as f64),
                None => Value::Null,
            },
            _ => Value::Null,
        },
        Acc::Distinct(set, f) => match f {
            AggFunc::Count => Value::Long(set.len() as i64),
            AggFunc::Sum => set
                .into_iter()
                .try_fold(None::<Value>, |acc, v| -> Result<Option<Value>> {
                    Ok(Some(match acc {
                        Some(cur) => cur.add(&v)?,
                        None => v,
                    }))
                })
                .ok()
                .flatten()
                .unwrap_or(Value::Null),
            AggFunc::Min => set.into_iter().min().unwrap_or(Value::Null),
            AggFunc::Max => set.into_iter().max().unwrap_or(Value::Null),
            AggFunc::Avg => {
                let n = set.len();
                if n == 0 {
                    Value::Null
                } else {
                    let sum: f64 = set.iter().filter_map(Value::as_f64).sum();
                    Value::Double(sum / n as f64)
                }
            }
        },
    }
}

/// Execute a physical plan into an RDD of rows.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<RddRef<Row>> {
    execute_node(plan, 0, ctx)
}

/// Lower one node (pre-order id `id`), then — when instrumented — claim
/// the shuffles its lowering allocated and wrap its output with metering.
///
/// Children claim their shuffle ids before the parent inspects the
/// enclosing window, so each shuffle lands on the operator that induced
/// the exchange (sort, aggregate, shuffled join, distinct).
fn execute_node(plan: &PhysicalPlan, id: usize, ctx: &ExecContext) -> Result<RddRef<Row>> {
    if ctx.conf.vectorize_enabled {
        if let Some(batched) = try_execute_batched(plan, id, ctx) {
            // Batch→row adapter: compact selected lanes into rows only at
            // the boundary where a row operator (or the driver) consumes
            // them. The batch subtree already metered itself, so the
            // adapter is deliberately unmetered.
            return Ok(batched?.flat_map(RowBatch::into_selected_rows));
        }
    }
    let shuffles_before = ctx.sc.current_shuffle_id();
    let rdd = lower(plan, id, ctx)?;
    let rdd = match &ctx.metrics {
        Some(pm) => {
            let node = pm.node(id);
            for sid in pm.claim_shuffles(shuffles_before..ctx.sc.current_shuffle_id()) {
                node.add_shuffle_id(sid);
            }
            metered(&rdd, node)
        }
        None => rdd,
    };
    Ok(match &ctx.cancel {
        Some(token) => cancel_checked(&rdd, token.clone()),
        None => rdd,
    })
}

// ---- vectorized (batch) execution path ----

/// Partition iterator chunking a row scan into [`RowBatch`]es — the
/// generic row→batch adapter for sources without a native vector scan.
struct IterChunks {
    inner: RowIter,
    dtypes: Arc<Vec<DataType>>,
    batch_size: usize,
}

impl Iterator for IterChunks {
    type Item = RowBatch;

    fn next(&mut self) -> Option<RowBatch> {
        let mut buf = Vec::with_capacity(self.batch_size);
        while buf.len() < self.batch_size {
            match self.inner.next() {
                Some(row) => buf.push(row),
                None => break,
            }
        }
        if buf.is_empty() {
            None
        } else {
            Some(RowBatch::from_rows(&self.dtypes, &buf))
        }
    }
}

/// Batch-path analogue of [`MeteredIter`]: `rows` counts *selected* rows
/// (comparable with the row path), `batches` and `batch_rows_scanned`
/// (physical lanes) expose batch counts and per-operator selectivity in
/// `explain_analyze`.
struct BatchMeteredIter {
    inner: engine::BoxIter<RowBatch>,
    node: Arc<OperatorMetrics>,
    rows: u64,
    lanes: u64,
    batches: u64,
    elapsed_ns: u64,
}

impl Iterator for BatchMeteredIter {
    type Item = RowBatch;

    fn next(&mut self) -> Option<RowBatch> {
        let t0 = Instant::now();
        let item = self.inner.next();
        self.elapsed_ns += t0.elapsed().as_nanos() as u64;
        if let Some(b) = &item {
            self.batches += 1;
            self.rows += b.selected_count() as u64;
            self.lanes += b.num_rows() as u64;
        }
        item
    }
}

impl Drop for BatchMeteredIter {
    fn drop(&mut self) {
        self.node.add_rows(self.rows);
        self.node.add_elapsed_ns(self.elapsed_ns);
        self.node.add_extra("batches", self.batches);
        self.node.add_extra("batch_rows_scanned", self.lanes);
    }
}

fn metered_batches(rdd: &RddRef<RowBatch>, node: Arc<OperatorMetrics>) -> RddRef<RowBatch> {
    rdd.map_partitions(move |it| {
        Box::new(BatchMeteredIter {
            inner: it,
            node: node.clone(),
            rows: 0,
            lanes: 0,
            batches: 0,
            elapsed_ns: 0,
        })
    })
}

/// Lower a plan subtree to batch operators, or `None` when this operator
/// (or, for Filter/Project, its child chain down to a leaf) has no batch
/// form — the caller then takes the row path for the whole subtree.
/// Batch subtrees grow from batchable leaves (Scan, LocalData) upward
/// through Filter and Project only; everything else adapts at the
/// boundary via [`RowBatch::into_selected_rows`].
fn try_execute_batched(
    plan: &PhysicalPlan,
    id: usize,
    ctx: &ExecContext,
) -> Option<Result<RddRef<RowBatch>>> {
    let lowered = try_lower_batched(plan, id, ctx)?;
    Some(lowered.map(|rdd| {
        let rdd = match &ctx.metrics {
            Some(pm) => metered_batches(&rdd, pm.node(id)),
            None => rdd,
        };
        match &ctx.cancel {
            Some(token) => cancel_checked_batches(&rdd, token.clone()),
            None => rdd,
        }
    }))
}

fn try_lower_batched(
    plan: &PhysicalPlan,
    id: usize,
    ctx: &ExecContext,
) -> Option<Result<RddRef<RowBatch>>> {
    match plan {
        PhysicalPlan::Scan {
            relation,
            projection,
            pushed_filters,
            residual,
            output,
        } => {
            let relation = relation.clone();
            let n = relation.num_partitions().max(1);
            let proj = projection.clone();
            let filters = pushed_filters.clone();
            let dtypes: Arc<Vec<DataType>> =
                Arc::new(output.iter().map(|c| c.dtype.clone()).collect());
            let batch_size = ctx.conf.vectorize_batch_size.max(1);
            let rdd = ctx.sc.generate(n, move |p| -> engine::BoxIter<RowBatch> {
                match relation.scan_partition_vectors(p, proj.as_deref(), &filters) {
                    Ok(Some(batches)) => batches,
                    Ok(None) => match relation.scan_partition(p, proj.as_deref(), &filters) {
                        Ok(it) => Box::new(IterChunks {
                            inner: it,
                            dtypes: dtypes.clone(),
                            batch_size,
                        }),
                        Err(e) => panic!("scan failed: {e}"),
                    },
                    Err(e) => panic!("scan failed: {e}"),
                }
            });
            Some(match residual {
                Some(r) => batch_filter(rdd, r, output, ctx),
                None => Ok(rdd),
            })
        }

        PhysicalPlan::LocalData { rows, output } => {
            let rows = rows.clone();
            let dtypes: Arc<Vec<DataType>> =
                Arc::new(output.iter().map(|c| c.dtype.clone()).collect());
            let batch_size = ctx.conf.vectorize_batch_size.max(1);
            Some(Ok(ctx.sc.generate(
                1,
                move |_| -> engine::BoxIter<RowBatch> {
                    let rows = rows.clone();
                    let it: RowIter = Box::new((0..rows.len()).map(move |i| rows[i].clone()));
                    Box::new(IterChunks {
                        inner: it,
                        dtypes: dtypes.clone(),
                        batch_size,
                    })
                },
            )))
        }

        PhysicalPlan::Filter { input, predicate } => {
            let child = try_execute_batched(input, id + 1, ctx)?;
            Some(child.and_then(|rdd| batch_filter(rdd, predicate, &input.output(), ctx)))
        }

        PhysicalPlan::Project { input, exprs } => {
            let child = try_execute_batched(input, id + 1, ctx)?;
            Some(child.and_then(|rdd| {
                let bound = bind_all(exprs, &input.output())?;
                let kernels = ctx.conf.codegen_enabled;
                Ok(rdd.map(move |b| {
                    vectorized::eval_projection_batch(&bound, &b, kernels)
                        .expect("projection failed")
                }))
            }))
        }

        _ => None,
    }
}

/// Partition iterator for the vectorized sort front end: chunks rows
/// into batches, evaluates the ORDER BY keys columnar
/// ([`vectorized::sort_keys_batch`]), and re-emits `(key, row)` pairs in
/// arrival order — the same stream shape the row path produces, so the
/// downstream in-memory or external sort is byte-identical.
struct BatchSortKeys {
    inner: engine::BoxIter<Row>,
    bound: Arc<Vec<Expr>>,
    orders: Arc<Vec<SortOrder>>,
    dtypes: Arc<Vec<DataType>>,
    batch_size: usize,
    kernels: bool,
    out: std::vec::IntoIter<(SortKey, Row)>,
}

impl Iterator for BatchSortKeys {
    type Item = (SortKey, Row);

    fn next(&mut self) -> Option<(SortKey, Row)> {
        loop {
            if let Some(pair) = self.out.next() {
                return Some(pair);
            }
            let mut buf = Vec::with_capacity(self.batch_size);
            while buf.len() < self.batch_size {
                match self.inner.next() {
                    Some(row) => buf.push(row),
                    None => break,
                }
            }
            if buf.is_empty() {
                return None;
            }
            let batch = RowBatch::from_rows(&self.dtypes, &buf);
            let keys = vectorized::sort_keys_batch(&self.bound, &batch, self.kernels)
                .expect("sort key failed");
            let orders = self.orders.clone();
            let pairs: Vec<(SortKey, Row)> = buf
                .into_iter()
                .enumerate()
                .map(|(i, row)| {
                    let values: Vec<Value> = keys.iter().map(|c| c.get(i)).collect();
                    (SortKey::new(values, &orders), row)
                })
                .collect();
            self.out = pairs.into_iter();
        }
    }
}

/// Apply a predicate batch-wise: refine each batch's selection vector.
fn batch_filter(
    rdd: RddRef<RowBatch>,
    predicate: &Expr,
    input: &[ColumnRef],
    ctx: &ExecContext,
) -> Result<RddRef<RowBatch>> {
    let bound = bind_references(predicate.clone(), input)?;
    let kernels = ctx.conf.codegen_enabled;
    Ok(rdd.map(move |b| vectorized::filter_batch(&bound, &b, kernels).expect("predicate failed")))
}

fn lower(plan: &PhysicalPlan, id: usize, ctx: &ExecContext) -> Result<RddRef<Row>> {
    match plan {
        PhysicalPlan::Scan {
            relation,
            projection,
            pushed_filters,
            residual,
            output,
        } => {
            let relation = relation.clone();
            let n = relation.num_partitions().max(1);
            let proj = projection.clone();
            let filters = pushed_filters.clone();
            let rdd = ctx.sc.generate(n, move |p| {
                match relation.scan_partition(p, proj.as_deref(), &filters) {
                    Ok(it) => it,
                    Err(e) => panic!("scan failed: {e}"),
                }
            });
            match residual {
                Some(r) => {
                    let pred = predicate(r, output, ctx.conf.codegen_enabled)?;
                    Ok(rdd.filter(move |row| pred(row)))
                }
                None => Ok(rdd),
            }
        }

        PhysicalPlan::ExternalScan { data, .. } => match data.as_any().downcast_ref::<RddTable>() {
            Some(t) => Ok(t.rdd().clone()),
            None => Err(CatalystError::Internal(format!(
                "unknown external data source '{}'",
                data.name()
            ))),
        },

        PhysicalPlan::LocalData { rows, .. } => Ok(ctx.sc.parallelize(rows.as_ref().clone(), 1)),

        PhysicalPlan::Project { input, exprs } => {
            let child = execute_node(input, id + 1, ctx)?;
            let f = projector(exprs, &input.output(), ctx.conf.codegen_enabled)?;
            Ok(child.map(move |row| f(&row)))
        }

        PhysicalPlan::Filter {
            input,
            predicate: pred_expr,
        } => {
            let child = execute_node(input, id + 1, ctx)?;
            let pred = predicate(pred_expr, &input.output(), ctx.conf.codegen_enabled)?;
            Ok(child.filter(move |row| pred(row)))
        }

        PhysicalPlan::HashAggregate {
            input,
            groupings,
            output_exprs,
        } => execute_aggregate(input, groupings, output_exprs, id, ctx),

        PhysicalPlan::Sort { input, orders } => {
            let child = execute_node(input, id + 1, ctx)?;
            let bound = bind_all(
                &orders.iter().map(|o| o.expr.clone()).collect::<Vec<_>>(),
                &input.output(),
            )?;
            let key_dtypes: Vec<DataType> = bound
                .iter()
                .map(|e| e.data_type().unwrap_or(DataType::String))
                .collect();
            let orders_meta = orders.clone();
            let keyed = if ctx.conf.vectorize_enabled {
                // Vectorized key extraction: chunk the partition into
                // batches and evaluate the ORDER BY expressions columnar.
                // The (key, row) pairs come out in arrival order, so the
                // downstream sort — in-memory or external — consumes a
                // byte-identical stream to the row path's.
                let bound = Arc::new(bound);
                let orders_meta = Arc::new(orders_meta);
                let dtypes: Arc<Vec<DataType>> =
                    Arc::new(input.output().iter().map(|c| c.dtype.clone()).collect());
                let batch_size = ctx.conf.vectorize_batch_size.max(1);
                let kernels = ctx.conf.codegen_enabled;
                child.map_partitions(move |it| {
                    Box::new(BatchSortKeys {
                        inner: it,
                        bound: bound.clone(),
                        orders: orders_meta.clone(),
                        dtypes: dtypes.clone(),
                        batch_size,
                        kernels,
                        out: Vec::new().into_iter(),
                    })
                })
            } else {
                child.map(move |row| {
                    let values: Vec<Value> = bound
                        .iter()
                        .map(|e| interpreter::eval(e, &row).expect("sort key failed"))
                        .collect();
                    (SortKey::new(values, &orders_meta), row)
                })
            };
            if ctx.mem.is_bounded() {
                let row_dtypes = input.output().iter().map(|c| c.dtype.clone()).collect();
                return execute_external_sort(keyed, orders, key_dtypes, row_dtypes, id, ctx);
            }
            use engine::pair::SortedPairRdd;
            Ok(keyed
                .try_sort_by_key(true, ctx.conf.shuffle_partitions)
                .map_err(engine_err)?
                .values())
        }

        PhysicalPlan::Window {
            input,
            window_exprs,
            partition_by,
            order_by,
        } => execute_window(input, window_exprs, partition_by, order_by, id, ctx),

        PhysicalPlan::TakeOrdered { input, orders, n } => {
            let child = execute_node(input, id + 1, ctx)?;
            let eager_start = Instant::now();
            let bound = bind_all(
                &orders.iter().map(|o| o.expr.clone()).collect::<Vec<_>>(),
                &input.output(),
            )?;
            let orders_meta = orders.clone();
            let n = *n;
            // Per-partition top-k, then a driver-side merge.
            let tops = child
                .run_job(move |_, it| {
                    let mut rows: Vec<(SortKey, Row)> = it
                        .map(|row| {
                            let values: Vec<Value> = bound
                                .iter()
                                .map(|e| interpreter::eval(e, &row).expect("sort key failed"))
                                .collect();
                            (SortKey::new(values, &orders_meta), row)
                        })
                        .collect();
                    rows.sort_by(|a, b| a.0.cmp(&b.0));
                    rows.truncate(n);
                    rows
                })
                .map_err(engine_err)?;
            let mut all: Vec<(SortKey, Row)> = tops.into_iter().flatten().collect();
            all.sort_by(|a, b| a.0.cmp(&b.0));
            all.truncate(n);
            note_eager_ns(ctx, id, eager_start);
            Ok(ctx
                .sc
                .parallelize(all.into_iter().map(|(_, r)| r).collect(), 1))
        }

        PhysicalPlan::Limit { input, n } => {
            let child = execute_node(input, id + 1, ctx)?;
            let n = *n;
            let local = child.map_partitions(move |it| Box::new(it.take(n)));
            let single = local.coalesce(1);
            Ok(single.map_partitions(move |it| Box::new(it.take(n))))
        }

        PhysicalPlan::BroadcastHashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            build_side,
            residual,
        } => execute_broadcast_join(
            &JoinSite {
                left,
                right,
                left_keys,
                right_keys,
                join_type: *join_type,
                residual,
                join_plan: plan,
                id,
            },
            *build_side,
            ctx,
        ),

        PhysicalPlan::ShuffledHashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            build_side,
            residual,
        } => {
            let site = JoinSite {
                left,
                right,
                left_keys,
                right_keys,
                join_type: *join_type,
                residual,
                join_plan: plan,
                id,
            };
            if ctx.conf.adaptive_enabled {
                execute_adaptive_shuffled_join(&site, *build_side, ctx)
            } else {
                execute_shuffled_join(&site, *build_side, ctx)
            }
        }

        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            condition,
            join_type,
        } => execute_nested_loop_join(left, right, condition, *join_type, plan, id, ctx),

        PhysicalPlan::Union { inputs } => {
            let mut it = inputs.iter();
            let first = it
                .next()
                .ok_or_else(|| CatalystError::Internal("empty union".into()))?;
            let mut child_id = id + 1;
            let mut rdd = execute_node(first, child_id, ctx)?;
            child_id += subtree_size(first);
            for i in it {
                rdd = rdd.union(&execute_node(i, child_id, ctx)?);
                child_id += subtree_size(i);
            }
            Ok(rdd)
        }

        PhysicalPlan::Sample {
            input,
            fraction,
            seed,
        } => Ok(execute_node(input, id + 1, ctx)?.sample(*fraction, *seed)),

        PhysicalPlan::Extension { exec, children } => {
            let mut child_data = Vec::with_capacity(children.len());
            let mut child_id = id + 1;
            for c in children {
                let rdd = execute_node(c, child_id, ctx)?;
                child_id += subtree_size(c);
                let partitions: Vec<Vec<Row>> =
                    rdd.run_job(|_, it| it.collect()).map_err(engine_err)?;
                child_data.push(partitions);
            }
            let eager_start = Instant::now();
            let out = exec.execute(child_data)?;
            note_eager_ns(ctx, id, eager_start);
            let out = Arc::new(out);
            let n = out.len().max(1);
            Ok(ctx.sc.generate(n, move |p| match out.get(p) {
                Some(rows) => Box::new(rows.clone().into_iter()),
                None => Box::new(std::iter::empty()),
            }))
        }
    }
}

// ---- compiled ("whole-stage codegen") aggregation fast path ----
//
// When codegen is enabled, single-integer-key aggregations over numeric
// columns run entirely on unboxed i64/f64 accumulators: no Value boxing,
// no per-record pair allocation, no interpreter dispatch. This is the
// Rust analogue of the compiled aggregation that makes the Figure 9
// DataFrame program outperform hand-written RDD code.

#[derive(Clone)]
enum TAcc {
    /// COUNT(*) or COUNT(non-null arg).
    Cnt(i64),
    /// SUM with integral result type.
    SumI(i64, bool),
    /// SUM with floating result type.
    SumF(f64, bool),
    /// AVG.
    Avg(f64, i64),
    /// MIN over numerics.
    MinF(f64, bool),
    /// MAX over numerics.
    MaxF(f64, bool),
}

impl TAcc {
    fn merge(&mut self, other: &TAcc) {
        match (self, other) {
            (TAcc::Cnt(a), TAcc::Cnt(b)) => *a += b,
            (TAcc::SumI(a, sa), TAcc::SumI(b, sb)) => {
                *a += b;
                *sa |= sb;
            }
            (TAcc::SumF(a, sa), TAcc::SumF(b, sb)) => {
                *a += b;
                *sa |= sb;
            }
            (TAcc::Avg(a, na), TAcc::Avg(b, nb)) => {
                *a += b;
                *na += nb;
            }
            (TAcc::MinF(a, sa), TAcc::MinF(b, sb)) => {
                if *sb && (!*sa || *b < *a) {
                    *a = *b;
                    *sa = true;
                }
            }
            (TAcc::MaxF(a, sa), TAcc::MaxF(b, sb)) => {
                if *sb && (!*sa || *b > *a) {
                    *a = *b;
                    *sa = true;
                }
            }
            _ => unreachable!("mismatched typed accumulators"),
        }
    }

    fn finish(&self, dtype: &DataType) -> Value {
        match self {
            TAcc::Cnt(n) => Value::Long(*n),
            TAcc::SumI(v, seen) => {
                if *seen {
                    if *dtype == DataType::Int {
                        Value::Int(*v as i32)
                    } else {
                        Value::Long(*v)
                    }
                } else {
                    Value::Null
                }
            }
            TAcc::SumF(v, seen) => {
                if *seen {
                    Value::Double(*v)
                } else {
                    Value::Null
                }
            }
            TAcc::Avg(s, n) => {
                if *n > 0 {
                    Value::Double(s / *n as f64)
                } else {
                    Value::Null
                }
            }
            TAcc::MinF(v, seen) | TAcc::MaxF(v, seen) => {
                if !*seen {
                    Value::Null
                } else if dtype.is_integral() {
                    if *dtype == DataType::Int {
                        Value::Int(*v as i32)
                    } else {
                        Value::Long(*v as i64)
                    }
                } else {
                    Value::Double(*v)
                }
            }
        }
    }
}

/// One compiled aggregate: argument evaluator + accumulator template.
#[derive(Clone)]
enum TCall {
    CountAll,
    CountOf(codegen::RowFn<f64>),
    SumI(codegen::RowFn<i64>),
    SumF(codegen::RowFn<f64>),
    Avg(codegen::RowFn<f64>),
    Min(codegen::RowFn<f64>),
    Max(codegen::RowFn<f64>),
}

impl TCall {
    fn init(&self) -> TAcc {
        match self {
            TCall::CountAll | TCall::CountOf(_) => TAcc::Cnt(0),
            TCall::SumI(_) => TAcc::SumI(0, false),
            TCall::SumF(_) => TAcc::SumF(0.0, false),
            TCall::Avg(_) => TAcc::Avg(0.0, 0),
            TCall::Min(_) => TAcc::MinF(0.0, false),
            TCall::Max(_) => TAcc::MaxF(0.0, false),
        }
    }

    #[inline]
    fn update(&self, acc: &mut TAcc, row: &Row) {
        match (self, acc) {
            (TCall::CountAll, TAcc::Cnt(n)) => *n += 1,
            (TCall::CountOf(f), TAcc::Cnt(n)) => {
                if f(row).is_some() {
                    *n += 1;
                }
            }
            (TCall::SumI(f), TAcc::SumI(s, seen)) => {
                if let Some(v) = f(row) {
                    *s += v;
                    *seen = true;
                }
            }
            (TCall::SumF(f), TAcc::SumF(s, seen)) => {
                if let Some(v) = f(row) {
                    *s += v;
                    *seen = true;
                }
            }
            (TCall::Avg(f), TAcc::Avg(s, n)) => {
                if let Some(v) = f(row) {
                    *s += v;
                    *n += 1;
                }
            }
            (TCall::Min(f), TAcc::MinF(m, seen)) => {
                if let Some(v) = f(row) {
                    if !*seen || v < *m {
                        *m = v;
                        *seen = true;
                    }
                }
            }
            (TCall::Max(f), TAcc::MaxF(m, seen)) => {
                if let Some(v) = f(row) {
                    if !*seen || v > *m {
                        *m = v;
                        *seen = true;
                    }
                }
            }
            _ => unreachable!(),
        }
    }
}

/// Fast multiply-xor hasher for integer group keys (the engine-internal
/// hashing a compiled aggregation would emit; std's SipHash is
/// DoS-resistant but slow for this).
#[derive(Default, Clone)]
pub struct IntHasher(u64);

impl std::hash::Hasher for IntHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E3779B97F4A7C15);
        }
    }
    fn write_u64(&mut self, v: u64) {
        let mut z = self.0 ^ v;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        self.0 = z ^ (z >> 31);
    }
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type IntHashMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<IntHasher>>;

/// Try the compiled aggregation path. Requirements: codegen on, exactly
/// one integral grouping key, and only plain numeric aggregates.
fn try_fast_aggregate(
    child: &RddRef<Row>,
    bound_groupings: &[Expr],
    agg_exprs: &[Expr],
    final_exprs: &[Expr],
    id: usize,
    ctx: &ExecContext,
) -> Option<Result<RddRef<Row>>> {
    if !ctx.conf.codegen_enabled || bound_groupings.len() != 1 {
        return None;
    }
    let key_dtype = bound_groupings[0].data_type().ok()?;

    let mut calls: Vec<(TCall, DataType)> = Vec::with_capacity(agg_exprs.len());
    for e in agg_exprs {
        let Expr::Agg {
            func,
            arg,
            distinct: false,
        } = e
        else {
            return None;
        };
        let out_type = e.data_type().ok()?;
        let call = match (func, arg) {
            (AggFunc::Count, None) => TCall::CountAll,
            (func, Some(a)) => {
                let compiled = codegen::compile(a);
                let as_f = match &compiled {
                    codegen::Compiled::Double(f) => f.clone(),
                    codegen::Compiled::Long(f) => {
                        let f = f.clone();
                        Arc::new(move |row: &Row| f(row).map(|v| v as f64)) as codegen::RowFn<f64>
                    }
                    _ => return None,
                };
                match func {
                    AggFunc::Count => TCall::CountOf(as_f),
                    AggFunc::Sum => match &compiled {
                        codegen::Compiled::Long(f) if out_type.is_integral() => {
                            TCall::SumI(f.clone())
                        }
                        _ if out_type.is_integral() => return None,
                        _ => TCall::SumF(as_f),
                    },
                    AggFunc::Avg => TCall::Avg(as_f),
                    AggFunc::Min => TCall::Min(as_f),
                    AggFunc::Max => TCall::Max(as_f),
                }
            }
            _ => return None,
        };
        calls.push((call, out_type));
    }

    // Dispatch on the compiled key type: unboxed i64 or shared strings.
    match codegen::compile(&bound_groupings[0]) {
        codegen::Compiled::Long(key_fn) => {
            let key_is_int = key_dtype == DataType::Int;
            Some(run_fast_agg(
                child,
                key_fn,
                Arc::new(move |key: Option<i64>| match key {
                    None => Value::Null,
                    Some(k) if key_is_int => Value::Int(k as i32),
                    Some(k) => Value::Long(k),
                }),
                calls,
                final_exprs,
                id,
                ctx,
            ))
        }
        codegen::Compiled::Str(key_fn) => Some(run_fast_agg(
            child,
            key_fn,
            Arc::new(|key: Option<Arc<str>>| key.map_or(Value::Null, Value::Str)),
            calls,
            final_exprs,
            id,
            ctx,
        )),
        _ => None,
    }
}

/// The shared fast-aggregation pipeline: map-side combine into unboxed
/// accumulators keyed by `K`, shuffle the combined groups raw, merge once
/// on the reduce side, then run the final projection.
fn run_fast_agg<K: engine::Data + std::hash::Hash + Eq>(
    child: &RddRef<Row>,
    key_fn: codegen::RowFn<K>,
    key_to_value: Arc<dyn Fn(Option<K>) -> Value + Send + Sync>,
    calls: Vec<(TCall, DataType)>,
    final_exprs: &[Expr],
    id: usize,
    ctx: &ExecContext,
) -> Result<RddRef<Row>> {
    let calls_map = calls.clone();
    let mapped = child.map_partitions(move |it| {
        let mut groups: IntHashMap<Option<K>, Vec<TAcc>> = IntHashMap::default();
        for row in it {
            let key = key_fn(&row);
            let accs = groups
                .entry(key)
                .or_insert_with(|| calls_map.iter().map(|(c, _)| c.init()).collect());
            for ((call, _), acc) in calls_map.iter().zip(accs.iter_mut()) {
                call.update(acc, &row);
            }
        }
        Box::new(groups.into_iter())
    });
    let partitioner = Arc::new(HashPartitioner::new(ctx.conf.shuffle_partitions.max(1)));
    let shuffled = if ctx.conf.adaptive_enabled {
        // The pairs here are already map-side combined groups shuffled
        // raw, so coalescing reducers is safe (the reduce-side merge below
        // handles cross-map duplicates); map-range splitting would not be.
        let size_fn: SizeFn<Option<K>, Vec<TAcc>> =
            Arc::new(|_k: &Option<K>, accs: &Vec<TAcc>| 16 + 24 * accs.len() as u64);
        let mat = MaterializedShuffle::create(&mapped, partitioner, None, false, Some(size_fn))
            .map_err(engine_err)?;
        coalesced_read(&mat, "HashAggregate", id, ctx)
    } else {
        mapped.partition_by(partitioner)
    };
    let combined = shuffled.map_partitions(|it| {
        let mut groups: IntHashMap<Option<K>, Vec<TAcc>> = IntHashMap::default();
        for (key, accs) in it {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (x, y) in e.get_mut().iter_mut().zip(&accs) {
                        x.merge(y);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
            }
        }
        Box::new(groups.into_iter())
    });

    // Final: typed accumulators → values → final projection.
    let final_exprs = final_exprs.to_vec();
    Ok(combined.map(move |(key, accs)| {
        let mut values = Vec::with_capacity(1 + accs.len());
        values.push(key_to_value(key));
        for ((_, dtype), acc) in calls.iter().zip(accs) {
            values.push(acc.finish(dtype));
        }
        let internal = Row::new(values);
        Row::new(
            final_exprs
                .iter()
                .map(|e| interpreter::eval(e, &internal).expect("final aggregate failed"))
                .collect(),
        )
    }))
}

fn execute_aggregate(
    input: &Arc<PhysicalPlan>,
    groupings: &[Expr],
    output_exprs: &[Expr],
    id: usize,
    ctx: &ExecContext,
) -> Result<RddRef<Row>> {
    let input_attrs = input.output();

    // Unique aggregate calls appearing anywhere in the output list.
    let mut agg_exprs: Vec<Expr> = Vec::new();
    for e in output_exprs {
        e.for_each_node(&mut |n| {
            if matches!(n, Expr::Agg { .. }) && !agg_exprs.contains(n) {
                agg_exprs.push(n.clone());
            }
        });
    }

    // Rewrite output expressions over [group values ++ agg results].
    let ngroups = groupings.len();
    let mut final_exprs: Vec<Expr> = Vec::with_capacity(output_exprs.len());
    for e in output_exprs {
        let rewritten = e.clone().transform_down(&mut |n| {
            if let Some(i) = groupings.iter().position(|g| g == &n) {
                let dtype = n.data_type().unwrap_or(DataType::String);
                return Transformed::yes(Expr::BoundRef {
                    index: i,
                    dtype,
                    nullable: n.nullable(),
                    name: Arc::from(n.auto_name().as_str()),
                });
            }
            if let Some(j) = agg_exprs.iter().position(|a| a == &n) {
                let dtype = n.data_type().unwrap_or(DataType::String);
                return Transformed::yes(Expr::BoundRef {
                    index: ngroups + j,
                    dtype,
                    nullable: true,
                    name: Arc::from(n.auto_name().as_str()),
                });
            }
            Transformed::no(n)
        });
        final_exprs.push(rewritten.data);
    }

    // Bind group keys and aggregate args to the child output.
    let bound_groupings = bind_all(groupings, &input_attrs)?;
    let calls: Vec<AggCall> = agg_exprs
        .iter()
        .map(|e| match e {
            Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                let arg = match arg {
                    Some(a) => {
                        let bound = bind_references((**a).clone(), &input_attrs)?;
                        Some(value_fn(bound, ctx.conf.codegen_enabled))
                    }
                    None => None,
                };
                Ok(AggCall {
                    func: *func,
                    distinct: *distinct,
                    arg,
                })
            }
            _ => unreachable!(),
        })
        .collect::<Result<_>>()?;

    let finish_rows = {
        let final_exprs = final_exprs.clone();
        move |key: Row, accs: Vec<Acc>| -> Row {
            let mut values = key.into_values();
            values.extend(accs.into_iter().map(finish_acc));
            let internal = Row::new(values);
            Row::new(
                final_exprs
                    .iter()
                    .map(|e| interpreter::eval(e, &internal).expect("final aggregate failed"))
                    .collect(),
            )
        }
    };

    // Batch-native hash aggregation: group keys hashed columnar, typed
    // accumulator lanes per aggregate call. Consumes the child's batch
    // subtree directly when one exists (no row round trip), and produces
    // the same spillable `(key, Vec<Acc>)` partials as the row path, so
    // the shuffle and the reduce-side merge (including
    // `merge_agg_partition` under a bounded pool) are shared. Takes
    // precedence over the compiled fast path when vectorization is on;
    // unsupported shapes fall through to the row path below.
    if ctx.conf.vectorize_enabled && !groupings.is_empty() {
        if let Some(rdd) = try_batch_aggregate(
            input,
            &input_attrs,
            groupings,
            &agg_exprs,
            finish_rows.clone(),
            id,
            ctx,
        ) {
            return rdd;
        }
    }

    let child = execute_node(input, id + 1, ctx)?;

    // Compiled fast path (unboxed keys and accumulators). Skipped under a
    // bounded pool: its hash tables grow without reservations.
    if !ctx.mem.is_bounded() {
        let bound_agg_exprs: Result<Vec<Expr>> = agg_exprs
            .iter()
            .map(|e| match e {
                Expr::Agg {
                    func,
                    arg,
                    distinct,
                } => Ok(Expr::Agg {
                    func: *func,
                    arg: match arg {
                        Some(a) => Some(Box::new(bind_references((**a).clone(), &input_attrs)?)),
                        None => None,
                    },
                    distinct: *distinct,
                }),
                _ => unreachable!(),
            })
            .collect();
        if let Ok(bound_agg_exprs) = bound_agg_exprs {
            let bound_groupings_fast = bind_all(groupings, &input_attrs)?;
            if let Some(rdd) = try_fast_aggregate(
                &child,
                &bound_groupings_fast,
                &bound_agg_exprs,
                &final_exprs,
                id,
                ctx,
            ) {
                return rdd;
            }
        }
    }

    if groupings.is_empty() {
        // Global aggregate: partials per partition, merged on the driver —
        // correct even over an empty input (COUNT(*) = 0).
        let eager_start = Instant::now();
        let calls_for_job = calls.clone();
        let partials = child
            .run_job(move |_, it| {
                let mut accs: Vec<Acc> = calls_for_job.iter().map(AggCall::init).collect();
                for row in it {
                    for (call, acc) in calls_for_job.iter().zip(accs.iter_mut()) {
                        call.update(acc, &row);
                    }
                }
                accs
            })
            .map_err(engine_err)?;
        let merged = partials
            .into_iter()
            .reduce(|a, b| a.into_iter().zip(b).map(|(x, y)| merge_acc(x, y)).collect())
            .unwrap_or_else(|| calls.iter().map(AggCall::init).collect());
        let row = finish_rows(Row::empty(), merged);
        note_eager_ns(ctx, id, eager_start);
        return Ok(ctx.sc.parallelize(vec![row], 1));
    }

    // Grouped under a bounded pool: the spillable Partial/Final split.
    if ctx.mem.is_bounded() {
        let key_fns: Vec<ValueFn> = bound_groupings
            .into_iter()
            .map(|e| value_fn(e, ctx.conf.codegen_enabled))
            .collect();
        let key_dtypes: Vec<DataType> = groupings
            .iter()
            .map(|g| g.data_type().unwrap_or(DataType::String))
            .collect();
        return execute_spillable_aggregate(
            child,
            key_fns,
            calls,
            finish_rows,
            key_dtypes,
            id,
            ctx,
        );
    }

    // Grouped: map-side partial aggregation + shuffle + final merge (the
    // engine's combine-by-key is the Partial/Final split).
    let calls_create = calls.clone();
    let calls_update = calls.clone();
    let aggregator = engine::shuffle::Aggregator::new(
        move |row: Row| {
            let mut accs: Vec<Acc> = calls_create.iter().map(AggCall::init).collect();
            for (call, acc) in calls_create.iter().zip(accs.iter_mut()) {
                call.update(acc, &row);
            }
            accs
        },
        move |mut accs: Vec<Acc>, row: Row| {
            for (call, acc) in calls_update.iter().zip(accs.iter_mut()) {
                call.update(acc, &row);
            }
            accs
        },
        |a: Vec<Acc>, b: Vec<Acc>| a.into_iter().zip(b).map(|(x, y)| merge_acc(x, y)).collect(),
    );

    let key_fns: Vec<ValueFn> = bound_groupings
        .into_iter()
        .map(|e| value_fn(e, ctx.conf.codegen_enabled))
        .collect();
    let keyed = child.map(move |row| {
        let key = Row::new(key_fns.iter().map(|f| f(&row)).collect());
        (key, row)
    });
    let partitioner = Arc::new(HashPartitioner::new(ctx.conf.shuffle_partitions.max(1)));
    let combined = if ctx.conf.adaptive_enabled {
        // Adaptive: materialize the (map-side combined) shuffle, then
        // merge small reduce partitions before the final aggregation.
        let size_fn: SizeFn<Row, Vec<Acc>> =
            Arc::new(|k: &Row, accs: &Vec<Acc>| k.approx_bytes() + 16 + 24 * accs.len() as u64);
        let mat =
            MaterializedShuffle::create(&keyed, partitioner, Some(aggregator), true, Some(size_fn))
                .map_err(engine_err)?;
        coalesced_read(&mat, "HashAggregate", id, ctx)
    } else {
        keyed.combine_by_key(aggregator, partitioner, true)
    };
    Ok(combined.map(move |(key, accs)| finish_rows(key, accs)))
}

/// Memory-governed sort lowering: the same sampled range partitioning as
/// the engine's `sort_by_key`, but each output partition sorts through
/// [`spill::external_sort`] — buffered rows spill as sorted runs when the
/// pool denies growth, and runs k-way merge back in key order. The merge
/// breaks ties by run index, so output is row-for-row identical to the
/// in-memory stable sort.
fn execute_external_sort(
    keyed: RddRef<(SortKey, Row)>,
    orders: &[SortOrder],
    key_dtypes: Vec<DataType>,
    row_dtypes: Vec<DataType>,
    id: usize,
    ctx: &ExecContext,
) -> Result<RddRef<Row>> {
    let num_partitions = ctx.conf.shuffle_partitions.max(1);
    // Range boundaries from a key sample — the same fraction and seed as
    // the engine's sort, so partition boundaries match exactly.
    let total = (num_partitions * 20).max(20);
    let keys = keyed.keys();
    // Driver-side jobs: propagate failures (including cancellation)
    // instead of panicking the calling thread.
    let approx: u64 = keys
        .run_job(|_, it| it.count() as u64)
        .map_err(engine_err)?
        .into_iter()
        .sum();
    if approx == 0 {
        return Ok(keyed.values());
    }
    let fraction = (total as f64 / approx as f64).min(1.0);
    let sample: Vec<SortKey> = keys
        .sample(fraction, 0xC0FFEE)
        .try_collect()
        .map_err(engine_err)?;
    let bounds = RangePartitioner::bounds_from_sample(sample, num_partitions);
    let partitioned = keyed.partition_by(Arc::new(RangePartitioner::new(bounds, true)));

    let nk = key_dtypes.len();
    let mut dtypes = key_dtypes;
    dtypes.extend(row_dtypes);
    let codec = columnar::SpillCodec::new(dtypes);
    let mut descending_mask = 0u64;
    for (i, o) in orders.iter().enumerate() {
        if !o.ascending {
            descending_mask |= 1 << i;
        }
    }
    let cmp: spill::RowCmp = Arc::new(move |a: &Row, b: &Row| {
        for i in 0..nk {
            let mut o = a.get(i).total_cmp(b.get(i));
            if descending_mask & (1 << i) != 0 {
                o = o.reverse();
            }
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
    let sctx = ctx.spill_ctx(id);
    Ok(partitioned.map_partitions(move |it| {
        let flat = it.map(|(k, row)| {
            let mut values = k.into_values();
            values.extend(row.into_values());
            Row::new(values)
        });
        let sorted = spill::external_sort(Box::new(flat), &codec, cmp.clone(), &sctx);
        Box::new(sorted.map(move |r| {
            let mut values = r.into_values();
            Row::new(values.split_off(nk))
        }))
    }))
}

/// Memory-governed grouped aggregation: map-side partial aggregation with
/// early emission (a denied grow flushes partials into the shuffle), then
/// a reduce-side merge that spills its hash table recursively under
/// pressure ([`spill::merge_agg_partition`]). Replaces the engine
/// combine-by-key path when the pool is bounded.
fn execute_spillable_aggregate(
    child: RddRef<Row>,
    key_fns: Vec<ValueFn>,
    calls: Vec<AggCall>,
    finish_rows: impl Fn(Row, Vec<Acc>) -> Row + Send + Sync + 'static,
    key_dtypes: Vec<DataType>,
    id: usize,
    ctx: &ExecContext,
) -> Result<RddRef<Row>> {
    let sctx = ctx.spill_ctx(id);
    let layout = spill::AggLayout::new(key_dtypes);
    let map_sctx = sctx.clone();
    let partials = child.map_partitions(move |it| {
        Box::new(partial_agg_partition(it, &key_fns, &calls, &map_sctx).into_iter())
    });
    let shuffled = partials.partition_by(Arc::new(HashPartitioner::new(
        ctx.conf.shuffle_partitions.max(1),
    )));
    let merged = shuffled.map_partitions(move |it| {
        Box::new(spill::merge_agg_partition(it, &layout, &sctx, 0).into_iter())
    });
    Ok(merged.map(move |(key, accs)| finish_rows(key, accs)))
}

/// Partially aggregate one input partition under the pool's budget. When
/// the reservation is denied, the partial table flushes downstream — the
/// shuffle is the spill destination — and aggregation restarts with an
/// empty table. Duplicate keys across flushes merge on the reduce side.
fn partial_agg_partition(
    it: engine::BoxIter<Row>,
    key_fns: &[ValueFn],
    calls: &[AggCall],
    sctx: &SpillCtx,
) -> Vec<(Row, Vec<Acc>)> {
    let mut reservation = sctx.pool.register();
    let mut table: HashMap<Row, Vec<Acc>> = HashMap::new();
    let mut out: Vec<(Row, Vec<Acc>)> = Vec::new();
    for row in it {
        let key = Row::new(key_fns.iter().map(|f| f(&row)).collect());
        if let Some(accs) = table.get_mut(&key) {
            for (call, acc) in calls.iter().zip(accs.iter_mut()) {
                call.update(acc, &row);
            }
            continue;
        }
        let mut accs: Vec<Acc> = calls.iter().map(AggCall::init).collect();
        for (call, acc) in calls.iter().zip(accs.iter_mut()) {
            call.update(acc, &row);
        }
        let bytes = key.approx_bytes() + 16 + 24 * accs.len() as u64;
        if !reservation.try_grow(bytes) && !table.is_empty() {
            out.extend(table.drain());
            reservation.free();
            reservation.try_grow(bytes);
        }
        table.insert(key, accs);
    }
    out.extend(table.drain());
    out
}

// ---- batch-native hash aggregation ----

/// One aggregate call planned onto a typed accumulator lane: the lane
/// kind plus the bound argument expression and its type (`None` for
/// `COUNT(*)`).
type LaneSpec = (vectorized::LaneAgg, Option<(Expr, DataType)>);

/// Fresh lane for a spec (support was proven at plan time).
fn new_lane(spec: &LaneSpec) -> vectorized::AccLane {
    let dtype = spec
        .1
        .as_ref()
        .map(|(_, d)| d.clone())
        .unwrap_or(DataType::Long);
    vectorized::AccLane::for_input(spec.0, &dtype).expect("lane support checked at plan time")
}

/// Convert a finished lane partial into the executor's spillable
/// accumulator shape.
fn acc_from_partial(p: vectorized::AccPartial) -> Acc {
    match p {
        vectorized::AccPartial::Count(n) => Acc::Count(n),
        vectorized::AccPartial::Sum(v) => Acc::Sum(v),
        vectorized::AccPartial::Avg(s, n) => Acc::Avg(s, n),
        vectorized::AccPartial::Min(v) => Acc::Min(v),
        vectorized::AccPartial::Max(v) => Acc::Max(v),
    }
}

/// Flush every interned group as `(key, Vec<Acc>)` partials and reset
/// the table and lanes for continued accumulation.
fn drain_batch_groups(
    groups: &mut vectorized::BatchGroups,
    lanes: &mut [vectorized::AccLane],
    specs: &[LaneSpec],
    out: &mut Vec<(Row, Vec<Acc>)>,
) {
    if groups.is_empty() {
        return;
    }
    let taken = std::mem::take(groups);
    for (g, key) in taken.into_keys().into_iter().enumerate() {
        let accs: Vec<Acc> = lanes
            .iter()
            .map(|l| acc_from_partial(l.partial(g)))
            .collect();
        out.push((key, accs));
    }
    for (lane, spec) in lanes.iter_mut().zip(specs) {
        *lane = new_lane(spec);
    }
}

/// Batch-native partial aggregation of one input partition: group keys
/// are evaluated and interned columnar ([`vectorized::BatchGroups`]),
/// and each aggregate updates a typed accumulator lane over the batch's
/// `(lane, group)` assignments. Under a bounded pool, a denied
/// reservation flushes all partials downstream — the shuffle is the
/// spill destination, exactly as in [`partial_agg_partition`] — and
/// accumulation restarts empty.
fn batch_partial_agg(
    it: engine::BoxIter<RowBatch>,
    kernels: bool,
    groupings: &[Expr],
    specs: &[LaneSpec],
    sctx: &SpillCtx,
    node: Option<&Arc<OperatorMetrics>>,
) -> Vec<(Row, Vec<Acc>)> {
    let mut reservation = sctx.pool.register();
    let mut groups = vectorized::BatchGroups::new();
    let mut lanes: Vec<vectorized::AccLane> = specs.iter().map(new_lane).collect();
    let mut out: Vec<(Row, Vec<Acc>)> = Vec::new();
    let mut asg: Vec<(u32, u32)> = Vec::new();
    let (mut batches, mut interned) = (0u64, 0u64);
    for batch in it {
        batches += 1;
        let key_batch = vectorized::eval_projection_batch(groupings, &batch, kernels)
            .expect("group key evaluation failed");
        let prev = groups.len();
        groups.assign(&key_batch, &mut asg);
        let num = groups.len();
        interned += (num - prev) as u64;
        for (spec, lane) in specs.iter().zip(lanes.iter_mut()) {
            match &spec.1 {
                Some((arg, _)) => {
                    let col = vectorized::eval_batch(arg, &batch, kernels)
                        .expect("aggregate argument evaluation failed");
                    lane.update(Some(&col), &asg, num);
                }
                None => lane.update(None, &asg, num),
            }
        }
        let new_bytes: u64 = (prev..num)
            .map(|g| groups.key(g).approx_bytes() + 16 + 24 * lanes.len() as u64)
            .sum();
        if new_bytes > 0 && !reservation.try_grow(new_bytes) && prev > 0 {
            drain_batch_groups(&mut groups, &mut lanes, specs, &mut out);
            reservation.free();
            reservation.try_grow(new_bytes);
        }
    }
    drain_batch_groups(&mut groups, &mut lanes, specs, &mut out);
    if let Some(n) = node {
        n.add_extra("batches", batches);
        n.add_extra("groups", interned);
    }
    out
}

/// Try to run a grouped aggregate batch-natively. Returns `None` (row
/// path takes over) when any aggregate is DISTINCT or has no typed lane
/// for its argument type. The child is consumed as a batch stream —
/// directly when its subtree lowers batched ([`try_execute_batched`]),
/// else through the generic row→batch adapter. On success the map side
/// produces the same `(key, Vec<Acc>)` partials as the row path, so the
/// shuffle and the spill-safe reduce-side merge
/// ([`spill::merge_agg_partition`]) are shared — batch and row paths
/// stay byte-identical.
fn try_batch_aggregate(
    input: &Arc<PhysicalPlan>,
    input_attrs: &[ColumnRef],
    groupings: &[Expr],
    agg_exprs: &[Expr],
    finish_rows: impl Fn(Row, Vec<Acc>) -> Row + Send + Sync + 'static,
    id: usize,
    ctx: &ExecContext,
) -> Option<Result<RddRef<Row>>> {
    let mut specs: Vec<LaneSpec> = Vec::with_capacity(agg_exprs.len());
    for e in agg_exprs {
        let Expr::Agg {
            func,
            arg,
            distinct: false,
        } = e
        else {
            return None;
        };
        let spec = match (func, arg) {
            (AggFunc::Count, None) => (vectorized::LaneAgg::CountStar, None),
            (func, Some(a)) => {
                let bound = bind_references((**a).clone(), input_attrs).ok()?;
                let dtype = bound.data_type().ok()?;
                let lane = match func {
                    AggFunc::Count => vectorized::LaneAgg::Count,
                    AggFunc::Sum => vectorized::LaneAgg::Sum,
                    AggFunc::Avg => vectorized::LaneAgg::Avg,
                    AggFunc::Min => vectorized::LaneAgg::Min,
                    AggFunc::Max => vectorized::LaneAgg::Max,
                };
                vectorized::AccLane::for_input(lane, &dtype)?;
                (lane, Some((bound, dtype)))
            }
            _ => return None,
        };
        specs.push(spec);
    }
    let bound_groupings = match bind_all(groupings, input_attrs) {
        Ok(b) => b,
        Err(e) => return Some(Err(e)),
    };

    // Source the child as batches: natively when its subtree has a batch
    // form, else chunked through the generic row→batch adapter.
    let batched: RddRef<RowBatch> = match try_execute_batched(input, id + 1, ctx) {
        Some(Ok(rdd)) => rdd,
        Some(Err(e)) => return Some(Err(e)),
        None => {
            let child = match execute_node(input, id + 1, ctx) {
                Ok(c) => c,
                Err(e) => return Some(Err(e)),
            };
            let dtypes: Arc<Vec<DataType>> =
                Arc::new(input_attrs.iter().map(|c| c.dtype.clone()).collect());
            let batch_size = ctx.conf.vectorize_batch_size.max(1);
            child.map_partitions(move |it| {
                Box::new(IterChunks {
                    inner: it,
                    dtypes: dtypes.clone(),
                    batch_size,
                })
            })
        }
    };

    let specs = Arc::new(specs);
    let bound_groupings = Arc::new(bound_groupings);
    let kernels = ctx.conf.codegen_enabled;
    let sctx = ctx.spill_ctx(id);
    let map_sctx = sctx.clone();
    let node = ctx.metrics.as_ref().map(|pm| pm.node(id));
    let partials = batched.map_partitions(move |it| {
        Box::new(
            batch_partial_agg(
                it,
                kernels,
                &bound_groupings,
                &specs,
                &map_sctx,
                node.as_ref(),
            )
            .into_iter(),
        )
    });
    let shuffled = partials.partition_by(Arc::new(HashPartitioner::new(
        ctx.conf.shuffle_partitions.max(1),
    )));
    let key_dtypes: Vec<DataType> = groupings
        .iter()
        .map(|g| g.data_type().unwrap_or(DataType::String))
        .collect();
    let layout = spill::AggLayout::new(key_dtypes);
    let merged = shuffled.map_partitions(move |it| {
        Box::new(spill::merge_agg_partition(it, &layout, &sctx, 0).into_iter())
    });
    Some(Ok(merged.map(move |(key, accs)| finish_rows(key, accs))))
}

// ---- window-function execution ----

/// One executable window call, planned from an aliased
/// [`Expr::WindowFunction`].
enum WindowCall {
    /// `row_number()`.
    RowNumber,
    /// `rank()`.
    Rank,
    /// `dense_rank()`.
    DenseRank,
    /// `lag`/`lead`: the argument evaluated at a fixed row offset within
    /// the partition, the default value outside it.
    Shift {
        /// Bound argument evaluator.
        arg: ValueFn,
        /// Constant offset (rows).
        offset: i64,
        /// Value when the shifted position falls outside the partition.
        default: Value,
        /// `lead` looks ahead; `lag` looks back.
        lead: bool,
    },
    /// An aggregate evaluated per row over its window frame.
    Agg {
        /// The aggregate call.
        call: AggCall,
        /// Frame bounds.
        frame: WindowFrame,
    },
}

/// Fold a constant (column-free) expression to its value.
fn fold_const(e: &Expr) -> Option<Value> {
    if !e.foldable() {
        return None;
    }
    interpreter::eval(e, &Row::empty()).ok()
}

/// Plan one window output expression into an executable [`WindowCall`].
fn plan_window_call(expr: &Expr, input: &[ColumnRef], codegen_on: bool) -> Result<WindowCall> {
    let mut e = expr;
    while let Expr::Alias { child, .. } = e {
        e = child;
    }
    let Expr::WindowFunction {
        func, args, frame, ..
    } = e
    else {
        return Err(CatalystError::Internal(format!(
            "window expression '{expr}' is not a window-function call"
        )));
    };
    if frame.units == FrameUnits::Range {
        let supported = matches!(
            frame.start,
            FrameBound::UnboundedPreceding | FrameBound::CurrentRow
        ) && matches!(
            frame.end,
            FrameBound::UnboundedFollowing | FrameBound::CurrentRow
        );
        if !supported {
            return Err(CatalystError::Internal(
                "RANGE frames support only UNBOUNDED and CURRENT ROW bounds".into(),
            ));
        }
    }
    match func {
        WindowFunc::RowNumber => Ok(WindowCall::RowNumber),
        WindowFunc::Rank => Ok(WindowCall::Rank),
        WindowFunc::DenseRank => Ok(WindowCall::DenseRank),
        WindowFunc::Lag | WindowFunc::Lead => {
            let arg0 = args.first().ok_or_else(|| {
                CatalystError::Internal(format!("{}() requires an argument", func.name()))
            })?;
            let bound = bind_references(arg0.clone(), input)?;
            let offset = match args.get(1) {
                None => 1,
                Some(o) => fold_const(o).and_then(|v| v.as_i64()).ok_or_else(|| {
                    CatalystError::Internal(format!(
                        "{}() offset must be a constant integer",
                        func.name()
                    ))
                })?,
            };
            let default = match args.get(2) {
                None => Value::Null,
                Some(d) => fold_const(d).ok_or_else(|| {
                    CatalystError::Internal(format!("{}() default must be a constant", func.name()))
                })?,
            };
            Ok(WindowCall::Shift {
                arg: value_fn(bound, codegen_on),
                offset,
                default,
                lead: *func == WindowFunc::Lead,
            })
        }
        WindowFunc::Agg(f) => {
            let arg = match args.first() {
                None | Some(Expr::Wildcard { .. }) => None,
                Some(a) => Some(value_fn(bind_references(a.clone(), input)?, codegen_on)),
            };
            if arg.is_none() && *f != AggFunc::Count {
                return Err(CatalystError::Internal(format!(
                    "{}() requires an argument",
                    f.name()
                )));
            }
            Ok(WindowCall::Agg {
                call: AggCall {
                    func: *f,
                    distinct: false,
                    arg,
                },
                frame: *frame,
            })
        }
    }
}

/// Inclusive frame start for row `i`, or `None` when the frame is empty.
fn frame_lo(frame: &WindowFrame, i: usize, n: usize, peer_start: &[usize]) -> Option<usize> {
    let lo = match (frame.units, frame.start) {
        (_, FrameBound::UnboundedPreceding) => 0,
        (FrameUnits::Rows, FrameBound::Preceding(p)) => i.saturating_sub(p as usize),
        (FrameUnits::Rows, FrameBound::CurrentRow) => i,
        (FrameUnits::Rows, FrameBound::Following(f)) => i + f as usize,
        (FrameUnits::Rows, FrameBound::UnboundedFollowing) => n,
        (FrameUnits::Range, _) => peer_start[i],
    };
    (lo < n).then_some(lo)
}

/// Inclusive frame end for row `i`, or `None` when the frame is empty.
fn frame_hi(frame: &WindowFrame, i: usize, n: usize, peer_end: &[usize]) -> Option<usize> {
    let hi = match (frame.units, frame.end) {
        (_, FrameBound::UnboundedFollowing) => n - 1,
        (FrameUnits::Rows, FrameBound::Following(f)) => (i + f as usize).min(n - 1),
        (FrameUnits::Rows, FrameBound::CurrentRow) => i,
        (FrameUnits::Rows, FrameBound::Preceding(p)) => i.checked_sub(p as usize)?,
        (FrameUnits::Rows, FrameBound::UnboundedPreceding) => return None,
        (FrameUnits::Range, _) => peer_end[i],
    };
    Some(hi)
}

/// Evaluate one window call over a full partition, producing one value
/// per row. `frames` counts evaluated aggregate frames (the `frames=`
/// metric).
fn eval_window_call(
    call: &WindowCall,
    inputs: &[Row],
    peer_start: &[usize],
    peer_end: &[usize],
    frames: &mut u64,
) -> Vec<Value> {
    let n = inputs.len();
    match call {
        WindowCall::RowNumber => (1..=n as i64).map(Value::Long).collect(),
        WindowCall::Rank => (0..n)
            .map(|i| Value::Long(peer_start[i] as i64 + 1))
            .collect(),
        WindowCall::DenseRank => {
            let mut dense = 0i64;
            (0..n)
                .map(|i| {
                    if i == peer_start[i] {
                        dense += 1;
                    }
                    Value::Long(dense)
                })
                .collect()
        }
        WindowCall::Shift {
            arg,
            offset,
            default,
            lead,
        } => (0..n)
            .map(|i| {
                let j = if *lead {
                    i as i64 + offset
                } else {
                    i as i64 - offset
                };
                if (0..n as i64).contains(&j) {
                    arg(&inputs[j as usize])
                } else {
                    default.clone()
                }
            })
            .collect(),
        WindowCall::Agg { call, frame } => {
            if frame.is_whole_partition() {
                let mut acc = call.init();
                for row in inputs {
                    call.update(&mut acc, row);
                }
                *frames += 1;
                let v = finish_acc(acc);
                vec![v; n]
            } else if frame.start == FrameBound::UnboundedPreceding {
                // Growing frame: the end bound is nondecreasing in `i`,
                // so one running accumulator serves every row.
                let mut acc = call.init();
                let mut consumed = 0usize;
                (0..n)
                    .map(|i| {
                        let target = frame_hi(frame, i, n, peer_end).map_or(0, |h| h + 1);
                        while consumed < target {
                            call.update(&mut acc, &inputs[consumed]);
                            consumed += 1;
                        }
                        *frames += 1;
                        if target == 0 {
                            finish_acc(call.init())
                        } else {
                            finish_acc(acc.clone())
                        }
                    })
                    .collect()
            } else {
                // Sliding frame: recompute over the bounded window.
                (0..n)
                    .map(|i| {
                        let mut acc = call.init();
                        if let (Some(lo), Some(hi)) = (
                            frame_lo(frame, i, n, peer_start),
                            frame_hi(frame, i, n, peer_end),
                        ) {
                            if lo <= hi {
                                for row in &inputs[lo..=hi] {
                                    call.update(&mut acc, row);
                                }
                            }
                        }
                        *frames += 1;
                        finish_acc(acc)
                    })
                    .collect()
            }
        }
    }
}

/// Evaluate all window calls for one window partition of combined
/// `(pkeys ++ okeys ++ input)` rows, already frame-ordered. Emits the
/// input rows extended with one column per call.
fn eval_window_partition(
    group: Vec<Row>,
    np: usize,
    no: usize,
    calls: &[WindowCall],
    frames: &mut u64,
) -> Vec<Row> {
    let n = group.len();
    let mut oks: Vec<Vec<Value>> = Vec::with_capacity(n);
    let mut inputs: Vec<Row> = Vec::with_capacity(n);
    for r in group {
        let mut values = r.into_values();
        let mut rest = values.split_off(np);
        let row_values = rest.split_off(no);
        oks.push(rest);
        inputs.push(Row::new(row_values));
    }
    // Peer groups: maximal runs of equal ORDER BY keys.
    let mut peer_start = vec![0usize; n];
    let mut peer_end = vec![0usize; n];
    for i in 1..n {
        peer_start[i] = if oks[i] == oks[i - 1] {
            peer_start[i - 1]
        } else {
            i
        };
    }
    if n > 0 {
        peer_end[n - 1] = n - 1;
        for i in (0..n - 1).rev() {
            peer_end[i] = if oks[i] == oks[i + 1] {
                peer_end[i + 1]
            } else {
                i
            };
        }
    }
    let cols: Vec<Vec<Value>> = calls
        .iter()
        .map(|c| eval_window_call(c, &inputs, &peer_start, &peer_end, frames))
        .collect();
    inputs
        .into_iter()
        .enumerate()
        .map(|(i, row)| {
            let mut values = row.into_values();
            for col in &cols {
                values.push(col[i].clone());
            }
            Row::new(values)
        })
        .collect()
}

/// Streams one sorted engine partition, buffering one window partition
/// (rows sharing the partition key) at a time and emitting its rows
/// extended with the window columns.
struct WindowPartitionIter {
    /// Rows sorted by (partition keys, order keys).
    sorted: engine::BoxIter<Row>,
    /// First row of the next window partition, read past the boundary.
    pending: Option<Row>,
    /// Partition-key column count (combined-row prefix).
    np: usize,
    /// Order-key column count (after the partition keys).
    no: usize,
    /// Planned window calls.
    calls: Arc<Vec<WindowCall>>,
    /// Output rows of the current window partition.
    out: std::vec::IntoIter<Row>,
    /// Aggregate frames evaluated so far (`frames=` metric).
    frames: u64,
    /// Metric slot to flush `frames` into on drop.
    node: Option<Arc<OperatorMetrics>>,
}

impl Iterator for WindowPartitionIter {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(row) = self.out.next() {
                return Some(row);
            }
            let first = self.pending.take().or_else(|| self.sorted.next())?;
            let mut group = vec![first];
            for row in self.sorted.by_ref() {
                if row.values()[..self.np] == group[0].values()[..self.np] {
                    group.push(row);
                } else {
                    self.pending = Some(row);
                    break;
                }
            }
            self.out =
                eval_window_partition(group, self.np, self.no, &self.calls, &mut self.frames)
                    .into_iter();
        }
    }
}

impl Drop for WindowPartitionIter {
    fn drop(&mut self) {
        if let Some(node) = &self.node {
            node.add_extra("frames", self.frames);
        }
    }
}

/// Lower a `Window` operator: shuffle rows so each window partition is
/// co-located, sort every engine partition by (partition keys, order
/// keys) — vectorized index-sort in memory, [`spill::external_sort`]
/// under a bounded pool — then walk each window partition evaluating
/// ranking, offset, and framed-aggregate calls.
fn execute_window(
    input: &Arc<PhysicalPlan>,
    window_exprs: &[Expr],
    partition_by: &[Expr],
    order_by: &[SortOrder],
    id: usize,
    ctx: &ExecContext,
) -> Result<RddRef<Row>> {
    let input_attrs = input.output();
    let child = execute_node(input, id + 1, ctx)?;
    let calls: Arc<Vec<WindowCall>> = Arc::new(
        window_exprs
            .iter()
            .map(|e| plan_window_call(e, &input_attrs, ctx.conf.codegen_enabled))
            .collect::<Result<Vec<_>>>()?,
    );

    let np = partition_by.len();
    let no = order_by.len();
    let nk = np + no;
    let okey_exprs: Vec<Expr> = order_by.iter().map(|o| o.expr.clone()).collect();
    let key_fns: Vec<ValueFn> = bind_all(partition_by, &input_attrs)?
        .into_iter()
        .chain(bind_all(&okey_exprs, &input_attrs)?)
        .map(|e| value_fn(e, ctx.conf.codegen_enabled))
        .collect();

    // Combined rows: (pkeys ++ okeys ++ input); keys evaluated once.
    let combined = child.map(move |row| {
        let mut values: Vec<Value> = Vec::with_capacity(nk + row.len());
        for f in &key_fns {
            values.push(f(&row));
        }
        values.extend(row.into_values());
        Row::new(values)
    });

    // Co-locate each window partition: hash shuffle on the partition
    // key, or a single engine partition when there is none.
    let partitioned: RddRef<Row> = if np == 0 {
        combined.coalesce(1)
    } else {
        combined
            .map(move |c| {
                let key = Row::new(c.values()[..np].to_vec());
                (key, c)
            })
            .partition_by(Arc::new(HashPartitioner::new(
                ctx.conf.shuffle_partitions.max(1),
            )))
            .values()
    };

    let mut descending_mask = 0u64;
    for (i, o) in order_by.iter().enumerate() {
        if !o.ascending {
            descending_mask |= 1 << (np + i);
        }
    }
    let cmp: spill::RowCmp = Arc::new(move |a: &Row, b: &Row| {
        for i in 0..nk {
            let mut o = a.get(i).total_cmp(b.get(i));
            if descending_mask & (1 << i) != 0 {
                o = o.reverse();
            }
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
    let mut dtypes: Vec<DataType> = partition_by
        .iter()
        .chain(okey_exprs.iter())
        .map(|e| e.data_type().unwrap_or(DataType::String))
        .collect();
    dtypes.extend(input_attrs.iter().map(|c| c.dtype.clone()));
    let codec = columnar::SpillCodec::new(dtypes.clone());
    let dtypes = Arc::new(dtypes);
    let bounded = ctx.mem.is_bounded();
    let vectorize = ctx.conf.vectorize_enabled;
    let sctx = ctx.spill_ctx(id);
    let node = ctx.metrics.as_ref().map(|pm| pm.node(id));

    Ok(partitioned.map_partitions(move |it| {
        let sorted: engine::BoxIter<Row> = if bounded {
            spill::external_sort(it, &codec, cmp.clone(), &sctx)
        } else if vectorize {
            // In-memory path: vectorized index sort + gather. Stable
            // under the same comparator as the external sort, so both
            // produce the identical permutation.
            let rows: Vec<Row> = it.collect();
            let batch = RowBatch::from_rows(&dtypes, &rows);
            let keys: Vec<(Arc<vectorized::ColumnVector>, bool)> = (0..nk)
                .map(|i| (batch.column(i).clone(), descending_mask & (1 << i) != 0))
                .collect();
            let idx = vectorized::sorted_indices(&batch, &keys);
            Box::new(idx.into_iter().map(move |i| rows[i as usize].clone()))
        } else {
            // Row path: plain stable sort with the same comparator.
            let mut rows: Vec<Row> = it.collect();
            let cmp = cmp.clone();
            rows.sort_by(move |a, b| cmp(a, b));
            Box::new(rows.into_iter())
        };
        Box::new(WindowPartitionIter {
            sorted,
            pending: None,
            np,
            no,
            calls: calls.clone(),
            out: Vec::new().into_iter(),
            frames: 0,
            node: node.clone(),
        })
    }))
}

/// Null-safe key evaluation: returns None when any key is NULL (SQL
/// equi-join semantics: NULL joins nothing).
fn join_key(fns: &[ValueFn], row: &Row) -> Option<Row> {
    let mut values = Vec::with_capacity(fns.len());
    for f in fns {
        let v = f(row);
        if v.is_null() {
            return None;
        }
        values.push(v);
    }
    Some(Row::new(values))
}

/// Compile join-key expressions to value evaluators.
fn key_value_fns(exprs: &[Expr], input: &[ColumnRef], codegen_on: bool) -> Result<Vec<ValueFn>> {
    bind_all(exprs, input).map(|bound| bound.into_iter().map(|e| value_fn(e, codegen_on)).collect())
}

fn null_row(width: usize) -> Row {
    Row::new(vec![Value::Null; width])
}

/// One equi-join node's lowering site: child subtrees, key expressions,
/// join shape, and the node's plan position, bundled so each join
/// strategy's lowering function takes the site as a unit.
#[derive(Clone, Copy)]
struct JoinSite<'a> {
    left: &'a Arc<PhysicalPlan>,
    right: &'a Arc<PhysicalPlan>,
    left_keys: &'a [Expr],
    right_keys: &'a [Expr],
    join_type: JoinType,
    residual: &'a Option<Expr>,
    /// The join node itself — residual predicates bind against its output.
    join_plan: &'a PhysicalPlan,
    /// Pre-order id of the join node, for metric attribution.
    id: usize,
}

fn execute_broadcast_join(
    site: &JoinSite,
    build_side: BuildSide,
    ctx: &ExecContext,
) -> Result<RddRef<Row>> {
    let JoinSite {
        left,
        right,
        left_keys,
        right_keys,
        join_type,
        residual,
        join_plan,
        id,
    } = *site;
    let left_attrs = left.output();
    let right_attrs = right.output();
    let bound_left_keys = key_value_fns(left_keys, &left_attrs, ctx.conf.codegen_enabled)?;
    let bound_right_keys = key_value_fns(right_keys, &right_attrs, ctx.conf.codegen_enabled)?;
    let residual_pred: Option<PredFn> = match residual {
        Some(r) => Some(predicate(r, &join_plan.output(), ctx.conf.codegen_enabled)?),
        None => None,
    };

    let left_id = id + 1;
    let right_id = left_id + subtree_size(left);
    let (build_plan, build_keys, build_id, stream_plan, stream_keys, stream_id, build_is_left) =
        match build_side {
            BuildSide::Right => (
                right,
                bound_right_keys,
                right_id,
                left,
                bound_left_keys,
                left_id,
                false,
            ),
            BuildSide::Left => (
                left,
                bound_left_keys,
                left_id,
                right,
                bound_right_keys,
                right_id,
                true,
            ),
        };
    let build_width = build_plan.output().len();

    // Build and broadcast the hash table (a separate job, like Spark's
    // broadcast exchange).
    let build_rdd = execute_node(build_plan, build_id, ctx)?;
    let eager_start = Instant::now();
    let build_rows = build_rdd.try_collect().map_err(engine_err)?;
    let pairs = build_rows
        .into_iter()
        .map(|row| (join_key(&build_keys, &row), row))
        .collect();
    let table = broadcast_build_table(pairs, id, ctx);
    note_eager_ns(ctx, id, eager_start);

    // Stream-side probe. The stream side is the outer-preserved side (the
    // planner guarantees this).
    let stream = execute_node(stream_plan, stream_id, ctx)?;
    Ok(broadcast_probe(
        stream,
        table,
        stream_keys,
        residual_pred,
        join_type,
        build_is_left,
        build_width,
    ))
}

/// Build, broadcast, and meter a join hash table from keyed build rows
/// (NULL keys join nothing and are dropped).
fn broadcast_build_table(
    pairs: Vec<(Option<Row>, Row)>,
    id: usize,
    ctx: &ExecContext,
) -> Arc<HashMap<Row, Vec<Row>>> {
    let mut table: HashMap<Row, Vec<Row>> = HashMap::new();
    let mut bytes = 0u64;
    let mut build_count = 0u64;
    for (k, row) in pairs {
        if let Some(k) = k {
            bytes += row.approx_bytes();
            build_count += 1;
            table.entry(k).or_default().push(row);
        }
    }
    let broadcast = ctx.sc.broadcast(table, bytes as usize);
    let table = broadcast.value_arc();
    if let Some(pm) = &ctx.metrics {
        let node = pm.node(id);
        node.add_extra("build_rows", build_count);
        node.add_extra("build_bytes", bytes);
    }
    table
}

/// Probe a broadcast hash table with the stream side.
fn broadcast_probe(
    stream: RddRef<Row>,
    table: Arc<HashMap<Row, Vec<Row>>>,
    stream_keys: Vec<ValueFn>,
    residual_pred: Option<PredFn>,
    join_type: JoinType,
    build_is_left: bool,
    build_width: usize,
) -> RddRef<Row> {
    let preserve_unmatched = matches!(
        (join_type, build_is_left),
        (JoinType::Left, false) | (JoinType::Right, true)
    );
    stream.flat_map(move |srow| {
        let mut out = Vec::new();
        let key = join_key(&stream_keys, &srow);
        if let Some(key) = key {
            if let Some(matches) = table.get(&key) {
                for brow in matches {
                    let joined = if build_is_left {
                        brow.concat(&srow)
                    } else {
                        srow.concat(brow)
                    };
                    if residual_pred.as_ref().is_none_or(|p| p(&joined)) {
                        out.push(joined);
                    }
                }
            }
        }
        if out.is_empty() && preserve_unmatched {
            let nulls = null_row(build_width);
            out.push(if build_is_left {
                nulls.concat(&srow)
            } else {
                srow.concat(&nulls)
            });
        }
        out
    })
}

fn execute_shuffled_join(
    site: &JoinSite,
    build_side: BuildSide,
    ctx: &ExecContext,
) -> Result<RddRef<Row>> {
    let JoinSite {
        left,
        right,
        left_keys,
        right_keys,
        join_type,
        residual,
        join_plan,
        id,
    } = *site;
    let left_attrs = left.output();
    let right_attrs = right.output();
    let bound_left_keys = key_value_fns(left_keys, &left_attrs, ctx.conf.codegen_enabled)?;
    let bound_right_keys = key_value_fns(right_keys, &right_attrs, ctx.conf.codegen_enabled)?;
    let residual_pred: Option<PredFn> = match residual {
        Some(r) => Some(predicate(r, &join_plan.output(), ctx.conf.codegen_enabled)?),
        None => None,
    };
    let left_width = left_attrs.len();
    let right_width = right_attrs.len();

    let left_id = id + 1;
    let right_id = left_id + subtree_size(left);
    let partitions = ctx.conf.shuffle_partitions;
    // Key both sides; NULL keys keep a sentinel so outer rows survive the
    // shuffle (they can never match — Option<Row> keys, None = NULL).
    let lkeyed = execute_node(left, left_id, ctx)?
        .map(move |row| (join_key(&bound_left_keys, &row), row))
        .partition_by(Arc::new(HashPartitioner::new(partitions)));
    let rkeyed = execute_node(right, right_id, ctx)?
        .map(move |row| (join_key(&bound_right_keys, &row), row))
        .partition_by(Arc::new(HashPartitioner::new(partitions)));

    if ctx.mem.is_bounded() {
        let (llayout, rlayout) =
            join_spill_layouts(left_keys, right_keys, &left_attrs, &right_attrs);
        let sctx = ctx.spill_ctx(id);
        let spec = spill::GraceJoinSpec {
            join_type,
            residual_pred,
            left_layout: llayout,
            right_layout: rlayout,
            left_width,
            right_width,
        };
        return Ok(lkeyed.zip_partitions(&rkeyed, move |lit, rit| {
            Box::new(spill::grace_hash_join_partition(lit, rit, &spec, &sctx, 0).into_iter())
        }));
    }

    Ok(lkeyed.zip_partitions(&rkeyed, move |lit, rit| {
        Box::new(
            hash_join_partition(
                lit,
                rit,
                join_type,
                build_side,
                &residual_pred,
                left_width,
                right_width,
            )
            .into_iter(),
        )
    }))
}

/// Spill layouts (key + output column types) for both sides of an
/// equi-join, used by the grace hash join's disk re-partitioning.
fn join_spill_layouts(
    left_keys: &[Expr],
    right_keys: &[Expr],
    left_attrs: &[ColumnRef],
    right_attrs: &[ColumnRef],
) -> (spill::SideLayout, spill::SideLayout) {
    let dtypes_of = |keys: &[Expr], attrs: &[ColumnRef]| {
        (
            keys.iter()
                .map(|e| e.data_type().unwrap_or(DataType::String))
                .collect::<Vec<_>>(),
            attrs.iter().map(|c| c.dtype.clone()).collect::<Vec<_>>(),
        )
    };
    let (lk, lr) = dtypes_of(left_keys, left_attrs);
    let (rk, rr) = dtypes_of(right_keys, right_attrs);
    (
        spill::SideLayout::new(lk, lr),
        spill::SideLayout::new(rk, rr),
    )
}

/// Hash-join one co-partitioned pair of keyed row streams: build a table
/// from `build_side`, probe with the other, emit unmatched rows per
/// `join_type`. Both streams hold the same key range, so either side is a
/// legal build side for every join type — unmatched-row emission depends
/// only on `join_type`, never on which side was built. The cost model
/// picks the smaller side; joined rows are always `left ++ right`.
fn hash_join_partition(
    lit: engine::BoxIter<(Option<Row>, Row)>,
    rit: engine::BoxIter<(Option<Row>, Row)>,
    join_type: JoinType,
    build_side: BuildSide,
    residual_pred: &Option<PredFn>,
    left_width: usize,
    right_width: usize,
) -> Vec<Row> {
    let build_left = build_side == BuildSide::Left;
    let (bit, pit) = if build_left { (lit, rit) } else { (rit, lit) };
    // Build rows with NULL keys can never match; they only matter when the
    // build side is outer-preserved.
    let mut table: HashMap<Row, Vec<(Row, bool)>> = HashMap::new();
    let mut null_key_build: Vec<Row> = Vec::new();
    for (k, row) in bit {
        match k {
            Some(k) => table.entry(k).or_default().push((row, false)),
            None => null_key_build.push(row),
        }
    }
    let probe_preserved = matches!(
        (join_type, build_left),
        (JoinType::Left | JoinType::Full, false) | (JoinType::Right | JoinType::Full, true)
    );
    let build_preserved = matches!(
        (join_type, build_left),
        (JoinType::Left | JoinType::Full, true) | (JoinType::Right | JoinType::Full, false)
    );
    let mut out: Vec<Row> = Vec::new();
    for (k, prow) in pit {
        let mut matched = false;
        if let Some(k) = &k {
            if let Some(entries) = table.get_mut(k) {
                for (brow, bmatched) in entries.iter_mut() {
                    let joined = if build_left {
                        brow.concat(&prow)
                    } else {
                        prow.concat(brow)
                    };
                    if residual_pred.as_ref().is_none_or(|p| p(&joined)) {
                        *bmatched = true;
                        matched = true;
                        out.push(joined);
                    }
                }
            }
        }
        if !matched && probe_preserved {
            out.push(if build_left {
                null_row(left_width).concat(&prow)
            } else {
                prow.concat(&null_row(right_width))
            });
        }
    }
    if build_preserved {
        let pad = |brow: &Row| {
            if build_left {
                brow.concat(&null_row(right_width))
            } else {
                null_row(left_width).concat(brow)
            }
        };
        for entries in table.values() {
            for (brow, matched) in entries {
                if !matched {
                    out.push(pad(brow));
                }
            }
        }
        for brow in &null_key_build {
            out.push(pad(brow));
        }
    }
    out
}

// ---- adaptive (stage-by-stage) execution ----

/// Byte estimator for a shuffled `(key, row)` pair.
fn pair_size_fn() -> SizeFn<Option<Row>, Row> {
    Arc::new(|k: &Option<Row>, v: &Row| {
        v.approx_bytes() + k.as_ref().map_or(8, |r| r.approx_bytes())
    })
}

/// Materialize one join side's shuffle map stage: key the lowered child,
/// hash-partition it, run the map tasks, measure the output.
fn materialize_join_side(
    child: &RddRef<Row>,
    keys: &[ValueFn],
    partitions: usize,
) -> Result<MaterializedShuffle<Option<Row>, Row, Row>> {
    let keys = keys.to_vec();
    let keyed = child.map(move |row| (join_key(&keys, &row), row));
    MaterializedShuffle::create(
        &keyed,
        Arc::new(HashPartitioner::new(partitions)),
        None,
        false,
        Some(pair_size_fn()),
    )
    .map_err(engine_err)
}

/// Stage-by-stage shuffled join (the adaptive tentpole): materialize the
/// candidate build side's shuffle first, and decide the rest of the plan
/// from its *measured* size.
///
/// 1. **Dynamic demotion** — when a legal build side's measured bytes land
///    at or under `broadcast_threshold`, re-plan as a broadcast join (the
///    other side is then never shuffled at all). The candidate plan must
///    pass [`PlanValidator`]; a rejected rewrite falls back to the
///    shuffled plan instead of failing the query.
/// 2. **Partition coalescing** — otherwise both sides materialize and
///    small neighboring reduce partitions merge up to
///    `adaptive_target_partition_bytes` per task.
/// 3. **Skew splitting** — an un-coalesced reduce partition exceeding
///    `adaptive_skew_factor` × the median splits into map-range
///    sub-partitions on the legal side, replicating the other side's
///    bucket against each.
fn execute_adaptive_shuffled_join(
    site: &JoinSite,
    build_side: BuildSide,
    ctx: &ExecContext,
) -> Result<RddRef<Row>> {
    let JoinSite {
        left,
        right,
        left_keys,
        right_keys,
        join_type,
        residual,
        join_plan,
        id,
    } = *site;
    let left_attrs = left.output();
    let right_attrs = right.output();
    let bound_left_keys = key_value_fns(left_keys, &left_attrs, ctx.conf.codegen_enabled)?;
    let bound_right_keys = key_value_fns(right_keys, &right_attrs, ctx.conf.codegen_enabled)?;
    let residual_pred: Option<PredFn> = match residual {
        Some(r) => Some(predicate(r, &join_plan.output(), ctx.conf.codegen_enabled)?),
        None => None,
    };
    let left_width = left_attrs.len();
    let right_width = right_attrs.len();

    let left_id = id + 1;
    let right_id = left_id + subtree_size(left);
    let partitions = ctx.conf.shuffle_partitions.max(1);
    let threshold = ctx.conf.broadcast_threshold;
    let target = ctx.conf.adaptive_target_partition_bytes.max(1);
    let factor = ctx.conf.adaptive_skew_factor;

    // Lower each child exactly once (lazy; materialization below runs the
    // actual stages).
    let lchild = execute_node(left, left_id, ctx)?;
    let rchild = execute_node(right, right_id, ctx)?;

    let mut lmat: Option<MaterializedShuffle<Option<Row>, Row, Row>> = None;
    let mut rmat: Option<MaterializedShuffle<Option<Row>, Row, Row>> = None;

    // Try demotion: materialize a legal build side and compare its
    // measured bytes with the broadcast threshold. Building right is
    // preferred (it streams the usual outer-preserved left side).
    for build in [BuildSide::Right, BuildSide::Left] {
        if !adaptive_rules::can_demote(join_type, build) {
            continue;
        }
        let (mat_slot, child, keys) = match build {
            BuildSide::Right => (&mut rmat, &rchild, &bound_right_keys),
            BuildSide::Left => (&mut lmat, &lchild, &bound_left_keys),
        };
        if mat_slot.is_none() {
            *mat_slot = Some(materialize_join_side(child, keys, partitions)?);
        }
        let mat = mat_slot.as_ref().unwrap();
        let measured = mat.total_bytes();
        if measured > threshold {
            continue;
        }
        let Some(candidate) = adaptive_rules::broadcast_candidate(join_plan, build) else {
            continue;
        };
        // The rewrite must uphold the same invariants the static planner's
        // output does; a rejected candidate falls back to the shuffled plan.
        if !PlanValidator::new().check_physical(&candidate).is_empty() {
            continue;
        }
        ctx.adaptive.record(AdaptivePlanChange {
            node_id: id,
            rule: AdaptiveRule::BroadcastDemotion,
            description: format!(
                "build {:?} measured {measured} B <= broadcast threshold {threshold} B; \
                 ShuffledHashJoin -> BroadcastHashJoin",
                build
            ),
            replacement: Some(candidate),
        });
        let eager_start = Instant::now();
        let pairs = mat.read_all().try_collect().map_err(engine_err)?;
        let table = broadcast_build_table(pairs, id, ctx);
        note_eager_ns(ctx, id, eager_start);
        let build_is_left = build == BuildSide::Left;
        let (stream, stream_keys, build_width) = if build_is_left {
            (rchild.clone(), bound_right_keys.clone(), left_width)
        } else {
            (lchild.clone(), bound_left_keys.clone(), right_width)
        };
        return Ok(broadcast_probe(
            stream,
            table,
            stream_keys,
            residual_pred,
            join_type,
            build_is_left,
            build_width,
        ));
    }

    // Shuffled fallback: materialize whichever sides the demotion probe
    // did not, then plan the reduce reads from the measured sizes.
    let lmat = match lmat {
        Some(m) => m,
        None => materialize_join_side(&lchild, &bound_left_keys, partitions)?,
    };
    let rmat = match rmat {
        Some(m) => m,
        None => materialize_join_side(&rchild, &bound_right_keys, partitions)?,
    };
    let lsizes = lmat.reduce_sizes();
    let rsizes = rmat.reduce_sizes();
    let totals: Vec<u64> = lsizes.iter().zip(&rsizes).map(|(a, b)| a + b).collect();
    let ranges = adaptive_rules::coalesce_partitions(&totals, target);
    let lmed = adaptive_rules::median(&lsizes);
    let rmed = adaptive_rules::median(&rsizes);

    let mut lspecs: Vec<ShuffleReadSpec> = Vec::new();
    let mut rspecs: Vec<ShuffleReadSpec> = Vec::new();
    let mut skew_splits = 0usize;
    for range in &ranges {
        // Only a partition too big to coalesce with a neighbor can be
        // skewed; multi-reducer ranges are by construction under target.
        if range.len() == 1 {
            let r = range.start;
            // Split the side that is both skewed and legal to split (its
            // rows land in exactly one sub-partition; the other side's
            // bucket is replicated, so it must not drive unmatched rows).
            let split_left = adaptive_rules::can_split_side(join_type, BuildSide::Left)
                && adaptive_rules::is_skewed(lsizes[r], lmed, factor, target);
            let split_right = !split_left
                && adaptive_rules::can_split_side(join_type, BuildSide::Right)
                && adaptive_rules::is_skewed(rsizes[r], rmed, factor, target);
            let map_ranges = if split_left {
                adaptive_rules::split_map_ranges(&lmat.map_sizes_for(r), target)
            } else if split_right {
                adaptive_rules::split_map_ranges(&rmat.map_sizes_for(r), target)
            } else {
                vec![]
            };
            if map_ranges.len() > 1 {
                skew_splits += map_ranges.len();
                for mr in map_ranges {
                    if split_left {
                        lspecs.push(ShuffleReadSpec::map_range(r, mr.start, mr.end));
                        rspecs.push(ShuffleReadSpec::reducers(r, r + 1, rmat.num_maps()));
                    } else {
                        lspecs.push(ShuffleReadSpec::reducers(r, r + 1, lmat.num_maps()));
                        rspecs.push(ShuffleReadSpec::map_range(r, mr.start, mr.end));
                    }
                }
                continue;
            }
        }
        lspecs.push(ShuffleReadSpec::reducers(
            range.start,
            range.end,
            lmat.num_maps(),
        ));
        rspecs.push(ShuffleReadSpec::reducers(
            range.start,
            range.end,
            rmat.num_maps(),
        ));
    }

    if ranges.len() != partitions {
        ctx.adaptive.record(AdaptivePlanChange {
            node_id: id,
            rule: AdaptiveRule::CoalescePartitions,
            description: format!(
                "{partitions} -> {} post-shuffle partitions (target {target} B, measured {} B)",
                ranges.len(),
                totals.iter().sum::<u64>(),
            ),
            replacement: None,
        });
    }
    if skew_splits > 0 {
        ctx.adaptive.record(AdaptivePlanChange {
            node_id: id,
            rule: AdaptiveRule::SkewSplit,
            description: format!(
                "split skewed reduce partition(s) into {skew_splits} map-range sub-partitions \
                 (factor {factor}, median {lmed}/{rmed} B)",
            ),
            replacement: None,
        });
    }
    if let Some(pm) = &ctx.metrics {
        let node = pm.node(id);
        node.set_extra("adaptive_partitions", lspecs.len() as u64);
        node.set_extra("adaptive_skew_splits", skew_splits as u64);
    }

    if ctx.mem.is_bounded() {
        let (llayout, rlayout) =
            join_spill_layouts(left_keys, right_keys, &left_attrs, &right_attrs);
        let sctx = ctx.spill_ctx(id);
        let spec = spill::GraceJoinSpec {
            join_type,
            residual_pred,
            left_layout: llayout,
            right_layout: rlayout,
            left_width,
            right_width,
        };
        return Ok(lmat
            .read(lspecs)
            .zip_partitions(&rmat.read(rspecs), move |lit, rit| {
                Box::new(spill::grace_hash_join_partition(lit, rit, &spec, &sctx, 0).into_iter())
            }));
    }

    Ok(lmat
        .read(lspecs)
        .zip_partitions(&rmat.read(rspecs), move |lit, rit| {
            Box::new(
                hash_join_partition(
                    lit,
                    rit,
                    join_type,
                    build_side,
                    &residual_pred,
                    left_width,
                    right_width,
                )
                .into_iter(),
            )
        }))
}

/// Read a materialized exchange back with small neighboring reduce
/// partitions merged up to the coalescing target, recording the decision.
/// Map-range splitting is never applied here: aggregated consumers need
/// every map's contribution to a key in one partition.
fn coalesced_read<K, V, C>(
    mat: &MaterializedShuffle<K, V, C>,
    what: &str,
    id: usize,
    ctx: &ExecContext,
) -> RddRef<(K, C)>
where
    K: engine::Data + Hash + Eq,
    V: engine::Data,
    C: engine::Data,
{
    let sizes = mat.reduce_sizes();
    let target = ctx.conf.adaptive_target_partition_bytes.max(1);
    let ranges = adaptive_rules::coalesce_partitions(&sizes, target);
    if ranges.len() != sizes.len() {
        ctx.adaptive.record(AdaptivePlanChange {
            node_id: id,
            rule: AdaptiveRule::CoalescePartitions,
            description: format!(
                "{what}: {} -> {} post-shuffle partitions (target {target} B, measured {} B)",
                sizes.len(),
                ranges.len(),
                mat.total_bytes(),
            ),
            replacement: None,
        });
    }
    if let Some(pm) = &ctx.metrics {
        pm.node(id)
            .set_extra("adaptive_partitions", ranges.len() as u64);
    }
    let num_maps = mat.num_maps();
    mat.read(
        ranges
            .into_iter()
            .map(|r| ShuffleReadSpec::reducers(r.start, r.end, num_maps))
            .collect(),
    )
}

fn execute_nested_loop_join(
    left: &Arc<PhysicalPlan>,
    right: &Arc<PhysicalPlan>,
    condition: &Option<Expr>,
    join_type: JoinType,
    join_plan: &PhysicalPlan,
    id: usize,
    ctx: &ExecContext,
) -> Result<RddRef<Row>> {
    if matches!(join_type, JoinType::Right | JoinType::Full) {
        return Err(CatalystError::Plan(format!(
            "non-equi {} joins are not supported; rewrite with an equality condition",
            join_type.keyword()
        )));
    }
    let cond: Option<PredFn> = match condition {
        Some(c) => Some(predicate(c, &join_plan.output(), ctx.conf.codegen_enabled)?),
        None => None,
    };
    let left_id = id + 1;
    let right_id = left_id + subtree_size(left);
    let right_width = right.output().len();
    let eager_start = Instant::now();
    let right_rows = Arc::new(
        execute_node(right, right_id, ctx)?
            .try_collect()
            .map_err(engine_err)?,
    );
    note_eager_ns(ctx, id, eager_start);
    let stream = execute_node(left, left_id, ctx)?;
    Ok(stream.flat_map(move |lrow| {
        let mut out = Vec::new();
        for rrow in right_rows.iter() {
            let joined = lrow.concat(rrow);
            if cond.as_ref().is_none_or(|p| p(&joined)) {
                out.push(joined);
            }
        }
        if out.is_empty() && join_type == JoinType::Left {
            out.push(lrow.concat(&null_row(right_width)));
        }
        out
    }))
}
