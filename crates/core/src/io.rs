//! The unified reader/writer API (§4.4.1's user-facing face): Spark's
//! `ctx.read().format("csv").option("header", "true").load(path)` and
//! `df.write().format("parquet").mode(Overwrite).save(path)` builders.
//!
//! [`DataFrameReader`] dispatches through the session's
//! [`datasources::DataSourceRegistry`], so every provider reachable from
//! SQL `USING` clauses — including user-registered ones — is reachable
//! from the builder with the same option names. A user-supplied schema
//! travels as the `schema` option in DDL form (`"a INT, b STRING"`).

use crate::context::SQLContext;
use crate::dataframe::DataFrame;
use catalyst::error::{CatalystError, Result};
use catalyst::schema::Schema;
use datasources::{schema_to_ddl, Options};
use std::path::Path;

/// Builder for reading a data source into a [`DataFrame`].
///
/// Created by [`SQLContext::read`]. The default format is `colfile`
/// (this codebase's Parquet stand-in, mirroring Spark's Parquet
/// default).
#[derive(Clone)]
pub struct DataFrameReader {
    ctx: SQLContext,
    format: String,
    options: Options,
}

impl DataFrameReader {
    pub(crate) fn new(ctx: SQLContext) -> DataFrameReader {
        DataFrameReader {
            ctx,
            format: "colfile".into(),
            options: Options::new(),
        }
    }

    /// Select the provider, by registry name (`csv`, `json`, `colfile`,
    /// `parquet`, `jdbc`, or anything user-registered).
    pub fn format(mut self, format: &str) -> Self {
        self.format = format.to_string();
        self
    }

    /// Set one provider option (same names as SQL `OPTIONS(…)`).
    pub fn option(mut self, key: &str, value: impl ToString) -> Self {
        self.options.insert(key.to_string(), value.to_string());
        self
    }

    /// Merge several provider options.
    pub fn options<K: ToString, V: ToString>(
        mut self,
        options: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        for (k, v) in options {
            self.options.insert(k.to_string(), v.to_string());
        }
        self
    }

    /// Supply the schema instead of inferring it (providers that infer,
    /// like CSV, skip inference when this is set).
    pub fn schema(self, schema: &Schema) -> Self {
        self.option("schema", schema_to_ddl(schema))
    }

    /// Open `path` with the selected provider and options.
    pub fn load(self, path: &str) -> Result<DataFrame> {
        self.option("path", path).load_source()
    }

    /// Open a source that needs no path (e.g. `jdbc`), from the options
    /// alone.
    pub fn load_source(self) -> Result<DataFrame> {
        self.ctx.read_source(&self.format, &self.options)
    }
}

/// What [`DataFrameWriter::save`] does when the target already exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SaveMode {
    /// Fail if the target path exists (the default).
    #[default]
    ErrorIfExists,
    /// Replace the target path.
    Overwrite,
}

/// Builder for writing a [`DataFrame`] out to storage.
///
/// Created by [`DataFrame::write`]. Formats: `csv` (option `delimiter`)
/// and `colfile`/`parquet` (option `rows_per_group`).
#[derive(Clone)]
pub struct DataFrameWriter {
    df: DataFrame,
    format: String,
    mode: SaveMode,
    options: Options,
}

impl DataFrameWriter {
    pub(crate) fn new(df: DataFrame) -> DataFrameWriter {
        DataFrameWriter {
            df,
            format: "colfile".into(),
            mode: SaveMode::default(),
            options: Options::new(),
        }
    }

    /// Select the output format: `csv`, `colfile`, or `parquet`.
    pub fn format(mut self, format: &str) -> Self {
        self.format = format.to_string();
        self
    }

    /// Set one writer option.
    pub fn option(mut self, key: &str, value: impl ToString) -> Self {
        self.options.insert(key.to_string(), value.to_string());
        self
    }

    /// What to do when the target exists.
    pub fn mode(mut self, mode: SaveMode) -> Self {
        self.mode = mode;
        self
    }

    /// Execute the query and write the result to `path`.
    pub fn save(self, path: &str) -> Result<()> {
        if self.mode == SaveMode::ErrorIfExists && Path::new(path).exists() {
            return Err(CatalystError::DataSource(format!(
                "path '{path}' already exists (use SaveMode::Overwrite to replace it)"
            )));
        }
        let rows = self.df.collect()?;
        let schema = self.df.schema();
        match self.format.to_ascii_lowercase().as_str() {
            "csv" => {
                let delimiter = self
                    .options
                    .get("delimiter")
                    .and_then(|d| d.chars().next())
                    .unwrap_or(',');
                let text = datasources::csv::rows_to_csv(&schema, &rows, delimiter);
                std::fs::write(path, text)
                    .map_err(|e| CatalystError::DataSource(format!("write '{path}': {e}")))
            }
            "colfile" | "parquet" => {
                let rows_per_group = self
                    .options
                    .get("rows_per_group")
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(1024);
                datasources::colfile::ColFileRelation::write_path(
                    path,
                    &schema,
                    &rows,
                    rows_per_group,
                )
            }
            other => Err(CatalystError::DataSource(format!(
                "unknown write format '{other}'; known: [csv, colfile, parquet]"
            ))),
        }
    }
}
