//! Disk-backed ("external") operator algorithms for memory-governed
//! execution.
//!
//! Each buffering operator registers an [`engine::MemoryReservation`]
//! against the execution's [`engine::MemoryPool`] and grows it as its
//! buffer fills. A denied grow is the spill signal:
//!
//! * [`external_sort`] sorts what it has, writes the run to a
//!   [`SpillFile`], and k-way merges all runs (plus the final in-memory
//!   buffer) at the end. Ties merge by run index, which reproduces the
//!   stable in-memory sort exactly.
//! * [`grace_hash_join_partition`] falls back to a grace hash join:
//!   both sides re-partition to disk by a depth-salted key hash and each
//!   sub-partition joins recursively.
//! * [`merge_agg_partition`] spills its partial-aggregate hash table the
//!   same way, re-partitioning `(key, accumulators)` pairs and merging
//!   each bucket recursively.
//!
//! Rows cross the disk boundary through [`SpillCodec`] — the colfile
//! column codec with an exact-roundtrip guarantee — so spilled execution
//! is byte-identical to in-memory execution. Spill files delete
//! themselves on drop; a panicking task unwinds through the operator
//! state holding them, so injected faults cannot leak disk.

use crate::execution::Acc;
use catalyst::physical::metrics::OperatorMetrics;
use catalyst::plan::JoinType;
use catalyst::row::Row;
use catalyst::types::DataType;
use catalyst::value::Value;
use columnar::SpillCodec;
use engine::{BoxIter, MemoryPool, SpillFile};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Rows per encoded spill block.
const BLOCK_ROWS: usize = 256;
/// Sub-partitions per spill round (grace join / aggregate re-partition).
const FANOUT: usize = 8;
/// Past this re-partitioning depth, buffers build un-reserved rather
/// than recursing forever on pathological key distributions.
const MAX_DEPTH: usize = 6;

/// Row comparator (a bound sort order).
pub type RowCmp = Arc<dyn Fn(&Row, &Row) -> Ordering + Send + Sync>;
/// Row predicate (a bound residual join condition).
pub type PredFn = Arc<dyn Fn(&Row) -> bool + Send + Sync>;

/// Shared spill context for one operator: the execution's pool plus the
/// operator's metrics slot (spills show up as `spill_count` /
/// `spill_bytes` extras in `EXPLAIN ANALYZE`).
#[derive(Clone)]
pub struct SpillCtx {
    /// The execution-wide memory pool.
    pub pool: Arc<MemoryPool>,
    /// The operator's metrics node, when instrumented.
    pub node: Option<Arc<OperatorMetrics>>,
}

impl SpillCtx {
    fn note_spill(&self, bytes: u64) {
        self.pool.record_spill(bytes);
        if let Some(n) = &self.node {
            n.add_extra("spill_count", 1);
            n.add_extra("spill_bytes", bytes);
        }
    }
}

/// Depth-salted hash bucket for recursive re-partitioning. Using a
/// different seed per depth breaks up collisions the previous round's
/// partitioning created.
fn bucket(key: &Row, depth: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    0x9E37_79B9_7F4A_7C15u64
        .wrapping_mul(depth as u64 + 1)
        .hash(&mut h);
    key.hash(&mut h);
    (h.finish() as usize) % FANOUT
}

// ---- external sort ----

/// A spilled sorted run being merged: decodes one block at a time.
struct RunCursor {
    /// Keeps the backing file alive (and deleted when merging finishes).
    _file: SpillFile,
    blocks: engine::memory::SpillBlockIter,
    codec: SpillCodec,
    buf: std::vec::IntoIter<Row>,
}

impl RunCursor {
    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(row) = self.buf.next() {
                return Some(row);
            }
            let block = self.blocks.next()?.expect("spill read failed");
            self.buf = self
                .codec
                .decode_block(&block)
                .expect("spill decode failed")
                .into_iter();
        }
    }
}

/// K-way merge over spilled runs plus the final in-memory run (always the
/// highest run index). Equal keys pop lowest-run-first, which is arrival
/// order — the same order a single stable in-memory sort produces.
struct MergeIter {
    runs: Vec<(Option<Row>, RunCursor)>,
    tail: std::vec::IntoIter<Row>,
    tail_head: Option<Row>,
    cmp: RowCmp,
    /// Frees the tail buffer's reservation when merging finishes.
    _reservation: engine::MemoryReservation,
}

impl Iterator for MergeIter {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        if self.tail_head.is_none() {
            self.tail_head = self.tail.next();
        }
        let mut best: Option<usize> = None; // None = tail, Some(i) = run i
        let mut best_row: Option<&Row> = self.tail_head.as_ref();
        for (i, (head, _)) in self.runs.iter().enumerate().rev() {
            if let Some(h) = head {
                if best_row.is_none_or(|b| (self.cmp)(h, b) != Ordering::Greater) {
                    best = Some(i);
                    best_row = Some(h);
                }
            }
        }
        match best {
            Some(i) => {
                let (head, cursor) = &mut self.runs[i];
                let row = head.take();
                *head = cursor.next();
                row
            }
            None => self.tail_head.take(),
        }
    }
}

/// Sort `input` by `cmp` under the pool's budget. Rows buffer in memory
/// while the reservation grows; when it is denied, the buffer is sorted
/// and spilled as one run, and all runs k-way merge at the end. With an
/// unbounded pool this is exactly an in-memory stable sort.
pub fn external_sort(
    input: BoxIter<Row>,
    codec: &SpillCodec,
    cmp: RowCmp,
    ctx: &SpillCtx,
) -> BoxIter<Row> {
    let mut reservation = ctx.pool.register();
    let mut runs: Vec<SpillFile> = Vec::new();
    let mut buf: Vec<Row> = Vec::new();
    for row in input {
        let bytes = row.approx_bytes();
        if !reservation.try_grow(bytes) && !buf.is_empty() {
            buf.sort_by(|a, b| cmp(a, b));
            let mut file = ctx.pool.spill_file().expect("spill create failed");
            for chunk in buf.chunks(BLOCK_ROWS) {
                file.append(&codec.encode_block(chunk))
                    .expect("spill write failed");
            }
            ctx.note_spill(file.bytes_written());
            runs.push(file);
            buf.clear();
            reservation.free();
            // Re-reserve for the row that overflowed; a single row larger
            // than the fair share proceeds unreserved (it must go somewhere).
            reservation.try_grow(bytes);
        }
        buf.push(row);
    }
    buf.sort_by(|a, b| cmp(a, b));
    if runs.is_empty() {
        return Box::new(MergeIter {
            runs: Vec::new(),
            tail: buf.into_iter(),
            tail_head: None,
            cmp,
            _reservation: reservation,
        });
    }
    let runs = runs
        .into_iter()
        .map(|mut file| {
            let blocks = file.blocks().expect("spill reopen failed");
            let mut cursor = RunCursor {
                _file: file,
                blocks,
                codec: codec.clone(),
                buf: Vec::new().into_iter(),
            };
            (cursor.next(), cursor)
        })
        .collect();
    Box::new(MergeIter {
        runs,
        tail: buf.into_iter(),
        tail_head: None,
        cmp,
        _reservation: reservation,
    })
}

// ---- grace hash join ----

/// Spill layout of one join side: `[present flag] ++ key ++ row`, so a
/// keyed pair — including the NULL-key sentinel outer joins rely on —
/// round-trips through the colfile codec.
#[derive(Clone)]
pub struct SideLayout {
    codec: SpillCodec,
    key_width: usize,
}

impl SideLayout {
    /// Layout for a side whose join keys and output columns have the
    /// given types.
    pub fn new(key_dtypes: Vec<DataType>, row_dtypes: Vec<DataType>) -> SideLayout {
        let key_width = key_dtypes.len();
        let mut dtypes = vec![DataType::Boolean];
        dtypes.extend(key_dtypes);
        dtypes.extend(row_dtypes);
        SideLayout {
            codec: SpillCodec::new(dtypes),
            key_width,
        }
    }

    fn encode_pair(&self, key: &Option<Row>, row: &Row) -> Row {
        let mut values = Vec::with_capacity(self.codec.width());
        match key {
            Some(k) => {
                values.push(Value::Boolean(true));
                values.extend(k.values().iter().cloned());
            }
            None => {
                values.push(Value::Boolean(false));
                values.extend(std::iter::repeat_n(Value::Null, self.key_width));
            }
        }
        values.extend(row.values().iter().cloned());
        Row::new(values)
    }

    fn decode_pair(&self, flat: Row) -> (Option<Row>, Row) {
        let mut values = flat.into_values();
        let row = Row::new(values.split_off(1 + self.key_width));
        let present = matches!(values[0], Value::Boolean(true));
        let key = if present {
            Some(Row::new(values.split_off(1)))
        } else {
            None
        };
        (key, row)
    }
}

/// One side's spill buckets: rows partitioned by depth-salted key hash
/// (NULL keys to bucket 0 — they never match, but outer joins must still
/// see them exactly once).
struct SpillBuckets {
    files: Vec<Option<SpillFile>>,
    bufs: Vec<Vec<Row>>,
    layout: SideLayout,
    depth: usize,
}

impl SpillBuckets {
    fn new(layout: SideLayout, depth: usize) -> SpillBuckets {
        SpillBuckets {
            files: (0..FANOUT).map(|_| None).collect(),
            bufs: vec![Vec::new(); FANOUT],
            layout,
            depth,
        }
    }

    fn push(&mut self, ctx: &SpillCtx, key: &Option<Row>, row: &Row) {
        let b = match key {
            Some(k) => bucket(k, self.depth),
            None => 0,
        };
        self.bufs[b].push(self.layout.encode_pair(key, row));
        if self.bufs[b].len() >= BLOCK_ROWS {
            self.flush(ctx, b);
        }
    }

    fn flush(&mut self, ctx: &SpillCtx, b: usize) {
        if self.bufs[b].is_empty() {
            return;
        }
        let file = self.files[b]
            .get_or_insert_with(|| ctx.pool.spill_file().expect("spill create failed"));
        file.append(&self.layout.codec.encode_block(&self.bufs[b]))
            .expect("spill write failed");
        self.bufs[b].clear();
    }

    /// Seal all buckets, recording one spill per written file, and return
    /// per-bucket pair iterators (empty buckets yield empty iterators).
    fn finish(mut self, ctx: &SpillCtx) -> Vec<BoxIter<(Option<Row>, Row)>> {
        for b in 0..FANOUT {
            self.flush(ctx, b);
        }
        self.files
            .into_iter()
            .map(|file| -> BoxIter<(Option<Row>, Row)> {
                match file {
                    None => Box::new(std::iter::empty()),
                    Some(mut file) => {
                        ctx.note_spill(file.bytes_written());
                        let blocks = file.blocks().expect("spill reopen failed");
                        let layout = self.layout.clone();
                        let codec = layout.codec.clone();
                        Box::new(
                            BlockRows {
                                _file: file,
                                blocks,
                                codec,
                                buf: Vec::new().into_iter(),
                            }
                            .map(move |flat| layout.decode_pair(flat)),
                        )
                    }
                }
            })
            .collect()
    }
}

/// Streaming row reader over a sealed spill file.
struct BlockRows {
    _file: SpillFile,
    blocks: engine::memory::SpillBlockIter,
    codec: SpillCodec,
    buf: std::vec::IntoIter<Row>,
}

impl Iterator for BlockRows {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(row) = self.buf.next() {
                return Some(row);
            }
            let block = self.blocks.next()?.expect("spill read failed");
            self.buf = self
                .codec
                .decode_block(&block)
                .expect("spill decode failed")
                .into_iter();
        }
    }
}

/// Static shape of one grace hash join — join semantics, residual
/// filter, and both sides' spill layouts and row widths — shared by
/// every recursion level and every partition of the same join node.
pub struct GraceJoinSpec {
    /// Join semantics (outer-row emission).
    pub join_type: JoinType,
    /// Non-equi residual predicate over the joined row, if any.
    pub residual_pred: Option<PredFn>,
    /// Spill layout of the streamed (left) side.
    pub left_layout: SideLayout,
    /// Spill layout of the build (right) side.
    pub right_layout: SideLayout,
    /// Column count of the left side (NULL padding for right-outer rows).
    pub left_width: usize,
    /// Column count of the right side (NULL padding for left-outer rows).
    pub right_width: usize,
}

/// Hash-join one co-partitioned pair of keyed row streams under the
/// pool's budget: build from the right under a reservation; if the build
/// side does not fit, re-partition **both** sides to disk by key hash and
/// join each sub-partition recursively (the grace hash join). Semantics
/// (matching, residual filtering, outer-row emission) are identical to
/// the in-memory join.
pub fn grace_hash_join_partition(
    lit: BoxIter<(Option<Row>, Row)>,
    mut rit: BoxIter<(Option<Row>, Row)>,
    spec: &GraceJoinSpec,
    ctx: &SpillCtx,
    depth: usize,
) -> Vec<Row> {
    let join_type = spec.join_type;
    let residual_pred = &spec.residual_pred;
    let (left_layout, right_layout) = (&spec.left_layout, &spec.right_layout);
    let (left_width, right_width) = (spec.left_width, spec.right_width);
    // Build from the right partition, growing a reservation as it fills.
    let mut reservation = ctx.pool.register();
    let mut table: HashMap<Row, Vec<(Row, bool)>> = HashMap::new();
    let mut null_key_right: Vec<Row> = Vec::new();
    let reserve = depth < MAX_DEPTH;
    let mut overflow: Option<(Option<Row>, Row)> = None;
    for (k, row) in rit.by_ref() {
        let bytes = row.approx_bytes() + k.as_ref().map_or(8, Row::approx_bytes);
        if reserve && !reservation.try_grow(bytes) {
            overflow = Some((k, row));
            break;
        }
        match k {
            Some(k) => table.entry(k).or_default().push((row, false)),
            None => null_key_right.push(row),
        }
    }

    if let Some(first) = overflow {
        // Build side exceeds its share: go grace. Everything buffered so
        // far, plus the rest of both streams, re-partitions to disk.
        let mut rbuckets = SpillBuckets::new(right_layout.clone(), depth);
        for (k, rows) in table.drain() {
            for (row, _) in rows {
                rbuckets.push(ctx, &Some(k.clone()), &row);
            }
        }
        for row in null_key_right.drain(..) {
            rbuckets.push(ctx, &None, &row);
        }
        reservation.free();
        for (k, row) in std::iter::once(first).chain(rit) {
            rbuckets.push(ctx, &k, &row);
        }
        let mut lbuckets = SpillBuckets::new(left_layout.clone(), depth);
        for (k, row) in lit {
            lbuckets.push(ctx, &k, &row);
        }
        let mut out = Vec::new();
        for (lsub, rsub) in lbuckets.finish(ctx).into_iter().zip(rbuckets.finish(ctx)) {
            out.extend(grace_hash_join_partition(lsub, rsub, spec, ctx, depth + 1));
        }
        return out;
    }

    // Build fit: probe with the streaming left side.
    let mut out: Vec<Row> = Vec::new();
    for (k, lrow) in lit {
        let mut matched = false;
        if let Some(k) = &k {
            if let Some(entries) = table.get_mut(k) {
                for (rrow, rmatched) in entries.iter_mut() {
                    let joined = lrow.concat(rrow);
                    if residual_pred.as_ref().is_none_or(|p| p(&joined)) {
                        *rmatched = true;
                        matched = true;
                        out.push(joined);
                    }
                }
            }
        }
        if !matched && matches!(join_type, JoinType::Left | JoinType::Full) {
            out.push(lrow.concat(&null_row(right_width)));
        }
    }
    if matches!(join_type, JoinType::Right | JoinType::Full) {
        for entries in table.values() {
            for (rrow, matched) in entries {
                if !matched {
                    out.push(null_row(left_width).concat(rrow));
                }
            }
        }
        for rrow in &null_key_right {
            out.push(null_row(left_width).concat(rrow));
        }
    }
    out
}

fn null_row(width: usize) -> Row {
    Row::new(vec![Value::Null; width])
}

// ---- spillable aggregation ----

/// Spill layout for `(group key, accumulators)` pairs: the key columns
/// plus one Array column holding the tagged accumulator encodings
/// (`Acc::to_value`), stored through the same bucket writer the grace
/// join uses.
#[derive(Clone)]
pub struct AggLayout {
    side: SideLayout,
}

impl AggLayout {
    /// Layout for group keys with the given column types.
    pub fn new(key_dtypes: Vec<DataType>) -> AggLayout {
        AggLayout {
            side: SideLayout::new(
                key_dtypes,
                vec![DataType::Array(Box::new(DataType::String))],
            ),
        }
    }
}

fn accs_row(accs: &[Acc]) -> Row {
    Row::new(vec![Value::Array(Arc::new(
        accs.iter().map(Acc::to_value).collect(),
    ))])
}

fn accs_from_row(row: Row) -> Vec<Acc> {
    match row.into_values().pop() {
        Some(Value::Array(items)) => items.iter().map(Acc::from_value).collect(),
        _ => panic!("corrupt aggregate spill entry"),
    }
}

/// Rough reservation size of one aggregation-table entry.
fn entry_bytes(key: &Row, accs: &[Acc]) -> u64 {
    key.approx_bytes() + 16 + accs.iter().map(Acc::approx_bytes).sum::<u64>()
}

/// Merge a stream of `(key, accumulators)` partials into one set of final
/// accumulators per key, spilling the hash table under memory pressure:
/// a denied grow dumps the table to disk partitioned by depth-salted key
/// hash, and each bucket merges recursively. Output order is
/// unspecified (hash order), like the in-memory combine.
pub fn merge_agg_partition(
    input: BoxIter<(Row, Vec<Acc>)>,
    layout: &AggLayout,
    ctx: &SpillCtx,
    depth: usize,
) -> Vec<(Row, Vec<Acc>)> {
    let mut reservation = ctx.pool.register();
    let reserve = depth < MAX_DEPTH;
    let mut table: HashMap<Row, Vec<Acc>> = HashMap::new();
    let mut buckets: Option<SpillBuckets> = None;
    for (key, accs) in input {
        let bytes = entry_bytes(&key, &accs);
        if reserve && !reservation.try_grow(bytes) && !table.is_empty() {
            let dump = buckets.get_or_insert_with(|| SpillBuckets::new(layout.side.clone(), depth));
            for (k, a) in table.drain() {
                dump.push(ctx, &Some(k), &accs_row(&a));
            }
            reservation.free();
            reservation.try_grow(bytes);
        }
        match table.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let merged: Vec<Acc> = std::mem::take(e.get_mut())
                    .into_iter()
                    .zip(accs)
                    .map(|(a, b)| crate::execution::merge_acc(a, b))
                    .collect();
                *e.get_mut() = merged;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(accs);
            }
        }
    }
    let Some(mut dump) = buckets else {
        return table.into_iter().collect();
    };
    // Dump the final table too, then merge each bucket recursively.
    for (k, a) in table.drain() {
        dump.push(ctx, &Some(k), &accs_row(&a));
    }
    reservation.free();
    let mut out = Vec::new();
    for sub in dump.finish(ctx) {
        let decoded: BoxIter<(Row, Vec<Acc>)> = Box::new(sub.map(move |(k, acc_row)| {
            (
                k.expect("aggregate spill entry lost its key"),
                accs_from_row(acc_row),
            )
        }));
        out.extend(merge_agg_partition(decoded, layout, ctx, depth + 1));
    }
    out
}
