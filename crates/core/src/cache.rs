//! In-memory caching of DataFrames (§3.6).
//!
//! `cache()` materializes a DataFrame's partitions into compressed
//! columnar batches (dictionary/RLE, see the `columnar` crate) on first
//! use. The cached relation is itself a `PrunedFilteredScan`-tier data
//! source: later queries prune columns (undecoded) and skip whole batches
//! via min/max statistics. With `columnar_cache_enabled = false` the rows
//! are kept as plain objects — the "Spark native cache" baseline the
//! paper compares against.

use catalyst::error::{CatalystError, Result};
use catalyst::row::Row;
use catalyst::schema::SchemaRef;
use catalyst::source::{BaseRelation, BatchIter, Filter, RowIter, ScanCapability};
use columnar::{batch_rows, ColumnarBatch};
use parking_lot::Mutex;
use std::sync::Arc;

/// Materialized form of one cached partition.
enum CachedPartition {
    Columnar(Arc<Vec<ColumnarBatch>>),
    Rows(Arc<Vec<Row>>),
}

/// Materializer: produces the partitions on first access.
pub type Materializer = Box<dyn FnOnce() -> Result<Vec<Vec<Row>>> + Send>;

enum CacheState {
    Pending(Option<Materializer>),
    Ready(Arc<Vec<CachedPartition>>),
}

/// A cached (materialized-on-first-use) relation.
pub struct CachedRelation {
    name: String,
    schema: SchemaRef,
    state: Mutex<CacheState>,
    columnar: bool,
    batch_size: usize,
    num_partitions: usize,
}

impl CachedRelation {
    /// Create a lazily materialized cache over `num_partitions` source
    /// partitions.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        num_partitions: usize,
        columnar: bool,
        batch_size: usize,
        materializer: Materializer,
    ) -> Self {
        CachedRelation {
            name: name.into(),
            schema,
            state: Mutex::new(CacheState::Pending(Some(materializer))),
            columnar,
            batch_size,
            num_partitions: num_partitions.max(1),
        }
    }

    fn materialized(&self) -> Result<Arc<Vec<CachedPartition>>> {
        let mut state = self.state.lock();
        match &mut *state {
            CacheState::Ready(parts) => Ok(parts.clone()),
            CacheState::Pending(m) => {
                let materializer = m
                    .take()
                    .ok_or_else(|| CatalystError::Internal("cache rematerialization race".into()))?;
                let partitions = materializer()?;
                let cached: Vec<CachedPartition> = partitions
                    .into_iter()
                    .map(|rows| {
                        if self.columnar {
                            CachedPartition::Columnar(Arc::new(batch_rows(
                                self.schema.clone(),
                                rows,
                                self.batch_size,
                            )))
                        } else {
                            CachedPartition::Rows(Arc::new(rows))
                        }
                    })
                    .collect();
                let cached = Arc::new(cached);
                *state = CacheState::Ready(cached.clone());
                Ok(cached)
            }
        }
    }

    /// True once the data has been materialized.
    pub fn is_materialized(&self) -> bool {
        matches!(&*self.state.lock(), CacheState::Ready(_))
    }

    /// Total cached footprint in bytes (materializes if needed).
    pub fn cached_bytes(&self) -> Result<u64> {
        let parts = self.materialized()?;
        Ok(parts
            .iter()
            .map(|p| match p {
                CachedPartition::Columnar(batches) => {
                    batches.iter().map(ColumnarBatch::bytes).sum::<u64>()
                }
                CachedPartition::Rows(rows) => rows.iter().map(Row::approx_bytes).sum(),
            })
            .sum())
    }

    /// Total row count (materializes if needed).
    pub fn cached_rows(&self) -> Result<u64> {
        let parts = self.materialized()?;
        Ok(parts
            .iter()
            .map(|p| match p {
                CachedPartition::Columnar(batches) => {
                    batches.iter().map(|b| b.num_rows() as u64).sum::<u64>()
                }
                CachedPartition::Rows(rows) => rows.len() as u64,
            })
            .sum())
    }
}

impl BaseRelation for CachedRelation {
    fn name(&self) -> String {
        format!("InMemoryCache:{}", self.name)
    }

    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn size_in_bytes(&self) -> Option<u64> {
        // Known once cached (footnote 5: cached tables have size
        // estimates, enabling broadcast joins).
        if self.is_materialized() {
            self.cached_bytes().ok()
        } else {
            None
        }
    }

    fn row_count(&self) -> Option<u64> {
        if self.is_materialized() {
            self.cached_rows().ok()
        } else {
            None
        }
    }

    fn capability(&self) -> ScanCapability {
        if self.columnar {
            ScanCapability::PrunedFilteredScan
        } else {
            ScanCapability::TableScan
        }
    }

    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn scan_partition(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> Result<RowIter> {
        let parts = self.materialized()?;
        match parts.get(partition) {
            None => Ok(Box::new(std::iter::empty())),
            Some(CachedPartition::Rows(rows)) => {
                let rows = rows.clone();
                Ok(Box::new((0..rows.len()).map(move |i| rows[i].clone())))
            }
            Some(CachedPartition::Columnar(batches)) => {
                // Batch skipping via statistics; then decode only the
                // columns the projection and the filters actually touch.
                let mut out: Vec<Row> = Vec::new();
                let schema = self.schema.clone();
                if filters.is_empty() {
                    for b in batches.iter() {
                        out.extend(b.decode(projection));
                    }
                    return Ok(Box::new(out.into_iter()));
                }
                // Columns needed: filter columns + projected columns.
                let filter_cols: Vec<(usize, &Filter)> = filters
                    .iter()
                    .filter_map(|f| schema.index_of(f.column()).ok().map(|i| (i, f)))
                    .collect();
                let proj: Vec<usize> = match projection {
                    Some(p) => p.to_vec(),
                    None => (0..schema.len()).collect(),
                };
                let mut needed: Vec<usize> = proj.clone();
                needed.extend(filter_cols.iter().map(|(i, _)| *i));
                needed.sort_unstable();
                needed.dedup();
                let pos_of = |col: usize| needed.binary_search(&col).expect("needed col");
                for b in batches.iter() {
                    if !b.may_match(filters) {
                        continue;
                    }
                    for row in b.decode(Some(&needed)) {
                        let ok = filter_cols
                            .iter()
                            .all(|(i, f)| f.matches(row.get(pos_of(*i))));
                        if ok {
                            out.push(Row::new(
                                proj.iter()
                                    .map(|&c| row.get(pos_of(c)).clone())
                                    .collect(),
                            ));
                        }
                    }
                }
                Ok(Box::new(out.into_iter()))
            }
        }
    }

    fn scan_partition_vectors(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> Result<Option<BatchIter>> {
        let parts = self.materialized()?;
        let Some(CachedPartition::Columnar(batches)) = parts.get(partition) else {
            // Row-cached partitions (or out-of-range) use the generic
            // row→batch adapter in the executor.
            return Ok(None);
        };
        // Stream batches straight out of the cache: statistics skip whole
        // batches, then each survivor decodes only the needed columns into
        // vectors with the filters applied as a selection vector.
        let batches = batches.clone();
        let projection: Option<Vec<usize>> = projection.map(<[usize]>::to_vec);
        let filters = filters.to_vec();
        let mut i = 0;
        Ok(Some(Box::new(std::iter::from_fn(move || {
            while i < batches.len() {
                let b = &batches[i];
                i += 1;
                if !b.may_match(&filters) {
                    continue;
                }
                return Some(b.scan_to_row_batch(projection.as_deref(), &filters));
            }
            None
        }))))
    }

    fn handled_filters(&self, filters: &[Filter]) -> Vec<bool> {
        if !self.columnar {
            return vec![false; filters.len()];
        }
        filters
            .iter()
            .map(|f| self.schema.index_of(f.column()).is_ok())
            .collect()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyst::schema::Schema;
    use catalyst::types::{DataType, StructField};
    use catalyst::value::Value;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            StructField::new("id", DataType::Long, false),
            StructField::new("cat", DataType::String, false),
        ]))
    }

    fn make(columnar: bool) -> CachedRelation {
        CachedRelation::new(
            "t",
            schema(),
            2,
            columnar,
            16,
            Box::new(|| {
                Ok((0..2)
                    .map(|p| {
                        (0..100)
                            .map(|i| {
                                Row::new(vec![
                                    Value::Long(p * 100 + i),
                                    Value::str(format!("c{}", i % 3)),
                                ])
                            })
                            .collect()
                    })
                    .collect())
            }),
        )
    }

    #[test]
    fn lazy_materialization_and_scan() {
        let rel = make(true);
        assert!(!rel.is_materialized());
        assert!(rel.size_in_bytes().is_none());
        let rows: Vec<Row> = rel.scan_partition(0, None, &[]).unwrap().collect();
        assert_eq!(rows.len(), 100);
        assert!(rel.is_materialized());
        assert!(rel.size_in_bytes().unwrap() > 0);
        assert_eq!(rel.cached_rows().unwrap(), 200);
    }

    #[test]
    fn filters_and_projection_on_cached_batches() {
        let rel = make(true);
        let filters = [Filter::Gt("id".into(), Value::Long(150))];
        let p0: Vec<Row> = rel.scan_partition(0, Some(&[0]), &filters).unwrap().collect();
        assert!(p0.is_empty(), "partition 0 has ids 0..100");
        let p1: Vec<Row> = rel.scan_partition(1, Some(&[0]), &filters).unwrap().collect();
        assert_eq!(p1.len(), 49);
        assert_eq!(p1[0].len(), 1);
    }

    #[test]
    fn columnar_cache_is_smaller_than_object_cache() {
        let col = make(true);
        let obj = make(false);
        assert!(col.cached_bytes().unwrap() < obj.cached_bytes().unwrap());
        // Row cache is TableScan tier: no pushdown claims.
        assert_eq!(obj.capability(), ScanCapability::TableScan);
        assert_eq!(
            obj.handled_filters(&[Filter::IsNull("id".into())]),
            vec![false]
        );
    }
}
