//! In-memory caching of DataFrames (§3.6).
//!
//! `cache()` materializes a DataFrame's partitions into compressed
//! columnar batches (dictionary/RLE, see the `columnar` crate) on first
//! use. The cached relation is itself a `PrunedFilteredScan`-tier data
//! source: later queries prune columns (undecoded) and skip whole batches
//! via min/max statistics. With `columnar_cache_enabled = false` the rows
//! are kept as plain objects — the "Spark native cache" baseline the
//! paper compares against.
//!
//! Cached blocks live in the engine's [`engine::cache::CacheManager`],
//! one block per source partition, with ownership spread across executor
//! threads. That makes `CACHE TABLE` data subject to the same fault model
//! as RDD caching: when `SparkContext::lose_executor` (or the chaos
//! injector) drops an executor's blocks, the next scan re-runs the
//! materializer from lineage and refills only the missing partitions,
//! counting each refill in the engine's `cache_recomputes` metric.

use catalyst::error::{CatalystError, Result};
use catalyst::row::Row;
use catalyst::schema::SchemaRef;
use catalyst::source::{BaseRelation, BatchIter, Filter, RowIter, ScanCapability};
use columnar::{batch_rows, ColumnarBatch};
use engine::metrics::Metrics;
use engine::rdd::RddId;
use engine::SparkContext;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Materialized form of one cached partition.
enum CachedPartition {
    Columnar(Arc<Vec<ColumnarBatch>>),
    Rows(Arc<Vec<Row>>),
}

/// Materializer: produces all source partitions. Re-runnable — recovery
/// calls it again when cached blocks are lost to an executor failure.
pub type Materializer = Box<dyn Fn() -> Result<Vec<Vec<Row>>> + Send + Sync>;

/// A cached (materialized-on-first-use) relation.
pub struct CachedRelation {
    name: String,
    schema: SchemaRef,
    sc: SparkContext,
    /// Block-store key: blocks live at `(cache_id, partition)` in the
    /// engine cache manager.
    cache_id: RddId,
    materializer: Materializer,
    ever_filled: AtomicBool,
    columnar: bool,
    batch_size: usize,
    num_partitions: usize,
}

impl CachedRelation {
    /// Create a lazily materialized cache over `num_partitions` source
    /// partitions, storing blocks in `sc`'s cache manager.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        num_partitions: usize,
        columnar: bool,
        batch_size: usize,
        sc: SparkContext,
        materializer: Materializer,
    ) -> Self {
        let cache_id = sc.new_rdd_id();
        CachedRelation {
            name: name.into(),
            schema,
            sc,
            cache_id,
            materializer,
            ever_filled: AtomicBool::new(false),
            columnar,
            batch_size,
            num_partitions: num_partitions.max(1),
        }
    }

    /// The engine cache-manager id this relation's blocks are stored
    /// under (for targeted eviction in tests).
    pub fn cache_id(&self) -> RddId {
        self.cache_id
    }

    /// How many of this relation's partitions are currently resident in
    /// the block store.
    pub fn resident_partitions(&self) -> usize {
        let cm = self.sc.cache_manager();
        (0..self.num_partitions)
            .filter(|&p| cm.get(self.cache_id, p).is_some())
            .count()
    }

    fn encode(&self, rows: Vec<Row>) -> CachedPartition {
        if self.columnar {
            CachedPartition::Columnar(Arc::new(batch_rows(
                self.schema.clone(),
                rows,
                self.batch_size,
            )))
        } else {
            CachedPartition::Rows(Arc::new(rows))
        }
    }

    /// Ensure every partition is resident, re-running the materializer
    /// for whatever is missing (everything on first use; only the lost
    /// blocks' data is re-stored after a failure).
    ///
    /// Deliberately lock-free across the materializer call: scans run
    /// inside scheduler tasks, and the materializer runs a nested engine
    /// job, so a reader that blocked on a fill lock here could be the
    /// very thread (via work stealing) the fill needs to make progress —
    /// a deadlock. Concurrent first-touch scans may instead each run the
    /// materializer; puts are idempotent and `take_lost` fires once per
    /// lost partition, so results and recovery accounting stay exact.
    fn ensure(&self) -> Result<()> {
        let cm = self.sc.cache_manager();
        let missing: Vec<usize> = (0..self.num_partitions)
            .filter(|&p| cm.get(self.cache_id, p).is_none())
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        let mut parts = (self.materializer)()?;
        parts.resize_with(self.num_partitions.max(parts.len()), Vec::new);
        // Spread ownership across executor slots so simulated executor
        // loss drops a subset of this relation's blocks, not all or none.
        let slots = self.sc.conf().executor_threads.max(1);
        for p in missing {
            if cm.take_lost(self.cache_id, p) {
                Metrics::add(&self.sc.metrics().cache_recomputes, 1);
            }
            let block = self.encode(std::mem::take(&mut parts[p]));
            // Sized puts participate in the cache budget: under
            // `spark.sql.cache.budgetBytes` the store may evict other
            // blocks (policy-chosen) to admit this one.
            let bytes = match &block {
                CachedPartition::Columnar(batches) => {
                    batches.iter().map(ColumnarBatch::bytes).sum::<u64>()
                }
                CachedPartition::Rows(rows) => rows.iter().map(Row::approx_bytes).sum(),
            };
            cm.put_sized(self.cache_id, p, Arc::new(block), p % slots, bytes);
        }
        self.ever_filled.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Fetch one partition's block, materializing if it is missing.
    fn partition(&self, partition: usize) -> Result<Option<Arc<CachedPartition>>> {
        if partition >= self.num_partitions {
            return Ok(None);
        }
        let cm = self.sc.cache_manager();
        let block = match cm.get(self.cache_id, partition) {
            Some(b) => b,
            None => {
                self.ensure()?;
                match cm.get(self.cache_id, partition) {
                    Some(b) => b,
                    // Under a bounded budget the block `ensure` just
                    // stored can already be gone again: it alone may
                    // exceed the budget, or concurrent fills from other
                    // sessions churned it out. The cache is a
                    // performance layer, never a correctness dependency
                    // — serve this scan from a direct recompute.
                    None => {
                        let mut parts = (self.materializer)()?;
                        let rows = if partition < parts.len() {
                            std::mem::take(&mut parts[partition])
                        } else {
                            Vec::new()
                        };
                        return Ok(Some(Arc::new(self.encode(rows))));
                    }
                }
            }
        };
        block
            .downcast::<CachedPartition>()
            .map(Some)
            .map_err(|_| CatalystError::Internal("cache block type mismatch".into()))
    }

    /// True once the data has been materialized at least once (lost
    /// blocks are refilled transparently on the next scan).
    pub fn is_materialized(&self) -> bool {
        self.ever_filled.load(Ordering::SeqCst)
    }

    /// `(bytes, rows)` summed over resident blocks — `None` unless every
    /// partition is resident. Planning-time sizing must never run the
    /// materializer (a nested engine job), so after an eviction or an
    /// executor loss the relation simply reports unknown until the next
    /// scan refills it.
    fn resident_footprint(&self) -> Option<(u64, u64)> {
        let cm = self.sc.cache_manager();
        let mut bytes = 0u64;
        let mut rows = 0u64;
        for p in 0..self.num_partitions {
            let block = cm.get(self.cache_id, p)?;
            let part = block.downcast::<CachedPartition>().ok()?;
            match part.as_ref() {
                CachedPartition::Columnar(batches) => {
                    bytes += batches.iter().map(ColumnarBatch::bytes).sum::<u64>();
                    rows += batches.iter().map(|b| b.num_rows() as u64).sum::<u64>();
                }
                CachedPartition::Rows(r) => {
                    bytes += r.iter().map(Row::approx_bytes).sum::<u64>();
                    rows += r.len() as u64;
                }
            }
        }
        Some((bytes, rows))
    }

    /// Total cached footprint in bytes (materializes if needed).
    pub fn cached_bytes(&self) -> Result<u64> {
        self.ensure()?;
        let mut total = 0u64;
        for p in 0..self.num_partitions {
            total += match &*self.partition(p)?.expect("in range") {
                CachedPartition::Columnar(batches) => {
                    batches.iter().map(ColumnarBatch::bytes).sum::<u64>()
                }
                CachedPartition::Rows(rows) => rows.iter().map(Row::approx_bytes).sum(),
            };
        }
        Ok(total)
    }

    /// Total row count (materializes if needed).
    pub fn cached_rows(&self) -> Result<u64> {
        self.ensure()?;
        let mut total = 0u64;
        for p in 0..self.num_partitions {
            total += match &*self.partition(p)?.expect("in range") {
                CachedPartition::Columnar(batches) => {
                    batches.iter().map(|b| b.num_rows() as u64).sum::<u64>()
                }
                CachedPartition::Rows(rows) => rows.len() as u64,
            };
        }
        Ok(total)
    }
}

impl BaseRelation for CachedRelation {
    fn name(&self) -> String {
        format!("InMemoryCache:{}", self.name)
    }

    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn size_in_bytes(&self) -> Option<u64> {
        // Known once cached (footnote 5: cached tables have size
        // estimates, enabling broadcast joins) — but only from resident
        // blocks: sizing runs at planning time and must not trigger a
        // fill or a lost-block recompute.
        self.resident_footprint().map(|(bytes, _)| bytes)
    }

    fn row_count(&self) -> Option<u64> {
        self.resident_footprint().map(|(_, rows)| rows)
    }

    fn capability(&self) -> ScanCapability {
        if self.columnar {
            ScanCapability::PrunedFilteredScan
        } else {
            ScanCapability::TableScan
        }
    }

    fn column_statistics(&self) -> Option<Vec<catalyst::source::ColumnStatistics>> {
        // Statistics come from whatever partitions are *resident*. This
        // runs at planning time, so it must not trigger materialization:
        // a missing partition (evicted, lost with its executor, never
        // filled) is simply not counted — but its absence makes the
        // result PARTIAL, and partial stats are lower bounds only (no
        // always-empty proofs, no stats-answered aggregates, no min/max
        // domains). Execution refills missing partitions with recovery
        // accounting as usual.
        if !self.columnar {
            return None;
        }
        let cm = self.sc.cache_manager();
        let mut batches: Vec<columnar::ColumnarBatch> = Vec::new();
        let mut missing = 0usize;
        for p in 0..self.num_partitions {
            let Some(slot) = cm.get(self.cache_id, p) else {
                missing += 1;
                continue;
            };
            let part = slot.downcast::<CachedPartition>().ok()?;
            match part.as_ref() {
                CachedPartition::Columnar(bs) => batches.extend(bs.iter().cloned()),
                CachedPartition::Rows(_) => return None,
            }
        }
        if missing == self.num_partitions {
            return None;
        }
        let mut stats = columnar::stats::relation_statistics(batches.iter(), self.schema.len())?;
        if missing > 0 {
            for s in &mut stats {
                s.partial = true;
            }
        }
        Some(stats)
    }

    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn scan_partition(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> Result<RowIter> {
        let Some(part) = self.partition(partition)? else {
            return Ok(Box::new(std::iter::empty()));
        };
        match &*part {
            CachedPartition::Rows(rows) => {
                let rows = rows.clone();
                Ok(Box::new((0..rows.len()).map(move |i| rows[i].clone())))
            }
            CachedPartition::Columnar(batches) => {
                // Batch skipping via statistics; then decode only the
                // columns the projection and the filters actually touch.
                let mut out: Vec<Row> = Vec::new();
                let schema = self.schema.clone();
                if filters.is_empty() {
                    for b in batches.iter() {
                        out.extend(b.decode(projection));
                    }
                    return Ok(Box::new(out.into_iter()));
                }
                // Columns needed: filter columns + projected columns.
                let filter_cols: Vec<(usize, &Filter)> = filters
                    .iter()
                    .filter_map(|f| schema.index_of(f.column()).ok().map(|i| (i, f)))
                    .collect();
                let proj: Vec<usize> = match projection {
                    Some(p) => p.to_vec(),
                    None => (0..schema.len()).collect(),
                };
                let mut needed: Vec<usize> = proj.clone();
                needed.extend(filter_cols.iter().map(|(i, _)| *i));
                needed.sort_unstable();
                needed.dedup();
                let pos_of = |col: usize| needed.binary_search(&col).expect("needed col");
                for b in batches.iter() {
                    if !b.may_match(filters) {
                        continue;
                    }
                    for row in b.decode(Some(&needed)) {
                        let ok = filter_cols
                            .iter()
                            .all(|(i, f)| f.matches(row.get(pos_of(*i))));
                        if ok {
                            out.push(Row::new(
                                proj.iter().map(|&c| row.get(pos_of(c)).clone()).collect(),
                            ));
                        }
                    }
                }
                Ok(Box::new(out.into_iter()))
            }
        }
    }

    fn scan_partition_vectors(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> Result<Option<BatchIter>> {
        let Some(part) = self.partition(partition)? else {
            return Ok(None);
        };
        let CachedPartition::Columnar(batches) = &*part else {
            // Row-cached partitions use the generic row→batch adapter in
            // the executor.
            return Ok(None);
        };
        // Stream batches straight out of the cache: statistics skip whole
        // batches, then each survivor decodes only the needed columns into
        // vectors with the filters applied as a selection vector.
        let batches = batches.clone();
        let projection: Option<Vec<usize>> = projection.map(<[usize]>::to_vec);
        let filters = filters.to_vec();
        let mut i = 0;
        Ok(Some(Box::new(std::iter::from_fn(move || {
            while i < batches.len() {
                let b = &batches[i];
                i += 1;
                if !b.may_match(&filters) {
                    continue;
                }
                return Some(b.scan_to_row_batch(projection.as_deref(), &filters));
            }
            None
        }))))
    }

    fn handled_filters(&self, filters: &[Filter]) -> Vec<bool> {
        if !self.columnar {
            return vec![false; filters.len()];
        }
        filters
            .iter()
            .map(|f| self.schema.index_of(f.column()).is_ok())
            .collect()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyst::schema::Schema;
    use catalyst::types::{DataType, StructField};
    use catalyst::value::Value;
    use std::sync::atomic::AtomicUsize;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            StructField::new("id", DataType::Long, false),
            StructField::new("cat", DataType::String, false),
        ]))
    }

    fn make(columnar: bool) -> CachedRelation {
        CachedRelation::new(
            "t",
            schema(),
            2,
            columnar,
            16,
            SparkContext::new(2),
            Box::new(|| {
                Ok((0..2)
                    .map(|p| {
                        (0..100)
                            .map(|i| {
                                Row::new(vec![
                                    Value::Long(p * 100 + i),
                                    Value::str(format!("c{}", i % 3)),
                                ])
                            })
                            .collect()
                    })
                    .collect())
            }),
        )
    }

    #[test]
    fn lazy_materialization_and_scan() {
        let rel = make(true);
        assert!(!rel.is_materialized());
        assert!(rel.size_in_bytes().is_none());
        let rows: Vec<Row> = rel.scan_partition(0, None, &[]).unwrap().collect();
        assert_eq!(rows.len(), 100);
        assert!(rel.is_materialized());
        assert!(rel.size_in_bytes().unwrap() > 0);
        assert_eq!(rel.cached_rows().unwrap(), 200);
    }

    #[test]
    fn filters_and_projection_on_cached_batches() {
        let rel = make(true);
        let filters = [Filter::Gt("id".into(), Value::Long(150))];
        let p0: Vec<Row> = rel
            .scan_partition(0, Some(&[0]), &filters)
            .unwrap()
            .collect();
        assert!(p0.is_empty(), "partition 0 has ids 0..100");
        let p1: Vec<Row> = rel
            .scan_partition(1, Some(&[0]), &filters)
            .unwrap()
            .collect();
        assert_eq!(p1.len(), 49);
        assert_eq!(p1[0].len(), 1);
    }

    #[test]
    fn columnar_cache_is_smaller_than_object_cache() {
        let col = make(true);
        let obj = make(false);
        assert!(col.cached_bytes().unwrap() < obj.cached_bytes().unwrap());
        // Row cache is TableScan tier: no pushdown claims.
        assert_eq!(obj.capability(), ScanCapability::TableScan);
        assert_eq!(
            obj.handled_filters(&[Filter::IsNull("id".into())]),
            vec![false]
        );
    }

    #[test]
    fn lost_blocks_refill_from_the_materializer() {
        let sc = SparkContext::new(2);
        sc.set_chaos(None);
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = runs.clone();
        let rel = CachedRelation::new(
            "t",
            schema(),
            2,
            true,
            16,
            sc.clone(),
            Box::new(move || {
                runs2.fetch_add(1, Ordering::SeqCst);
                Ok((0..2)
                    .map(|p| {
                        (0..10)
                            .map(|i| Row::new(vec![Value::Long(p * 10 + i), Value::str("c")]))
                            .collect()
                    })
                    .collect())
            }),
        );
        assert_eq!(rel.cached_rows().unwrap(), 20);
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(rel.resident_partitions(), 2);
        // Repeated scans are served from the block store.
        let _: Vec<Row> = rel.scan_partition(0, None, &[]).unwrap().collect();
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        // Drop one block (partition 0 is owned by executor slot 0): the
        // next scan re-runs the materializer and refills only the loss.
        let before = Metrics::get(&sc.metrics().cache_recomputes);
        sc.lose_executor(0);
        assert_eq!(rel.resident_partitions(), 1);
        let rows: Vec<Row> = rel.scan_partition(0, None, &[]).unwrap().collect();
        assert_eq!(rows.len(), 10);
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        assert_eq!(rel.resident_partitions(), 2);
        assert_eq!(Metrics::get(&sc.metrics().cache_recomputes), before + 1);
        assert!(rel.is_materialized());
    }

    #[test]
    fn partial_eviction_marks_statistics_partial() {
        let sc = SparkContext::new(2);
        sc.set_chaos(None);
        let rel = CachedRelation::new(
            "t",
            schema(),
            2,
            true,
            16,
            sc.clone(),
            Box::new(|| {
                Ok((0..2i64)
                    .map(|p| {
                        (0..100)
                            .map(|i| Row::new(vec![Value::Long(p * 100 + i), Value::str("c")]))
                            .collect()
                    })
                    .collect())
            }),
        );
        // Planning before first materialization sees no statistics —
        // column_statistics must not trigger a fill.
        assert!(rel.column_statistics().is_none());
        assert!(!rel.is_materialized());

        rel.cached_rows().unwrap();
        let full = rel.column_statistics().expect("resident stats");
        assert!(full.iter().all(|s| !s.partial));
        assert_eq!(full[0].min, Some(Value::Long(0)));
        assert_eq!(full[0].max, Some(Value::Long(199)));

        // Drop partition 1 (owned by executor slot 1): the surviving
        // partition's max is 99, far below the true 199. If these stats
        // were not flagged partial, a `WHERE id > 150` could be "proven"
        // always-empty and MAX(id) "answered" as 99.
        sc.lose_executor(1);
        assert_eq!(rel.resident_partitions(), 1);
        let partial = rel.column_statistics().expect("partial stats");
        assert!(partial.iter().all(|s| s.partial));
        assert_eq!(partial[0].max, Some(Value::Long(99)));

        // Fully evicted: no stats at all rather than empty-set stats,
        // which would "prove" every aggregate is NULL and every scan
        // empty.
        sc.lose_executor(0);
        assert_eq!(rel.resident_partitions(), 0);
        assert!(rel.column_statistics().is_none());

        // The data itself is never lost: the next scan refills.
        assert_eq!(rel.cached_rows().unwrap(), 200);
        assert!(rel
            .column_statistics()
            .is_some_and(|s| s.iter().all(|c| !c.partial)));
    }
}
