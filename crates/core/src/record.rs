//! Querying native datasets (§3.5): DataFrames constructed directly from
//! collections of host-language objects.
//!
//! In Scala, Spark SQL extracts schema via reflection on case classes; the
//! Rust analogue is the [`Record`] trait (implemented by hand or through
//! the [`macro@crate::record`] macro). As in the paper, the engine accesses
//! native objects in place and extracts only the fields used in each
//! query — conversion to rows happens lazily inside scan tasks, not via an
//! up-front ORM-style translation of entire objects.

use catalyst::row::Row;
use catalyst::schema::Schema;

/// A native type with a derivable relational schema.
pub trait Record: Clone + Send + Sync + 'static {
    /// The schema shared by all values of this type.
    fn schema() -> Schema;
    /// Convert one object to a row matching [`Record::schema`].
    fn to_row(&self) -> Row;
}

/// Define a struct together with its [`Record`] implementation:
///
/// ```
/// use spark_sql::record;
/// use catalyst::types::DataType;
///
/// record! {
///     pub struct User {
///         pub name: String => DataType::String,
///         pub age: i32 => DataType::Int,
///     }
/// }
///
/// let u = User { name: "Alice".into(), age: 22 };
/// use spark_sql::record::Record;
/// assert_eq!(User::schema().len(), 2);
/// assert_eq!(u.to_row().get_long(1), 22);
/// ```
#[macro_export]
macro_rules! record {
    (
        $vis:vis struct $name:ident {
            $($fvis:vis $field:ident : $ty:ty => $dtype:expr),* $(,)?
        }
    ) => {
        #[derive(Debug, Clone, PartialEq)]
        $vis struct $name {
            $($fvis $field: $ty,)*
        }

        impl $crate::record::Record for $name {
            fn schema() -> catalyst::schema::Schema {
                catalyst::schema::Schema::new(vec![
                    $(catalyst::types::StructField::new(stringify!($field), $dtype, false),)*
                ])
            }

            fn to_row(&self) -> catalyst::row::Row {
                catalyst::row::Row::new(vec![
                    $(catalyst::value::Value::from(self.$field.clone()),)*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyst::types::DataType;
    use catalyst::value::Value;

    record! {
        struct User {
            name: String => DataType::String,
            age: i32 => DataType::Int,
        }
    }

    #[test]
    fn paper_user_example() {
        // case class User(name: String, age: Int) from §3.5.
        let users = [
            User {
                name: "Alice".into(),
                age: 22,
            },
            User {
                name: "Bob".into(),
                age: 19,
            },
        ];
        let schema = User::schema();
        assert_eq!(schema.field(0).name.as_ref(), "name");
        assert_eq!(schema.field(1).dtype, DataType::Int);
        let row = users[0].to_row();
        assert_eq!(row.get(0), &Value::str("Alice"));
        assert_eq!(row.get(1), &Value::Int(22));
    }
}
