//! The session entry point: `SQLContext` (the paper's
//! `SQLContext`/`HiveContext`), tying the catalog, analyzer, optimizer,
//! planner, data source registry, and execution engine together.

use crate::cache::CachedRelation;
use crate::conf::SqlConf;
use crate::dataframe::DataFrame;
use crate::execution::{execute, ExecContext};
use crate::io::DataFrameReader;
use crate::query_execution::QueryLogEntry;
use crate::rdd_table::RddTable;
use crate::record::Record;
use catalyst::analysis::{Analyzer, Catalog, FunctionRegistry, OverlayCatalog, SimpleCatalog};
use catalyst::error::{CatalystError, Result};
use catalyst::expr::{ColumnRef, UdfImpl};
use catalyst::optimizer::Optimizer;
use catalyst::physical::{PhysicalPlan, Planner, PlannerConfig, Strategy};
use catalyst::plan::LogicalPlan;
use catalyst::row::Row;
use catalyst::rules::{Batch, ExecutionMonitor, RuleHealthReport, TraceEvent};
use catalyst::schema::SchemaRef;
use catalyst::source::BaseRelation;
use catalyst::types::DataType;
use catalyst::udt::UdtRegistry;
use catalyst::validation;
use catalyst::value::Value;
use datasources::{CsvOptions, DataSourceRegistry, JsonRelation, Options};
use engine::{RddRef, SparkContext};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CtxInner {
    sc: SparkContext,
    /// The server-wide catalog shared by every session.
    shared_catalog: Arc<SimpleCatalog>,
    /// `Some` for contexts created by [`SQLContext::new_session`]: a
    /// session-local temp-view layer over the shared catalog.
    session_catalog: Option<Arc<OverlayCatalog>>,
    functions: Arc<FunctionRegistry>,
    udts: Arc<UdtRegistry>,
    sources: Arc<DataSourceRegistry>,
    conf: RwLock<SqlConf>,
    strategies: RwLock<Vec<Arc<dyn Strategy>>>,
    optimizer: Mutex<Optimizer>,
    /// Plans saved by `CACHE TABLE` so `UNCACHE` can restore them.
    uncached_plans: Mutex<std::collections::HashMap<String, LogicalPlan>>,
    /// Instrumented runs recorded by `QueryExecution::collect`.
    query_log: Mutex<Vec<QueryLogEntry>>,
    /// Stable id stamped on this session's query-log entries. `"local"`
    /// for library use; the SQL service assigns `s1`, `s2`, ….
    session_id: String,
    /// Monotonic per-session query-id source (first query is 1).
    next_query_id: AtomicU64,
}

/// A Spark SQL session.
#[derive(Clone)]
pub struct SQLContext {
    inner: Arc<CtxInner>,
}

impl SQLContext {
    /// Create a session over an existing engine context.
    pub fn new(sc: SparkContext) -> Self {
        let ctx = SQLContext {
            inner: Arc::new(CtxInner {
                sc,
                shared_catalog: Arc::new(SimpleCatalog::default()),
                session_catalog: None,
                functions: Arc::new(FunctionRegistry::default()),
                udts: Arc::new(UdtRegistry::default()),
                sources: Arc::new(DataSourceRegistry::default()),
                conf: RwLock::new(SqlConf::default()),
                strategies: RwLock::new(Vec::new()),
                optimizer: Mutex::new(Optimizer::new()),
                uncached_plans: Mutex::new(std::collections::HashMap::new()),
                query_log: Mutex::new(Vec::new()),
                session_id: "local".to_string(),
                next_query_id: AtomicU64::new(1),
            }),
        };
        // The environment may have set a cache budget through the
        // registry defaults; mirror it onto the engine cache.
        ctx.apply_cache_conf();
        ctx
    }

    /// Derive an isolated session sharing this context's engine, shared
    /// catalog, cache, functions, UDTs, and data sources. The new session
    /// gets its own temp-view layer (a [`OverlayCatalog`] over the shared
    /// catalog), a snapshot of the current configuration (later `SET`s
    /// are invisible across sessions), its own query log, and its own
    /// query-id counter. Custom optimizer batches are *not* inherited.
    pub fn new_session(&self, session_id: impl Into<String>) -> SQLContext {
        SQLContext {
            inner: Arc::new(CtxInner {
                sc: self.inner.sc.clone(),
                shared_catalog: self.inner.shared_catalog.clone(),
                session_catalog: Some(Arc::new(OverlayCatalog::over(
                    self.inner.shared_catalog.clone(),
                ))),
                functions: self.inner.functions.clone(),
                udts: self.inner.udts.clone(),
                sources: self.inner.sources.clone(),
                conf: RwLock::new(self.conf()),
                strategies: RwLock::new(self.inner.strategies.read().clone()),
                optimizer: Mutex::new(Optimizer::new()),
                uncached_plans: Mutex::new(std::collections::HashMap::new()),
                query_log: Mutex::new(Vec::new()),
                session_id: session_id.into(),
                next_query_id: AtomicU64::new(1),
            }),
        }
    }

    /// This session's id (`"local"` outside the SQL service).
    pub fn session_id(&self) -> &str {
        &self.inner.session_id
    }

    /// Allocate the next query id for this session.
    pub(crate) fn next_query_id(&self) -> u64 {
        self.inner.next_query_id.fetch_add(1, Ordering::SeqCst)
    }

    /// The catalog this session resolves tables against.
    fn catalog_dyn(&self) -> Arc<dyn Catalog> {
        match &self.inner.session_catalog {
            Some(overlay) => overlay.clone(),
            None => self.inner.shared_catalog.clone(),
        }
    }

    fn catalog_register(&self, name: &str, plan: LogicalPlan) {
        match &self.inner.session_catalog {
            Some(overlay) => overlay.register(name, plan),
            None => self.inner.shared_catalog.register(name, plan),
        }
    }

    fn catalog_unregister(&self, name: &str) -> bool {
        match &self.inner.session_catalog {
            Some(overlay) => overlay.unregister(name),
            None => self.inner.shared_catalog.unregister(name),
        }
    }

    /// Create a session with a fresh local "cluster" of
    /// `executor_threads` workers.
    pub fn new_local(executor_threads: usize) -> Self {
        SQLContext::new(SparkContext::new(executor_threads))
    }

    /// The underlying engine context.
    pub fn spark_context(&self) -> &SparkContext {
        &self.inner.sc
    }

    /// Read the current configuration.
    pub fn conf(&self) -> SqlConf {
        self.inner.conf.read().clone()
    }

    /// Mutate the configuration.
    pub fn set_conf(&self, f: impl FnOnce(&mut SqlConf)) {
        f(&mut self.inner.conf.write());
        // Shared-resource knobs (the cache budget/policy) act on the
        // engine immediately, same as the string-keyed `set` path.
        self.apply_cache_conf();
    }

    /// Set a runtime config by registry key, e.g.
    /// `ctx.set("spark.sql.vectorize.enabled", "false")`. Unknown keys
    /// error with the list of valid keys. The same registry backs `SET`
    /// statements and startup environment variables.
    pub fn set(&self, key: &str, value: &str) -> Result<()> {
        self.inner.conf.write().set(key, value)?;
        let lower = key.to_ascii_lowercase();
        if lower.starts_with("spark.sql.chaos.") {
            self.apply_chaos_conf();
        }
        if lower == "spark.sql.cache.budgetbytes" || lower == "spark.sql.cache.evictionpolicy" {
            self.apply_cache_conf();
        }
        Ok(())
    }

    /// Current value of a runtime config key, rendered as a string.
    pub fn get(&self, key: &str) -> Result<String> {
        self.inner.conf.read().get(key)
    }

    /// Install (or clear) the engine chaos plan described by the session
    /// configuration.
    fn apply_chaos_conf(&self) {
        let conf = self.conf();
        let plan = conf.chaos_seed.map(|seed| {
            let mut cc = engine::ChaosConf::seeded(seed);
            if let Some(p) = conf.chaos_prob {
                cc.task_fault_prob = p;
                cc.fetch_fault_prob = p;
            }
            Arc::new(engine::ChaosPlan::new(cc))
        });
        self.inner.sc.set_chaos(plan);
    }

    /// Apply the session's cache budget/policy to the engine's shared
    /// cache manager. Like the chaos hook, this is an engine-level
    /// side effect: the cache is shared, so the last session to set it
    /// wins (services set it once at startup).
    fn apply_cache_conf(&self) {
        let conf = self.conf();
        let budget = (conf.cache_budget_bytes > 0).then_some(conf.cache_budget_bytes);
        self.inner.sc.cache_manager().set_budget(
            budget,
            engine::EvictionPolicy::parse(&conf.cache_eviction_policy),
        );
    }

    /// The user-defined-type registry (§4.4.2).
    pub fn udts(&self) -> &UdtRegistry {
        &self.inner.udts
    }

    /// The data source provider registry (§4.4.1).
    pub fn data_sources(&self) -> &DataSourceRegistry {
        &self.inner.sources
    }

    // ---- analysis / planning / execution pipeline ----

    /// Analyze a plan against this session's catalog and functions.
    pub fn analyze(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        Analyzer::new(self.catalog_dyn(), self.inner.functions.clone()).analyze(plan)
    }

    /// Wrap an unanalyzed plan into a DataFrame (analyzing it eagerly).
    pub fn dataframe(&self, plan: LogicalPlan) -> Result<DataFrame> {
        Ok(DataFrame::new(self.clone(), self.analyze(plan)?))
    }

    /// Which optimizer rules fired for a plan (observability for the
    /// §4.2 fixed-point machinery).
    pub fn optimizer_trace(&self, analyzed: &LogicalPlan) -> Vec<catalyst::rules::TraceEvent> {
        self.inner
            .optimizer
            .lock()
            .optimize_traced(analyzed.clone())
            .1
    }

    /// Optimize + physically plan a query.
    pub fn plan_query(&self, analyzed: &LogicalPlan) -> Result<(LogicalPlan, PhysicalPlan)> {
        let planned = self.plan_query_monitored(analyzed)?;
        Ok((planned.optimized, planned.physical))
    }

    /// Optimize + physically plan a query under monitoring: rule-health
    /// counters are always collected, and — when plan validation is on
    /// ([`catalyst::validation::enabled`]) — every optimizer rewrite is
    /// checked as a post-condition and the physical plan is checked at
    /// shuffle boundaries. A rule that breaks an invariant has its
    /// rewrite rolled back and fails the query with a report naming the
    /// batch, rule, iteration, invariant, and plan diff.
    pub fn plan_query_monitored(&self, analyzed: &LogicalPlan) -> Result<PlannedQuery> {
        let conf = self.conf();
        let validate = conf.plan_validation.unwrap_or_else(validation::enabled);
        let validator = validation::PlanValidator::new();
        let mut monitor = if validate {
            ExecutionMonitor::with_validator(&validator)
        } else {
            ExecutionMonitor::new()
        };
        let optimized = self
            .inner
            .optimizer
            .lock()
            .optimize_with(analyzed.clone(), &mut monitor);
        // Constraint-driven phase (nullability + value-domain abstract
        // interpretation): runs after the standard batches so it sees the
        // settled plan, under the same monitor so its rewrites are
        // validated and traced like any other rule's.
        let optimized = if conf.constraints_enabled {
            Optimizer::constraint_phase().optimize_with(optimized, &mut monitor)
        } else {
            optimized
        };
        // Cost-based phase (statistics-driven join reordering, aggregates
        // answered from source stats, CSE): runs last so its cardinality
        // estimates see the settled plan, under the same monitor.
        let optimized = if conf.cbo_enabled {
            Optimizer::cbo_phase().optimize_with(optimized, &mut monitor)
        } else {
            optimized
        };
        if !monitor.violations.is_empty() {
            let mut msg = String::from("optimizer rule broke a plan invariant:\n");
            for v in &monitor.violations {
                msg.push_str(&v.to_string());
                msg.push('\n');
            }
            return Err(CatalystError::Internal(msg));
        }
        let mut planner = Planner::new(PlannerConfig {
            pushdown_enabled: conf.pushdown_enabled,
            column_pruning_enabled: conf.column_pruning_enabled,
            broadcast_threshold: conf.broadcast_threshold,
            cbo_enabled: conf.cbo_enabled,
        });
        for s in self.inner.strategies.read().iter() {
            planner.add_strategy(s.clone());
        }
        let physical = planner.plan(&optimized)?;
        if validate {
            let violations = validator.check_physical(&physical);
            if !violations.is_empty() {
                return Err(CatalystError::Internal(format!(
                    "physical plan failed integrity checks:\n{}",
                    validation::render_violations(&violations)
                )));
            }
        }
        Ok(PlannedQuery {
            optimized,
            physical,
            rule_health: monitor.health,
            trace: monitor.trace,
        })
    }

    /// Full pipeline: analyzed plan → engine RDD.
    pub fn execute_plan(&self, analyzed: &LogicalPlan) -> Result<RddRef<Row>> {
        let (_, physical) = self.plan_query(analyzed)?;
        let ctx = ExecContext::new(self.inner.sc.clone(), self.conf());
        execute(&physical, &ctx)
    }

    // ---- query log ----

    /// Record one instrumented run (called by `QueryExecution::collect`).
    pub(crate) fn log_query(&self, entry: QueryLogEntry) {
        self.inner.query_log.lock().push(entry);
    }

    /// Snapshot of the session query log: one entry per instrumented run
    /// (`collect` on a `QueryExecution`, or `explain_analyze`).
    pub fn query_log(&self) -> Vec<QueryLogEntry> {
        self.inner.query_log.lock().clone()
    }

    /// Drop every recorded query log entry.
    pub fn clear_query_log(&self) {
        self.inner.query_log.lock().clear();
    }

    /// The query log rendered as a JSON array, for dumping from
    /// benchmark harnesses.
    pub fn query_log_json(&self) -> String {
        let entries: Vec<String> = self
            .inner
            .query_log
            .lock()
            .iter()
            .map(QueryLogEntry::to_json)
            .collect();
        format!("[{}]", entries.join(","))
    }

    // ---- SQL ----

    /// Run a SQL statement. Queries return a DataFrame; DDL statements
    /// return an empty DataFrame after taking effect.
    pub fn sql(&self, text: &str) -> Result<DataFrame> {
        match sql::parse(text)? {
            sql::Statement::Query(plan) => self.dataframe(plan),
            sql::Statement::CreateTempTable {
                name,
                provider,
                options,
                query,
            } => {
                match query {
                    Some(q) => {
                        // CREATE TABLE … AS SELECT: materialize through
                        // the session and register the result.
                        let df = self.dataframe(q)?;
                        let rows = df.collect()?;
                        self.register_rows(&name, df.schema(), rows)?;
                    }
                    None => {
                        let rel = self.inner.sources.create_relation(&provider, &options)?;
                        self.register_relation(&name, rel);
                    }
                }
                self.empty_dataframe()
            }
            sql::Statement::CacheTable { name } => {
                self.cache_table(&name)?;
                self.empty_dataframe()
            }
            sql::Statement::UncacheTable { name } => {
                self.uncache_table(&name)?;
                self.empty_dataframe()
            }
            sql::Statement::Explain(plan) => {
                let df = self.dataframe(plan)?;
                let text = df.explain()?;
                let rows: Vec<Row> = text
                    .lines()
                    .map(|l| Row::new(vec![Value::str(l)]))
                    .collect();
                let schema = Arc::new(catalyst::schema::Schema::new(vec![
                    catalyst::types::StructField::new("plan", DataType::String, false),
                ]));
                self.create_dataframe(schema, rows)
            }
            sql::Statement::ExplainLint(plan) => {
                let df = self.dataframe(plan)?;
                let rows: Vec<Row> = df
                    .lint()
                    .into_iter()
                    .map(|d| {
                        Row::new(vec![
                            Value::str(d.severity.name()),
                            Value::str(d.class.code()),
                            Value::Long(d.node_id as i64),
                            Value::str(d.node),
                            Value::str(d.message),
                        ])
                    })
                    .collect();
                let schema = Arc::new(catalyst::schema::Schema::new(vec![
                    catalyst::types::StructField::new("severity", DataType::String, false),
                    catalyst::types::StructField::new("code", DataType::String, false),
                    catalyst::types::StructField::new("node_id", DataType::Long, false),
                    catalyst::types::StructField::new("node", DataType::String, false),
                    catalyst::types::StructField::new("message", DataType::String, false),
                ]));
                self.create_dataframe(schema, rows)
            }
            sql::Statement::Set { key, value } => {
                let pairs: Vec<(String, String)> = match (&key, &value) {
                    (Some(k), Some(v)) => {
                        self.set(k, v)?;
                        vec![(k.clone(), self.get(k)?)]
                    }
                    (Some(k), None) => vec![(k.clone(), self.get(k)?)],
                    _ => self.conf().entries(),
                };
                let rows: Vec<Row> = pairs
                    .into_iter()
                    .map(|(k, v)| Row::new(vec![Value::str(k), Value::str(v)]))
                    .collect();
                let schema = Arc::new(catalyst::schema::Schema::new(vec![
                    catalyst::types::StructField::new("key", DataType::String, false),
                    catalyst::types::StructField::new("value", DataType::String, false),
                ]));
                self.create_dataframe(schema, rows)
            }
            sql::Statement::ShowTables => {
                let rows: Vec<Row> = self
                    .catalog_dyn()
                    .table_names()
                    .into_iter()
                    .map(|n| Row::new(vec![Value::str(n)]))
                    .collect();
                let schema = Arc::new(catalyst::schema::Schema::new(vec![
                    catalyst::types::StructField::new("table", DataType::String, false),
                ]));
                self.create_dataframe(schema, rows)
            }
            sql::Statement::Describe { name } => {
                let df = self.table(&name)?;
                let rows: Vec<Row> = df
                    .schema()
                    .fields()
                    .iter()
                    .map(|f| {
                        Row::new(vec![
                            Value::str(f.name.as_ref()),
                            Value::str(f.dtype.to_string()),
                            Value::Boolean(f.nullable),
                        ])
                    })
                    .collect();
                let schema = Arc::new(catalyst::schema::Schema::new(vec![
                    catalyst::types::StructField::new("column", DataType::String, false),
                    catalyst::types::StructField::new("type", DataType::String, false),
                    catalyst::types::StructField::new("nullable", DataType::Boolean, false),
                ]));
                self.create_dataframe(schema, rows)
            }
        }
    }

    fn empty_dataframe(&self) -> Result<DataFrame> {
        self.dataframe(LogicalPlan::LocalRelation {
            output: vec![],
            rows: Arc::new(vec![]),
        })
    }

    // ---- catalog ----

    /// Register an analyzed plan as a temp table (in the session layer,
    /// for sessions; in the shared catalog, for the root context).
    pub fn register_plan(&self, name: &str, plan: LogicalPlan) {
        self.catalog_register(name, plan);
    }

    /// Register a data source relation as a table.
    pub fn register_relation(&self, name: &str, relation: Arc<dyn BaseRelation>) {
        self.catalog_register(name, scan_plan(relation));
    }

    /// Register literal rows as a table.
    pub fn register_rows(&self, name: &str, schema: SchemaRef, rows: Vec<Row>) -> Result<()> {
        let df = self.create_dataframe(schema, rows)?;
        df.register_temp_table(name);
        Ok(())
    }

    /// Remove a temp table.
    pub fn drop_temp_table(&self, name: &str) -> bool {
        self.catalog_unregister(name)
    }

    /// Look up a table as a DataFrame.
    pub fn table(&self, name: &str) -> Result<DataFrame> {
        self.dataframe(LogicalPlan::UnresolvedRelation {
            name: name.to_string(),
        })
    }

    // ---- DataFrame construction ----

    /// DataFrame over literal rows.
    pub fn create_dataframe(&self, schema: SchemaRef, rows: Vec<Row>) -> Result<DataFrame> {
        let output = fresh_output(&schema);
        self.dataframe(LogicalPlan::LocalRelation {
            output,
            rows: Arc::new(rows),
        })
    }

    /// DataFrame over an existing RDD of rows (§3.5's "querying native
    /// datasets" once objects are rows).
    pub fn dataframe_from_rdd(
        &self,
        name: &str,
        schema: SchemaRef,
        rdd: RddRef<Row>,
    ) -> Result<DataFrame> {
        let output = fresh_output(&schema);
        let table = RddTable::new(name, schema, rdd);
        self.dataframe(LogicalPlan::External {
            data: Arc::new(table),
            output,
        })
    }

    /// DataFrame over a collection of native objects: schema comes from
    /// the [`Record`] implementation (the reflection step of §3.5) and
    /// field extraction happens lazily inside scan tasks.
    pub fn create_dataframe_from<T: Record>(
        &self,
        objects: Vec<T>,
        num_partitions: usize,
    ) -> Result<DataFrame> {
        let schema = Arc::new(T::schema());
        let rdd = self
            .inner
            .sc
            .parallelize(objects, num_partitions)
            .map(|obj| obj.to_row());
        self.dataframe_from_rdd(std::any::type_name::<T>(), schema, rdd)
    }

    /// View an RDD of records as a DataFrame (the `rdd.toDF` of §3.5).
    pub fn rdd_to_dataframe<T: Record>(&self, rdd: &RddRef<T>) -> Result<DataFrame> {
        let schema = Arc::new(T::schema());
        self.dataframe_from_rdd(std::any::type_name::<T>(), schema, rdd.map(|o| o.to_row()))
    }

    /// Read newline-delimited JSON with schema inference (§5.1).
    pub fn read_json_lines(
        &self,
        name: &str,
        lines: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> Result<DataFrame> {
        let rel = JsonRelation::from_lines(name, lines, 2, None)?;
        self.dataframe(scan_plan(Arc::new(rel)))
    }

    /// Start a builder-style read:
    /// `ctx.read().format("csv").option("header", "true").load(path)`.
    pub fn read(&self) -> DataFrameReader {
        DataFrameReader::new(self.clone())
    }

    /// Read a JSON file (shorthand for `read().format("json")`).
    pub fn read_json(&self, path: &str) -> Result<DataFrame> {
        self.read().format("json").load(path)
    }

    /// Read a CSV file (shorthand for `read().format("csv")` with the
    /// options spelled out).
    pub fn read_csv(&self, path: &str, options: &CsvOptions) -> Result<DataFrame> {
        let mut reader = self
            .read()
            .format("csv")
            .option("delimiter", options.delimiter)
            .option("header", options.header)
            .option("partitions", options.num_partitions);
        if let Some(schema) = &options.schema {
            reader = reader.schema(schema);
        }
        reader.load(path)
    }

    /// Read a colfile (Parquet stand-in; the default `read()` format).
    pub fn read_colfile(&self, path: &str) -> Result<DataFrame> {
        self.read().load(path)
    }

    /// Open a relation through the provider registry (`USING` names).
    pub fn read_source(&self, provider: &str, options: &Options) -> Result<DataFrame> {
        let rel = self.inner.sources.create_relation(provider, options)?;
        self.dataframe(scan_plan(rel))
    }

    // ---- extension points (§4.4) ----

    /// Register an inline UDF (§3.7).
    pub fn register_udf(
        &self,
        name: &str,
        return_type: DataType,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.inner.functions.register(UdfImpl {
            name: Arc::from(name),
            return_type,
            func: Box::new(f),
        });
    }

    /// Register a user-defined type (§4.4.2).
    pub fn register_udt(&self, name: &str, sql_type: DataType) {
        self.inner.udts.register(name, sql_type);
    }

    /// Register a physical planning strategy ahead of the defaults (what
    /// the §7.2 interval join uses).
    pub fn add_strategy(&self, strategy: Arc<dyn Strategy>) {
        self.inner.strategies.write().push(strategy);
    }

    /// Append a batch of logical optimizer rules (§4.4: "developers can
    /// add batches of rules … at runtime").
    pub fn add_optimizer_batch(&self, batch: Batch<LogicalPlan>) {
        self.inner.optimizer.lock().add_batch(batch);
    }

    // ---- caching (§3.6) ----

    /// Materialize a DataFrame into the in-memory columnar cache.
    pub fn cache_dataframe(&self, df: &DataFrame) -> Result<DataFrame> {
        let rel = self.cached_relation_for(df, "dataframe")?;
        self.dataframe(scan_plan(rel))
    }

    fn cached_relation_for(&self, df: &DataFrame, name: &str) -> Result<Arc<dyn BaseRelation>> {
        let conf = self.conf();
        let rdd = df.to_rdd()?;
        let num_partitions = rdd.num_partitions();
        // Re-runnable: recovery invokes it again from lineage when cached
        // blocks are lost to an executor failure.
        let materializer = Box::new(move || {
            rdd.run_job(|_, it| it.collect::<Vec<Row>>())
                .map_err(|e| CatalystError::Internal(format!("cache materialization: {e}")))
        });
        Ok(Arc::new(CachedRelation::new(
            name,
            df.schema(),
            num_partitions,
            conf.columnar_cache_enabled,
            conf.cache_batch_size,
            self.inner.sc.clone(),
            materializer,
        )))
    }

    /// `CACHE TABLE name`: replace the catalog entry with its cached form.
    pub fn cache_table(&self, name: &str) -> Result<()> {
        let df = self.table(name)?;
        let plan = df.logical_plan().clone();
        let rel = self.cached_relation_for(&df, name)?;
        self.inner
            .uncached_plans
            .lock()
            .insert(name.to_ascii_lowercase(), plan);
        self.register_relation(name, rel);
        Ok(())
    }

    /// `UNCACHE TABLE name`: restore the original plan.
    pub fn uncache_table(&self, name: &str) -> Result<()> {
        match self
            .inner
            .uncached_plans
            .lock()
            .remove(&name.to_ascii_lowercase())
        {
            Some(plan) => {
                self.register_plan(name, plan);
                Ok(())
            }
            None => Err(CatalystError::analysis(format!(
                "table '{name}' is not cached"
            ))),
        }
    }
}

/// What [`SQLContext::plan_query_monitored`] produces: the optimized and
/// physical plans plus everything the execution monitor observed.
pub struct PlannedQuery {
    /// The optimized logical plan.
    pub optimized: LogicalPlan,
    /// The physical plan.
    pub physical: PhysicalPlan,
    /// Per-rule health: applications, fires, effectiveness, idempotence
    /// probes, and batches that hit their iteration cap while still
    /// changing the plan.
    pub rule_health: RuleHealthReport,
    /// Plan-change log: one event per fired rule (with before/after diffs
    /// when validation is on) plus non-convergence markers.
    pub trace: Vec<TraceEvent>,
}

/// Build a logical scan with fresh attribute ids for a relation.
pub fn scan_plan(relation: Arc<dyn BaseRelation>) -> LogicalPlan {
    let output: Vec<ColumnRef> = relation
        .schema()
        .fields()
        .iter()
        .map(|f| ColumnRef::new(f.name.clone(), f.dtype.clone(), f.nullable))
        .collect();
    LogicalPlan::Scan {
        relation,
        output,
        filters: vec![],
    }
}

fn fresh_output(schema: &SchemaRef) -> Vec<ColumnRef> {
    schema
        .fields()
        .iter()
        .map(|f| ColumnRef::new(f.name.clone(), f.dtype.clone(), f.nullable))
        .collect()
}
