//! The DataFrame API (§3): a distributed collection of rows with a known
//! schema, manipulated through relational operators that build a logical
//! plan lazily — while analysis runs *eagerly* so errors surface at the
//! line of code that caused them (§3.4).

use crate::context::SQLContext;
use catalyst::error::Result;
use catalyst::expr::builders;
use catalyst::expr::{Expr, SortOrder};
use catalyst::plan::{JoinType, LogicalPlan};
use catalyst::row::Row;
use catalyst::schema::SchemaRef;
use engine::RddRef;

/// A lazily evaluated relational dataset.
///
/// Every transformation returns a new DataFrame whose plan has been
/// analyzed (names resolved, types checked); nothing executes until an
/// output operation such as [`DataFrame::collect`] or
/// [`DataFrame::count`] is called.
#[derive(Clone)]
pub struct DataFrame {
    ctx: SQLContext,
    plan: LogicalPlan,
}

impl std::fmt::Debug for DataFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DataFrame[{}]", self.plan.node_description())
    }
}

impl DataFrame {
    pub(crate) fn new(ctx: SQLContext, plan: LogicalPlan) -> DataFrame {
        DataFrame { ctx, plan }
    }

    /// The session this DataFrame belongs to.
    pub fn context(&self) -> &SQLContext {
        &self.ctx
    }

    /// The analyzed logical plan.
    pub fn logical_plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// Schema of the result.
    pub fn schema(&self) -> SchemaRef {
        self.plan.schema()
    }

    /// Output column names.
    pub fn columns(&self) -> Vec<String> {
        self.plan
            .output()
            .iter()
            .map(|c| c.name.to_string())
            .collect()
    }

    fn derive(&self, plan: LogicalPlan) -> Result<DataFrame> {
        // Eager analysis (§3.4).
        let analyzed = self.ctx.analyze(plan)?;
        Ok(DataFrame {
            ctx: self.ctx.clone(),
            plan: analyzed,
        })
    }

    // ---- relational transformations (§3.3) ----

    /// Projection: `select(vec![col("name"), col("age").add(lit(1))])`.
    pub fn select(&self, exprs: Vec<Expr>) -> Result<DataFrame> {
        self.derive(self.plan.clone().project(exprs))
    }

    /// Projection by column names.
    pub fn select_cols(&self, names: &[&str]) -> Result<DataFrame> {
        self.select(names.iter().map(|n| builders::col(*n)).collect())
    }

    /// Filter rows (`where` in the DSL).
    pub fn filter(&self, predicate: Expr) -> Result<DataFrame> {
        self.derive(self.plan.clone().filter(predicate))
    }

    /// Alias of [`DataFrame::filter`], matching the paper's `where`.
    pub fn where_(&self, predicate: Expr) -> Result<DataFrame> {
        self.filter(predicate)
    }

    /// Join with another DataFrame.
    pub fn join(
        &self,
        other: &DataFrame,
        join_type: JoinType,
        condition: Option<Expr>,
    ) -> Result<DataFrame> {
        self.derive(
            self.plan
                .clone()
                .join(other.plan.clone(), join_type, condition),
        )
    }

    /// Inner equi-join convenience.
    pub fn join_on(&self, other: &DataFrame, condition: Expr) -> Result<DataFrame> {
        self.join(other, JoinType::Inner, Some(condition))
    }

    /// Start a grouped aggregation: `df.group_by(vec![col("a")])?.avg("b")`.
    pub fn group_by(&self, groupings: Vec<Expr>) -> GroupedData {
        GroupedData {
            df: self.clone(),
            groupings,
        }
    }

    /// Grouping by column names.
    pub fn group_by_cols(&self, names: &[&str]) -> GroupedData {
        self.group_by(names.iter().map(|n| builders::col(*n)).collect())
    }

    /// Global aggregation (no grouping): `df.agg(vec![count_star()])`.
    pub fn agg(&self, aggregates: Vec<Expr>) -> Result<DataFrame> {
        self.derive(self.plan.clone().aggregate(vec![], aggregates))
    }

    /// Sort by the given orders.
    pub fn order_by(&self, orders: Vec<SortOrder>) -> Result<DataFrame> {
        self.derive(self.plan.clone().sort(orders))
    }

    /// Keep at most `n` rows.
    pub fn limit(&self, n: usize) -> Result<DataFrame> {
        self.derive(self.plan.clone().limit(n))
    }

    /// Bag union (schemas must be compatible).
    pub fn union(&self, other: &DataFrame) -> Result<DataFrame> {
        self.derive(self.plan.clone().union(vec![other.plan.clone()]))
    }

    /// Duplicate elimination.
    pub fn distinct(&self) -> Result<DataFrame> {
        self.derive(self.plan.clone().distinct())
    }

    /// Bernoulli sample.
    pub fn sample(&self, fraction: f64, seed: u64) -> Result<DataFrame> {
        self.derive(self.plan.clone().sample(fraction, seed))
    }

    /// Qualify this DataFrame's columns with `alias` (for joins).
    pub fn alias(&self, alias: &str) -> Result<DataFrame> {
        self.derive(self.plan.clone().subquery_alias(alias))
    }

    /// Append a computed column.
    pub fn with_column(&self, name: &str, expr: Expr) -> Result<DataFrame> {
        let mut exprs: Vec<Expr> = self.plan.output().into_iter().map(Expr::Column).collect();
        exprs.push(expr.alias(name));
        self.select(exprs)
    }

    /// Register as a temp table so SQL can see it; the registered plan is
    /// an unmaterialized view — optimizations happen across SQL and the
    /// original DataFrame expressions (§3.3).
    pub fn register_temp_table(&self, name: &str) {
        self.ctx.register_plan(name, self.plan.clone());
    }

    /// Materialize into the in-memory columnar cache (§3.6) and return a
    /// DataFrame reading from it.
    pub fn cache(&self) -> Result<DataFrame> {
        self.ctx.cache_dataframe(self)
    }

    // ---- output operations (trigger execution) ----

    /// Execute and gather all rows.
    pub fn collect(&self) -> Result<Vec<Row>> {
        self.to_rdd()?.try_collect().map_err(engine_err)
    }

    /// Execute and count rows.
    pub fn count(&self) -> Result<u64> {
        let rdd = self.to_rdd()?;
        Ok(rdd
            .run_job(|_, it| it.count() as u64)
            .map_err(engine_err)?
            .into_iter()
            .sum())
    }

    /// First `n` rows.
    pub fn take(&self, n: usize) -> Result<Vec<Row>> {
        Ok(self.to_rdd()?.take(n))
    }

    /// First row, if any.
    pub fn first(&self) -> Result<Option<Row>> {
        Ok(self.take(1)?.into_iter().next())
    }

    /// Compile to an engine RDD of rows — the bridge back to procedural
    /// Spark code (§3.1: "each DataFrame can also be viewed as an RDD of
    /// Row objects").
    pub fn to_rdd(&self) -> Result<RddRef<Row>> {
        self.ctx.execute_plan(&self.plan)
    }

    /// Render up to `n` rows as an aligned text table.
    pub fn show(&self, n: usize) -> Result<String> {
        let rows = self.take(n)?;
        let schema = self.schema();
        let headers: Vec<String> = schema.fields().iter().map(|f| f.name.to_string()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in rendered {
            out.push('|');
            for (v, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {v:w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        Ok(out)
    }

    /// EXPLAIN output: analyzed, optimized, and physical plans.
    pub fn explain(&self) -> Result<String> {
        let (optimized, physical) = self.ctx.plan_query(&self.plan)?;
        Ok(format!(
            "== Analyzed Logical Plan ==\n{}\n== Optimized Logical Plan ==\n{}\n\
             == Physical Plan ==\n{}",
            self.plan, optimized, physical
        ))
    }

    /// Static lint diagnostics for this query (the analyzed plan, before
    /// optimization — so findings the optimizer would silently rewrite
    /// away, like an always-false predicate, still surface). Filtered to
    /// the session's `spark.sql.lint.level`; `off` reports nothing.
    pub fn lint(&self) -> Vec<catalyst::analysis::lint::LintDiagnostic> {
        let level = self.ctx.conf().lint_level;
        catalyst::analysis::lint::lint_plan_at_level(&self.plan, &level)
    }

    /// [`DataFrame::lint`] rendered one diagnostic per line, or an empty
    /// string when the plan is clean.
    pub fn lint_report(&self) -> String {
        self.lint()
            .iter()
            .map(|d| d.render() + "\n")
            .collect::<String>()
    }

    /// An observability handle over this query: analyzed/optimized/
    /// physical plans plus a per-operator metrics registry that fills in
    /// when the handle executes.
    pub fn query_execution(&self) -> Result<crate::query_execution::QueryExecution> {
        crate::query_execution::QueryExecution::new(self.ctx.clone(), self.plan.clone())
    }

    /// Run the query and render the physical plan annotated with actual
    /// row counts, per-operator times, and shuffle volume — the paper's
    /// Figure 8/9 measurements attached to individual operators.
    pub fn explain_analyze(&self) -> Result<String> {
        self.query_execution()?.explain_analyze()
    }

    /// Per-rule optimizer health for this query, rendered as a table:
    /// applications vs. fires (effectiveness), idempotence probes,
    /// validator-rejected rewrites, and non-converged batches. Pairs with
    /// [`DataFrame::explain_analyze`] — one shows what execution did, the
    /// other what optimization did.
    pub fn rule_health_report(&self) -> Result<String> {
        Ok(self.query_execution()?.rule_health_report())
    }

    /// Names of the optimizer rules that fired for this plan, in order.
    pub fn optimizer_trace(&self) -> Vec<String> {
        self.ctx
            .optimizer_trace(&self.plan)
            .into_iter()
            .map(|e| e.rule)
            .collect()
    }

    /// Start a builder-style write:
    /// `df.write().format("csv").mode(SaveMode::Overwrite).save(path)`.
    pub fn write(&self) -> crate::io::DataFrameWriter {
        crate::io::DataFrameWriter::new(self.clone())
    }
}

fn engine_err(e: engine::EngineError) -> catalyst::CatalystError {
    catalyst::CatalystError::Internal(format!("execution failed: {e}"))
}

/// A DataFrame with pending grouping keys (result of
/// [`DataFrame::group_by`]).
pub struct GroupedData {
    df: DataFrame,
    groupings: Vec<Expr>,
}

impl GroupedData {
    /// Aggregate: output columns are the grouping expressions followed by
    /// `aggregates`.
    pub fn agg(&self, aggregates: Vec<Expr>) -> Result<DataFrame> {
        let mut outputs = self.groupings.clone();
        outputs.extend(aggregates);
        self.df.derive(
            self.df
                .plan
                .clone()
                .aggregate(self.groupings.clone(), outputs),
        )
    }

    /// `df.group_by(…).avg("b")` — the Figure 9 one-liner.
    pub fn avg(&self, column: &str) -> Result<DataFrame> {
        self.agg(vec![
            builders::avg(builders::col(column)).alias(format!("avg({column})"))
        ])
    }

    /// Sum of a column per group.
    pub fn sum(&self, column: &str) -> Result<DataFrame> {
        self.agg(vec![
            builders::sum(builders::col(column)).alias(format!("sum({column})"))
        ])
    }

    /// Row count per group.
    pub fn count(&self) -> Result<DataFrame> {
        self.agg(vec![builders::count_star().alias("count")])
    }

    /// Min of a column per group.
    pub fn min(&self, column: &str) -> Result<DataFrame> {
        self.agg(vec![
            builders::min(builders::col(column)).alias(format!("min({column})"))
        ])
    }

    /// Max of a column per group.
    pub fn max(&self, column: &str) -> Result<DataFrame> {
        self.agg(vec![
            builders::max(builders::col(column)).alias(format!("max({column})"))
        ])
    }
}
