//! Programmatic query observability: [`QueryExecution`] exposes the
//! analyzed, optimized, and physical plans of one query together with a
//! live per-operator metrics registry, and every instrumented run appends
//! a [`QueryLogEntry`] to the session's query log.
//!
//! This is the machinery behind `DataFrame::explain_analyze()`: the query
//! runs with a [`PlanMetrics`] registry threaded through lowering, then
//! the physical tree is rendered with actual row counts and times — the
//! measurement methodology of the paper's Figures 8 and 9, but attached
//! to individual operators instead of whole queries.

use crate::context::SQLContext;
use crate::execution::{execute, AdaptiveLog, ExecContext};
use catalyst::adaptive::{self, AdaptivePlanChange};
use catalyst::error::Result;
use catalyst::physical::metrics::{format_ns, render_annotated, PlanMetrics};
use catalyst::physical::PhysicalPlan;
use catalyst::plan::LogicalPlan;
use catalyst::row::Row;
use catalyst::rules::RuleHealthReport;
use catalyst::CatalystError;
use engine::{CacheBudgetStats, CancelToken, MemoryPool, MemoryStats, RddRef};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One query's compilation pipeline plus its execution metrics.
///
/// Obtained from `DataFrame::query_execution()`. Holding the handle, you
/// can inspect every plan stage before running anything, execute with
/// instrumentation via [`QueryExecution::collect`], and read per-operator
/// actuals from [`QueryExecution::metrics`] afterwards. Metrics are
/// cumulative across repeated executions of the same handle.
pub struct QueryExecution {
    ctx: SQLContext,
    analyzed: LogicalPlan,
    optimized: LogicalPlan,
    physical: PhysicalPlan,
    metrics: Arc<PlanMetrics>,
    rule_health: RuleHealthReport,
    adaptive_log: AdaptiveLog,
    /// Memory pool of the most recent run (set by [`QueryExecution::to_rdd`]).
    mem_pool: Mutex<Option<Arc<MemoryPool>>>,
    /// Session-scoped id assigned when the handle was created.
    query_id: u64,
    /// Cooperative cancellation token (see [`QueryExecution::set_cancel`]).
    cancel: Mutex<Option<CancelToken>>,
}

impl QueryExecution {
    pub(crate) fn new(ctx: SQLContext, analyzed: LogicalPlan) -> Result<QueryExecution> {
        let planned = ctx.plan_query_monitored(&analyzed)?;
        let metrics = PlanMetrics::for_plan(&planned.physical);
        // Stamp cost-model row estimates up front so EXPLAIN ANALYZE can
        // grade estimated vs. actual rows per operator after the run.
        catalyst::physical::annotate_row_estimates(&planned.physical, &metrics);
        let query_id = ctx.next_query_id();
        Ok(QueryExecution {
            ctx,
            analyzed,
            optimized: planned.optimized,
            physical: planned.physical,
            metrics,
            rule_health: planned.rule_health,
            adaptive_log: AdaptiveLog::default(),
            mem_pool: Mutex::new(None),
            query_id,
            cancel: Mutex::new(None),
        })
    }

    /// The session-scoped id of this query (monotonic per `SQLContext`).
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// Attach a cancellation token. Subsequent executions of this handle
    /// check it cooperatively: at every partition boundary, every 256
    /// rows (every batch on the vectorized path), and in the scheduler's
    /// wait loop. A fired token unwinds in-flight tasks, releasing
    /// memory reservations and deleting spill files, and surfaces as an
    /// `execution failed: job cancelled` error from
    /// [`QueryExecution::collect`].
    pub fn set_cancel(&self, token: CancelToken) {
        *self.cancel.lock().unwrap() = Some(token);
    }

    /// Per-rule health for this query's optimizer run: how often each
    /// rule was applied vs. actually fired, rules that change their own
    /// output when re-applied (idempotence probes), rewrites the plan
    /// validator rejected, and batches that hit `max_iterations` without
    /// converging.
    pub fn rule_health(&self) -> &RuleHealthReport {
        &self.rule_health
    }

    /// The rule-health report rendered as an aligned table, suitable for
    /// printing next to [`QueryExecution::explain_analyze`] output.
    pub fn rule_health_report(&self) -> String {
        self.rule_health.render()
    }

    /// The analyzed logical plan (names resolved, types checked).
    pub fn analyzed(&self) -> &LogicalPlan {
        &self.analyzed
    }

    /// The optimized logical plan.
    pub fn optimized(&self) -> &LogicalPlan {
        &self.optimized
    }

    /// The physical plan the metrics registry is shaped after.
    pub fn physical(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// Per-operator metrics, indexed by pre-order node id. Zero until an
    /// output operation on this handle runs.
    pub fn metrics(&self) -> Arc<PlanMetrics> {
        self.metrics.clone()
    }

    /// Lower the physical plan to an engine RDD with instrumentation
    /// attached: every operator meters rows and time into
    /// [`QueryExecution::metrics`] when the RDD executes.
    pub fn to_rdd(&self) -> Result<RddRef<Row>> {
        let mut ctx = ExecContext::instrumented(
            self.ctx.spark_context().clone(),
            self.ctx.conf(),
            self.metrics.clone(),
        );
        // Adaptive decisions are per-run: lowering materializes stages
        // eagerly, so the log fills in during `execute`.
        self.adaptive_log.clear();
        ctx.adaptive = self.adaptive_log.clone();
        ctx.cancel = self.cancel.lock().unwrap().clone();
        *self.mem_pool.lock().unwrap() = Some(ctx.mem.clone());
        execute(&self.physical, &ctx)
    }

    /// Memory-pool counters of the most recent run: `Some` only when the
    /// run executed under a bounded budget
    /// (`spark.sql.memory.budgetBytes`), `None` for unbounded runs or
    /// before any run.
    pub fn memory_stats(&self) -> Option<MemoryStats> {
        self.mem_pool
            .lock()
            .unwrap()
            .as_ref()
            .filter(|p| p.is_bounded())
            .map(|p| p.stats())
    }

    /// Adaptive plan changes recorded by the most recent execution of
    /// this handle (empty when adaptive execution is off, nothing fired,
    /// or the query has not run yet).
    pub fn adaptive_changes(&self) -> Vec<AdaptivePlanChange> {
        self.adaptive_log.snapshot()
    }

    /// The plan that actually executed: the initial physical plan with
    /// the most recent run's adaptive rewrites applied.
    pub fn final_physical(&self) -> PhysicalPlan {
        adaptive::final_plan(&self.physical, &self.adaptive_changes())
    }

    /// Execute, gather all rows, and record the run: operator metrics
    /// fill in, engine shuffle volume is attributed to the operators
    /// that induced each exchange, fault-recovery activity is captured
    /// as engine-counter deltas, and a [`QueryLogEntry`] is appended to
    /// the session query log.
    pub fn collect(&self) -> Result<Vec<Row>> {
        let before = self.ctx.spark_context().metrics().snapshot();
        let cache_before = self.ctx.spark_context().cache_manager().budget_stats();
        // Install the cancel token on the driver thread so the engine
        // scheduler's wait loop observes it between task completions.
        let _cancel_guard = self
            .cancel
            .lock()
            .unwrap()
            .clone()
            .map(engine::cancel::install);
        let start = Instant::now();
        let rows = self
            .to_rdd()?
            .try_collect()
            .map_err(|e| CatalystError::Internal(format!("execution failed: {e}")))?;
        let wall_ns = start.elapsed().as_nanos() as u64;
        let recovery =
            RecoveryEvents::delta(&before, &self.ctx.spark_context().metrics().snapshot());
        self.attribute_shuffle_stats();
        let memory = self.memory_stats();
        let cache = CacheEvents::delta(
            &cache_before,
            &self.ctx.spark_context().cache_manager().budget_stats(),
        );
        self.ctx
            .log_query(self.log_entry(wall_ns, rows.len() as u64, recovery, memory, cache));
        Ok(rows)
    }

    /// Run the query and render the physical tree annotated with actual
    /// rows and times per operator — `EXPLAIN ANALYZE`.
    pub fn explain_analyze(&self) -> Result<String> {
        let rows = self.collect()?;
        let changes = self.adaptive_changes();
        let mut out = String::new();
        out.push_str(&format!(
            "== Query ==\nsession: {}, query id: {}\n",
            self.ctx.session_id(),
            self.query_id,
        ));
        if changes.is_empty() {
            out.push_str("== Physical Plan (executed) ==\n");
            out.push_str(&render_annotated(&self.physical, &self.metrics));
        } else {
            // Adaptive execution re-planned mid-run: show what the static
            // planner chose, each runtime decision, and what actually ran.
            // Demotions keep the subtree shape, so the metrics registry's
            // pre-order ids line up with the final plan.
            out.push_str("== Initial Physical Plan ==\n");
            out.push_str(&self.physical.to_string());
            out.push_str("== Adaptive Plan Changes ==\n");
            for c in &changes {
                out.push_str(&format!("{c}\n"));
            }
            out.push_str("== Final Physical Plan (executed) ==\n");
            out.push_str(&render_annotated(
                &adaptive::final_plan(&self.physical, &changes),
                &self.metrics,
            ));
        }
        let entry = self.ctx.query_log().pop();
        let (wall, recovery, memory, cache) = entry
            .map(|e| (e.wall_ns, e.recovery, e.memory, e.cache))
            .unwrap_or((0, RecoveryEvents::default(), None, CacheEvents::default()));
        if recovery.any() {
            out.push_str("== Fault Recovery ==\n");
            out.push_str(&recovery.render());
        }
        if let Some(m) = memory {
            out.push_str("== Memory ==\n");
            out.push_str(&render_memory(&m));
        }
        if cache.any() {
            out.push_str("== Cache ==\n");
            out.push_str(&cache.render());
        }
        let lint = catalyst::analysis::lint::lint_plan_at_level(
            &self.analyzed,
            &self.ctx.conf().lint_level,
        );
        if !lint.is_empty() {
            out.push_str("== Lint ==\n");
            for d in &lint {
                out.push_str(&d.render());
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "== Totals ==\noutput rows: {}, wall time: {}\n",
            rows.len(),
            format_ns(wall),
        ));
        Ok(out)
    }

    /// Copy engine-side per-shuffle I/O counters onto the operators that
    /// allocated each shuffle during lowering, as `shuffle_*` extras.
    fn attribute_shuffle_stats(&self) {
        let em = self.ctx.spark_context().metrics();
        for id in 0..self.metrics.len() {
            let node = self.metrics.node(id);
            let sids = node.shuffle_ids();
            if sids.is_empty() {
                continue;
            }
            let (mut written, mut bytes, mut read) = (0u64, 0u64, 0u64);
            for sid in sids {
                let s = em.shuffle_stats(sid);
                written += s.records_written;
                bytes += s.bytes_written;
                read += s.records_read;
            }
            node.set_extra("shuffle_records_written", written);
            node.set_extra("shuffle_bytes_written", bytes);
            node.set_extra("shuffle_records_read", read);
        }
    }

    fn log_entry(
        &self,
        wall_ns: u64,
        output_rows: u64,
        recovery: RecoveryEvents,
        memory: Option<MemoryStats>,
        cache: CacheEvents,
    ) -> QueryLogEntry {
        let mut names = Vec::new();
        preorder_descriptions(&self.physical, &mut names);
        let operators = names
            .into_iter()
            .enumerate()
            .map(|(id, operator)| {
                let m = self.metrics.node(id);
                OperatorLogEntry {
                    id,
                    operator,
                    rows: m.output_rows(),
                    elapsed_ns: m.elapsed_ns(),
                    extras: m.extras().into_iter().collect(),
                }
            })
            .collect();
        QueryLogEntry {
            session_id: self.ctx.session_id().to_string(),
            query_id: self.query_id,
            query: self.optimized.node_description(),
            wall_ns,
            output_rows,
            operators,
            recovery,
            memory,
            cache,
        }
    }
}

/// Render a bounded run's memory counters for `explain_analyze`.
fn render_memory(m: &MemoryStats) -> String {
    format!(
        "budget: {} B, peak reserved: {} B\n\
         spilled buffers: {}, spill bytes: {}\n\
         spill files created/deleted: {}/{}\n",
        m.budget,
        m.peak,
        m.spill_count,
        m.spill_bytes,
        m.spill_files_created,
        m.spill_files_deleted,
    )
}

/// Fault-recovery activity observed during one instrumented run: deltas
/// of the engine's recovery counters between the start and end of
/// [`QueryExecution::collect`]. All zero for a fault-free run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryEvents {
    /// Tasks retried in place after a (possibly injected) failure.
    pub task_retries: u64,
    /// Shuffle fetches that found their map output missing.
    pub fetch_failures: u64,
    /// Parent map stages resubmitted to regenerate lost shuffle output.
    pub stage_resubmissions: u64,
    /// Map tasks recomputed for previously complete shuffles.
    pub map_tasks_recomputed: u64,
    /// Executors lost (all their shuffle and cache blocks dropped).
    pub executors_lost: u64,
    /// Cached partitions rebuilt from lineage after their block was lost.
    pub cache_recomputes: u64,
}

impl RecoveryEvents {
    fn delta(
        before: &engine::metrics::MetricsSnapshot,
        after: &engine::metrics::MetricsSnapshot,
    ) -> RecoveryEvents {
        RecoveryEvents {
            task_retries: after.task_failures.saturating_sub(before.task_failures),
            fetch_failures: after.fetch_failures.saturating_sub(before.fetch_failures),
            stage_resubmissions: after
                .stage_resubmissions
                .saturating_sub(before.stage_resubmissions),
            map_tasks_recomputed: after
                .map_tasks_recomputed
                .saturating_sub(before.map_tasks_recomputed),
            executors_lost: after.executors_lost.saturating_sub(before.executors_lost),
            cache_recomputes: after
                .cache_recomputes
                .saturating_sub(before.cache_recomputes),
        }
    }

    /// True if any recovery machinery fired during the run.
    pub fn any(&self) -> bool {
        *self != RecoveryEvents::default()
    }

    /// One line per nonzero counter, for `explain_analyze` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in [
            ("task retries", self.task_retries),
            ("fetch failures", self.fetch_failures),
            ("stage resubmissions", self.stage_resubmissions),
            ("map tasks recomputed", self.map_tasks_recomputed),
            ("executors lost", self.executors_lost),
            ("cache recomputes", self.cache_recomputes),
        ] {
            if v > 0 {
                out.push_str(&format!("{name}: {v}\n"));
            }
        }
        out
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"task_retries\":{},\"fetch_failures\":{},\"stage_resubmissions\":{},\"map_tasks_recomputed\":{},\"executors_lost\":{},\"cache_recomputes\":{}}}",
            self.task_retries,
            self.fetch_failures,
            self.stage_resubmissions,
            self.map_tasks_recomputed,
            self.executors_lost,
            self.cache_recomputes,
        )
    }
}

/// Shared-cache eviction activity observed during one instrumented run:
/// deltas of the budgeted cache's eviction counters between the start
/// and end of [`QueryExecution::collect`]. All zero when the cache runs
/// unbudgeted or nothing was evicted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheEvents {
    /// Cached blocks evicted to stay under the cache budget.
    pub evictions: u64,
    /// Total bytes of those evicted blocks.
    pub evicted_bytes: u64,
}

impl CacheEvents {
    fn delta(before: &CacheBudgetStats, after: &CacheBudgetStats) -> CacheEvents {
        CacheEvents {
            evictions: after.evictions.saturating_sub(before.evictions),
            evicted_bytes: after.evicted_bytes.saturating_sub(before.evicted_bytes),
        }
    }

    /// True if any block was evicted during the run.
    pub fn any(&self) -> bool {
        *self != CacheEvents::default()
    }

    /// One-line summary for `explain_analyze` output.
    pub fn render(&self) -> String {
        format!(
            "evictions: {}, evicted bytes: {}\n",
            self.evictions, self.evicted_bytes
        )
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"evictions\":{},\"evicted_bytes\":{}}}",
            self.evictions, self.evicted_bytes
        )
    }
}

fn preorder_descriptions(plan: &PhysicalPlan, out: &mut Vec<String>) {
    out.push(plan.node_description());
    for child in plan.children() {
        preorder_descriptions(&child, out);
    }
}

/// One instrumented query run, as recorded in the session query log.
#[derive(Debug, Clone)]
pub struct QueryLogEntry {
    /// Session the query ran in (`"local"` for direct library use; the
    /// SQL service stamps its wire session id).
    pub session_id: String,
    /// Session-scoped query id (monotonic per root `SQLContext`).
    pub query_id: u64,
    /// Root description of the optimized logical plan.
    pub query: String,
    /// End-to-end wall time of the run (driver side).
    pub wall_ns: u64,
    /// Rows the query returned.
    pub output_rows: u64,
    /// Per-operator actuals, in pre-order over the physical plan.
    pub operators: Vec<OperatorLogEntry>,
    /// Fault-recovery counters for this run (all zero when fault-free).
    pub recovery: RecoveryEvents,
    /// Memory-pool counters when the run executed under a bounded budget
    /// (`None` for unbounded runs).
    pub memory: Option<MemoryStats>,
    /// Shared-cache evictions this run triggered (all zero when the
    /// cache is unbudgeted).
    pub cache: CacheEvents,
}

/// Actuals of one physical operator within a [`QueryLogEntry`].
#[derive(Debug, Clone)]
pub struct OperatorLogEntry {
    /// Pre-order node id in the physical plan.
    pub id: usize,
    /// Operator description, e.g. `HashAggregate [..]`.
    pub operator: String,
    /// Rows the operator produced.
    pub rows: u64,
    /// Time spent producing them, summed across partitions.
    pub elapsed_ns: u64,
    /// Named side metrics (build sizes, shuffle volume, …).
    pub extras: Vec<(String, u64)>,
}

impl QueryLogEntry {
    /// Render this entry as a JSON object (no external dependencies).
    pub fn to_json(&self) -> String {
        let ops: Vec<String> = self
            .operators
            .iter()
            .map(|op| {
                let extras: Vec<String> = op
                    .extras
                    .iter()
                    .map(|(k, v)| format!("{}:{}", json_string(k), v))
                    .collect();
                format!(
                    "{{\"id\":{},\"operator\":{},\"rows\":{},\"elapsed_ns\":{},\"extras\":{{{}}}}}",
                    op.id,
                    json_string(&op.operator),
                    op.rows,
                    op.elapsed_ns,
                    extras.join(",")
                )
            })
            .collect();
        let memory = match &self.memory {
            None => "null".to_string(),
            Some(m) => format!(
                "{{\"budget\":{},\"peak\":{},\"spill_count\":{},\"spill_bytes\":{},\"spill_files_created\":{},\"spill_files_deleted\":{}}}",
                m.budget, m.peak, m.spill_count, m.spill_bytes, m.spill_files_created, m.spill_files_deleted,
            ),
        };
        format!(
            "{{\"session_id\":{},\"query_id\":{},\"query\":{},\"wall_ns\":{},\"output_rows\":{},\"recovery\":{},\"memory\":{},\"cache\":{},\"operators\":[{}]}}",
            json_string(&self.session_id),
            self.query_id,
            json_string(&self.query),
            self.wall_ns,
            self.output_rows,
            self.recovery.to_json(),
            memory,
            self.cache.to_json(),
            ops.join(",")
        )
    }
}

/// Escape `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    #[test]
    fn log_entry_renders_json() {
        let entry = QueryLogEntry {
            session_id: "local".into(),
            query_id: 7,
            query: "Project [a]".into(),
            wall_ns: 1200,
            output_rows: 3,
            operators: vec![OperatorLogEntry {
                id: 0,
                operator: "Project [a]".into(),
                rows: 3,
                elapsed_ns: 400,
                extras: vec![("shuffle_bytes_written".into(), 64)],
            }],
            recovery: RecoveryEvents {
                fetch_failures: 2,
                ..RecoveryEvents::default()
            },
            memory: None,
            cache: CacheEvents::default(),
        };
        let json = entry.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"session_id\":\"local\""), "{json}");
        assert!(json.contains("\"query_id\":7"), "{json}");
        assert!(json.contains("\"query\":\"Project [a]\""), "{json}");
        assert!(
            json.contains("\"cache\":{\"evictions\":0,\"evicted_bytes\":0}"),
            "{json}"
        );
        assert!(
            json.contains("\"extras\":{\"shuffle_bytes_written\":64}"),
            "{json}"
        );
        assert!(
            json.contains("\"recovery\":{\"task_retries\":0,\"fetch_failures\":2"),
            "{json}"
        );
        assert!(json.contains("\"memory\":null"), "{json}");

        let bounded = QueryLogEntry {
            memory: Some(MemoryStats {
                budget: 4096,
                peak: 4000,
                spill_count: 3,
                spill_bytes: 9000,
                spill_files_created: 3,
                spill_files_deleted: 3,
                ..MemoryStats::default()
            }),
            ..entry
        };
        let json = bounded.to_json();
        assert!(
            json.contains("\"memory\":{\"budget\":4096,\"peak\":4000,\"spill_count\":3"),
            "{json}"
        );
    }

    #[test]
    fn recovery_events_render_only_nonzero_counters() {
        let quiet = RecoveryEvents::default();
        assert!(!quiet.any());
        assert_eq!(quiet.render(), "");
        let busy = RecoveryEvents {
            stage_resubmissions: 1,
            map_tasks_recomputed: 4,
            ..RecoveryEvents::default()
        };
        assert!(busy.any());
        assert_eq!(
            busy.render(),
            "stage resubmissions: 1\nmap tasks recomputed: 4\n"
        );
    }
}
