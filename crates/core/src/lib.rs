//! Spark SQL in Rust: relational data processing integrated with a
//! procedural distributed-collection API, per *Spark SQL: Relational Data
//! Processing in Spark* (SIGMOD 2015).
//!
//! The two contributions of the paper live here and in `catalyst`:
//!
//! * the **DataFrame API** ([`dataframe::DataFrame`], §3) — lazy
//!   relational operators over distributed rows, eagerly analyzed,
//!   freely mixed with procedural RDD code via
//!   [`DataFrame::to_rdd`](dataframe::DataFrame::to_rdd) and
//!   [`SQLContext::rdd_to_dataframe`](context::SQLContext::rdd_to_dataframe);
//!
//! * the **Catalyst optimizer** (the `catalyst` crate, §4) — analysis,
//!   logical optimization, cost-based physical planning and expression
//!   compilation, orchestrated by [`context::SQLContext`].
//!
//! ```
//! use spark_sql::prelude::*;
//!
//! let ctx = SQLContext::new_local(2);
//! record! {
//!     struct User {
//!         name: String => DataType::String,
//!         age: i32 => DataType::Int,
//!     }
//! }
//! let users = ctx.create_dataframe_from(vec![
//!     User { name: "Alice".into(), age: 22 },
//!     User { name: "Bob".into(), age: 19 },
//! ], 2).unwrap();
//! // users.where(users("age") < 21) from the paper:
//! let young = users.where_(col("age").lt(lit(21))).unwrap();
//! assert_eq!(young.count().unwrap(), 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod conf;
pub mod context;
pub mod dataframe;
pub mod execution;
pub mod io;
pub mod query_execution;
pub mod rdd_table;
pub mod record;
pub mod spill;

pub use conf::SqlConf;
pub use context::SQLContext;
pub use dataframe::{DataFrame, GroupedData};
pub use io::{DataFrameReader, DataFrameWriter, SaveMode};
pub use query_execution::{
    CacheEvents, OperatorLogEntry, QueryExecution, QueryLogEntry, RecoveryEvents,
};

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::conf::SqlConf;
    pub use crate::context::SQLContext;
    pub use crate::dataframe::DataFrame;
    pub use crate::io::{DataFrameReader, DataFrameWriter, SaveMode};
    pub use crate::query_execution::QueryExecution;
    pub use crate::record;
    pub use crate::record::Record;
    pub use catalyst::expr::builders::{
        avg, coalesce, col, concat, count, count_distinct, count_star, length, lit, max, min,
        qualified_col, substr, sum, when, year,
    };
    pub use catalyst::expr::Expr;
    pub use catalyst::plan::JoinType;
    pub use catalyst::row::Row;
    pub use catalyst::schema::{Schema, SchemaRef};
    pub use catalyst::types::{DataType, StructField};
    pub use catalyst::value::Value;
}
