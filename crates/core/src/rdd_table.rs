//! The bridge between engine RDDs and Catalyst plans: an
//! [`catalyst::source::ExternalData`] wrapping an `RddRef<Row>`, so
//! relational operators can run over data created by procedural Spark
//! code (§3.5) and DataFrames can be viewed back as RDDs of rows (§3.1).

use catalyst::schema::SchemaRef;
use catalyst::source::ExternalData;
use catalyst::Row;
use engine::RddRef;
use std::any::Any;

/// A logical table backed by an RDD of rows.
pub struct RddTable {
    name: String,
    schema: SchemaRef,
    rdd: RddRef<Row>,
    size_hint: Option<u64>,
}

impl RddTable {
    /// Wrap an RDD with its schema.
    pub fn new(name: impl Into<String>, schema: SchemaRef, rdd: RddRef<Row>) -> Self {
        RddTable {
            name: name.into(),
            schema,
            rdd,
            size_hint: None,
        }
    }

    /// Attach a size estimate (lets the cost model consider broadcasting
    /// this side of a join).
    pub fn with_size_hint(mut self, bytes: u64) -> Self {
        self.size_hint = Some(bytes);
        self
    }

    /// The wrapped RDD.
    pub fn rdd(&self) -> &RddRef<Row> {
        &self.rdd
    }
}

impl ExternalData for RddTable {
    fn name(&self) -> String {
        format!("rdd:{}", self.name)
    }

    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn size_in_bytes(&self) -> Option<u64> {
        self.size_hint
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
