//! Chaos differential tests: randomly generated SQL plans (joins,
//! aggregates, cached tables, adaptive × vectorized on/off) executed
//! under deterministic seeded fault injection must produce results
//! byte-identical to a fault-free run of the same plan.
//!
//! Each iteration builds one query, runs it on a clean context with
//! chaos disabled (the baseline), then re-runs it on a fresh context
//! with a seeded [`engine::ChaosPlan`] injecting task panics, shuffle
//! fetch failures, and executor deaths — plus, for cached-table plans,
//! an explicit executor loss between cache warmup and the main query.
//! Sorted result multisets must match exactly.
//!
//! Meaningfulness floors at the end prove the sweep exercised every
//! fault kind (panic, fetch failure, executor death) and every recovery
//! path (in-place task retry, map-stage resubmission, cached-partition
//! recomputation) instead of vacuously comparing fault-free runs.

use engine::metrics::MetricsSnapshot;
use engine::{ChaosConf, ChaosPlan};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql::prelude::*;
use std::sync::Arc;

const ITERS: u64 = 100;

fn fact_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, true),
        StructField::new("v", DataType::Long, true),
    ]))
}

fn dim_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("dk", DataType::Long, true),
        StructField::new("w", DataType::String, true),
    ]))
}

const STR_POOL: &[&str] = &["eng", "sales", "hr", "", "ops"];

fn arb_fact_rows(rng: &mut StdRng) -> Vec<Row> {
    let n = rng.random_range(0usize..400);
    (0..n)
        .map(|i| {
            let k = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..16))
            };
            Row::new(vec![k, Value::Long(i as i64)])
        })
        .collect()
}

fn arb_dim_rows(rng: &mut StdRng) -> Vec<Row> {
    let m = rng.random_range(1usize..40);
    (0..m)
        .map(|_| {
            let dk = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..16))
            };
            Row::new(vec![
                dk,
                Value::str(STR_POOL[rng.random_range(0..STR_POOL.len())]),
            ])
        })
        .collect()
}

struct GenQuery {
    fact_rows: Vec<Row>,
    dim_rows: Vec<Row>,
    join_type: JoinType,
    aggregate: bool,
    adaptive: bool,
    vectorize: bool,
    /// Route the dim through `CACHE TABLE` (blocks in the engine cache).
    cache_dim: bool,
    /// With `cache_dim`: lose this executor slot between cache warmup
    /// and the main query, dropping some of the cached blocks.
    kill_slot: Option<usize>,
    broadcast_threshold: u64,
}

fn arb_query(rng: &mut StdRng) -> GenQuery {
    let join_type = match rng.random_range(0u32..10) {
        0..=4 => JoinType::Inner,
        5 | 6 => JoinType::Left,
        7 | 8 => JoinType::Right,
        _ => JoinType::Full,
    };
    let cache_dim = rng.random_bool(0.5);
    GenQuery {
        fact_rows: arb_fact_rows(rng),
        dim_rows: arb_dim_rows(rng),
        join_type,
        aggregate: rng.random_bool(0.4),
        adaptive: rng.random_bool(0.5),
        vectorize: rng.random_bool(0.5),
        cache_dim,
        kill_slot: (cache_dim && rng.random_bool(0.6)).then(|| rng.random_range(0usize..2)),
        broadcast_threshold: if rng.random_bool(0.5) {
            64
        } else {
            10 * 1024 * 1024
        },
    }
}

struct Outcome {
    rows: Vec<String>,
    /// Final engine counters for the run's (fresh) context.
    metrics: MetricsSnapshot,
    /// Did the instrumented main query log nonzero recovery activity?
    recovery_logged: bool,
}

/// Execute `q` on a fresh context. `chaos: None` pins chaos off (the
/// baseline stays fault-free even under `ENGINE_CHAOS_SEED`); `Some`
/// installs the seeded plan before anything runs.
fn run(q: &GenQuery, chaos: Option<Arc<ChaosPlan>>) -> Outcome {
    let with_chaos = chaos.is_some();
    let ctx = SQLContext::new_local(2);
    let sc = ctx.spark_context().clone();
    sc.set_chaos(chaos);
    ctx.set_conf(|c| {
        c.adaptive_enabled = q.adaptive;
        c.vectorize_enabled = q.vectorize;
        c.broadcast_threshold = q.broadcast_threshold;
    });
    // Fact over a bare RDD: unknown statistics force shuffled joins, so
    // the fault schedule has map stages to hit.
    let fact_rdd = sc.parallelize(q.fact_rows.clone(), 4);
    let fact = ctx
        .dataframe_from_rdd("fact", fact_schema(), fact_rdd)
        .expect("fact");
    let dim_rdd = sc.parallelize(q.dim_rows.clone(), 2);
    let dim = ctx
        .dataframe_from_rdd("dim", dim_schema(), dim_rdd)
        .expect("dim");
    let dim = if q.cache_dim {
        dim.register_temp_table("dim");
        ctx.cache_table("dim").expect("cache dim");
        // Warm the cache, then (chaos runs only) lose an executor slot:
        // its cached blocks drop and the main query must recompute them.
        ctx.table("dim").expect("dim").collect().expect("warmup");
        if with_chaos {
            if let Some(slot) = q.kill_slot {
                sc.lose_executor(slot);
            }
        }
        ctx.table("dim").expect("dim")
    } else {
        dim
    };
    let mut df = fact
        .join(&dim, q.join_type, Some(col("k").eq(col("dk"))))
        .expect("join");
    if q.aggregate {
        df = df
            .group_by(vec![col("k").rem(lit(4i64)).alias("g")])
            .agg(vec![count_star().alias("n"), sum(col("v")).alias("s")])
            .expect("aggregate");
    }
    let qe = df.query_execution().expect("query_execution");
    let mut rows: Vec<String> = qe
        .collect()
        .expect("collect")
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    rows.sort();
    let recovery_logged = ctx
        .query_log()
        .last()
        .map(|e| e.recovery.any())
        .unwrap_or(false);
    Outcome {
        rows,
        metrics: sc.metrics().snapshot(),
        recovery_logged,
    }
}

#[test]
fn chaotic_runs_match_fault_free_results() {
    let mut nonempty = 0u32;
    let mut faulted_runs = 0u32;
    let mut task_panics = 0u64;
    let mut executor_deaths = 0u64;
    let mut fetch_failures = 0u64;
    let mut task_retries = 0u64;
    let mut stage_resubmissions = 0u64;
    let mut map_tasks_recomputed = 0u64;
    let mut cache_recomputes = 0u64;
    let mut recovery_logged_runs = 0u32;

    for seed in 0..ITERS {
        let mut rng = StdRng::seed_from_u64(0xC4A0 ^ seed.wrapping_mul(0x9E37_79B9));
        let q = arb_query(&mut rng);
        let baseline = run(&q, None);
        assert_eq!(
            baseline.metrics.task_failures + baseline.metrics.fetch_failures,
            0,
            "seed {seed}: baseline must be fault-free"
        );

        let plan = Arc::new(ChaosPlan::new(ChaosConf {
            task_fault_prob: 0.08,
            fetch_fault_prob: 0.08,
            max_task_panics: 2,
            max_executor_deaths: 1,
            max_fetch_failures: 2,
            ..ChaosConf::seeded(0xFA17 ^ seed.wrapping_mul(0x85EB_CA6B))
        }));
        let chaotic = run(&q, Some(plan.clone()));
        assert_eq!(
            chaotic.rows, baseline.rows,
            "seed {seed}: chaos run diverged (join={:?}, agg={}, adaptive={}, vectorize={}, \
             cache_dim={}, kill={:?})",
            q.join_type, q.aggregate, q.adaptive, q.vectorize, q.cache_dim, q.kill_slot
        );

        let stats = plan.stats();
        task_panics += stats.task_panics;
        executor_deaths += stats.executor_deaths;
        fetch_failures += stats.fetch_failures;
        task_retries += chaotic.metrics.task_failures;
        stage_resubmissions += chaotic.metrics.stage_resubmissions;
        map_tasks_recomputed += chaotic.metrics.map_tasks_recomputed;
        cache_recomputes += chaotic.metrics.cache_recomputes;
        if stats.task_panics + stats.executor_deaths + stats.fetch_failures > 0
            || q.kill_slot.is_some()
        {
            faulted_runs += 1;
        }
        if chaotic.recovery_logged {
            recovery_logged_runs += 1;
        }
        if !baseline.rows.is_empty() {
            nonempty += 1;
        }
    }

    eprintln!(
        "chaos sweep: panics={task_panics} deaths={executor_deaths} fetches={fetch_failures} \
         retries={task_retries} resubmissions={stage_resubmissions} \
         map_recomputed={map_tasks_recomputed} cache_recomputes={cache_recomputes} \
         recovery_logged={recovery_logged_runs} faulted={faulted_runs}/{ITERS}"
    );
    // Meaningfulness floors: the sweep must actually inject every fault
    // kind and drive every recovery path, not compare quiet runs.
    assert!(
        nonempty > ITERS as u32 / 2,
        "only {nonempty} non-empty results"
    );
    assert!(
        faulted_runs > ITERS as u32 / 2,
        "only {faulted_runs} runs saw any fault"
    );
    assert!(task_panics >= 5, "only {task_panics} task panics injected");
    assert!(
        executor_deaths >= 5,
        "only {executor_deaths} executor deaths injected"
    );
    assert!(
        fetch_failures >= 5,
        "only {fetch_failures} fetch failures injected"
    );
    assert!(
        task_retries >= 5,
        "in-place task retry path fired only {task_retries} times"
    );
    assert!(
        stage_resubmissions >= 5,
        "map-stage resubmission path fired only {stage_resubmissions} times"
    );
    assert!(
        map_tasks_recomputed >= 5,
        "only {map_tasks_recomputed} map tasks recomputed from lineage"
    );
    assert!(
        cache_recomputes >= 5,
        "cached-partition recovery fired only {cache_recomputes} times"
    );
    assert!(
        recovery_logged_runs >= 5,
        "query log captured recovery in only {recovery_logged_runs} runs"
    );
}
