//! Differential property tests for the cost-based optimizer phase:
//! randomly generated join chains and aggregates executed with
//! `spark.sql.cbo.enabled` on must produce results byte-identical to the
//! cbo-disabled path, across vectorize × adaptive × bounded-memory
//! modes.
//!
//! Same deterministic seeded-sweep style as `constraint_props.rs`.
//! Meaningfulness floors prove the phase actually fired: join chains
//! reordered by estimated cardinality, global aggregates answered
//! straight from source statistics, and shuffled-hash-join build sides
//! flipped to the smaller input — not vacuous comparisons of identical
//! plans.

use catalyst::source::MemoryTable;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql::prelude::*;
use std::sync::Arc;

const ITERS: u64 = 64;

fn fact_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("fk1", DataType::Long, true),
        StructField::new("fk2", DataType::Long, true),
        StructField::new("fv", DataType::Long, false),
    ]))
}

fn d1_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("d1k", DataType::Long, false),
        StructField::new("d1e", DataType::Long, false),
        StructField::new("d1w", DataType::String, false),
    ]))
}

fn d2_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("d2k", DataType::Long, false),
        StructField::new("d2v", DataType::Long, false),
    ]))
}

/// Wide fact table: keys land in the dimension domains, with NULL keys
/// sprinkled in so reordering never changes NULL-key semantics.
fn arb_fact_rows(rng: &mut StdRng, d1_n: usize, d2_n: usize) -> Vec<Row> {
    let n = rng.random_range(120usize..400);
    (0..n)
        .map(|idx| {
            let fk1 = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..(d1_n as i64 + 2)))
            };
            let fk2 = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..(d2_n as i64 + 2)))
            };
            Row::new(vec![fk1, fk2, Value::Long(idx as i64)])
        })
        .collect()
}

fn arb_d1_rows(rng: &mut StdRng, n: usize, d2_n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Long(i as i64),
                Value::Long(rng.random_range(0i64..(d2_n as i64).max(1))),
                Value::str(format!("w{}", i % 5)),
            ])
        })
        .collect()
}

fn arb_d2_rows(_rng: &mut StdRng, n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| Row::new(vec![Value::Long(i as i64), Value::Long((i as i64) * 10)]))
        .collect()
}

/// Query shapes the sweep alternates between.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Shape {
    /// Global COUNT/MIN/MAX over the unfiltered fact table — the
    /// aggregate-from-statistics rule's target.
    StatsAgg,
    /// fact ⋈ d1 ⋈ d2 as a star, written large-side-first so the naive
    /// left-deep order is the bad one.
    Star,
    /// fact ⋈ d1 ⋈ d2 where d2 only connects through d1 — reordering
    /// must respect connectivity (no cross products).
    Snowflake,
    /// Two-table join: too short for the reorderer, but the build-side
    /// pick and broadcast decisions still apply.
    Pair,
}

struct GenQuery {
    fact_rows: Vec<Row>,
    d1_rows: Vec<Row>,
    d2_rows: Vec<Row>,
    shape: Shape,
    /// Write the chain with the (large) fact table leftmost.
    big_first: bool,
    filter: bool,
    aggregate: bool,
    vectorize: bool,
    adaptive: bool,
    budget: u64,
    /// Force every join to hash-shuffle (broadcast threshold 0) so the
    /// build-side pick is observable.
    force_shuffled: bool,
}

fn arb_query(rng: &mut StdRng) -> GenQuery {
    let d1_n = rng.random_range(4usize..32);
    let d2_n = rng.random_range(4usize..32);
    let shape = match rng.random_range(0u32..8) {
        0..=1 => Shape::StatsAgg,
        2..=4 => Shape::Star,
        5..=6 => Shape::Snowflake,
        _ => Shape::Pair,
    };
    GenQuery {
        fact_rows: arb_fact_rows(rng, d1_n, d2_n),
        d1_rows: arb_d1_rows(rng, d1_n, d2_n),
        d2_rows: arb_d2_rows(rng, d2_n),
        shape,
        big_first: rng.random_bool(0.7),
        filter: rng.random_bool(0.4),
        aggregate: rng.random_bool(0.4),
        vectorize: rng.random_bool(0.5),
        adaptive: rng.random_bool(0.5),
        budget: if rng.random_bool(0.25) { 16 << 10 } else { 0 },
        force_shuffled: rng.random_bool(0.5),
    }
}

struct Outcome {
    rows: Vec<String>,
    optimized: String,
    physical: String,
}

/// The sequence of scan leaves in an optimized plan rendering — the
/// observable signature of a join reorder.
fn scan_sequence(optimized: &str) -> Vec<String> {
    optimized
        .lines()
        .filter(|l| l.trim_start().starts_with("Scan "))
        .map(|l| l.trim().to_string())
        .collect()
}

fn run(q: &GenQuery, cbo: bool) -> Outcome {
    let ctx = SQLContext::new_local(2);
    ctx.set_conf(|c| {
        c.cbo_enabled = cbo;
        c.vectorize_enabled = q.vectorize;
        c.adaptive_enabled = q.adaptive;
        c.memory_budget_bytes = q.budget;
        c.shuffle_partitions = 4;
        if q.force_shuffled {
            c.broadcast_threshold = 0;
        }
    });
    // Registered as source relations (not literal rows) so scans carry
    // row counts and per-column statistics — what the CBO runs on.
    ctx.register_relation(
        "fact",
        Arc::new(MemoryTable::new(
            "fact",
            fact_schema(),
            q.fact_rows.clone(),
            3,
        )),
    );
    ctx.register_relation(
        "d1",
        Arc::new(MemoryTable::new("d1", d1_schema(), q.d1_rows.clone(), 2)),
    );
    ctx.register_relation(
        "d2",
        Arc::new(MemoryTable::new("d2", d2_schema(), q.d2_rows.clone(), 2)),
    );
    let fact = ctx.table("fact").expect("fact");
    let d1 = ctx.table("d1").expect("d1");
    let d2 = ctx.table("d2").expect("d2");

    let mut df = match q.shape {
        Shape::StatsAgg => fact
            .group_by(vec![])
            .agg(vec![
                count_star().alias("n"),
                min(col("fv")).alias("lo"),
                max(col("fv")).alias("hi"),
            ])
            .expect("stats agg"),
        Shape::Pair => {
            let (l, r, cond) = if q.big_first {
                (fact, d1, col("fk1").eq(col("d1k")))
            } else {
                (d1, fact, col("d1k").eq(col("fk1")))
            };
            l.join(&r, JoinType::Inner, Some(cond)).expect("pair join")
        }
        Shape::Star => {
            let base = if q.big_first {
                fact.join(&d1, JoinType::Inner, Some(col("fk1").eq(col("d1k"))))
                    .expect("join d1")
            } else {
                d1.join(&fact, JoinType::Inner, Some(col("d1k").eq(col("fk1"))))
                    .expect("join d1")
            };
            base.join(&d2, JoinType::Inner, Some(col("fk2").eq(col("d2k"))))
                .expect("join d2")
        }
        Shape::Snowflake => fact
            .join(&d1, JoinType::Inner, Some(col("fk1").eq(col("d1k"))))
            .expect("join d1")
            .join(&d2, JoinType::Inner, Some(col("d1e").eq(col("d2k"))))
            .expect("join d2"),
    };
    if q.filter && q.shape != Shape::StatsAgg {
        df = df.filter(col("fv").gt(lit(20i64))).expect("filter");
    }
    if q.aggregate && q.shape != Shape::StatsAgg && q.shape != Shape::Pair {
        df = df
            .group_by(vec![col("d1w")])
            .agg(vec![count_star().alias("n"), sum(col("fv")).alias("sv")])
            .expect("aggregate");
    }
    let qe = df.query_execution().expect("query_execution");
    let optimized = format!("{}", qe.optimized());
    let physical = format!("{}", qe.physical());
    let mut rows: Vec<String> = qe
        .collect()
        .expect("collect")
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    rows.sort();
    Outcome {
        rows,
        optimized,
        physical,
    }
}

#[test]
fn cbo_preserves_results_exactly() {
    let mut nonempty = 0u32;
    let mut reorders = 0u32;
    let mut stats_answered = 0u32;
    let mut build_flips = 0u32;

    for seed in 0..ITERS {
        let mut rng = StdRng::seed_from_u64(0xCB_0D1F ^ seed.wrapping_mul(0x9E37_79B9));
        let q = arb_query(&mut rng);

        let baseline = run(&q, false);
        let optimized_run = run(&q, true);
        assert_eq!(
            optimized_run.rows,
            baseline.rows,
            "seed {seed}: cbo changed results (shape={:?}, big_first={}, filter={}, agg={}, \
             vec={}, adaptive={}, budget={}, shuffled={})\ncbo-off plan:\n{}\ncbo-on plan:\n{}",
            q.shape,
            q.big_first,
            q.filter,
            q.aggregate,
            q.vectorize,
            q.adaptive,
            q.budget,
            q.force_shuffled,
            baseline.optimized,
            optimized_run.optimized,
        );

        if !baseline.rows.is_empty() {
            nonempty += 1;
        }
        let base_scans = scan_sequence(&baseline.optimized);
        let cbo_scans = scan_sequence(&optimized_run.optimized);
        if base_scans.len() == cbo_scans.len() && base_scans != cbo_scans {
            reorders += 1;
        }
        if !base_scans.is_empty() && cbo_scans.is_empty() {
            stats_answered += 1;
        }
        if optimized_run
            .physical
            .lines()
            .any(|l| l.contains("ShuffledHashJoin") && l.contains("build=Left"))
        {
            build_flips += 1;
        }
        // The legacy path must never pick a left build side.
        assert!(
            !baseline
                .physical
                .lines()
                .any(|l| l.contains("ShuffledHashJoin") && l.contains("build=Left")),
            "seed {seed}: cbo-off plan built a left side:\n{}",
            baseline.physical
        );
    }

    eprintln!(
        "cbo sweep: reorders={reorders}/{ITERS} stats_answered={stats_answered} \
         build_flips={build_flips} nonempty={nonempty}"
    );
    // Meaningfulness floors: the sweep must actually exercise all three
    // cost-based decisions, not compare no-op plans.
    assert!(
        nonempty > ITERS as u32 / 4,
        "only {nonempty} non-empty results"
    );
    assert!(reorders >= 6, "only {reorders} join chains reordered");
    assert!(
        stats_answered >= 6,
        "only {stats_answered} aggregates answered from statistics"
    );
    assert!(
        build_flips >= 6,
        "only {build_flips} shuffled joins flipped their build side"
    );
}

/// A partially evicted cache exposes statistics for its *resident*
/// partitions only. Those are lower bounds, and the cost-based rewrites
/// must refuse them: no aggregate answered from stats, no filter proven
/// always-empty — otherwise a query would silently return answers for a
/// subset of the table.
#[test]
fn partially_evicted_cache_suppresses_stats_rewrites() {
    let schema: SchemaRef = Arc::new(Schema::new(vec![StructField::new(
        "v",
        DataType::Long,
        false,
    )]));
    let rows: Vec<Row> = (0..200i64)
        .map(|i| Row::new(vec![Value::Long(i)]))
        .collect();

    let ctx = SQLContext::new_local(2);
    // Pinned on: the positive controls below assert the rewrites fire,
    // regardless of CATALYST_CBO=0 / CATALYST_CONSTRAINTS=0 CI jobs.
    ctx.set_conf(|c| {
        c.cbo_enabled = true;
        c.constraints_enabled = true;
    });
    // Exact block-residency bookkeeping: no injected executor deaths.
    ctx.spark_context().set_chaos(None);
    ctx.register_relation(
        "t",
        Arc::new(MemoryTable::new("t", schema.clone(), rows, 2)),
    );
    ctx.sql("CACHE TABLE t")
        .expect("cache")
        .collect()
        .expect("cache run");
    // Warm-up scan materializes the cache (2 partitions, one per
    // executor slot: values 0..100 on slot 0, 100..200 on slot 1).
    ctx.sql("SELECT count(*) FROM t")
        .expect("warmup")
        .collect()
        .expect("warmup run");

    // Positive control — with every partition resident the stats are
    // exact: the global aggregate is answered without a scan, and a
    // filter above the true maximum is proven always-empty.
    let agg_sql = "SELECT count(*) AS n, min(v) AS lo, max(v) AS hi FROM t";
    let qe = ctx
        .sql(agg_sql)
        .expect("agg")
        .query_execution()
        .expect("qe");
    assert!(
        scan_sequence(&format!("{}", qe.optimized())).is_empty(),
        "full cache should answer the aggregate from stats:\n{}",
        qe.optimized()
    );
    let rows = qe.collect().expect("agg run");
    assert_eq!(
        format!("{:?}", rows[0].values()),
        "[Long(200), Long(0), Long(199)]"
    );

    let empty_sql = "SELECT v FROM t WHERE v > 1000";
    let qe = ctx
        .sql(empty_sql)
        .expect("empty")
        .query_execution()
        .expect("qe");
    assert!(
        scan_sequence(&format!("{}", qe.optimized())).is_empty(),
        "v > 1000 exceeds the exact max, should be pruned:\n{}",
        qe.optimized()
    );
    assert!(qe.collect().expect("empty run").is_empty());

    // Evict the high partition: resident stats now claim max(v) = 99.
    // Trusting them would answer MAX as 99 and prune `v > 150` to
    // nothing — both wrong. The partial flag must suppress the rewrites
    // and fall back to a real scan, which transparently refills.
    ctx.spark_context().lose_executor(1);
    let qe = ctx
        .sql(agg_sql)
        .expect("agg")
        .query_execution()
        .expect("qe");
    assert!(
        !scan_sequence(&format!("{}", qe.optimized())).is_empty(),
        "partial stats must not answer aggregates:\n{}",
        qe.optimized()
    );
    let rows = qe.collect().expect("agg run");
    assert_eq!(
        format!("{:?}", rows[0].values()),
        "[Long(200), Long(0), Long(199)]"
    );

    ctx.spark_context().lose_executor(1);
    let qe = ctx
        .sql("SELECT v FROM t WHERE v > 150")
        .expect("tail")
        .query_execution()
        .expect("qe");
    assert!(
        !scan_sequence(&format!("{}", qe.optimized())).is_empty(),
        "partial stats must not prove emptiness:\n{}",
        qe.optimized()
    );
    assert_eq!(qe.collect().expect("tail run").len(), 49);
}
