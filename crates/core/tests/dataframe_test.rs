//! DataFrame API surface tests (the DSL side of §3, complementing the
//! SQL-driven end-to-end suite).

use catalyst::value::Value;
use catalyst::Row;
use spark_sql::prelude::*;
use std::sync::Arc;

fn people(ctx: &SQLContext) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![
        StructField::new("name", DataType::String, false),
        StructField::new("age", DataType::Int, false),
        StructField::new("dept", DataType::String, false),
    ]));
    let rows: Vec<Row> = [
        ("alice", 22, "eng"),
        ("bob", 19, "eng"),
        ("carol", 31, "sales"),
        ("dan", 17, "sales"),
        ("erin", 40, "hr"),
    ]
    .iter()
    .map(|(n, a, d)| Row::new(vec![Value::str(*n), Value::Int(*a), Value::str(*d)]))
    .collect();
    ctx.create_dataframe(schema, rows).unwrap()
}

#[test]
fn select_filter_chain() {
    let ctx = SQLContext::new_local(2);
    let df = people(&ctx);
    let out = df
        .where_(col("age").gt_eq(lit(20)))
        .unwrap()
        .select(vec![col("name"), col("age").add(lit(1)).alias("next_age")])
        .unwrap();
    assert_eq!(out.columns(), vec!["name", "next_age"]);
    assert_eq!(out.count().unwrap(), 3);
}

#[test]
fn with_column_appends() {
    let ctx = SQLContext::new_local(2);
    let df = people(&ctx);
    let out = df.with_column("minor", col("age").lt(lit(18))).unwrap();
    assert_eq!(out.columns(), vec!["name", "age", "dept", "minor"]);
    let minors: Vec<Row> = out
        .filter(col("minor").eq(lit(true)))
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(minors.len(), 1);
    assert_eq!(minors[0].get_str(0), "dan");
}

#[test]
fn grouped_helpers() {
    let ctx = SQLContext::new_local(2);
    let df = people(&ctx);
    let counts = df.group_by_cols(&["dept"]).count().unwrap();
    assert_eq!(counts.count().unwrap(), 3);

    let avg = df.group_by_cols(&["dept"]).avg("age").unwrap();
    assert_eq!(avg.columns(), vec!["dept", "avg(age)"]);

    let multi = df
        .group_by_cols(&["dept"])
        .agg(vec![
            min(col("age")).alias("youngest"),
            max(col("age")).alias("oldest"),
            sum(col("age")).alias("total"),
        ])
        .unwrap()
        .order_by(vec![col("dept").asc()])
        .unwrap()
        .collect()
        .unwrap();
    // eng: 19/22/41.
    assert_eq!(multi[0].get(1), &Value::Int(19));
    assert_eq!(multi[0].get(2), &Value::Int(22));
    assert_eq!(multi[0].get(3), &Value::Long(41));
}

#[test]
fn global_agg_without_grouping() {
    let ctx = SQLContext::new_local(2);
    let df = people(&ctx);
    let out = df
        .agg(vec![count_star().alias("n"), avg(col("age")).alias("a")])
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out[0].get(0), &Value::Long(5));
    assert!((out[0].get_double(1) - 25.8).abs() < 1e-9);
}

#[test]
fn self_join_via_aliased_copies() {
    // The documented workaround: register two DataFrames with distinct
    // attribute ids (two create_dataframe calls), then join.
    let ctx = SQLContext::new_local(2);
    let left = people(&ctx).alias("l").unwrap();
    let right = people(&ctx).alias("r").unwrap();
    let pairs = left
        .join_on(
            &right,
            qualified_col("l", "dept").eq(qualified_col("r", "dept")),
        )
        .unwrap()
        .filter(qualified_col("l", "name").not_eq(qualified_col("r", "name")))
        .unwrap();
    // eng: 2 pairs, sales: 2 pairs, hr: 0.
    assert_eq!(pairs.count().unwrap(), 4);
}

#[test]
fn union_and_distinct_and_sample() {
    let ctx = SQLContext::new_local(2);
    let df = people(&ctx);
    let doubled = df.union(&df).unwrap();
    assert_eq!(doubled.count().unwrap(), 10);
    assert_eq!(
        doubled
            .select_cols(&["name"])
            .unwrap()
            .distinct()
            .unwrap()
            .count()
            .unwrap(),
        5
    );
    let sampled = df.sample(0.5, 7).unwrap();
    assert!(sampled.count().unwrap() <= 5);
}

#[test]
fn take_first_show() {
    let ctx = SQLContext::new_local(2);
    let df = people(&ctx).order_by(vec![col("age").desc()]).unwrap();
    let first = df.first().unwrap().unwrap();
    assert_eq!(first.get_str(0), "erin");
    assert_eq!(df.take(2).unwrap().len(), 2);
    let table = df.show(3).unwrap();
    assert!(table.contains("| name"), "{table}");
    assert!(table.contains("erin"), "{table}");
    assert_eq!(table.lines().filter(|l| l.starts_with('|')).count(), 4); // header + 3 rows
}

#[test]
fn explain_mentions_all_phases_and_chosen_join() {
    let ctx = SQLContext::new_local(2);
    let df = people(&ctx).alias("big").unwrap();
    let small = people(&ctx).alias("small").unwrap().limit(2).unwrap();
    let joined = df
        .join_on(
            &small,
            qualified_col("big", "age").eq(qualified_col("small", "age")),
        )
        .unwrap();
    let text = joined.explain().unwrap();
    assert!(text.contains("Analyzed Logical Plan"), "{text}");
    assert!(text.contains("Optimized Logical Plan"), "{text}");
    assert!(text.contains("Physical Plan"), "{text}");
    // LIMIT makes the small side's size known (footnote 5) → broadcast.
    assert!(text.contains("BroadcastHashJoin"), "{text}");
}

#[test]
fn ambiguous_join_columns_error_eagerly() {
    let ctx = SQLContext::new_local(2);
    let a = people(&ctx);
    let b = people(&ctx);
    let err = a.join_on(&b, col("age").eq(col("age")));
    assert!(
        err.is_err(),
        "duplicate names across both sides must be ambiguous"
    );
    let msg = match err {
        Err(e) => e.to_string(),
        Ok(_) => unreachable!(),
    };
    assert!(msg.contains("ambiguous"), "{msg}");
}

#[test]
fn save_and_reload_colfile_and_csv() {
    let ctx = SQLContext::new_local(2);
    let dir = std::env::temp_dir().join(format!("dftest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let df = people(&ctx);

    let colfile = dir.join("people.rcf");
    df.write()
        .option("rows_per_group", 2)
        .save(colfile.to_str().unwrap())
        .unwrap();
    let reloaded = ctx.read_colfile(colfile.to_str().unwrap()).unwrap();
    assert_eq!(reloaded.count().unwrap(), 5);
    assert_eq!(reloaded.schema().len(), 3);
    // Pushdown works against the reloaded file.
    let filtered = reloaded.where_(col("age").gt(lit(30))).unwrap();
    assert_eq!(filtered.count().unwrap(), 2);

    let csv = dir.join("people.csv");
    df.write()
        .format("csv")
        .save(csv.to_str().unwrap())
        .unwrap();
    let csv_df = ctx
        .read_csv(csv.to_str().unwrap(), &datasources::CsvOptions::default())
        .unwrap();
    assert_eq!(csv_df.count().unwrap(), 5);
    assert_eq!(csv_df.schema().field(1).dtype, DataType::Int);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn read_source_via_registry() {
    let ctx = SQLContext::new_local(2);
    let dir = std::env::temp_dir().join(format!("dfsrc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("x.json");
    std::fs::write(&path, "{\"a\": 1}\n{\"a\": 2}\n").unwrap();
    let mut opts = datasources::Options::new();
    opts.insert("path".into(), path.to_str().unwrap().into());
    let df = ctx.read_source("json", &opts).unwrap();
    assert_eq!(df.count().unwrap(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn show_tables_and_describe_via_sql() {
    let ctx = SQLContext::new_local(2);
    people(&ctx).register_temp_table("people");
    let tables = ctx.sql("SHOW TABLES").unwrap().collect().unwrap();
    assert_eq!(tables.len(), 1);
    assert_eq!(tables[0].get_str(0), "people");
    let desc = ctx.sql("DESCRIBE people").unwrap().collect().unwrap();
    assert_eq!(desc.len(), 3);
    assert_eq!(desc[1].get_str(0), "age");
    assert_eq!(desc[1].get_str(1), "INT");
}

#[test]
fn drop_temp_table() {
    let ctx = SQLContext::new_local(2);
    people(&ctx).register_temp_table("p");
    assert!(ctx.table("p").is_ok());
    assert!(ctx.drop_temp_table("p"));
    assert!(ctx.table("p").is_err());
    assert!(!ctx.drop_temp_table("p"));
}

#[test]
fn dataframe_cache_roundtrip() {
    let ctx = SQLContext::new_local(2);
    let df = people(&ctx);
    let cached = df.cache().unwrap();
    let a = cached
        .group_by_cols(&["dept"])
        .count()
        .unwrap()
        .count()
        .unwrap();
    let b = df
        .group_by_cols(&["dept"])
        .count()
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn case_when_dsl() {
    let ctx = SQLContext::new_local(2);
    let df = people(&ctx);
    let banded = df
        .select(vec![
            col("name"),
            when(col("age").lt(lit(20)), lit("young"))
                .when(col("age").lt(lit(35)), lit("mid"))
                .otherwise(lit("senior"))
                .alias("band"),
        ])
        .unwrap()
        .order_by(vec![col("name").asc()])
        .unwrap()
        .collect()
        .unwrap();
    let bands: Vec<&str> = banded.iter().map(|r| r.get_str(1)).collect();
    assert_eq!(bands, vec!["mid", "young", "mid", "young", "senior"]);
}
