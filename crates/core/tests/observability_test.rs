//! End-to-end tests for the observability surface (per-operator SQL
//! metrics, `EXPLAIN ANALYZE`, the session query log) and the unified
//! reader/writer builders.

use catalyst::physical::metrics::subtree_size;
use catalyst::value::Value;
use catalyst::Row;
use spark_sql::prelude::*;
use std::sync::Arc;

fn users(ctx: &SQLContext) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![
        StructField::new("name", DataType::String, false),
        StructField::new("age", DataType::Int, false),
        StructField::new("dept_id", DataType::Int, false),
    ]));
    let rows: Vec<Row> = (0..40)
        .map(|i| {
            Row::new(vec![
                Value::str(format!("user{i}")),
                Value::Int(18 + (i % 30)),
                Value::Int(i % 4),
            ])
        })
        .collect();
    ctx.create_dataframe(schema, rows).unwrap()
}

fn depts(ctx: &SQLContext) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Int, false),
        StructField::new("dept", DataType::String, false),
    ]));
    let rows: Vec<Row> = [(0, "eng"), (1, "sales"), (2, "hr"), (3, "ops")]
        .iter()
        .map(|(i, d)| Row::new(vec![Value::Int(*i), Value::str(*d)]))
        .collect();
    ctx.create_dataframe(schema, rows).unwrap()
}

/// Filter → aggregate → join, the multi-stage query the acceptance
/// criteria call for.
fn multi_stage(ctx: &SQLContext) -> DataFrame {
    let per_dept = users(ctx)
        .where_(col("age").gt(lit(25)))
        .unwrap()
        .group_by_cols(&["dept_id"])
        .count()
        .unwrap();
    per_dept
        .join_on(&depts(ctx), col("dept_id").eq(col("id")))
        .unwrap()
        .select(vec![col("dept"), col("count")])
        .unwrap()
}

#[test]
fn query_execution_metrics_match_collect() {
    let ctx = SQLContext::new_local(2);
    let df = multi_stage(&ctx);
    let expected = df.collect().unwrap().len();
    assert!(expected > 0);

    let qe = df.query_execution().unwrap();
    // The handle exposes every pipeline stage before running anything.
    assert!(!format!("{}", qe.analyzed()).is_empty());
    assert!(!format!("{}", qe.optimized()).is_empty());
    let n_ops = subtree_size(qe.physical());
    assert!(n_ops >= 4, "expected a multi-operator plan, got {n_ops}");
    assert_eq!(qe.metrics().len(), n_ops);
    // Metrics are zero until the query runs.
    assert_eq!(qe.metrics().node(0).output_rows(), 0);

    let rows = qe.collect().unwrap();
    assert_eq!(rows.len(), expected);
    // The root operator's metered row count matches what collect saw.
    assert_eq!(qe.metrics().node(0).output_rows(), rows.len() as u64);
    // Every operator produced rows (nothing in this plan filters to zero).
    for id in 0..qe.metrics().len() {
        assert!(
            qe.metrics().node(id).output_rows() > 0,
            "operator {id} reported no rows"
        );
    }
}

#[test]
fn explain_analyze_annotates_every_operator() {
    let ctx = SQLContext::new_local(2);
    let df = multi_stage(&ctx);
    let n_ops = subtree_size(df.query_execution().unwrap().physical());

    let text = df.explain_analyze().unwrap();
    // Adaptive execution may prepend the initial plan and its change log;
    // the annotated operator lines are the executed-plan section.
    let executed = text
        .split("Physical Plan (executed) ==\n")
        .nth(1)
        .unwrap_or_else(|| panic!("no executed-plan section:\n{text}"));
    let plan_lines: Vec<&str> = executed
        .lines()
        .take_while(|l| !l.starts_with("=="))
        .filter(|l| !l.trim().is_empty())
        .collect();
    assert_eq!(plan_lines.len(), n_ops, "{text}");
    for line in &plan_lines {
        assert!(line.contains("rows="), "missing rows= in: {line}\n{text}");
        assert!(line.contains("time="), "missing time= in: {line}\n{text}");
    }
    // The aggregation shuffles, and its volume lands on the operator
    // that induced the exchange.
    assert!(text.contains("shuffle_bytes_written="), "{text}");
    assert!(text.contains("shuffle_records_read="), "{text}");
    assert!(text.contains("== Totals =="), "{text}");
}

#[test]
fn query_log_records_instrumented_runs() {
    let ctx = SQLContext::new_local(2);
    assert!(ctx.query_log().is_empty());
    let df = multi_stage(&ctx);
    let rows = df.query_execution().unwrap().collect().unwrap();
    let _ = df.explain_analyze().unwrap();

    let log = ctx.query_log();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].output_rows, rows.len() as u64);
    assert!(log[0].wall_ns > 0);
    assert!(!log[0].operators.is_empty());
    assert!(log[0].operators.iter().any(|op| op
        .extras
        .iter()
        .any(|(k, v)| k == "shuffle_records_written" && *v > 0)));

    let json = ctx.query_log_json();
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(json.contains("\"wall_ns\":"), "{json}");
    assert!(json.contains("\"operators\":["), "{json}");

    ctx.clear_query_log();
    assert!(ctx.query_log().is_empty());
    assert_eq!(ctx.query_log_json(), "[]");
}

#[test]
fn plain_execution_paths_stay_uninstrumented() {
    // collect() without a QueryExecution must not log anything.
    let ctx = SQLContext::new_local(2);
    let df = multi_stage(&ctx);
    let _ = df.collect().unwrap();
    assert!(ctx.query_log().is_empty());
}

#[test]
fn reader_writer_csv_roundtrip_with_options() {
    let ctx = SQLContext::new_local(2);
    let dir = std::env::temp_dir().join(format!("obs-csv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("users.csv");
    let path = path.to_str().unwrap();

    users(&ctx)
        .write()
        .format("csv")
        .option("delimiter", ";")
        .save(path)
        .unwrap();

    // ErrorIfExists is the default mode.
    let err = users(&ctx).write().format("csv").save(path);
    assert!(err.is_err());
    let msg = err.err().unwrap().to_string();
    assert!(msg.contains("already exists"), "{msg}");

    // Overwrite succeeds.
    users(&ctx)
        .write()
        .format("csv")
        .option("delimiter", ";")
        .mode(SaveMode::Overwrite)
        .save(path)
        .unwrap();

    // Read back with an explicit schema: no inference, exact types.
    let schema = Schema::new(vec![
        StructField::new("name", DataType::String, false),
        StructField::new("age", DataType::Int, false),
        StructField::new("dept_id", DataType::Int, false),
    ]);
    let back = ctx
        .read()
        .format("csv")
        .option("delimiter", ";")
        .option("header", "true")
        .schema(&schema)
        .load(path)
        .unwrap();
    assert_eq!(back.count().unwrap(), 40);
    assert_eq!(back.schema().field(1).dtype, DataType::Int);
    assert_eq!(back.schema().field(0).dtype, DataType::String);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reader_writer_colfile_roundtrip_default_format() {
    let ctx = SQLContext::new_local(2);
    let dir = std::env::temp_dir().join(format!("obs-rcf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("users.rcf");
    let path = path.to_str().unwrap();

    // colfile is the default format on both sides.
    users(&ctx)
        .write()
        .option("rows_per_group", 8)
        .save(path)
        .unwrap();
    let back = ctx.read().load(path).unwrap();
    assert_eq!(back.count().unwrap(), 40);
    assert_eq!(back.schema().len(), 3);
    // Predicate pushdown works against the reloaded file.
    let older = back.where_(col("age").gt(lit(40))).unwrap();
    assert_eq!(
        older.count().unwrap(),
        users(&ctx)
            .where_(col("age").gt(lit(40)))
            .unwrap()
            .count()
            .unwrap()
    );

    // `parquet` is an alias for the same format.
    let via_alias = ctx.read().format("parquet").load(path).unwrap();
    assert_eq!(via_alias.count().unwrap(), 40);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn writer_overwrites_csv_in_place() {
    let ctx = SQLContext::new_local(2);
    let dir = std::env::temp_dir().join(format!("obs-dep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("old.csv");
    let save = |ctx: &SQLContext| {
        users(ctx)
            .write()
            .format("csv")
            .mode(SaveMode::Overwrite)
            .save(path.to_str().unwrap())
            .unwrap()
    };
    save(&ctx);
    // Overwrite mode replaces the file in place.
    save(&ctx);
    assert!(path.exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_execution_exposes_rule_health() {
    let ctx = SQLContext::new_local(2);
    // A query with a foldable predicate so the optimizer demonstrably
    // fires, stacked on the usual multi-stage shape.
    let df = multi_stage(&ctx).where_(lit(1).lt(lit(2))).unwrap();
    let qe = df.query_execution().unwrap();

    let health = qe.rule_health();
    assert!(!health.rules.is_empty());
    let cf = health
        .health_for("Operator Optimizations", "ConstantFolding")
        .expect("ConstantFolding health missing");
    assert!(cf.applications >= 1);
    assert!(
        health.non_converged.is_empty(),
        "{:?}",
        health.non_converged
    );

    // The rendered report pairs with explain_analyze() output.
    let report = qe.rule_health_report();
    assert!(report.contains("== Rule Health =="), "{report}");
    assert!(report.contains("ConstantFolding"), "{report}");
    assert!(report.contains("non-converged batches: none"), "{report}");

    // The DataFrame-level shortcut renders the same table.
    let via_df = df.rule_health_report().unwrap();
    assert!(via_df.contains("== Rule Health =="), "{via_df}");

    // And the query still executes correctly under full validation.
    let rows = qe.collect().unwrap();
    assert!(!rows.is_empty());
}

#[test]
fn explain_analyze_counts_batches_on_the_vectorized_path() {
    let ctx = SQLContext::new_local(2);
    if !ctx.conf().vectorize_enabled {
        return; // CATALYST_VECTORIZE=0: the row path has no batch counters
    }
    // Scan→Filter→Project over a cached (columnar) relation runs fully
    // batched: every one of those operators reports batches and physical
    // lanes scanned, and the filter's selectivity is readable as
    // rows / batch_rows_scanned.
    let cached = users(&ctx).cache().unwrap();
    let df = cached
        .where_(col("age").gt(lit(30)))
        .unwrap()
        .select(vec![col("name"), col("age")])
        .unwrap();
    let text = df.explain_analyze().unwrap();
    // Only the executed-plan section holds operator lines; later sections
    // (totals, and under a budget "== Memory ==") are not operators.
    let executed = text
        .split("Physical Plan (executed) ==\n")
        .nth(1)
        .unwrap_or_else(|| panic!("no executed-plan section:\n{text}"));
    let plan_lines: Vec<&str> = executed
        .lines()
        .take_while(|l| !l.starts_with("=="))
        .filter(|l| !l.trim().is_empty())
        .collect();
    for line in &plan_lines {
        assert!(
            line.contains("batches="),
            "missing batches= in: {line}\n{text}"
        );
        assert!(
            line.contains("batch_rows_scanned="),
            "missing batch_rows_scanned= in: {line}\n{text}"
        );
    }
    // Row counts still mean *selected* rows, so they match the row path.
    let expected = users(&ctx)
        .where_(col("age").gt(lit(30)))
        .unwrap()
        .count()
        .unwrap();
    let rows = df.collect().unwrap();
    assert_eq!(rows.len() as u64, expected);
}

#[test]
fn explain_analyze_counts_groups_and_frames_on_the_batch_back_half() {
    let ctx = SQLContext::new_local(2);
    if !ctx.conf().vectorize_enabled {
        return; // CATALYST_VECTORIZE=0: the row path has no batch counters
    }
    users(&ctx).register_temp_table("users");

    // Batch-native hash aggregation reports the batches it consumed and
    // the distinct group keys it interned map-side.
    let agg = ctx
        .sql("SELECT dept_id, count(*), sum(age) FROM users GROUP BY dept_id")
        .unwrap();
    let text = agg.explain_analyze().unwrap();
    assert!(text.contains("groups="), "missing groups= in:\n{text}");
    assert!(text.contains("batches="), "missing batches= in:\n{text}");

    // The window operator reports how many aggregate frames it evaluated.
    let win = ctx
        .sql("SELECT name, sum(age) OVER (PARTITION BY dept_id) AS total FROM users")
        .unwrap();
    let text = win.explain_analyze().unwrap();
    assert!(text.contains("frames="), "missing frames= in:\n{text}");
}
