//! Differential property tests for memory-governed execution: randomly
//! generated join/aggregate/sort plans executed under a byte budget small
//! enough to force spilling must produce results byte-identical to the
//! unbounded all-in-memory path — across vectorize × adaptive on/off —
//! while the pool's high-water mark never exceeds the budget and every
//! spill file written is deleted by the end of the run, including runs
//! with chaos-injected task failures.
//!
//! Same deterministic seeded-sweep style as `adaptive_diff_props.rs` and
//! `chaos_props.rs` (the build vendors only a minimal rand shim).
//! Meaningfulness floors prove the sweep actually spilled — in all three
//! governed operators — instead of vacuously comparing in-memory runs.

use engine::{ChaosConf, ChaosPlan, MemoryStats};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql::prelude::*;
use std::sync::Arc;

const ITERS: u64 = 48;

fn fact_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, true),
        StructField::new("v", DataType::Long, true),
        StructField::new("s", DataType::String, true),
    ]))
}

fn dim_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("dk", DataType::Long, true),
        StructField::new("w", DataType::String, true),
    ]))
}

const STR_POOL: &[&str] = &["engineering", "sales", "", "operations", "человек", "hr"];

/// Fact rows with a string payload so buffered bytes grow fast enough to
/// overrun small budgets; ~10% NULL keys exercise the null-bucket and
/// null-sentinel paths through spilling joins and aggregates.
fn arb_fact_rows(rng: &mut StdRng) -> Vec<Row> {
    let n = rng.random_range(100usize..700);
    (0..n)
        .map(|i| {
            let k = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..24))
            };
            let s = if rng.random_bool(0.05) {
                Value::Null
            } else {
                Value::str(STR_POOL[rng.random_range(0..STR_POOL.len())])
            };
            Row::new(vec![k, Value::Long(i as i64), s])
        })
        .collect()
}

fn arb_dim_rows(rng: &mut StdRng) -> Vec<Row> {
    let m = rng.random_range(1usize..48);
    (0..m)
        .map(|_| {
            let dk = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..24))
            };
            Row::new(vec![
                dk,
                Value::str(STR_POOL[rng.random_range(0..STR_POOL.len())]),
            ])
        })
        .collect()
}

struct GenQuery {
    fact_rows: Vec<Row>,
    dim_rows: Vec<Row>,
    join: Option<JoinType>,
    aggregate: bool,
    sort: bool,
    vectorize: bool,
    adaptive: bool,
    budget: u64,
}

fn arb_query(rng: &mut StdRng) -> GenQuery {
    let join = match rng.random_range(0u32..10) {
        0 | 1 => None,
        2..=5 => Some(JoinType::Inner),
        6 | 7 => Some(JoinType::Left),
        8 => Some(JoinType::Right),
        _ => Some(JoinType::Full),
    };
    let aggregate = rng.random_bool(0.5);
    let mut sort = rng.random_bool(0.5);
    if join.is_none() && !aggregate {
        sort = true; // always at least one governed operator
    }
    GenQuery {
        fact_rows: arb_fact_rows(rng),
        dim_rows: arb_dim_rows(rng),
        join,
        aggregate,
        sort,
        vectorize: rng.random_bool(0.5),
        adaptive: rng.random_bool(0.5),
        budget: [4u64 << 10, 8 << 10, 16 << 10][rng.random_range(0usize..3)],
    }
}

struct Outcome {
    rows: Vec<String>,
    stats: Option<MemoryStats>,
    /// Physical-operator names that recorded a nonzero `spill_count`.
    spilled_ops: Vec<String>,
}

/// Execute `q` on a fresh context under `budget` bytes (0 = unbounded).
fn run(q: &GenQuery, budget: u64, chaos: Option<Arc<ChaosPlan>>) -> Outcome {
    let ctx = SQLContext::new_local(2);
    ctx.spark_context().set_chaos(chaos);
    ctx.set_conf(|c| {
        c.vectorize_enabled = q.vectorize;
        c.adaptive_enabled = q.adaptive;
        // Broadcast joins are bounded by the planner's threshold, not the
        // pool; pin the shuffled (governed) path so the sweep means something.
        c.broadcast_threshold = 0;
        c.memory_budget_bytes = budget;
        c.shuffle_partitions = 4;
    });
    // Fact over a bare RDD: unknown statistics keep the planner honest.
    let fact_rdd = ctx.spark_context().parallelize(q.fact_rows.clone(), 3);
    let fact = ctx
        .dataframe_from_rdd("fact", fact_schema(), fact_rdd)
        .expect("fact");
    let mut df = match q.join {
        // Dim on the left: hash joins build from the right stream, so the
        // *large* fact table is the side under memory pressure.
        Some(jt) => {
            let dim = ctx
                .create_dataframe(dim_schema(), q.dim_rows.clone())
                .expect("dim");
            dim.join(&fact, jt, Some(col("dk").eq(col("k"))))
                .expect("join")
        }
        None => fact,
    };
    if q.aggregate {
        df = df
            // High-cardinality grouping (hundreds of groups) so the
            // aggregation hash table actually outgrows small budgets.
            .group_by(vec![col("v").rem(lit(257i64)).alias("g"), col("k")])
            .agg(vec![
                count_star().alias("n"),
                sum(col("v")).alias("sv"),
                min(col("s")).alias("ms"),
            ])
            .expect("aggregate");
    }
    if q.sort {
        let orders = if q.aggregate {
            vec![col("n").desc(), col("g").asc()]
        } else {
            vec![col("s").asc(), col("v").desc()]
        };
        df = df.order_by(orders).expect("sort");
    }
    let qe = df.query_execution().expect("query_execution");
    let mut rows: Vec<String> = qe
        .collect()
        .expect("collect")
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    rows.sort();
    let spilled_ops = ctx
        .query_log()
        .last()
        .map(|e| {
            e.operators
                .iter()
                .filter(|op| op.extras.iter().any(|(k, v)| k == "spill_count" && *v > 0))
                .map(|op| op.operator.clone())
                .collect()
        })
        .unwrap_or_default();
    Outcome {
        rows,
        stats: qe.memory_stats(),
        spilled_ops,
    }
}

#[test]
fn spilling_plans_match_unbounded_results() {
    let mut nonempty = 0u32;
    let mut spilled_runs = 0u32;
    let mut join_spills = 0u32;
    let mut agg_spills = 0u32;
    let mut sort_spills = 0u32;
    let mut total_spill_count = 0u64;

    for seed in 0..ITERS {
        let mut rng = StdRng::seed_from_u64(0x5B11 ^ seed.wrapping_mul(0x9E37_79B9));
        let q = arb_query(&mut rng);

        let baseline = run(&q, 0, None);
        assert!(
            baseline.stats.is_none(),
            "seed {seed}: unbounded run reported pool stats"
        );
        assert!(
            baseline.spilled_ops.is_empty(),
            "seed {seed}: unbounded run spilled"
        );

        let bounded = run(&q, q.budget, None);
        assert_eq!(
            bounded.rows, baseline.rows,
            "seed {seed}: bounded run diverged (join={:?}, agg={}, sort={}, vec={}, \
             adaptive={}, budget={})",
            q.join, q.aggregate, q.sort, q.vectorize, q.adaptive, q.budget
        );
        let stats = bounded.stats.expect("bounded run must report pool stats");
        assert_eq!(stats.budget, q.budget, "seed {seed}");
        assert!(
            stats.peak <= stats.budget,
            "seed {seed}: peak {} exceeded budget {}",
            stats.peak,
            stats.budget
        );
        assert_eq!(
            stats.spill_files_created,
            stats.spill_files_deleted,
            "seed {seed}: leaked {} spill files",
            stats.spill_files_created - stats.spill_files_deleted
        );

        if !baseline.rows.is_empty() {
            nonempty += 1;
        }
        if stats.spill_count > 0 {
            spilled_runs += 1;
        }
        total_spill_count += stats.spill_count;
        for op in &bounded.spilled_ops {
            if op.contains("Join") {
                join_spills += 1;
            }
            if op.contains("Aggregate") {
                agg_spills += 1;
            }
            if op.contains("Sort") {
                sort_spills += 1;
            }
        }
    }

    eprintln!(
        "spill sweep: spilled_runs={spilled_runs}/{ITERS} total_spills={total_spill_count} \
         join={join_spills} agg={agg_spills} sort={sort_spills}"
    );
    // Meaningfulness floors: the budgets must actually force disk spills,
    // and all three governed operators must have taken their spill path.
    assert!(
        nonempty > ITERS as u32 / 2,
        "only {nonempty} non-empty results"
    );
    assert!(
        spilled_runs > ITERS as u32 / 3,
        "only {spilled_runs} runs spilled"
    );
    assert!(
        join_spills >= 3,
        "hash join spilled in only {join_spills} runs"
    );
    assert!(
        agg_spills >= 3,
        "hash aggregate spilled in only {agg_spills} runs"
    );
    assert!(sort_spills >= 3, "sort spilled in only {sort_spills} runs");
}

/// External sort must reproduce the in-memory sort *exactly* — including
/// the order of rows with equal keys (stable, arrival order) — when sort
/// is the only operator, so both paths see the same input sequence.
#[test]
fn external_sort_reproduces_in_memory_order_exactly() {
    let mut rng = StdRng::seed_from_u64(0x50FA);
    let q = GenQuery {
        // Heavy key duplication: the string pool has 6 values over ~600
        // rows, so ties dominate and any instability would reorder them.
        fact_rows: (0..600)
            .map(|_| {
                Row::new(vec![
                    Value::Long(rng.random_range(0i64..4)),
                    Value::Long(rng.random_range(0i64..3)),
                    Value::str(STR_POOL[rng.random_range(0..STR_POOL.len())]),
                ])
            })
            .chain((0..600).map(|i| Row::new(vec![Value::Null, Value::Long(i % 2), Value::Null])))
            .collect(),
        dim_rows: vec![],
        join: None,
        aggregate: false,
        sort: false, // ordered below, un-sorted comparison
        vectorize: false,
        adaptive: false,
        budget: 4 << 10,
    };
    let order = |budget: u64| {
        let ctx = SQLContext::new_local(2);
        ctx.set_conf(|c| {
            c.memory_budget_bytes = budget;
            c.vectorize_enabled = false;
        });
        let rdd = ctx.spark_context().parallelize(q.fact_rows.clone(), 3);
        let df = ctx
            .dataframe_from_rdd("fact", fact_schema(), rdd)
            .unwrap()
            .order_by(vec![col("s").asc(), col("k").desc()])
            .unwrap();
        let qe = df.query_execution().unwrap();
        let rows: Vec<String> = qe
            .collect()
            .unwrap()
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        (rows, qe.memory_stats())
    };
    let (expect, none) = order(0);
    assert!(none.is_none());
    let (got, stats) = order(q.budget);
    let stats = stats.unwrap();
    assert!(stats.spill_count > 0, "external sort never spilled");
    assert!(stats.peak <= stats.budget);
    // Exact sequence equality — not a sorted multiset.
    assert_eq!(got, expect, "external sort reordered equal-key rows");
}

/// Spilling under chaos-injected task panics, fetch failures, and
/// executor deaths: results still match a fault-free unbounded run, and
/// no spill file outlives the query even when tasks die mid-spill (the
/// files are dropped during unwind and re-created by the retry).
#[test]
fn chaotic_spilling_runs_leak_nothing_and_match() {
    const CHAOS_ITERS: u64 = 24;
    let mut faulted = 0u32;
    let mut spilled = 0u32;
    for seed in 0..CHAOS_ITERS {
        let mut rng = StdRng::seed_from_u64(0xC506 ^ seed.wrapping_mul(0x85EB_CA6B));
        let mut q = arb_query(&mut rng);
        q.budget = 6 << 10;
        let baseline = run(&q, 0, None);

        let plan = Arc::new(ChaosPlan::new(ChaosConf {
            task_fault_prob: 0.08,
            fetch_fault_prob: 0.08,
            max_task_panics: 2,
            max_executor_deaths: 1,
            max_fetch_failures: 2,
            ..ChaosConf::seeded(0xFA11 ^ seed.wrapping_mul(0x9E37_79B9))
        }));
        let chaotic = run(&q, q.budget, Some(plan.clone()));
        assert_eq!(
            chaotic.rows, baseline.rows,
            "seed {seed}: chaotic spilling run diverged (join={:?}, agg={}, sort={})",
            q.join, q.aggregate, q.sort
        );
        let stats = chaotic.stats.expect("bounded run must report pool stats");
        assert!(stats.peak <= stats.budget, "seed {seed}: peak above budget");
        assert_eq!(
            stats.spill_files_created, stats.spill_files_deleted,
            "seed {seed}: chaos run leaked spill files"
        );
        let s = plan.stats();
        if s.task_panics + s.executor_deaths + s.fetch_failures > 0 {
            faulted += 1;
        }
        if stats.spill_count > 0 {
            spilled += 1;
        }
    }
    eprintln!("chaos spill sweep: faulted={faulted}/{CHAOS_ITERS} spilled={spilled}/{CHAOS_ITERS}");
    assert!(
        faulted >= CHAOS_ITERS as u32 / 3,
        "only {faulted} runs saw a fault"
    );
    assert!(
        spilled >= CHAOS_ITERS as u32 / 3,
        "only {spilled} runs spilled"
    );
}
