//! End-to-end SQL tests: parse → analyze → optimize → plan → execute.

use catalyst::value::Value;
use catalyst::Row;
use spark_sql::prelude::*;
use std::sync::Arc;

fn ctx_with_tables() -> SQLContext {
    let ctx = SQLContext::new_local(4);
    // employees(id, name, gender, deptId, salary)
    let emp_schema = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Long, false),
        StructField::new("name", DataType::String, false),
        StructField::new("gender", DataType::String, false),
        StructField::new("deptId", DataType::Long, false),
        StructField::new("salary", DataType::Double, false),
    ]));
    let employees: Vec<Row> = vec![
        (1, "alice", "female", 1, 100.0),
        (2, "bob", "male", 1, 80.0),
        (3, "carol", "female", 2, 120.0),
        (4, "dan", "male", 2, 90.0),
        (5, "erin", "female", 2, 110.0),
        (6, "frank", "male", 3, 70.0),
    ]
    .into_iter()
    .map(|(id, n, g, d, s)| {
        Row::new(vec![
            Value::Long(id),
            Value::str(n),
            Value::str(g),
            Value::Long(d),
            Value::Double(s),
        ])
    })
    .collect();
    ctx.register_rows("employees", emp_schema, employees)
        .unwrap();

    // dept(id, name)
    let dept_schema = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Long, false),
        StructField::new("name", DataType::String, false),
    ]));
    let depts: Vec<Row> = vec![(1, "eng"), (2, "sales"), (3, "hr")]
        .into_iter()
        .map(|(id, n)| Row::new(vec![Value::Long(id), Value::str(n)]))
        .collect();
    ctx.register_rows("dept", dept_schema, depts).unwrap();
    ctx
}

fn rows_sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

#[test]
fn select_where_projection() {
    let ctx = ctx_with_tables();
    let rows = ctx
        .sql("SELECT name FROM employees WHERE salary > 95 ORDER BY name")
        .unwrap()
        .collect()
        .unwrap();
    let names: Vec<&str> = rows.iter().map(|r| r.get_str(0)).collect();
    assert_eq!(names, vec!["alice", "carol", "erin"]);
}

#[test]
fn global_aggregates() {
    let ctx = ctx_with_tables();
    let rows = ctx
        .sql("SELECT count(*), avg(salary), min(salary), max(salary), sum(salary) FROM employees")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 1);
    let r = &rows[0];
    assert_eq!(r.get(0), &Value::Long(6));
    assert!((r.get_double(1) - 95.0).abs() < 1e-9);
    assert_eq!(r.get(2), &Value::Double(70.0));
    assert_eq!(r.get(3), &Value::Double(120.0));
    assert_eq!(r.get(4), &Value::Double(570.0));
}

#[test]
fn count_on_empty_table_is_zero() {
    let ctx = SQLContext::new_local(2);
    let schema = Arc::new(Schema::new(vec![StructField::new(
        "x",
        DataType::Long,
        false,
    )]));
    ctx.register_rows("empty", schema, vec![]).unwrap();
    let rows = ctx
        .sql("SELECT count(*) FROM empty")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows[0].get(0), &Value::Long(0));
}

#[test]
fn group_by_with_having() {
    let ctx = ctx_with_tables();
    let rows = ctx
        .sql(
            "SELECT deptId, count(*) AS n, avg(salary) AS a FROM employees \
             GROUP BY deptId HAVING count(*) > 1 ORDER BY deptId",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get_long(0), 1);
    assert_eq!(rows[0].get_long(1), 2);
    assert!((rows[0].get_double(2) - 90.0).abs() < 1e-9);
    assert_eq!(rows[1].get_long(0), 2);
    assert_eq!(rows[1].get_long(1), 3);
}

#[test]
fn the_papers_female_count_query() {
    // §3.3: employees JOIN dept, filter gender, group by dept, count.
    let ctx = ctx_with_tables();
    let rows = ctx
        .sql(
            "SELECT dept.id, dept.name, count(employees.name) AS c \
             FROM employees JOIN dept ON employees.deptId = dept.id \
             WHERE employees.gender = 'female' \
             GROUP BY dept.id, dept.name ORDER BY dept.id",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get_str(1), "eng");
    assert_eq!(rows[0].get_long(2), 1);
    assert_eq!(rows[1].get_str(1), "sales");
    assert_eq!(rows[1].get_long(2), 2);
}

#[test]
fn join_types() {
    let ctx = SQLContext::new_local(2);
    let schema = Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, false),
        StructField::new("v", DataType::String, false),
    ]));
    ctx.register_rows(
        "l",
        schema.clone(),
        vec![
            Row::new(vec![Value::Long(1), Value::str("l1")]),
            Row::new(vec![Value::Long(2), Value::str("l2")]),
        ],
    )
    .unwrap();
    let schema_r = Arc::new(Schema::new(vec![
        StructField::new("k2", DataType::Long, false),
        StructField::new("w", DataType::String, false),
    ]));
    ctx.register_rows(
        "r",
        schema_r,
        vec![
            Row::new(vec![Value::Long(2), Value::str("r2")]),
            Row::new(vec![Value::Long(3), Value::str("r3")]),
        ],
    )
    .unwrap();

    let inner = ctx
        .sql("SELECT * FROM l JOIN r ON l.k = r.k2")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(inner.len(), 1);
    assert_eq!(inner[0].get_str(1), "l2");

    let left = rows_sorted(
        ctx.sql("SELECT * FROM l LEFT JOIN r ON l.k = r.k2")
            .unwrap()
            .collect()
            .unwrap(),
    );
    assert_eq!(left.len(), 2);
    assert!(
        left[0].is_null(2),
        "unmatched left row null-extended: {:?}",
        left[0]
    );

    let right = rows_sorted(
        ctx.sql("SELECT * FROM l RIGHT JOIN r ON l.k = r.k2")
            .unwrap()
            .collect()
            .unwrap(),
    );
    assert_eq!(right.len(), 2);
    assert!(right[0].is_null(0), "{right:?}");

    let full = ctx
        .sql("SELECT * FROM l FULL JOIN r ON l.k = r.k2")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(full.len(), 3);

    let cross = ctx
        .sql("SELECT * FROM l CROSS JOIN r")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(cross.len(), 4);
}

#[test]
fn join_results_identical_broadcast_vs_shuffled() {
    let ctx = ctx_with_tables();
    let q = "SELECT employees.name, dept.name FROM employees \
             JOIN dept ON employees.deptId = dept.id ORDER BY employees.name";
    let broadcast = ctx.sql(q).unwrap().collect().unwrap();
    ctx.set_conf(|c| c.broadcast_threshold = 0); // force shuffled join
    let shuffled = ctx.sql(q).unwrap().collect().unwrap();
    assert_eq!(broadcast, shuffled);
    assert_eq!(broadcast.len(), 6);
}

#[test]
fn union_all_distinct_limit() {
    let ctx = ctx_with_tables();
    let n = ctx
        .sql("SELECT name FROM employees UNION ALL SELECT name FROM employees")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n, 12);
    let d = ctx
        .sql("SELECT DISTINCT gender FROM employees")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(d.len(), 2);
    let l = ctx
        .sql("SELECT * FROM employees LIMIT 3")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(l, 3);
}

#[test]
fn order_by_desc_with_limit_takes_top_k() {
    let ctx = ctx_with_tables();
    let rows = ctx
        .sql("SELECT name, salary FROM employees ORDER BY salary DESC LIMIT 2")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get_str(0), "carol");
    assert_eq!(rows[1].get_str(0), "erin");
}

#[test]
fn expressions_case_like_in_between() {
    let ctx = ctx_with_tables();
    let rows = ctx
        .sql(
            "SELECT name, CASE WHEN salary >= 100 THEN 'high' ELSE 'low' END AS band \
             FROM employees WHERE name LIKE '%a%' AND deptId IN (1, 2) \
             AND salary BETWEEN 80 AND 120 ORDER BY name",
        )
        .unwrap()
        .collect()
        .unwrap();
    let got: Vec<(&str, &str)> = rows.iter().map(|r| (r.get_str(0), r.get_str(1))).collect();
    assert_eq!(
        got,
        vec![("alice", "high"), ("carol", "high"), ("dan", "low")]
    );
}

#[test]
fn subquery_in_from() {
    let ctx = ctx_with_tables();
    let rows = ctx
        .sql(
            "SELECT d, total FROM \
             (SELECT deptId AS d, sum(salary) AS total FROM employees GROUP BY deptId) t \
             WHERE total > 200 ORDER BY d",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get_long(0), 2);
}

#[test]
fn udf_in_sql() {
    // §3.7: inline UDF registration usable from SQL.
    let ctx = ctx_with_tables();
    ctx.register_udf("double_salary", DataType::Double, |args| {
        Ok(Value::Double(args[0].as_f64().unwrap_or(0.0) * 2.0))
    });
    let rows = ctx
        .sql("SELECT double_salary(salary) FROM employees WHERE name = 'alice'")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows[0].get(0), &Value::Double(200.0));
}

#[test]
fn arithmetic_and_functions() {
    let ctx = ctx_with_tables();
    let rows = ctx
        .sql(
            "SELECT upper(name), length(name), salary * 2 + 1, substr(name, 1, 2) \
             FROM employees WHERE id = 1",
        )
        .unwrap()
        .collect()
        .unwrap();
    let r = &rows[0];
    assert_eq!(r.get_str(0), "ALICE");
    assert_eq!(r.get(1), &Value::Int(5));
    assert_eq!(r.get(2), &Value::Double(201.0));
    assert_eq!(r.get_str(3), "al");
}

#[test]
fn count_distinct() {
    let ctx = ctx_with_tables();
    let rows = ctx
        .sql("SELECT count(DISTINCT deptId) FROM employees")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows[0].get(0), &Value::Long(3));
}

#[test]
fn analysis_errors_are_eager_and_helpful() {
    let ctx = ctx_with_tables();
    let err = ctx
        .sql("SELECT nope FROM employees")
        .unwrap_err()
        .to_string();
    assert!(err.contains("nope"), "{err}");
    assert!(
        err.contains("salary"),
        "should list available columns: {err}"
    );

    let err = ctx.sql("SELECT * FROM ghosts").unwrap_err().to_string();
    assert!(err.contains("ghosts"), "{err}");
    assert!(err.contains("employees"), "should list known tables: {err}");

    // Aggregate misuse caught at analysis, before any execution.
    let err = ctx
        .sql("SELECT name, count(*) FROM employees GROUP BY deptId")
        .unwrap_err()
        .to_string();
    assert!(err.contains("GROUP BY"), "{err}");
}

#[test]
fn explain_shows_three_plans() {
    let ctx = ctx_with_tables();
    let df = ctx
        .sql("EXPLAIN SELECT name FROM employees WHERE salary > 100")
        .unwrap();
    let text: Vec<Row> = df.collect().unwrap();
    let all: String = text
        .iter()
        .map(|r| r.get_str(0).to_string() + "\n")
        .collect();
    assert!(all.contains("Analyzed Logical Plan"), "{all}");
    assert!(all.contains("Optimized Logical Plan"), "{all}");
    assert!(all.contains("Physical Plan"), "{all}");
}

#[test]
fn cache_table_roundtrip() {
    let ctx = ctx_with_tables();
    ctx.sql("CACHE TABLE employees").unwrap();
    let n = ctx
        .sql("SELECT count(*) FROM employees")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(n[0].get(0), &Value::Long(6));
    // Cached results identical after another query.
    let rows = ctx
        .sql("SELECT name FROM employees WHERE salary > 95 ORDER BY name")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 3);
    ctx.sql("UNCACHE TABLE employees").unwrap();
    assert_eq!(
        ctx.sql("SELECT count(*) FROM employees")
            .unwrap()
            .collect()
            .unwrap()[0]
            .get(0),
        &Value::Long(6)
    );
}

/// Losing the executors holding a `CACHE TABLE`'d relation's blocks must
/// be transparent: the next scan recomputes the lost partitions from
/// lineage, repopulates the columnar cache, and the recovery shows up in
/// the engine's `cache_recomputes` counter and in `explain_analyze`.
#[test]
fn cached_table_recomputes_after_executor_loss() {
    use catalyst::plan::LogicalPlan;
    use catalyst::source::BaseRelation;
    use engine::metrics::Metrics;
    use spark_sql::cache::CachedRelation;

    let ctx = ctx_with_tables();
    let sc = ctx.spark_context().clone();
    sc.set_chaos(None); // exact recompute accounting below
    ctx.sql("CACHE TABLE employees").unwrap();
    let q = "SELECT deptId, count(*) FROM employees GROUP BY deptId ORDER BY deptId";
    let baseline = ctx.sql(q).unwrap().collect().unwrap();

    // The catalog now serves employees from the in-memory cache, fully
    // resident after the warmup query.
    let df = ctx.table("employees").unwrap();
    let mut plan = df.logical_plan();
    while let LogicalPlan::SubqueryAlias { input, .. } = plan {
        plan = input;
    }
    let LogicalPlan::Scan { relation, .. } = plan else {
        panic!("cached table must resolve to a scan: {plan:?}");
    };
    let cached = relation
        .as_any()
        .downcast_ref::<CachedRelation>()
        .expect("cached table must scan a CachedRelation");
    let total = relation.num_partitions();
    assert_eq!(cached.resident_partitions(), total);
    assert!(cached.is_materialized());

    // Kill every executor slot: all of the relation's blocks vanish.
    let before = Metrics::get(&sc.metrics().cache_recomputes);
    for ex in 0..4 {
        sc.lose_executor(ex);
    }
    assert_eq!(cached.resident_partitions(), 0);

    // The next run recomputes from lineage, answers identically, and the
    // columnar cache is resident again.
    let qe = ctx.sql(q).unwrap().query_execution().unwrap();
    let report = qe.explain_analyze().unwrap();
    assert_eq!(ctx.sql(q).unwrap().collect().unwrap(), baseline);
    assert_eq!(cached.resident_partitions(), total);
    assert_eq!(
        Metrics::get(&sc.metrics().cache_recomputes),
        before + total as u64,
        "every lost partition counts one recompute"
    );
    assert!(report.contains("== Fault Recovery =="), "{report}");
    assert!(report.contains("cache recomputes:"), "{report}");
    // Still a columnar, stats-served cache after the refill.
    assert!(cached.size_in_bytes().is_some());
}

#[test]
fn create_temp_table_using_json() {
    let dir = std::env::temp_dir().join(format!("sqltest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("logs.json");
    std::fs::write(
        &path,
        "{\"userId\": 1, \"message\": \"hello\"}\n{\"userId\": 2, \"message\": \"bye\"}\n",
    )
    .unwrap();
    let ctx = SQLContext::new_local(2);
    ctx.sql(&format!(
        "CREATE TEMPORARY TABLE logs USING json OPTIONS (path '{}')",
        path.display()
    ))
    .unwrap();
    let rows = ctx
        .sql("SELECT message FROM logs WHERE userId = 2")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows[0].get_str(0), "bye");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shark_like_config_produces_same_results() {
    // Ablation sanity: with codegen/columnar/pushdown all off, answers
    // must be identical (only slower).
    let ctx = ctx_with_tables();
    let q = "SELECT deptId, count(*), avg(salary) FROM employees \
             WHERE name LIKE '%a%' GROUP BY deptId ORDER BY deptId";
    let fast = ctx.sql(q).unwrap().collect().unwrap();
    ctx.set_conf(|c| *c = spark_sql::SqlConf::shark_like());
    let slow = ctx.sql(q).unwrap().collect().unwrap();
    assert_eq!(fast, slow);
}

#[test]
fn decimal_sum_via_decimal_aggregates_rule() {
    let ctx = SQLContext::new_local(2);
    let schema = Arc::new(Schema::new(vec![StructField::new(
        "price",
        DataType::Decimal(6, 2),
        false,
    )]));
    let rows: Vec<Row> = (1..=100)
        .map(|i| Row::new(vec![Value::Decimal(i * 100, 6, 2)])) // i.00
        .collect();
    ctx.register_rows("sales", schema, rows).unwrap();
    let out = ctx
        .sql("SELECT sum(price) FROM sales")
        .unwrap()
        .collect()
        .unwrap();
    // sum(1..=100) = 5050.00 with precision 6+10.
    assert_eq!(out[0].get(0), &Value::Decimal(505_000, 16, 2));
}

#[test]
fn three_table_join() {
    let ctx = ctx_with_tables();
    let schema = Arc::new(Schema::new(vec![
        StructField::new("dept_id", DataType::Long, false),
        StructField::new("budget", DataType::Long, false),
    ]));
    ctx.register_rows(
        "budgets",
        schema,
        vec![
            Row::new(vec![Value::Long(1), Value::Long(1000)]),
            Row::new(vec![Value::Long(2), Value::Long(2000)]),
        ],
    )
    .unwrap();
    let rows = ctx
        .sql(
            "SELECT employees.name, dept.name, budgets.budget FROM employees \
             JOIN dept ON employees.deptId = dept.id \
             JOIN budgets ON dept.id = budgets.dept_id \
             WHERE budgets.budget >= 2000 ORDER BY employees.name",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].get_str(0), "carol");
}

#[test]
fn nulls_flow_through_correctly() {
    let ctx = SQLContext::new_local(2);
    let schema = Arc::new(Schema::new(vec![
        StructField::new("x", DataType::Long, true),
        StructField::new("g", DataType::String, false),
    ]));
    ctx.register_rows(
        "t",
        schema,
        vec![
            Row::new(vec![Value::Long(1), Value::str("a")]),
            Row::new(vec![Value::Null, Value::str("a")]),
            Row::new(vec![Value::Long(3), Value::str("b")]),
        ],
    )
    .unwrap();
    // COUNT skips nulls; COUNT(*) doesn't; comparisons with NULL filter out.
    let rows = ctx
        .sql("SELECT g, count(x), count(*), sum(x) FROM t GROUP BY g ORDER BY g")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows[0].get(1), &Value::Long(1));
    assert_eq!(rows[0].get(2), &Value::Long(2));
    assert_eq!(rows[0].get(3), &Value::Long(1));
    let filtered = ctx
        .sql("SELECT * FROM t WHERE x > 0")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(filtered, 2);
    let is_null = ctx
        .sql("SELECT * FROM t WHERE x IS NULL")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(is_null, 1);
}
