//! Differential property tests for vectorized execution: randomly
//! generated tables and operator chains must produce *identical* results
//! whether they run through the columnar batch path (`RowBatch` +
//! vectorized kernels) or the row-at-a-time interpreter/codegen path.
//!
//! Same deterministic seeded-sweep style as
//! `catalyst/tests/plan_validator_props.rs` (the build environment
//! vendors only a minimal rand shim). Each iteration runs the same plan
//! under vectorize × codegen on/off — four configurations — and asserts
//! the sorted result multisets match.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql::prelude::*;
use std::sync::Arc;

use catalyst::expr::builders::{count_star, sum as sum_agg};

const ITERS: u64 = 120;

/// A visible column while generating: name + type, so every generated
/// expression is well typed against the current plan output.
#[derive(Clone)]
struct GenCol {
    name: String,
    dtype: DataType,
}

fn arb_dtype(rng: &mut StdRng) -> DataType {
    match rng.random_range(0u32..5) {
        0 => DataType::Long,
        1 => DataType::Int,
        2 => DataType::Double,
        3 => DataType::String,
        _ => DataType::Boolean,
    }
}

const STR_POOL: &[&str] = &["ab", "abc", "abq", "xyz", "", "zzz"];

fn arb_value(rng: &mut StdRng, dtype: &DataType, nullable: bool) -> Value {
    if nullable && rng.random_bool(0.2) {
        return Value::Null;
    }
    match dtype {
        DataType::Long => Value::Long(rng.random_range(0i64..80) - 40),
        DataType::Int => Value::Int((rng.random_range(0i64..80) - 40) as i32),
        DataType::Double => Value::Double(rng.random_range(0i64..400) as f64 / 4.0 - 50.0),
        DataType::String => Value::str(STR_POOL[rng.random_range(0..STR_POOL.len())]),
        _ => Value::Boolean(rng.random_bool(0.5)),
    }
}

/// A random base table: guaranteed non-null Long key `k` plus 1..4
/// nullable columns of random type, with a healthy share of NULLs.
fn arb_table(rng: &mut StdRng) -> (SchemaRef, Vec<Row>) {
    let mut fields = vec![StructField::new("k", DataType::Long, false)];
    for i in 0..rng.random_range(1usize..4) {
        fields.push(StructField::new(format!("c{i}"), arb_dtype(rng), true));
    }
    let schema = Arc::new(Schema::new(fields));
    let n = rng.random_range(0usize..400);
    let rows = (0..n)
        .map(|i| {
            Row::new(
                schema
                    .fields()
                    .iter()
                    .enumerate()
                    .map(|(j, f)| {
                        if j == 0 {
                            Value::Long(i as i64)
                        } else {
                            arb_value(rng, &f.dtype, true)
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    (schema, rows)
}

/// A well-typed boolean predicate over one visible column, occasionally
/// wrapped in 3VL connectives so kernel And/Or/Not get exercised against
/// NULL inputs.
fn arb_predicate(rng: &mut StdRng, cols: &[GenCol]) -> Expr {
    let c = &cols[rng.random_range(0..cols.len() as u32) as usize];
    let base = match &c.dtype {
        DataType::Long => match rng.random_range(0u32..3) {
            0 => col(&c.name).gt(lit(rng.random_range(0i64..40) - 20)),
            1 => col(&c.name)
                .rem(lit(7i64))
                .eq(lit(rng.random_range(0i64..7))),
            _ => col(&c.name).lt_eq(lit(rng.random_range(0i64..40))),
        },
        DataType::Int => col(&c.name).lt(lit((rng.random_range(0i64..40) - 20) as i32)),
        DataType::Double => col(&c.name).gt_eq(lit(rng.random_range(0i64..100) as f64 - 50.0)),
        DataType::String => {
            if rng.random_bool(0.5) {
                col(&c.name).eq(lit(STR_POOL[rng.random_range(0..STR_POOL.len())]))
            } else {
                col(&c.name).like(lit("ab%"))
            }
        }
        _ => col(&c.name).eq(lit(rng.random_bool(0.5))),
    };
    match rng.random_range(0u32..5) {
        0 => base.and(col(&cols[0].name).gt_eq(lit(0i64))),
        1 => base.or(col(&c.name).is_null()),
        2 => base.not(),
        3 => base.and(col(&c.name).is_not_null()),
        _ => base,
    }
}

/// A projection: a non-empty subset of the visible columns, plus
/// (sometimes) a computed expression — arithmetic with div/mod-by-zero
/// hazards, string concat, boolean not — so both the typed kernels and
/// the interpreter fallback see traffic. Returns the exprs and the
/// resulting visible columns.
fn arb_projection(
    rng: &mut StdRng,
    cols: &[GenCol],
    next_id: &mut usize,
) -> (Vec<Expr>, Vec<GenCol>) {
    let mut keep: Vec<GenCol> = cols
        .iter()
        .filter(|_| rng.random_bool(0.6))
        .cloned()
        .collect();
    if keep.is_empty() {
        keep.push(cols[rng.random_range(0..cols.len() as u32) as usize].clone());
    }
    let mut exprs: Vec<Expr> = keep.iter().map(|c| col(&c.name)).collect();
    let mut out = keep;
    if rng.random_bool(0.7) {
        let c = &cols[rng.random_range(0..cols.len() as u32) as usize];
        let (e, dtype) = match &c.dtype {
            DataType::Long | DataType::Int => match rng.random_range(0u32..4) {
                0 => (col(&c.name).add(lit(3i64)), DataType::Long),
                1 => (col(&c.name).mul(lit(-2i64)), DataType::Long),
                // Divisor sweeps through 0 ⇒ NULL lanes on both paths.
                2 => (
                    col(&c.name).div(lit(rng.random_range(0i64..3))),
                    DataType::Double,
                ),
                _ => (
                    col(&c.name).rem(lit(rng.random_range(0i64..3))),
                    c.dtype.clone(),
                ),
            },
            DataType::Double => (col(&c.name).mul(lit(0.5f64)), DataType::Double),
            DataType::String => (col(&c.name).add(lit("!")), DataType::String),
            _ => (col(&c.name).not(), DataType::Boolean),
        };
        let name = format!("e{next_id}");
        *next_id += 1;
        exprs.push(e.alias(name.clone()));
        out.push(GenCol { name, dtype });
    }
    (exprs, out)
}

/// One randomly generated query: operator chain + optional aggregate.
enum Op {
    Filter(Expr),
    Project(Vec<Expr>),
}

struct GenQuery {
    schema: SchemaRef,
    rows: Vec<Row>,
    cache: bool,
    ops: Vec<Op>,
    aggregate: bool,
}

fn arb_query(rng: &mut StdRng) -> GenQuery {
    let (schema, rows) = arb_table(rng);
    let mut cols: Vec<GenCol> = schema
        .fields()
        .iter()
        .map(|f| GenCol {
            name: f.name.to_string(),
            dtype: f.dtype.clone(),
        })
        .collect();
    let mut ops = Vec::new();
    let mut next_id = 0usize;
    for _ in 0..rng.random_range(0u32..4) {
        if rng.random_bool(0.5) {
            ops.push(Op::Filter(arb_predicate(rng, &cols)));
        } else {
            let (exprs, out) = arb_projection(rng, &cols, &mut next_id);
            ops.push(Op::Project(exprs));
            cols = out;
        }
    }
    // Aggregate only while the key survives (grouping needs it).
    let aggregate = cols.iter().any(|c| c.name == "k") && rng.random_bool(0.4);
    GenQuery {
        schema,
        rows,
        cache: rng.random_bool(0.5),
        ops,
        aggregate,
    }
}

/// Execute the query under one configuration and return the result as a
/// sorted multiset of row debug strings (Debug is exact for doubles).
fn run(q: &GenQuery, vectorize: bool, codegen: bool) -> Vec<String> {
    let ctx = SQLContext::new_local(2);
    ctx.set_conf(|c| {
        c.vectorize_enabled = vectorize;
        c.codegen_enabled = codegen;
    });
    let mut df = ctx
        .create_dataframe(q.schema.clone(), q.rows.clone())
        .expect("create_dataframe");
    if q.cache {
        df = df.cache().expect("cache");
    }
    for op in &q.ops {
        df = match op {
            Op::Filter(p) => df.where_(p.clone()).expect("filter"),
            Op::Project(exprs) => df.select(exprs.clone()).expect("project"),
        };
    }
    if q.aggregate {
        df = df
            .group_by(vec![col("k").rem(lit(4i64)).alias("g")])
            .agg(vec![count_star().alias("n"), sum_agg(col("k")).alias("s")])
            .expect("aggregate");
    }
    let mut out: Vec<String> = df
        .collect()
        .expect("collect")
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    out.sort();
    out
}

#[test]
fn vectorized_and_row_paths_agree_on_random_plans() {
    let mut nonempty = 0u32;
    let mut cached = 0u32;
    let mut aggregated = 0u32;
    for seed in 0..ITERS {
        let mut rng = StdRng::seed_from_u64(0xBA7C4 ^ (seed * 0x9E37_79B9));
        let q = arb_query(&mut rng);
        let baseline = run(&q, false, true);
        for (vectorize, codegen) in [(true, true), (true, false), (false, false)] {
            let got = run(&q, vectorize, codegen);
            assert_eq!(
                got,
                baseline,
                "seed {seed}: vectorize={vectorize} codegen={codegen} diverged \
                 (cache={}, ops={}, agg={})",
                q.cache,
                q.ops.len(),
                q.aggregate
            );
        }
        if !baseline.is_empty() {
            nonempty += 1;
        }
        if q.cache {
            cached += 1;
        }
        if q.aggregate {
            aggregated += 1;
        }
    }
    // Meaningfulness floors: the sweep must actually exercise the
    // interesting paths, not vacuously compare empty results.
    assert!(
        nonempty > ITERS as u32 / 2,
        "only {nonempty} non-empty results"
    );
    assert!(cached > ITERS as u32 / 4, "only {cached} cached runs");
    assert!(
        aggregated > ITERS as u32 / 8,
        "only {aggregated} aggregated runs"
    );
}

/// The batch path must also agree on whole-table scans with no operators
/// at all (pure cached-scan decode) and on the `count()` fast path.
#[test]
fn vectorized_count_and_bare_scan_agree() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xC0DE ^ (seed * 0x85EB_CA6B));
        let (schema, rows) = arb_table(&mut rng);
        let mut counts = Vec::new();
        for vectorize in [true, false] {
            let ctx = SQLContext::new_local(2);
            ctx.set_conf(|c| c.vectorize_enabled = vectorize);
            let df = ctx
                .create_dataframe(schema.clone(), rows.clone())
                .unwrap()
                .cache()
                .unwrap();
            let mut got: Vec<String> = df
                .collect()
                .unwrap()
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            got.sort();
            let mut expect: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
            expect.sort();
            assert_eq!(got, expect, "seed {seed}: bare scan, vectorize={vectorize}");
            counts.push(df.count().unwrap());
        }
        assert_eq!(counts[0], counts[1], "seed {seed}: count diverged");
    }
}
