//! Property tests for session isolation of the runtime-config registry:
//! concurrent sessions hammer `SET`/get over the same registry keys with
//! session-unique values, and every read must observe only the session's
//! own writes (or the root default for keys it never touched). The root
//! context's conf must come out of the stampede untouched.
//!
//! Same deterministic seeded-sweep style as `spill_props.rs` (the build
//! vendors only a minimal rand shim).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql::SQLContext;
use std::collections::HashMap;

/// Integer-valued registry keys whose setters accept any positive value
/// and have no shared-engine side effects (the cache/chaos keys are
/// deliberately excluded: those exist to reconfigure *shared* state).
const KEYS: &[&str] = &[
    "spark.sql.shuffle.partitions",
    "spark.sql.vectorize.batchSize",
    "spark.sql.cache.batchSize",
    "spark.sql.autoBroadcastJoinThreshold",
    "spark.sql.memory.budgetBytes",
    "spark.sql.service.workers",
    "spark.sql.service.maxQueued",
    "spark.sql.service.queryTimeoutMs",
];

const SESSIONS: usize = 8;
const ROUNDS: usize = 200;

/// A value no two (session, round) pairs share, so any cross-session
/// bleed-through shows up as a concrete wrong number.
fn unique_value(session: usize, round: usize) -> String {
    (1 + session * (ROUNDS * 13) + round).to_string()
}

#[test]
fn concurrent_sessions_only_observe_their_own_sets() {
    for seed in 0..6u64 {
        let root = SQLContext::new_local(2);
        let defaults: Vec<String> = KEYS.iter().map(|k| root.conf().get(k).unwrap()).collect();

        std::thread::scope(|scope| {
            for s in 0..SESSIONS {
                let session = root.new_session(format!("s{s}"));
                let defaults = &defaults;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed * 1000 + s as u64);
                    // What this session believes each key holds.
                    let mut mine: HashMap<&str, String> = HashMap::new();
                    for round in 0..ROUNDS {
                        let ki = rng.random_range(0usize..KEYS.len());
                        let key = KEYS[ki];
                        if rng.random_bool(0.6) {
                            let v = unique_value(s, round);
                            session.set(key, &v).unwrap();
                            mine.insert(key, v);
                        } else {
                            let expected = mine.get(key).unwrap_or(&defaults[ki]);
                            let got = session.conf().get(key).unwrap();
                            assert_eq!(
                                &got, expected,
                                "seed {seed} session {s} round {round}: \
                                 {key} leaked a foreign write"
                            );
                        }
                    }
                    // Final sweep over every key, touched or not.
                    for (ki, key) in KEYS.iter().enumerate() {
                        let expected = mine.get(key).unwrap_or(&defaults[ki]);
                        let got = session.conf().get(key).unwrap();
                        assert_eq!(&got, expected, "seed {seed} session {s} final: {key}");
                    }
                });
            }
        });

        // The stampede of session SETs must not have moved the root.
        for (ki, key) in KEYS.iter().enumerate() {
            assert_eq!(
                root.conf().get(key).unwrap(),
                defaults[ki],
                "seed {seed}: root conf moved for {key}"
            );
        }
    }
}

/// A session snapshots the root conf at creation: root values set before
/// `new_session` are visible, later root changes are not, and the
/// session's own sets never flow back up.
#[test]
fn sessions_snapshot_root_conf_at_creation() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FF + seed);
        let root = SQLContext::new_local(2);
        let ki = rng.random_range(0usize..KEYS.len());
        let key = KEYS[ki];

        let before = (1000 + rng.random_range(0usize..1000)).to_string();
        root.set(key, &before).unwrap();
        let session = root.new_session(format!("snap{seed}"));
        assert_eq!(session.conf().get(key).unwrap(), before);

        let after = (3000 + rng.random_range(0usize..1000)).to_string();
        root.set(key, &after).unwrap();
        assert_eq!(
            session.conf().get(key).unwrap(),
            before,
            "seed {seed}: a root SET after new_session reached the session"
        );

        let own = (5000 + rng.random_range(0usize..1000)).to_string();
        session.set(key, &own).unwrap();
        assert_eq!(
            root.conf().get(key).unwrap(),
            after,
            "seed {seed}: a session SET flowed back to the root"
        );
    }
}
