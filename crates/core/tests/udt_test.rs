//! §4.4.2 end to end: the paper's `PointUDT` registered with a session,
//! flowing through UDFs, the columnar cache (x and y compressed as
//! separate columns), and the colfile write path (seen as pairs of
//! DOUBLEs).

use catalyst::row::Row;
use catalyst::udt::UserDefinedType;
use catalyst::value::Value;
use spark_sql::prelude::*;
use std::sync::Arc;

/// The paper's two-dimensional point UDT.
#[derive(Debug, Clone, PartialEq)]
struct Point {
    x: f64,
    y: f64,
}

struct PointUdt;

impl UserDefinedType<Point> for PointUdt {
    fn data_type(&self) -> DataType {
        DataType::struct_type(vec![
            StructField::new("x", DataType::Double, false),
            StructField::new("y", DataType::Double, false),
        ])
    }
    fn serialize(&self, p: &Point) -> Row {
        Row::new(vec![Value::Double(p.x), Value::Double(p.y)])
    }
    fn deserialize(&self, r: &Row) -> catalyst::Result<Point> {
        Ok(Point {
            x: r.get_double(0),
            y: r.get_double(1),
        })
    }
    fn name(&self) -> &str {
        "point"
    }
}

fn points_df(ctx: &SQLContext, n: usize) -> DataFrame {
    let udt = PointUdt;
    let schema = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Long, false),
        StructField::new("p", udt.data_type(), false),
    ]));
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            let p = Point {
                x: i as f64,
                y: (i % 7) as f64,
            };
            let serialized = udt.serialize(&p);
            Row::new(vec![
                Value::Long(i as i64),
                Value::Struct(Arc::new(serialized.into_values())),
            ])
        })
        .collect();
    ctx.create_dataframe(schema, rows).unwrap()
}

#[test]
fn udt_registration_and_struct_queries() {
    let ctx = SQLContext::new_local(2);
    ctx.register_udt("point", PointUdt.data_type());
    assert!(ctx.udts().get("POINT").is_ok());

    let df = points_df(&ctx, 100);
    df.register_temp_table("points");

    // Path access works on the UDT's backing struct.
    let rows = ctx
        .sql("SELECT p.x, p.y FROM points WHERE p.x > 95")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 4);
    assert_eq!(rows[0].get_double(0), 96.0);
}

#[test]
fn udfs_operate_on_udt_values() {
    // §4.4.2: "they can register UDFs that operate directly on their type".
    let ctx = SQLContext::new_local(2);
    ctx.register_udf("norm2", DataType::Double, |args| {
        let udt = PointUdt;
        let p = match &args[0] {
            Value::Struct(items) => udt.deserialize(&Row::new(items.as_ref().clone()))?,
            other => {
                return Err(catalyst::CatalystError::eval(format!(
                    "expected point, got {}",
                    other.dtype()
                )))
            }
        };
        Ok(Value::Double((p.x * p.x + p.y * p.y).sqrt()))
    });
    points_df(&ctx, 10).register_temp_table("points");
    let rows = ctx
        .sql("SELECT norm2(p) FROM points WHERE id = 3")
        .unwrap()
        .collect()
        .unwrap();
    let want = (9.0f64 + 9.0).sqrt();
    assert!((rows[0].get_double(0) - want).abs() < 1e-9);
}

#[test]
fn udt_caches_columnar_with_per_field_compression() {
    // "Spark SQL will store Points in a columnar format when caching data
    // (compressing x and y as separate columns)".
    let ctx = SQLContext::new_local(2);
    let df = points_df(&ctx, 5000);
    let cached = df.cache().unwrap();
    assert_eq!(cached.count().unwrap(), 5000);

    // Inspect the cache: struct column must be shredded per field; y has
    // only 7 distinct values so RLE-ish encodings can bite.
    let rows = df.collect().unwrap();
    let batch = columnar::ColumnarBatch::from_rows(df.schema(), rows.clone());
    assert_eq!(batch.columns()[1].encoding_name(), "struct-cols");
    let boxed: u64 = rows.iter().map(|r| r.get(1).approx_bytes()).sum();
    assert!(batch.columns()[1].bytes() < boxed);
}

#[test]
fn udt_writes_to_data_sources_as_pairs_of_doubles() {
    // "Points will be writable to all of Spark SQL's data sources, which
    // will see them as pairs of DOUBLEs."
    let ctx = SQLContext::new_local(2);
    let dir = std::env::temp_dir().join(format!("udt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("points.rcf");

    points_df(&ctx, 200)
        .write()
        .option("rows_per_group", 64)
        .save(path.to_str().unwrap())
        .unwrap();
    let back = ctx.read_colfile(path.to_str().unwrap()).unwrap();
    assert_eq!(back.count().unwrap(), 200);
    match &back.schema().field(1).dtype {
        DataType::Struct(fields) => {
            assert_eq!(fields.len(), 2);
            assert!(fields.iter().all(|f| f.dtype == DataType::Double));
        }
        other => panic!("expected struct of doubles, got {other}"),
    }
    // Round-trip values intact.
    let row = back
        .filter(col("id").eq(lit(5i64)))
        .unwrap()
        .first()
        .unwrap()
        .unwrap();
    match row.get(1) {
        Value::Struct(items) => assert_eq!(items[0], Value::Double(5.0)),
        other => panic!("{other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
