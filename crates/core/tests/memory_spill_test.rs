//! End-to-end tests for memory-governed execution: the acceptance
//! scenario (join + aggregate + sort over an input larger than the
//! budget, spilling to disk, byte-identical results), the `SET`-statement
//! surface over the memory confs, and spill-directory routing + cleanup.

use spark_sql::prelude::*;
use std::sync::Arc;

fn fact_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, true),
        StructField::new("v", DataType::Long, true),
        StructField::new("s", DataType::String, true),
    ]))
}

fn dim_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("dk", DataType::Long, true),
        StructField::new("w", DataType::String, true),
    ]))
}

fn fact_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Long(i % 32)
                },
                Value::Long(i),
                Value::str(format!("payload-{:04}", i % 997)),
            ])
        })
        .collect()
}

fn dim_rows() -> Vec<Row> {
    (0..32)
        .map(|i| Row::new(vec![Value::Long(i), Value::str(format!("d{i}"))]))
        .collect()
}

/// Join + aggregate + sort with `budget` bytes (0 = unbounded); returns
/// the result rows in final (sorted) order plus the query handle.
fn run_pipeline(budget: u64) -> (Vec<String>, QueryExecution, SQLContext) {
    let ctx = SQLContext::new_local(2);
    ctx.set_conf(|c| {
        c.memory_budget_bytes = budget;
        // Pin the shuffled-join path: broadcast builds are bounded by the
        // planner's size threshold, not the memory pool.
        c.broadcast_threshold = 0;
        c.shuffle_partitions = 4;
    });
    let fact_rdd = ctx.spark_context().parallelize(fact_rows(4000), 3);
    let fact = ctx
        .dataframe_from_rdd("fact", fact_schema(), fact_rdd)
        .unwrap();
    let dim = ctx.create_dataframe(dim_schema(), dim_rows()).unwrap();
    // Dim joins fact (hash joins build the right stream: the big side).
    let df = dim
        .join(&fact, JoinType::Inner, Some(col("dk").eq(col("k"))))
        .unwrap()
        .group_by(vec![col("v").rem(lit(509i64)).alias("g")])
        .agg(vec![
            count_star().alias("n"),
            sum(col("v")).alias("sv"),
            min(col("s")).alias("ms"),
        ])
        .unwrap()
        .order_by(vec![col("sv").desc(), col("g").asc()])
        .unwrap();
    let qe = df.query_execution().unwrap();
    let rows = qe
        .collect()
        .unwrap()
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    (rows, qe, ctx)
}

#[test]
fn join_aggregate_sort_spills_and_matches_unbounded() {
    let budget = 16 << 10;
    let (expect, unbounded_qe, _ctx) = run_pipeline(0);
    assert!(
        unbounded_qe.memory_stats().is_none(),
        "unbounded run reported pool stats"
    );
    assert!(!expect.is_empty());

    let (got, qe, ctx) = run_pipeline(budget);
    // Byte-identical results, in the same (sorted) output order.
    assert_eq!(got, expect, "bounded run diverged from unbounded results");

    let stats = qe
        .memory_stats()
        .expect("bounded run must expose pool stats");
    assert_eq!(stats.budget, budget);
    assert!(
        stats.spill_count > 0,
        "input 4000 rows never spilled under a 16 KiB budget"
    );
    assert!(stats.spill_bytes > 0);
    assert!(
        stats.peak <= budget,
        "peak reservation {} exceeded the {budget}-byte budget",
        stats.peak
    );
    assert_eq!(
        stats.spill_files_created, stats.spill_files_deleted,
        "spill files leaked past query completion"
    );
    assert!(stats.spill_files_created > 0);

    // EXPLAIN ANALYZE carries the pool summary and per-operator spill
    // annotations on the operators that actually spilled.
    let text = qe.explain_analyze().unwrap();
    assert!(text.contains("== Memory =="), "{text}");
    assert!(text.contains("peak reserved:"), "{text}");
    assert!(text.contains("spilled buffers:"), "{text}");
    assert!(text.contains("spill_count="), "{text}");
    assert!(text.contains("spill_bytes="), "{text}");

    // The session query log serializes the same counters.
    let json = ctx.query_log_json();
    assert!(json.contains("\"memory\":{\"budget\":16384"), "{json}");
    assert!(json.contains("\"spill_count\":"), "{json}");
}

#[test]
fn set_statement_controls_memory_confs_end_to_end() {
    let ctx = SQLContext::new_local(2);
    // SET key=value parses byte suffixes and echoes the stored value.
    let rows = ctx
        .sql("SET spark.sql.memory.budgetBytes=8k")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(
        format!("{rows:?}"),
        format!(
            "{:?}",
            vec![Row::new(vec![
                Value::str("spark.sql.memory.budgetBytes"),
                Value::str("8192"),
            ])]
        )
    );
    assert_eq!(ctx.conf().memory_budget_bytes, 8192);

    // SET key reads it back; bare SET lists every registry key.
    let rows = ctx
        .sql("SET spark.sql.memory.budgetBytes")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows[0].values()[1], Value::str("8192"));
    let all = ctx.sql("SET").unwrap().collect().unwrap();
    assert_eq!(all.len(), SqlConf::valid_keys().len());
    assert!(all
        .iter()
        .any(|r| r.values()[0] == Value::str("spark.sql.memory.spillEnabled")));

    // Unknown keys error through SQL exactly like ctx.set.
    let err = ctx
        .sql("SET spark.sql.memory.budget=1")
        .unwrap_err()
        .to_string();
    assert!(err.contains("unknown config key"), "{err}");

    // The budget set via SQL governs subsequent executions.
    let rdd = ctx.spark_context().parallelize(fact_rows(3000), 3);
    let df = ctx
        .dataframe_from_rdd("fact", fact_schema(), rdd)
        .unwrap()
        .order_by(vec![col("s").asc(), col("v").asc()])
        .unwrap();
    let qe = df.query_execution().unwrap();
    let n = qe.collect().unwrap().len();
    assert_eq!(n, 3000);
    let stats = qe
        .memory_stats()
        .expect("SET budget must reach the executor pool");
    assert_eq!(stats.budget, 8192);
    assert!(stats.spill_count > 0, "3000 rows under 8 KiB never spilled");

    // The escape hatch: spillEnabled=false ignores the budget entirely.
    ctx.sql("SET spark.sql.memory.spillEnabled=false")
        .unwrap()
        .collect()
        .unwrap();
    let qe2 = df.query_execution().unwrap();
    assert_eq!(qe2.collect().unwrap().len(), 3000);
    assert!(
        qe2.memory_stats().is_none(),
        "escape hatch did not disable the pool"
    );
}

#[test]
fn spill_dir_conf_routes_files_and_cleans_up() {
    let dir = std::env::temp_dir().join(format!("spill-conf-{}", std::process::id()));
    let ctx = SQLContext::new_local(2);
    ctx.set("spark.sql.memory.budgetBytes", "8k").unwrap();
    ctx.set("spark.sql.memory.spillDir", dir.to_str().unwrap())
        .unwrap();
    assert_eq!(ctx.conf().spill_path(), dir);

    let rdd = ctx.spark_context().parallelize(fact_rows(3000), 3);
    let df = ctx
        .dataframe_from_rdd("fact", fact_schema(), rdd)
        .unwrap()
        .order_by(vec![col("v").desc()])
        .unwrap();
    let qe = df.query_execution().unwrap();
    assert_eq!(qe.collect().unwrap().len(), 3000);
    let stats = qe.memory_stats().unwrap();
    assert!(
        stats.spill_files_created > 0,
        "sort never wrote a spill file"
    );

    // The configured directory was used — and is empty again: every
    // spill file was deleted when its buffer was consumed.
    assert!(
        dir.is_dir(),
        "spill dir was not created at {}",
        dir.display()
    );
    let leftover: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(leftover.is_empty(), "leftover spill files: {leftover:?}");
    assert_eq!(stats.spill_files_created, stats.spill_files_deleted);
    std::fs::remove_dir_all(&dir).ok();
}
