//! Differential property tests for adaptive query execution: randomly
//! generated join/aggregate plans over skewed key distributions must
//! produce *identical* results whether they run statically planned or
//! stage-by-stage with runtime re-planning (partition coalescing, dynamic
//! broadcast demotion, skew splitting) — and in combination with the
//! vectorized path.
//!
//! Same deterministic seeded-sweep style as `vectorized_diff_props.rs`
//! (the build environment vendors only a minimal rand shim). Each
//! iteration runs the same plan under adaptive × vectorize on/off — four
//! configurations — and asserts the sorted result multisets match.
//! Meaningfulness floors assert the sweep actually triggers adaptive
//! decisions instead of vacuously comparing static runs.

use catalyst::adaptive::AdaptiveRule;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql::prelude::*;
use std::sync::Arc;

const ITERS: u64 = 100;

fn fact_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, true),
        StructField::new("v", DataType::Long, true),
    ]))
}

fn dim_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("dk", DataType::Long, true),
        StructField::new("w", DataType::String, true),
    ]))
}

/// Skewed fact rows: a hot key draws `hot_frac` of the keys, ~10% of the
/// keys are NULL (exercising the NULL-sentinel path through shuffles and
/// outer joins), the rest are uniform over a small domain.
fn arb_fact_rows(rng: &mut StdRng, hot_frac: f64) -> Vec<Row> {
    let n = rng.random_range(0usize..600);
    (0..n)
        .map(|i| {
            let k = if rng.random_bool(0.1) {
                Value::Null
            } else if rng.random_bool(hot_frac) {
                Value::Long(0)
            } else {
                Value::Long(rng.random_range(0i64..20))
            };
            Row::new(vec![k, Value::Long(i as i64)])
        })
        .collect()
}

const STR_POOL: &[&str] = &["eng", "sales", "hr", "", "ops"];

fn arb_dim_rows(rng: &mut StdRng) -> Vec<Row> {
    let m = rng.random_range(0usize..40);
    (0..m)
        .map(|_| {
            let dk = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..20))
            };
            Row::new(vec![
                dk,
                Value::str(STR_POOL[rng.random_range(0..STR_POOL.len())]),
            ])
        })
        .collect()
}

struct GenQuery {
    fact_rows: Vec<Row>,
    dim_rows: Vec<Row>,
    join_type: JoinType,
    /// Register the dim over a bare RDD (unknown statistics, so the
    /// static planner cannot broadcast it) instead of a local relation.
    dim_unknown_stats: bool,
    aggregate: bool,
    broadcast_threshold: u64,
    target_partition_bytes: u64,
}

fn arb_query(rng: &mut StdRng) -> GenQuery {
    let join_type = match rng.random_range(0u32..10) {
        0..=3 => JoinType::Inner,
        4 | 5 => JoinType::Left,
        6 | 7 => JoinType::Right,
        _ => JoinType::Full,
    };
    let hot_frac = if rng.random_bool(0.5) { 0.7 } else { 0.2 };
    GenQuery {
        fact_rows: arb_fact_rows(rng, hot_frac),
        dim_rows: arb_dim_rows(rng),
        join_type,
        dim_unknown_stats: rng.random_bool(0.5),
        aggregate: rng.random_bool(0.4),
        // Tiny threshold forces the shuffled path (coalesce/skew
        // territory); the default-sized one lets demotion fire.
        broadcast_threshold: if rng.random_bool(0.5) {
            64
        } else {
            10 * 1024 * 1024
        },
        // Target of 1 B disables coalescing; 1 MiB merges everything.
        target_partition_bytes: if rng.random_bool(0.5) { 1 } else { 1 << 20 },
    }
}

/// Execute under one configuration; return the sorted result multiset and
/// the adaptive changes the run recorded.
fn run(
    q: &GenQuery,
    adaptive: bool,
    vectorize: bool,
) -> (Vec<String>, Vec<catalyst::adaptive::AdaptivePlanChange>) {
    let ctx = SQLContext::new_local(2);
    ctx.set_conf(|c| {
        c.adaptive_enabled = adaptive;
        c.vectorize_enabled = vectorize;
        c.broadcast_threshold = q.broadcast_threshold;
        c.adaptive_target_partition_bytes = q.target_partition_bytes;
    });
    // The fact side always comes from a bare RDD: unknown statistics keep
    // the static planner honest (it must not broadcast it), so shuffled
    // joins actually occur and adaptive execution has decisions to make.
    let fact_rdd = ctx.spark_context().parallelize(q.fact_rows.clone(), 4);
    let fact = ctx
        .dataframe_from_rdd("fact", fact_schema(), fact_rdd)
        .expect("fact");
    let dim = if q.dim_unknown_stats {
        let rdd = ctx.spark_context().parallelize(q.dim_rows.clone(), 2);
        ctx.dataframe_from_rdd("dim", dim_schema(), rdd)
            .expect("dim")
    } else {
        ctx.create_dataframe(dim_schema(), q.dim_rows.clone())
            .expect("dim")
    };
    let mut df = fact
        .join(&dim, q.join_type, Some(col("k").eq(col("dk"))))
        .expect("join");
    if q.aggregate {
        df = df
            .group_by(vec![col("k").rem(lit(4i64)).alias("g")])
            .agg(vec![count_star().alias("n"), sum(col("v")).alias("s")])
            .expect("aggregate");
    }
    let qe = df.query_execution().expect("query_execution");
    let mut out: Vec<String> = qe
        .collect()
        .expect("collect")
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    out.sort();
    (out, qe.adaptive_changes())
}

#[test]
fn adaptive_and_static_plans_agree_on_random_joins() {
    let mut nonempty = 0u32;
    let mut with_changes = 0u32;
    let mut demotions = 0u32;
    let mut coalesces = 0u32;
    let mut skew_splits = 0u32;
    for seed in 0..ITERS {
        let mut rng = StdRng::seed_from_u64(0xADA9 ^ (seed * 0x9E37_79B9));
        let q = arb_query(&mut rng);
        let (baseline, static_changes) = run(&q, false, false);
        assert!(
            static_changes.is_empty(),
            "seed {seed}: static run recorded changes"
        );
        let (adaptive_rows, changes) = run(&q, true, false);
        assert_eq!(
            adaptive_rows, baseline,
            "seed {seed}: adaptive diverged (join={:?}, agg={}, thresh={}, target={})",
            q.join_type, q.aggregate, q.broadcast_threshold, q.target_partition_bytes
        );
        for vectorize in [true, false] {
            let (got, _) = run(&q, true, vectorize);
            assert_eq!(
                got, baseline,
                "seed {seed}: adaptive+vectorize={vectorize} diverged"
            );
        }
        let (got, _) = run(&q, false, true);
        assert_eq!(got, baseline, "seed {seed}: static+vectorized diverged");

        if !baseline.is_empty() {
            nonempty += 1;
        }
        if !changes.is_empty() {
            with_changes += 1;
        }
        for c in &changes {
            match c.rule {
                AdaptiveRule::BroadcastDemotion => demotions += 1,
                AdaptiveRule::CoalescePartitions => coalesces += 1,
                AdaptiveRule::SkewSplit => skew_splits += 1,
            }
        }
    }
    // Meaningfulness floors: the sweep must actually exercise adaptive
    // decisions, not just compare static plans with themselves.
    assert!(
        nonempty > ITERS as u32 / 2,
        "only {nonempty} non-empty results"
    );
    assert!(
        with_changes > ITERS as u32 / 4,
        "only {with_changes} runs recorded adaptive changes"
    );
    assert!(
        demotions > ITERS as u32 / 8,
        "only {demotions} broadcast demotions"
    );
    assert!(
        coalesces > ITERS as u32 / 8,
        "only {coalesces} partition coalescings"
    );
    let _ = skew_splits; // covered deterministically below

    // Every adaptive change event renders with its marker string.
    let mut rng = StdRng::seed_from_u64(0xADA9);
    let q = arb_query(&mut rng);
    let (_, changes) = run(&q, true, false);
    for c in &changes {
        assert!(format!("{c}").starts_with("AdaptivePlanChange["), "{c}");
    }
}

/// A heavily skewed shuffled join must trigger skew splitting (the hot
/// reduce partition splits by map ranges) and still match the static
/// plan's results exactly.
#[test]
fn skewed_join_splits_and_matches_static_results() {
    let fact_rows: Vec<Row> = (0..2000i64)
        .map(|i| {
            // 85% of the rows share one hot key; the rest spread thin.
            let k = if i % 20 < 17 { 3 } else { i % 19 };
            Row::new(vec![Value::Long(k), Value::Long(i)])
        })
        .collect();
    let q = GenQuery {
        fact_rows,
        dim_rows: (0..20)
            .map(|i| Row::new(vec![Value::Long(i), Value::str(format!("d{i}"))]))
            .collect(),
        join_type: JoinType::Inner,
        dim_unknown_stats: true,
        aggregate: false,
        broadcast_threshold: 0,     // never demote: stay on the shuffled path
        target_partition_bytes: 64, // tiny target: the hot partition is "skewed"
    };
    let (baseline, _) = run(&q, false, false);
    let (got, changes) = run(&q, true, false);
    assert_eq!(got, baseline, "skew-split results diverged");
    assert!(
        changes.iter().any(|c| c.rule == AdaptiveRule::SkewSplit),
        "no skew split fired: {changes:?}"
    );
}

/// The acceptance scenario: a skewed join whose build side turns out
/// small. `explain_analyze` must show the initial (shuffled) plan, at
/// least one `AdaptivePlanChange`, and a final plan that differs.
#[test]
fn explain_analyze_shows_initial_and_final_plans() {
    let ctx = SQLContext::new_local(2);
    // Explicit, so the test also passes under CATALYST_ADAPTIVE=0.
    ctx.set_conf(|c| c.adaptive_enabled = true);
    let fact_rows: Vec<Row> = (0..2000)
        .map(|i| {
            let k = if i % 10 < 8 { 0 } else { i % 16 };
            Row::new(vec![Value::Long(k), Value::Long(i)])
        })
        .collect();
    let dim_rows: Vec<Row> = (0..16)
        .map(|i| Row::new(vec![Value::Long(i), Value::str(format!("d{i}"))]))
        .collect();
    // Both sides over bare RDDs: statistics unknown, so the static
    // planner must pick a shuffled hash join.
    let fact_rdd = ctx.spark_context().parallelize(fact_rows, 4);
    let fact = ctx
        .dataframe_from_rdd("fact", fact_schema(), fact_rdd)
        .unwrap();
    let dim_rdd = ctx.spark_context().parallelize(dim_rows, 2);
    let dim = ctx
        .dataframe_from_rdd("dim", dim_schema(), dim_rdd)
        .unwrap();
    let df = fact
        .join(&dim, JoinType::Inner, Some(col("k").eq(col("dk"))))
        .unwrap();

    let qe = df.query_execution().unwrap();
    assert!(format!("{}", qe.physical()).contains("ShuffledHashJoin"));
    let text = qe.explain_analyze().unwrap();
    assert!(text.contains("== Initial Physical Plan =="), "{text}");
    assert!(text.contains("AdaptivePlanChange"), "{text}");
    assert!(text.contains("broadcast-demotion"), "{text}");
    assert!(
        text.contains("== Final Physical Plan (executed) =="),
        "{text}"
    );
    let initial = text.split("== Adaptive Plan Changes ==").next().unwrap();
    let fin = text
        .split("== Final Physical Plan (executed) ==")
        .nth(1)
        .unwrap();
    assert!(initial.contains("ShuffledHashJoin"), "{text}");
    assert!(fin.contains("BroadcastHashJoin"), "{text}");
    assert!(!fin.contains("ShuffledHashJoin"), "{text}");
    // The demoted build side's measured size is metered on the join node.
    assert!(fin.contains("build_rows="), "{text}");

    // The plan accessor agrees with the rendering.
    assert!(format!("{}", qe.final_physical()).contains("BroadcastHashJoin"));

    // With adaptive off, the same query reproduces today's static plan
    // and identical results.
    let ctx2 = SQLContext::new_local(2);
    ctx2.set_conf(|c| c.adaptive_enabled = false);
    let fact2 = ctx2
        .dataframe_from_rdd(
            "fact",
            fact_schema(),
            ctx2.spark_context().parallelize(
                (0..2000)
                    .map(|i| {
                        let k = if i % 10 < 8 { 0 } else { i % 16 };
                        Row::new(vec![Value::Long(k), Value::Long(i)])
                    })
                    .collect(),
                4,
            ),
        )
        .unwrap();
    let dim2 = ctx2
        .dataframe_from_rdd(
            "dim",
            dim_schema(),
            ctx2.spark_context().parallelize(
                (0..16)
                    .map(|i| Row::new(vec![Value::Long(i), Value::str(format!("d{i}"))]))
                    .collect(),
                2,
            ),
        )
        .unwrap();
    let df2 = fact2
        .join(&dim2, JoinType::Inner, Some(col("k").eq(col("dk"))))
        .unwrap();
    let qe2 = df2.query_execution().unwrap();
    let static_rows = qe2.collect().unwrap();
    assert!(qe2.adaptive_changes().is_empty());
    let mut a: Vec<String> = qe
        .collect()
        .unwrap()
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    let mut b: Vec<String> = static_rows.iter().map(|r| format!("{r:?}")).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}
