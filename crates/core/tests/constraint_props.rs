//! Differential property tests for the constraint-based optimizer rules:
//! randomly generated plans — filters with occasional deliberate
//! contradictions, lossless-cast comparisons, joins, aggregates, sorts —
//! executed with `spark.sql.constraints.enabled` on must produce results
//! byte-identical to the rule-disabled path, across vectorize × adaptive
//! × bounded-memory modes.
//!
//! Same deterministic seeded-sweep style as `spill_props.rs` (the build
//! vendors only a minimal rand shim). Meaningfulness floors prove the
//! constraint phase actually rewrote plans — including pruning whole
//! subtrees to an empty relation — instead of vacuously comparing
//! identical plans.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql::prelude::*;
use std::sync::Arc;

const ITERS: u64 = 64;

fn fact_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, true),
        StructField::new("i", DataType::Int, true),
        StructField::new("v", DataType::Long, true),
        StructField::new("s", DataType::String, true),
    ]))
}

fn dim_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("dk", DataType::Long, true),
        StructField::new("w", DataType::String, true),
    ]))
}

const STR_POOL: &[&str] = &["alpha", "beta", "", "gamma", "δέλτα"];

/// Fact rows with NULLs in every column so IS NOT NULL inference and the
/// null-extension rules have something to bite on; `i` is an Int column
/// so cast comparisons against Long literals exercise
/// `UnwrapLosslessCasts`.
fn arb_fact_rows(rng: &mut StdRng) -> Vec<Row> {
    let n = rng.random_range(50usize..400);
    (0..n)
        .map(|idx| {
            let k = if rng.random_bool(0.15) {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..24))
            };
            let i = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::Int(rng.random_range(0i64..40) as i32)
            };
            let s = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::str(STR_POOL[rng.random_range(0..STR_POOL.len())])
            };
            Row::new(vec![k, i, Value::Long(idx as i64), s])
        })
        .collect()
}

fn arb_dim_rows(rng: &mut StdRng) -> Vec<Row> {
    let m = rng.random_range(1usize..32);
    (0..m)
        .map(|_| {
            let dk = if rng.random_bool(0.15) {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..24))
            };
            Row::new(vec![
                dk,
                Value::str(STR_POOL[rng.random_range(0..STR_POOL.len())]),
            ])
        })
        .collect()
}

/// One random filter conjunct. Contradictions arise both naturally (two
/// range conjuncts with an empty intersection) and deliberately (the
/// last arm), and cast comparisons target the lossless-cast unwrapper.
fn arb_conjunct(rng: &mut StdRng, has_cast: &mut bool) -> Expr {
    match rng.random_range(0u32..8) {
        0 => col("k").gt(lit(rng.random_range(-2i64..16))),
        1 => col("k").lt(lit(rng.random_range(-2i64..16))),
        2 => {
            *has_cast = true;
            col("i")
                .cast(DataType::Long)
                .gt_eq(lit(rng.random_range(0i64..30)))
        }
        3 => {
            *has_cast = true;
            col("i")
                .cast(DataType::Long)
                .lt(lit(rng.random_range(0i64..30)))
        }
        4 => col("v").is_not_null(),
        5 => col("s").is_null(),
        6 => col("k").eq(lit(rng.random_range(0i64..24))),
        // Deliberate pairwise contradiction: only the conjunction is
        // unsatisfiable, so single-conjunct analysis cannot see it.
        _ => {
            let hi = rng.random_range(8i64..14);
            let lo = rng.random_range(0i64..6);
            col("k").gt(lit(hi)).and(col("k").lt(lit(lo)))
        }
    }
}

struct GenQuery {
    fact_rows: Vec<Row>,
    dim_rows: Vec<Row>,
    conjuncts: Vec<Expr>,
    has_cast: bool,
    join: Option<JoinType>,
    aggregate: bool,
    sort: bool,
    vectorize: bool,
    adaptive: bool,
    budget: u64,
}

fn arb_query(rng: &mut StdRng) -> GenQuery {
    let join = match rng.random_range(0u32..8) {
        0..=2 => None,
        3..=5 => Some(JoinType::Inner),
        6 => Some(JoinType::Left),
        _ => Some(JoinType::Full),
    };
    let mut has_cast = false;
    let conjuncts: Vec<Expr> = (0..rng.random_range(1usize..4))
        .map(|_| arb_conjunct(rng, &mut has_cast))
        .collect();
    GenQuery {
        fact_rows: arb_fact_rows(rng),
        dim_rows: arb_dim_rows(rng),
        conjuncts,
        has_cast,
        join,
        aggregate: rng.random_bool(0.4),
        sort: rng.random_bool(0.4),
        vectorize: rng.random_bool(0.5),
        adaptive: rng.random_bool(0.5),
        budget: if rng.random_bool(0.3) { 8 << 10 } else { 0 },
    }
}

struct Outcome {
    rows: Vec<String>,
    optimized: String,
}

/// Execute `q` on a fresh context with the constraint phase toggled.
fn run(q: &GenQuery, constraints: bool) -> Outcome {
    let ctx = SQLContext::new_local(2);
    ctx.set_conf(|c| {
        c.constraints_enabled = constraints;
        c.vectorize_enabled = q.vectorize;
        c.adaptive_enabled = q.adaptive;
        c.memory_budget_bytes = q.budget;
        c.shuffle_partitions = 4;
    });
    let fact = ctx
        .create_dataframe(fact_schema(), q.fact_rows.clone())
        .expect("fact");
    let mut df = fact;
    let pred = q
        .conjuncts
        .iter()
        .cloned()
        .reduce(|a, b| a.and(b))
        .expect("at least one conjunct");
    df = df.filter(pred).expect("filter");
    if let Some(jt) = q.join {
        let dim = ctx
            .create_dataframe(dim_schema(), q.dim_rows.clone())
            .expect("dim");
        df = df
            .join(&dim, jt, Some(col("k").eq(col("dk"))))
            .expect("join");
    }
    if q.aggregate {
        df = df
            .group_by(vec![col("k")])
            .agg(vec![
                count_star().alias("n"),
                sum(col("v")).alias("sv"),
                min(col("s")).alias("ms"),
            ])
            .expect("aggregate");
    }
    if q.sort {
        let orders = if q.aggregate {
            vec![col("n").desc(), col("k").asc()]
        } else {
            vec![col("v").asc()]
        };
        df = df.order_by(orders).expect("sort");
    }
    let qe = df.query_execution().expect("query_execution");
    let optimized = format!("{}", qe.optimized());
    let mut rows: Vec<String> = qe
        .collect()
        .expect("collect")
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    rows.sort();
    Outcome { rows, optimized }
}

#[test]
fn constraint_rules_preserve_results_exactly() {
    let mut nonempty = 0u32;
    let mut rewritten = 0u32;
    let mut emptied = 0u32;
    let mut cast_rewrites = 0u32;

    for seed in 0..ITERS {
        let mut rng = StdRng::seed_from_u64(0xC0_5717 ^ seed.wrapping_mul(0x9E37_79B9));
        let q = arb_query(&mut rng);

        let baseline = run(&q, false);
        let constrained = run(&q, true);
        assert_eq!(
            constrained.rows,
            baseline.rows,
            "seed {seed}: constraint rules changed results (join={:?}, agg={}, sort={}, \
             vec={}, adaptive={}, budget={}, pred={:?})",
            q.join,
            q.aggregate,
            q.sort,
            q.vectorize,
            q.adaptive,
            q.budget,
            q.conjuncts
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>(),
        );

        if !baseline.rows.is_empty() {
            nonempty += 1;
        }
        if constrained.optimized != baseline.optimized {
            rewritten += 1;
            if q.has_cast {
                cast_rewrites += 1;
            }
        }
        if constrained.optimized.contains("(0 rows)") && !baseline.optimized.contains("(0 rows)") {
            emptied += 1;
        }
    }

    eprintln!(
        "constraint sweep: rewritten={rewritten}/{ITERS} emptied={emptied} \
         cast_rewrites={cast_rewrites} nonempty={nonempty}"
    );
    // Meaningfulness floors: the sweep must actually trigger the rules —
    // plans rewritten, whole subtrees pruned to an empty relation, and
    // lossless-cast comparisons unwrapped — not just compare no-ops.
    assert!(
        nonempty > ITERS as u32 / 4,
        "only {nonempty} non-empty results"
    );
    assert!(
        rewritten >= ITERS as u32 / 4,
        "constraint phase rewrote only {rewritten} plans"
    );
    assert!(emptied >= 4, "only {emptied} plans pruned to empty");
    assert!(
        cast_rewrites >= 3,
        "only {cast_rewrites} cast-comparison plans rewritten"
    );
}

/// The lint pass must stay silent on idiomatic queries — zero false
/// positives over a corpus of well-formed plans shaped like the ones the
/// end-to-end suites run.
#[test]
fn lint_is_silent_on_clean_queries() {
    let ctx = SQLContext::new_local(2);
    // Most sensitive threshold: even info-level findings count as a
    // false positive on this corpus.
    ctx.set_conf(|c| c.lint_level = "info".into());
    let rows: Vec<Row> = (0..100)
        .map(|idx| {
            Row::new(vec![
                Value::Long(idx % 7),
                Value::Int(idx as i32),
                Value::Long(idx),
                if idx % 9 == 0 {
                    Value::Null
                } else {
                    Value::str(STR_POOL[idx as usize % STR_POOL.len()])
                },
            ])
        })
        .collect();
    ctx.create_dataframe(fact_schema(), rows)
        .expect("fact")
        .register_temp_table("fact");
    let dim_rows: Vec<Row> = (0..7)
        .map(|d| Row::new(vec![Value::Long(d), Value::str(format!("d{d}"))]))
        .collect();
    ctx.create_dataframe(dim_schema(), dim_rows)
        .expect("dim")
        .register_temp_table("dim");

    let corpus = [
        "SELECT k, v FROM fact WHERE v > 10",
        "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM fact GROUP BY k",
        "SELECT f.k, d.w FROM fact f JOIN dim d ON f.k = d.dk WHERE f.v < 50",
        "SELECT k, v FROM fact WHERE s IS NOT NULL ORDER BY v LIMIT 10",
        "SELECT DISTINCT k FROM fact",
        "SELECT k, CAST(i AS BIGINT) AS wide FROM fact",
        "SELECT k, v / 2 AS half FROM fact WHERE k IS NOT NULL",
        "SELECT MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS mean FROM fact",
    ];
    for sql in corpus {
        let df = ctx.sql(sql).expect(sql);
        let diags = df.lint();
        assert!(
            diags.is_empty(),
            "false positive on `{sql}`: {:?}",
            diags.iter().map(|d| d.render()).collect::<Vec<_>>()
        );
    }
}

/// Acceptance: an always-false predicate is both *reported* (L001 in the
/// `== Lint ==` section) and *acted on* — the optimizer rewrites the
/// subtree to an empty relation, visible in `EXPLAIN ANALYZE`.
#[test]
fn always_false_predicate_prunes_to_empty_relation() {
    let ctx = SQLContext::new_local(2);
    // Pin the phase on: the suite must also pass under the
    // CATALYST_CONSTRAINTS=0 escape-hatch CI job.
    ctx.set_conf(|c| c.constraints_enabled = true);
    let rows: Vec<Row> = (0..50)
        .map(|idx| {
            Row::new(vec![
                Value::Long(idx % 20),
                Value::Int(0),
                Value::Long(idx),
                Value::str("x"),
            ])
        })
        .collect();
    ctx.create_dataframe(fact_schema(), rows)
        .expect("fact")
        .register_temp_table("fact");

    // k is provably in [0, 19]: `k > 100` can never be true.
    let df = ctx.sql("SELECT k, v FROM fact WHERE k > 100").expect("sql");

    // The optimizer prunes the whole subtree to an empty relation…
    let qe = df.query_execution().expect("qe");
    let optimized = format!("{}", qe.optimized());
    assert!(
        optimized.contains("(0 rows)"),
        "expected empty relation in optimized plan:\n{optimized}"
    );

    // …and explain_analyze shows both the pruned plan and the L001 lint.
    let report = qe.explain_analyze().expect("explain_analyze");
    assert!(
        report.contains("LocalData (0 rows)"),
        "expected pruned physical scan in:\n{report}"
    );
    assert!(
        report.contains("== Lint =="),
        "missing lint section:\n{report}"
    );
    assert!(
        report.contains("warn[L001]"),
        "missing always-false diagnostic:\n{report}"
    );
    assert!(report.contains("output rows: 0"), "{report}");

    // With the phase disabled, the filter must survive (escape hatch).
    let ctx2 = SQLContext::new_local(2);
    ctx2.set_conf(|c| c.constraints_enabled = false);
    let rows: Vec<Row> = (0..50)
        .map(|idx| {
            Row::new(vec![
                Value::Long(idx % 20),
                Value::Int(0),
                Value::Long(idx),
                Value::str("x"),
            ])
        })
        .collect();
    ctx2.create_dataframe(fact_schema(), rows)
        .expect("fact")
        .register_temp_table("fact");
    let df2 = ctx2
        .sql("SELECT k, v FROM fact WHERE k > 100")
        .expect("sql");
    let qe2 = df2.query_execution().expect("qe");
    assert!(
        !format!("{}", qe2.optimized()).contains("(0 rows)"),
        "escape hatch did not keep the filter"
    );
    assert!(qe2.collect().expect("collect").is_empty());
}

/// `EXPLAIN LINT` surfaces diagnostics as a result set with severity,
/// stable code, and node provenance columns.
#[test]
fn explain_lint_statement_returns_diagnostics() {
    let ctx = SQLContext::new_local(2);
    let rows = vec![Row::new(vec![
        Value::Long(1),
        Value::Int(2),
        Value::Long(3),
        Value::str("x"),
    ])];
    ctx.create_dataframe(fact_schema(), rows)
        .expect("fact")
        .register_temp_table("fact");

    let out = ctx
        .sql("EXPLAIN LINT SELECT k AS x, v AS x FROM fact WHERE v = NULL")
        .expect("explain lint")
        .collect()
        .expect("collect");
    let rendered: Vec<String> = out.iter().map(|r| format!("{r:?}")).collect();
    assert!(
        rendered.iter().any(|r| r.contains("L004")),
        "missing NULL-comparison diagnostic: {rendered:?}"
    );
    assert!(
        rendered.iter().any(|r| r.contains("L006")),
        "missing duplicate-projection diagnostic: {rendered:?}"
    );

    // `spark.sql.lint.level = off` silences the pass.
    ctx.set_conf(|c| c.lint_level = "off".into());
    let out = ctx
        .sql("EXPLAIN LINT SELECT k AS x, v AS x FROM fact WHERE v = NULL")
        .expect("explain lint")
        .collect()
        .expect("collect");
    assert!(out.is_empty(), "lint level off must silence: {out:?}");
}
