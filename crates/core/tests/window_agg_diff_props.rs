//! Differential property tests for the vectorized back half of the
//! pipeline: batch-native hash aggregation, vectorized sort, and the
//! window-function operator must produce results byte-identical to the
//! row-at-a-time path — across vectorize × adaptive × bounded-memory
//! configurations and under chaos-injected task faults — including
//! null-heavy and all-NULL partition keys.
//!
//! Same deterministic seeded-sweep style as `vectorized_diff_props.rs`
//! and `spill_props.rs` (the build vendors only a minimal rand shim).
//! Doubles are generated as exact halves so sums associate exactly and
//! partial-aggregate merge order cannot manufacture divergence; window
//! ORDER BY keys always end in the unique row id `k`, so every frame is
//! totally ordered and results are deterministic.

use engine::{ChaosConf, ChaosPlan};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql::prelude::*;
use std::sync::Arc;

const ITERS: u64 = 72;

fn t_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, false),
        StructField::new("g", DataType::Long, true),
        StructField::new("v", DataType::Long, true),
        StructField::new("d", DataType::Double, true),
        StructField::new("s", DataType::String, true),
    ]))
}

const STR_POOL: &[&str] = &["ab", "abc", "", "xyz", "zz", "человек"];

/// How the partition/group key column `g` is populated.
#[derive(Clone, Copy, Debug, PartialEq)]
enum KeyMode {
    /// Every `g` is NULL: one big NULL partition.
    AllNull,
    /// ~50% NULL keys.
    NullHeavy,
    /// ~10% NULL keys.
    Sparse,
}

/// Random rows: unique non-null `k`, group key `g` per `mode`, Long `v`,
/// Double `d` restricted to exact halves (so f64 sums associate exactly
/// no matter how partials split), and a nullable string payload.
fn arb_rows(rng: &mut StdRng, mode: KeyMode, card: i64) -> Vec<Row> {
    let n = rng.random_range(40usize..320);
    (0..n)
        .map(|i| {
            let null_g = match mode {
                KeyMode::AllNull => true,
                KeyMode::NullHeavy => rng.random_bool(0.5),
                KeyMode::Sparse => rng.random_bool(0.1),
            };
            let g = if null_g {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..card.max(1)))
            };
            let v = if rng.random_bool(0.15) {
                Value::Null
            } else {
                Value::Long(rng.random_range(0i64..100) - 50)
            };
            let d = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::Double(rng.random_range(0i64..64) as f64 / 2.0 - 16.0)
            };
            let s = if rng.random_bool(0.1) {
                Value::Null
            } else {
                Value::str(STR_POOL[rng.random_range(0..STR_POOL.len())])
            };
            Row::new(vec![Value::Long(i as i64), g, v, d, s])
        })
        .collect()
}

/// Which back-half operator the generated query exercises.
#[derive(Clone, Copy, Debug)]
enum Shape {
    /// Grouped aggregation (batch-native hash-agg candidate).
    Aggregate,
    /// Ranking + offset window functions over sorted partitions.
    WindowRank,
    /// Framed window aggregates: running, sliding, and whole-partition.
    WindowFrames,
}

impl Shape {
    fn sql(self) -> &'static str {
        match self {
            Shape::Aggregate => {
                "SELECT g, count(*) AS n, count(v) AS cv, sum(v) AS sv, \
                 avg(d) AS ad, min(s) AS ms, max(v) AS xv \
                 FROM t GROUP BY g"
            }
            Shape::WindowRank => {
                "SELECT k, g, v, \
                 rank() OVER (PARTITION BY g ORDER BY v) AS rnk, \
                 dense_rank() OVER (PARTITION BY g ORDER BY v DESC) AS drnk, \
                 row_number() OVER (PARTITION BY g ORDER BY v, k) AS rn, \
                 lag(v, 1, -1) OVER (PARTITION BY g ORDER BY v, k) AS lg, \
                 lead(v) OVER (PARTITION BY g ORDER BY v, k) AS ld \
                 FROM t"
            }
            Shape::WindowFrames => {
                "SELECT k, g, v, \
                 sum(v) OVER (PARTITION BY g ORDER BY v, k) AS rs, \
                 avg(d) OVER (PARTITION BY g ORDER BY v, k \
                 ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS ma, \
                 sum(v) OVER (PARTITION BY g ORDER BY v, k \
                 ROWS BETWEEN 1 FOLLOWING AND 3 FOLLOWING) AS fs, \
                 count(*) OVER (PARTITION BY g) AS cnt \
                 FROM t"
            }
        }
    }
}

struct GenQuery {
    rows: Vec<Row>,
    mode: KeyMode,
    shape: Shape,
    budget: u64,
}

fn arb_query(rng: &mut StdRng) -> GenQuery {
    let mode = match rng.random_range(0u32..10) {
        0 => KeyMode::AllNull,
        1..=3 => KeyMode::NullHeavy,
        _ => KeyMode::Sparse,
    };
    let card = rng.random_range(1i64..8);
    let shape = match rng.random_range(0u32..3) {
        0 => Shape::Aggregate,
        1 => Shape::WindowRank,
        _ => Shape::WindowFrames,
    };
    GenQuery {
        rows: arb_rows(rng, mode, card),
        mode,
        shape,
        budget: [4u64 << 10, 8 << 10, 16 << 10][rng.random_range(0usize..3)],
    }
}

struct Outcome {
    rows: Vec<String>,
    /// Did any operator of the run record a nonzero `spill_count`?
    spilled: bool,
}

/// Execute `q` on a fresh context. `budget` of 0 keeps the pool
/// unbounded; `chaos: Some` installs a seeded fault plan before the run.
fn run(
    q: &GenQuery,
    vectorize: bool,
    adaptive: bool,
    budget: u64,
    chaos: Option<Arc<ChaosPlan>>,
) -> Outcome {
    let ctx = SQLContext::new_local(2);
    ctx.spark_context().set_chaos(chaos);
    ctx.set_conf(|c| {
        c.vectorize_enabled = vectorize;
        c.adaptive_enabled = adaptive;
        c.memory_budget_bytes = budget;
        c.shuffle_partitions = 4;
    });
    // The table sits on a bare multi-partition RDD: unknown statistics,
    // real shuffles for the window/aggregate exchanges (chaos needs map
    // stages to hit).
    let rdd = ctx.spark_context().parallelize(q.rows.clone(), 3);
    let df = ctx
        .dataframe_from_rdd("t", t_schema(), rdd)
        .expect("dataframe");
    df.register_temp_table("t");
    let qe = ctx
        .sql(q.shape.sql())
        .expect("sql")
        .query_execution()
        .expect("query_execution");
    let mut rows: Vec<String> = qe
        .collect()
        .expect("collect")
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    rows.sort();
    let spilled = ctx
        .query_log()
        .last()
        .map(|e| {
            e.operators
                .iter()
                .any(|op| op.extras.iter().any(|(k, v)| k == "spill_count" && *v > 0))
        })
        .unwrap_or(false);
    Outcome { rows, spilled }
}

#[test]
fn batch_agg_sort_and_window_paths_agree() {
    let mut nonempty = 0u32;
    let mut window_runs = 0u32;
    let mut agg_runs = 0u32;
    let mut all_null = 0u32;
    let mut spilled_runs = 0u32;
    let mut chaos_runs = 0u32;
    for seed in 0..ITERS {
        let mut rng = StdRng::seed_from_u64(0x11D0 ^ (seed.wrapping_mul(0x9E37_79B9)));
        let q = arb_query(&mut rng);
        let baseline = run(&q, false, false, 0, None);

        // Vectorize and adaptive toggles, unbounded memory.
        for (vectorize, adaptive) in [(true, false), (true, true)] {
            let got = run(&q, vectorize, adaptive, 0, None);
            assert_eq!(
                got.rows, baseline.rows,
                "seed {seed}: vectorize={vectorize} adaptive={adaptive} diverged \
                 (shape={:?}, mode={:?})",
                q.shape, q.mode
            );
        }

        // Bounded pool: spill-safe paths must stay byte-identical on
        // both the batch and the row path.
        for vectorize in [true, false] {
            let got = run(&q, vectorize, false, q.budget, None);
            assert_eq!(
                got.rows, baseline.rows,
                "seed {seed}: bounded budget={} vectorize={vectorize} diverged \
                 (shape={:?}, mode={:?})",
                q.budget, q.shape, q.mode
            );
            if got.spilled {
                spilled_runs += 1;
            }
        }

        // Chaos: seeded task faults during a vectorized run must recover
        // to the exact baseline.
        if seed % 3 == 0 {
            let plan = Arc::new(ChaosPlan::new(ChaosConf {
                task_fault_prob: 0.08,
                fetch_fault_prob: 0.08,
                ..ChaosConf::seeded(0x5EED ^ seed.wrapping_mul(0x85EB_CA6B))
            }));
            let got = run(&q, true, true, 0, Some(plan));
            assert_eq!(
                got.rows, baseline.rows,
                "seed {seed}: chaos run diverged (shape={:?}, mode={:?})",
                q.shape, q.mode
            );
            chaos_runs += 1;
        }

        if !baseline.rows.is_empty() {
            nonempty += 1;
        }
        match q.shape {
            Shape::Aggregate => agg_runs += 1,
            Shape::WindowRank | Shape::WindowFrames => window_runs += 1,
        }
        if q.mode == KeyMode::AllNull {
            all_null += 1;
        }
    }
    // Meaningfulness floors: the sweep must actually exercise every
    // interesting path, not vacuously compare empty results.
    assert!(
        nonempty > ITERS as u32 / 2,
        "only {nonempty} non-empty results"
    );
    assert!(
        window_runs > ITERS as u32 / 4,
        "only {window_runs} window runs"
    );
    assert!(
        agg_runs > ITERS as u32 / 8,
        "only {agg_runs} aggregate runs"
    );
    assert!(all_null >= 2, "only {all_null} all-NULL key sweeps");
    assert!(
        spilled_runs > ITERS as u32 / 8,
        "only {spilled_runs} bounded runs actually spilled"
    );
    assert!(
        chaos_runs >= ITERS as u32 / 3,
        "only {chaos_runs} chaos runs"
    );
}

/// Deterministic end-to-end check: exact expected values for ranking,
/// offset, and running-aggregate window functions from SQL.
#[test]
fn window_functions_compute_expected_values() {
    let ctx = SQLContext::new_local(2);
    let schema = Arc::new(Schema::new(vec![
        StructField::new("dept", DataType::String, false),
        StructField::new("salary", DataType::Long, false),
    ]));
    let rows = vec![
        Row::new(vec![Value::str("eng"), Value::Long(100)]),
        Row::new(vec![Value::str("eng"), Value::Long(80)]),
        Row::new(vec![Value::str("eng"), Value::Long(100)]),
        Row::new(vec![Value::str("sales"), Value::Long(60)]),
        Row::new(vec![Value::str("sales"), Value::Long(70)]),
    ];
    ctx.register_rows("emp", schema, rows).unwrap();
    let mut got: Vec<String> = ctx
        .sql(
            "SELECT dept, salary, \
             rank() OVER (PARTITION BY dept ORDER BY salary DESC) AS r, \
             row_number() OVER (PARTITION BY dept ORDER BY salary DESC) AS rn, \
             lag(salary) OVER (PARTITION BY dept ORDER BY salary DESC) AS prev, \
             sum(salary) OVER (PARTITION BY dept ORDER BY salary DESC) AS run \
             FROM emp",
        )
        .unwrap()
        .collect()
        .unwrap()
        .iter()
        .map(|r| format!("{r}"))
        .collect();
    got.sort();
    let mut expect: Vec<String> = vec![
        // eng: 100, 100 are rank-1 peers (running sum covers both), 80 is rank 3.
        "[eng, 100, 1, 1, NULL, 200]".to_string(),
        "[eng, 100, 1, 2, 100, 200]".to_string(),
        "[eng, 80, 3, 3, 100, 280]".to_string(),
        "[sales, 70, 1, 1, NULL, 70]".to_string(),
        "[sales, 60, 2, 2, 70, 130]".to_string(),
    ];
    expect.sort();
    assert_eq!(got, expect);
}
