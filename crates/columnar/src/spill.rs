//! Row ↔ bytes codec for operator spill files, built on the colfile
//! column format ([`crate::serde`]).
//!
//! A spilled buffer is a sequence of *blocks*; each block is a batch of
//! rows encoded column-wise with [`EncodedColumn`] — the same dictionary
//! / RLE / bit-packing machinery the columnar cache uses, so spilled
//! data compresses instead of serializing boxed values one by one.
//!
//! The one extra requirement spill files have over cache batches is
//! **exact** round-trips: differential tests compare spilled runs
//! byte-for-byte against in-memory runs, and execution rows sometimes
//! hold values whose variant is narrower than the declared column type
//! (`Value::Int` in a `Long` column), which the typed encodings would
//! silently widen on decode. [`SpillCodec`] therefore checks each block's
//! column for exact variant agreement with the declared type and falls
//! back to the boxed [`ColumnData::Values`] payload (which round-trips
//! any value losslessly) when they disagree.

use crate::column::{ColumnData, EncodedColumn};
use crate::serde;
use crate::stats::ColumnStats;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use catalyst::error::Result;
use catalyst::row::Row;
use catalyst::types::DataType;
use catalyst::value::Value;

/// Encodes and decodes blocks of rows with a fixed column layout.
#[derive(Clone, Debug)]
pub struct SpillCodec {
    dtypes: Vec<DataType>,
}

/// Does this value decode back to exactly itself under `dtype`'s typed
/// encoding? (Nulls always do, via the null bitmap.)
fn variant_matches(dtype: &DataType, v: &Value) -> bool {
    match (dtype, v) {
        (_, Value::Null) => true,
        (DataType::Int, Value::Int(_)) => true,
        (DataType::Date, Value::Date(_)) => true,
        (DataType::Long, Value::Long(_)) => true,
        (DataType::Timestamp, Value::Timestamp(_)) => true,
        (DataType::Float, Value::Float(_)) => true,
        (DataType::Double, Value::Double(_)) => true,
        (DataType::String, Value::Str(_)) => true,
        (DataType::Boolean, Value::Boolean(_)) => true,
        (DataType::Struct(fields), Value::Struct(items)) => {
            fields.len() == items.len()
                && fields
                    .iter()
                    .zip(items.iter())
                    .all(|(f, item)| variant_matches(&f.dtype, item))
        }
        // Every other dtype already encodes as boxed `Values`.
        (
            DataType::Null
            | DataType::Decimal(_, _)
            | DataType::Binary
            | DataType::Array(_)
            | DataType::Map(_, _),
            _,
        ) => true,
        _ => false,
    }
}

/// Encode one column losslessly: typed when every value agrees with the
/// declared type, boxed otherwise.
fn encode_exact(dtype: &DataType, values: &[Value]) -> EncodedColumn {
    if values.iter().all(|v| variant_matches(dtype, v)) {
        EncodedColumn::encode(dtype, values)
    } else {
        let stats = ColumnStats {
            row_count: values.len() as u64,
            ..ColumnStats::default()
        };
        EncodedColumn::from_parts(
            dtype.clone(),
            None,
            stats,
            ColumnData::Values(values.to_vec()),
            values.len(),
        )
    }
}

impl SpillCodec {
    /// A codec for rows whose columns have the given types. Rows narrower
    /// or wider than the layout are a caller bug and will corrupt blocks.
    pub fn new(dtypes: Vec<DataType>) -> SpillCodec {
        SpillCodec { dtypes }
    }

    /// Column count of the layout.
    pub fn width(&self) -> usize {
        self.dtypes.len()
    }

    /// Encode one block of rows.
    pub fn encode_block(&self, rows: &[Row]) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32(rows.len() as u32);
        buf.put_u32(self.dtypes.len() as u32);
        let mut values = Vec::with_capacity(rows.len());
        for (i, dt) in self.dtypes.iter().enumerate() {
            values.clear();
            values.extend(rows.iter().map(|r| r.get(i).clone()));
            serde::put_column(&mut buf, &encode_exact(dt, &values));
        }
        buf.freeze().as_slice().to_vec()
    }

    /// Decode one block back into rows.
    pub fn decode_block(&self, block: &[u8]) -> Result<Vec<Row>> {
        let mut buf = Bytes::from(block);
        let nrows = serde::checked(&mut buf, 4)?.get_u32() as usize;
        let ncols = serde::checked(&mut buf, 4)?.get_u32() as usize;
        if ncols != self.dtypes.len() {
            return Err(serde::corrupt(format!(
                "spill block has {ncols} columns, layout expects {}",
                self.dtypes.len()
            )));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let col = serde::get_column(&mut buf)?;
            if col.len() != nrows {
                return Err(serde::corrupt("spill block column length mismatch"));
            }
            columns.push(col.decode_all());
        }
        Ok((0..nrows)
            .map(|r| Row::new(columns.iter().map(|c| c[r].clone()).collect()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn codec() -> SpillCodec {
        SpillCodec::new(vec![
            DataType::Long,
            DataType::String,
            DataType::Double,
            DataType::Array(Box::new(DataType::Long)),
        ])
    }

    #[test]
    fn block_roundtrip_exact() {
        let rows = vec![
            Row::new(vec![
                Value::Long(1),
                Value::str("a"),
                Value::Double(0.5),
                Value::Array(Arc::new(vec![Value::Long(9)])),
            ]),
            Row::new(vec![Value::Null, Value::Null, Value::Null, Value::Null]),
            Row::new(vec![
                Value::Long(-3),
                Value::str(""),
                Value::Double(f64::NEG_INFINITY),
                Value::Array(Arc::new(vec![])),
            ]),
        ];
        let c = codec();
        let block = c.encode_block(&rows);
        assert_eq!(c.decode_block(&block).unwrap(), rows);
    }

    #[test]
    fn mismatched_variants_roundtrip_via_boxed_fallback() {
        // An Int value in a Long column would widen under the typed
        // encoding; the codec must bring it back exactly.
        let c = SpillCodec::new(vec![DataType::Long, DataType::String]);
        let rows = vec![
            Row::new(vec![Value::Int(7), Value::str("x")]),
            Row::new(vec![Value::Long(8), Value::Boolean(true)]),
        ];
        let block = c.encode_block(&rows);
        assert_eq!(c.decode_block(&block).unwrap(), rows);
    }

    #[test]
    fn empty_block_roundtrip() {
        let c = codec();
        let block = c.encode_block(&[]);
        assert_eq!(c.decode_block(&block).unwrap(), Vec::<Row>::new());
    }

    #[test]
    fn wrong_width_errors() {
        let narrow = SpillCodec::new(vec![DataType::Long]);
        let block = narrow.encode_block(&[Row::new(vec![Value::Long(1)])]);
        assert!(codec().decode_block(&block).is_err());
    }
}
