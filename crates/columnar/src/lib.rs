//! In-memory columnar storage (§3.6 of the Spark SQL paper).
//!
//! Cached DataFrames are stored as [`batch::ColumnarBatch`]es: one
//! encoded, compressed vector per column with null bitmaps and min/max
//! statistics. Dictionary and run-length encoding reduce the footprint by
//! an order of magnitude versus rows of boxed objects (measured by the
//! `mem_footprint` experiment binary), and per-batch statistics let
//! cached scans skip batches that cannot match pushed-down filters.

#![warn(missing_docs)]

pub mod batch;
pub mod bitmap;
pub mod column;
pub mod encoding;
pub mod memory;
pub mod serde;
pub mod spill;
pub mod stats;

pub use batch::{batch_rows, ColumnarBatch, DEFAULT_BATCH_SIZE};
pub use bitmap::Bitmap;
pub use column::{ColumnData, EncodedColumn};
pub use spill::SpillCodec;
pub use stats::ColumnStats;
