//! Columnar batches: a horizontal slice of a cached table, one encoded
//! column per field, with per-column statistics for batch skipping.

use crate::column::EncodedColumn;
use crate::stats::ColumnStats;
use catalyst::row::Row;
use catalyst::schema::SchemaRef;
use catalyst::source::Filter;
use catalyst::value::Value;
use catalyst::vectorized::{ColumnVector, RowBatch};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default rows per batch for cached relations.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// One encoded batch of rows.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    schema: SchemaRef,
    columns: Vec<EncodedColumn>,
    num_rows: usize,
}

impl ColumnarBatch {
    /// Encode rows into a batch. Takes the rows by value so each
    /// [`Value`] is *moved* into its column (one transpose, no per-value
    /// clone through a scratch vector — see the `vectorized` bench for
    /// the before/after).
    pub fn from_rows(schema: SchemaRef, rows: Vec<Row>) -> Self {
        let num_rows = rows.len();
        let mut cols: Vec<Vec<Value>> = (0..schema.len())
            .map(|_| Vec::with_capacity(num_rows))
            .collect();
        for row in rows {
            let mut vals = row.into_values().into_iter();
            for col in cols.iter_mut() {
                col.push(vals.next().unwrap_or(Value::Null));
            }
        }
        let columns = schema
            .fields()
            .iter()
            .zip(&cols)
            .map(|(field, vals)| EncodedColumn::encode(&field.dtype, vals))
            .collect();
        ColumnarBatch {
            schema,
            columns,
            num_rows,
        }
    }

    /// Reassemble a batch from already-encoded columns (file format
    /// deserialization). Column order must match the schema.
    pub fn from_columns(schema: SchemaRef, columns: Vec<EncodedColumn>, num_rows: usize) -> Self {
        assert_eq!(schema.len(), columns.len(), "column count mismatch");
        ColumnarBatch {
            schema,
            columns,
            num_rows,
        }
    }

    /// Schema of the batch.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Encoded columns.
    pub fn columns(&self) -> &[EncodedColumn] {
        &self.columns
    }

    /// Decode back to rows, optionally projecting a subset of columns
    /// (column pruning: untouched columns are never decoded).
    pub fn decode(&self, projection: Option<&[usize]>) -> Vec<Row> {
        let indices: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..self.columns.len()).collect(),
        };
        let decoded: Vec<Vec<Value>> = indices
            .iter()
            .map(|&i| self.columns[i].decode_all())
            .collect();
        (0..self.num_rows)
            .map(|r| Row::new(decoded.iter().map(|c| c[r].clone()).collect()))
            .collect()
    }

    /// Could any row satisfy all `filters`? (`false` ⇒ skip the batch.)
    /// Filters reference columns by name against this batch's schema.
    pub fn may_match(&self, filters: &[Filter]) -> bool {
        for f in filters {
            if let Ok(i) = self.schema.index_of(f.column()) {
                if !self.columns[i].stats.may_match(f) {
                    return false;
                }
            }
        }
        true
    }

    /// Decode into an execution [`RowBatch`] of typed column vectors,
    /// optionally projecting — the batch-path analogue of
    /// [`ColumnarBatch::decode`], with no intermediate [`Row`]s.
    pub fn to_row_batch(&self, projection: Option<&[usize]>) -> RowBatch {
        let indices: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..self.columns.len()).collect(),
        };
        let columns = indices
            .iter()
            .map(|&i| Arc::new(self.columns[i].decode_vector()))
            .collect();
        RowBatch::new(columns, self.num_rows)
    }

    /// Vectorized scan of this batch: decode only the columns named by
    /// `projection` ∪ `filters` (each once), evaluate the advisory
    /// filters into a selection vector, and return the projected columns.
    /// Filters on columns the schema doesn't know are kept conservative
    /// (no selection), like the row-path scan.
    pub fn scan_to_row_batch(&self, projection: Option<&[usize]>, filters: &[Filter]) -> RowBatch {
        let out_indices: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..self.columns.len()).collect(),
        };
        let mut cache: BTreeMap<usize, Arc<ColumnVector>> = BTreeMap::new();
        for &i in &out_indices {
            cache
                .entry(i)
                .or_insert_with(|| Arc::new(self.columns[i].decode_vector()));
        }
        let mut filter_cols: Vec<(usize, &Filter)> = Vec::new();
        for f in filters {
            if let Ok(i) = self.schema.index_of(f.column()) {
                cache
                    .entry(i)
                    .or_insert_with(|| Arc::new(self.columns[i].decode_vector()));
                filter_cols.push((i, f));
            }
        }
        let columns = out_indices.iter().map(|i| cache[i].clone()).collect();
        let batch = RowBatch::new(columns, self.num_rows);
        if filter_cols.is_empty() {
            return batch;
        }
        let selection: Vec<u32> = (0..self.num_rows)
            .filter(|&r| filter_cols.iter().all(|(i, f)| f.matches(&cache[i].get(r))))
            .map(|r| r as u32)
            .collect();
        batch.with_selection(selection)
    }

    /// Re-encode an execution batch (compacting its selection vector) —
    /// the inverse of [`ColumnarBatch::to_row_batch`]. Column order must
    /// match `schema`.
    pub fn from_row_batch(schema: SchemaRef, batch: &RowBatch) -> Self {
        assert_eq!(schema.len(), batch.num_columns(), "column count mismatch");
        let num_rows = batch.selected_count();
        let columns = schema
            .fields()
            .iter()
            .enumerate()
            .map(|(j, field)| {
                let mut vals = Vec::with_capacity(num_rows);
                batch.for_each_selected(|i| vals.push(batch.column(j).get(i)));
                EncodedColumn::encode(&field.dtype, &vals)
            })
            .collect();
        ColumnarBatch {
            schema,
            columns,
            num_rows,
        }
    }

    /// Per-column stats.
    pub fn stats(&self, column: usize) -> &ColumnStats {
        &self.columns[column].stats
    }

    /// Compressed footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.columns.iter().map(EncodedColumn::bytes).sum()
    }
}

/// Split rows into encoded batches of `batch_size`, consuming them.
pub fn batch_rows(schema: SchemaRef, rows: Vec<Row>, batch_size: usize) -> Vec<ColumnarBatch> {
    let batch_size = batch_size.max(1);
    let mut out = Vec::with_capacity(rows.len().div_ceil(batch_size));
    let mut it = rows.into_iter();
    loop {
        let chunk: Vec<Row> = it.by_ref().take(batch_size).collect();
        if chunk.is_empty() {
            break;
        }
        out.push(ColumnarBatch::from_rows(schema.clone(), chunk));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyst::schema::Schema;
    use catalyst::types::{DataType, StructField};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            StructField::new("id", DataType::Long, false),
            StructField::new("cat", DataType::String, false),
        ]))
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Long(i as i64),
                    Value::str(format!("c{}", i % 3)),
                ])
            })
            .collect()
    }

    #[test]
    fn roundtrip_and_projection() {
        let rs = rows(100);
        let b = ColumnarBatch::from_rows(schema(), rs.clone());
        assert_eq!(b.decode(None), rs);
        let projected = b.decode(Some(&[1]));
        assert_eq!(projected[0], Row::new(vec![Value::str("c0")]));
        assert_eq!(projected.len(), 100);
    }

    #[test]
    fn batch_skipping_via_stats() {
        let batches = batch_rows(schema(), rows(100), 10);
        assert_eq!(batches.len(), 10);
        // Batch 0 holds ids 0..10; a filter on id > 50 skips it.
        assert!(!batches[0].may_match(&[Filter::Gt("id".into(), Value::Long(50))]));
        assert!(batches[9].may_match(&[Filter::Gt("id".into(), Value::Long(50))]));
        // Unknown column: conservative true.
        assert!(batches[0].may_match(&[Filter::Gt("nope".into(), Value::Long(50))]));
    }

    #[test]
    fn compressed_batches_are_smaller_than_rows() {
        let rs = rows(4096);
        let b = ColumnarBatch::from_rows(schema(), rs.clone());
        let row_bytes: u64 = rs.iter().map(Row::approx_bytes).sum();
        assert!(
            b.bytes() * 2 < row_bytes,
            "columnar {} vs rows {row_bytes}",
            b.bytes()
        );
    }
}
