//! Encoded column vectors.
//!
//! A column picks its encoding from the data: run-length for repetitive
//! integers/dates, dictionary for low-cardinality strings, bit-packing
//! for booleans, plain typed vectors otherwise, and boxed values as the
//! fallback for complex types. This is what makes the in-memory cache an
//! order of magnitude smaller than rows of boxed objects (§3.6).

use crate::bitmap::Bitmap;
use crate::encoding;
use crate::stats::ColumnStats;
use catalyst::types::DataType;
use catalyst::value::Value;
use catalyst::vectorized::ColumnVector;
use std::sync::Arc;

/// Physical layout of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Plain i32 (Int, Date).
    Int(Vec<i32>),
    /// Plain i64 (Long, Timestamp).
    Long(Vec<i64>),
    /// Run-length encoded i32.
    RleInt(Vec<(i32, u32)>),
    /// Run-length encoded i64.
    RleLong(Vec<(i64, u32)>),
    /// Plain f32.
    Float(Vec<f32>),
    /// Plain f64.
    Double(Vec<f64>),
    /// Plain strings.
    Str(Vec<Arc<str>>),
    /// Dictionary-encoded strings.
    DictStr {
        /// Distinct values.
        dict: Vec<Arc<str>>,
        /// Per-row dictionary codes.
        codes: Vec<u32>,
    },
    /// Bit-packed booleans.
    Bool {
        /// Packed words.
        words: Vec<u64>,
        /// Logical length.
        len: usize,
    },
    /// Struct columns split into one encoded column per field (§4.4.2 of
    /// the paper: a UDT's x and y compress as separate columns).
    StructCols(Vec<EncodedColumn>),
    /// Boxed fallback (decimal, arrays, maps, …).
    Values(Vec<Value>),
}

/// One encoded column with nulls and statistics.
#[derive(Debug, Clone)]
pub struct EncodedColumn {
    /// Declared type.
    pub dtype: DataType,
    /// Null positions (absent when no nulls).
    pub nulls: Option<Bitmap>,
    /// Batch statistics.
    pub stats: ColumnStats,
    /// Payload.
    pub data: ColumnData,
    len: usize,
}

impl EncodedColumn {
    /// Encode a value slice of a single column.
    pub fn encode(dtype: &DataType, values: &[Value]) -> Self {
        let len = values.len();
        let stats = ColumnStats::from_values(values);
        let mut nulls = None;
        if stats.null_count > 0 {
            let mut b = Bitmap::new(len);
            for (i, v) in values.iter().enumerate() {
                if v.is_null() {
                    b.set(i);
                }
            }
            nulls = Some(b);
        }

        let data = match dtype {
            DataType::Int | DataType::Date => {
                let raw: Vec<i32> = values
                    .iter()
                    .map(|v| match v {
                        Value::Int(x) | Value::Date(x) => *x,
                        _ => 0,
                    })
                    .collect();
                let runs = encoding::rle_encode(&raw);
                if runs.len() * 2 <= raw.len() {
                    ColumnData::RleInt(runs)
                } else {
                    ColumnData::Int(raw)
                }
            }
            DataType::Long | DataType::Timestamp => {
                let raw: Vec<i64> = values
                    .iter()
                    .map(|v| match v {
                        Value::Long(x) | Value::Timestamp(x) => *x,
                        Value::Int(x) => *x as i64,
                        _ => 0,
                    })
                    .collect();
                let runs = encoding::rle_encode(&raw);
                if runs.len() * 2 <= raw.len() {
                    ColumnData::RleLong(runs)
                } else {
                    ColumnData::Long(raw)
                }
            }
            DataType::Float => ColumnData::Float(
                values
                    .iter()
                    .map(|v| match v {
                        Value::Float(x) => *x,
                        _ => 0.0,
                    })
                    .collect(),
            ),
            DataType::Double => ColumnData::Double(
                values
                    .iter()
                    .map(|v| match v {
                        Value::Double(x) => *x,
                        Value::Float(x) => *x as f64,
                        _ => 0.0,
                    })
                    .collect(),
            ),
            DataType::String => {
                let raw: Vec<Arc<str>> = values
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => s.clone(),
                        _ => Arc::from(""),
                    })
                    .collect();
                let distinct: std::collections::HashSet<&str> =
                    raw.iter().map(|s| s.as_ref()).collect();
                if distinct.len() * 2 <= raw.len() {
                    let (dict, codes) = encoding::dict_encode(&raw);
                    ColumnData::DictStr { dict, codes }
                } else {
                    ColumnData::Str(raw)
                }
            }
            DataType::Boolean => {
                let raw: Vec<bool> = values
                    .iter()
                    .map(|v| matches!(v, Value::Boolean(true)))
                    .collect();
                ColumnData::Bool {
                    words: encoding::bool_pack(&raw),
                    len,
                }
            }
            DataType::Struct(fields) => {
                // Shred the struct: one sub-column per field; struct-level
                // nulls live in this column's null bitmap and appear as
                // nulls in every sub-column.
                let sub_columns: Vec<EncodedColumn> = fields
                    .iter()
                    .enumerate()
                    .map(|(fi, field)| {
                        let field_values: Vec<Value> = values
                            .iter()
                            .map(|v| match v {
                                Value::Struct(items) => {
                                    items.get(fi).cloned().unwrap_or(Value::Null)
                                }
                                _ => Value::Null,
                            })
                            .collect();
                        EncodedColumn::encode(&field.dtype, &field_values)
                    })
                    .collect();
                ColumnData::StructCols(sub_columns)
            }
            _ => ColumnData::Values(values.to_vec()),
        };

        EncodedColumn {
            dtype: dtype.clone(),
            nulls,
            stats,
            data,
            len,
        }
    }

    /// Reassemble a column from parts (file-format deserialization).
    pub fn from_parts(
        dtype: DataType,
        nulls: Option<Bitmap>,
        stats: ColumnStats,
        data: ColumnData,
        len: usize,
    ) -> Self {
        EncodedColumn {
            dtype,
            nulls,
            stats,
            data,
            len,
        }
    }

    /// Logical length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Which encoding is in use (for tests/EXPLAIN).
    pub fn encoding_name(&self) -> &'static str {
        match &self.data {
            ColumnData::Int(_) | ColumnData::Long(_) => "plain-int",
            ColumnData::RleInt(_) | ColumnData::RleLong(_) => "rle",
            ColumnData::Float(_) | ColumnData::Double(_) => "plain-float",
            ColumnData::Str(_) => "plain-str",
            ColumnData::DictStr { .. } => "dict",
            ColumnData::Bool { .. } => "bool-packed",
            ColumnData::StructCols(_) => "struct-cols",
            ColumnData::Values(_) => "boxed",
        }
    }

    /// Decode the value at row `i`.
    pub fn get(&self, i: usize) -> Value {
        if let Some(nulls) = &self.nulls {
            if nulls.get(i) {
                return Value::Null;
            }
        }
        let typed =
            |raw_i32: Option<i32>, raw_i64: Option<i64>| match (&self.dtype, raw_i32, raw_i64) {
                (DataType::Date, Some(x), _) => Value::Date(x),
                (_, Some(x), _) => Value::Int(x),
                (DataType::Timestamp, _, Some(x)) => Value::Timestamp(x),
                (_, _, Some(x)) => Value::Long(x),
                _ => Value::Null,
            };
        match &self.data {
            ColumnData::Int(v) => typed(Some(v[i]), None),
            ColumnData::RleInt(runs) => typed(encoding::rle_get(runs, i), None),
            ColumnData::Long(v) => typed(None, Some(v[i])),
            ColumnData::RleLong(runs) => typed(None, encoding::rle_get(runs, i)),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Double(v) => Value::Double(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::DictStr { dict, codes } => Value::Str(dict[codes[i] as usize].clone()),
            ColumnData::Bool { words, .. } => Value::Boolean(encoding::bool_get(words, i)),
            ColumnData::StructCols(cols) => {
                Value::Struct(Arc::new(cols.iter().map(|c| c.get(i)).collect()))
            }
            ColumnData::Values(v) => v[i].clone(),
        }
    }

    /// Decode the whole column (amortizes RLE cursor work).
    pub fn decode_all(&self) -> Vec<Value> {
        match &self.data {
            ColumnData::RleInt(runs) => {
                let raw = encoding::rle_decode(runs);
                self.zip_nulls(raw.into_iter().map(|x| {
                    if self.dtype == DataType::Date {
                        Value::Date(x)
                    } else {
                        Value::Int(x)
                    }
                }))
            }
            ColumnData::RleLong(runs) => {
                let raw = encoding::rle_decode(runs);
                self.zip_nulls(raw.into_iter().map(|x| {
                    if self.dtype == DataType::Timestamp {
                        Value::Timestamp(x)
                    } else {
                        Value::Long(x)
                    }
                }))
            }
            ColumnData::StructCols(cols) => {
                let decoded: Vec<Vec<Value>> = cols.iter().map(|c| c.decode_all()).collect();
                self.zip_nulls((0..self.len).map(|i| {
                    Value::Struct(Arc::new(decoded.iter().map(|c| c[i].clone()).collect()))
                }))
            }
            _ => (0..self.len).map(|i| self.get(i)).collect(),
        }
    }

    /// Decode into an execution [`ColumnVector`] without a boxed-`Value`
    /// round-trip: plain numeric encodings copy (or widen) their lanes
    /// directly, RLE expands runs, dictionaries gather, bit-packed
    /// booleans unpack. Only complex types (struct, decimal, …) go
    /// through boxed values.
    pub fn decode_vector(&self) -> ColumnVector {
        use catalyst::vectorized::VectorData;
        let nulls = self
            .nulls
            .as_ref()
            .map(|b| (0..self.len).map(|i| b.get(i)).collect::<Vec<bool>>());
        let data = match &self.data {
            ColumnData::Int(v) => VectorData::Long(v.iter().map(|&x| x as i64).collect()),
            ColumnData::Long(v) => VectorData::Long(v.clone()),
            ColumnData::RleInt(runs) => VectorData::Long(
                encoding::rle_decode(runs)
                    .into_iter()
                    .map(|x| x as i64)
                    .collect(),
            ),
            ColumnData::RleLong(runs) => VectorData::Long(encoding::rle_decode(runs)),
            ColumnData::Float(v) => VectorData::Double(v.iter().map(|&x| x as f64).collect()),
            ColumnData::Double(v) => VectorData::Double(v.clone()),
            ColumnData::Str(v) => VectorData::Str(v.clone()),
            ColumnData::DictStr { dict, codes } => {
                VectorData::Str(codes.iter().map(|&c| dict[c as usize].clone()).collect())
            }
            ColumnData::Bool { words, .. } => VectorData::Bool(
                (0..self.len)
                    .map(|i| encoding::bool_get(words, i))
                    .collect(),
            ),
            ColumnData::StructCols(_) | ColumnData::Values(_) => {
                return ColumnVector::from_boxed(self.dtype.clone(), self.decode_all());
            }
        };
        ColumnVector::new(self.dtype.clone(), data, nulls)
    }

    fn zip_nulls(&self, values: impl Iterator<Item = Value>) -> Vec<Value> {
        match &self.nulls {
            None => values.collect(),
            Some(nulls) => values
                .enumerate()
                .map(|(i, v)| if nulls.get(i) { Value::Null } else { v })
                .collect(),
        }
    }

    /// Compressed in-memory footprint in bytes.
    pub fn bytes(&self) -> u64 {
        let data = match &self.data {
            ColumnData::Int(v) => (v.len() * 4) as u64,
            ColumnData::Long(v) => (v.len() * 8) as u64,
            ColumnData::RleInt(v) => (v.len() * 8) as u64,
            ColumnData::RleLong(v) => (v.len() * 12) as u64,
            ColumnData::Float(v) => (v.len() * 4) as u64,
            ColumnData::Double(v) => (v.len() * 8) as u64,
            ColumnData::Str(v) => v.iter().map(encoding::str_bytes).sum(),
            ColumnData::DictStr { dict, codes } => {
                dict.iter().map(encoding::str_bytes).sum::<u64>() + (codes.len() * 4) as u64
            }
            ColumnData::Bool { words, .. } => (words.len() * 8) as u64,
            ColumnData::StructCols(cols) => cols.iter().map(EncodedColumn::bytes).sum(),
            ColumnData::Values(v) => v.iter().map(encoding::value_bytes).sum(),
        };
        data + self.nulls.as_ref().map_or(0, Bitmap::bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetitive_longs_use_rle() {
        let values: Vec<Value> = (0..1000).map(|i| Value::Long(i / 100)).collect();
        let c = EncodedColumn::encode(&DataType::Long, &values);
        assert_eq!(c.encoding_name(), "rle");
        assert_eq!(c.decode_all(), values);
        assert!(c.bytes() < 1000); // 10 runs × 12B vs 8000B plain
    }

    #[test]
    fn random_longs_stay_plain() {
        let values: Vec<Value> = (0..100).map(|i| Value::Long(i * 7919 % 1000)).collect();
        let c = EncodedColumn::encode(&DataType::Long, &values);
        assert_eq!(c.encoding_name(), "plain-int");
        assert_eq!(c.decode_all(), values);
    }

    #[test]
    fn low_cardinality_strings_use_dictionary() {
        let values: Vec<Value> = (0..1000)
            .map(|i| Value::str(format!("cat{}", i % 4)))
            .collect();
        let c = EncodedColumn::encode(&DataType::String, &values);
        assert_eq!(c.encoding_name(), "dict");
        assert_eq!(c.decode_all(), values);
        let plain: u64 = values.iter().map(Value::approx_bytes).sum();
        assert!(c.bytes() < plain / 2);
    }

    #[test]
    fn unique_strings_stay_plain() {
        let values: Vec<Value> = (0..100).map(|i| Value::str(format!("s{i}"))).collect();
        let c = EncodedColumn::encode(&DataType::String, &values);
        assert_eq!(c.encoding_name(), "plain-str");
        assert_eq!(c.decode_all(), values);
    }

    #[test]
    fn booleans_bit_pack() {
        let values: Vec<Value> = (0..256).map(|i| Value::Boolean(i % 3 == 0)).collect();
        let c = EncodedColumn::encode(&DataType::Boolean, &values);
        assert_eq!(c.encoding_name(), "bool-packed");
        assert_eq!(c.decode_all(), values);
        assert_eq!(c.bytes(), 32); // 256 bits = 4 words
    }

    #[test]
    fn nulls_roundtrip() {
        let values: Vec<Value> = (0..10)
            .map(|i| {
                if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::Int(i)
                }
            })
            .collect();
        let c = EncodedColumn::encode(&DataType::Int, &values);
        assert_eq!(c.decode_all(), values);
        assert_eq!(c.stats.null_count, 4);
        assert_eq!(c.get(0), Value::Null);
        assert_eq!(c.get(1), Value::Int(1));
    }

    #[test]
    fn struct_columns_shred_per_field() {
        use catalyst::types::StructField;
        let point = DataType::struct_type(vec![
            StructField::new("x", DataType::Double, false),
            StructField::new("y", DataType::Double, false),
        ]);
        let values: Vec<Value> = (0..100)
            .map(|i| {
                if i % 10 == 0 {
                    Value::Null
                } else {
                    Value::Struct(Arc::new(vec![
                        Value::Double(i as f64),
                        Value::Double(-(i as f64)),
                    ]))
                }
            })
            .collect();
        let c = EncodedColumn::encode(&point, &values);
        assert_eq!(c.encoding_name(), "struct-cols");
        assert_eq!(c.decode_all(), values);
        assert_eq!(c.get(0), Value::Null);
        match c.get(11) {
            Value::Struct(items) => assert_eq!(items[0], Value::Double(11.0)),
            other => panic!("{other:?}"),
        }
        // Shredded storage beats boxed values on footprint.
        let boxed: u64 = values.iter().map(Value::approx_bytes).sum();
        assert!(c.bytes() < boxed, "{} vs {boxed}", c.bytes());
    }

    #[test]
    fn dates_and_decimals() {
        let dates: Vec<Value> = (0..10).map(|i| Value::Date(1000 + i / 5)).collect();
        let c = EncodedColumn::encode(&DataType::Date, &dates);
        assert_eq!(c.decode_all(), dates);

        let decimals: Vec<Value> = (0..10).map(|i| Value::Decimal(i, 10, 2)).collect();
        let c = EncodedColumn::encode(&DataType::Decimal(10, 2), &decimals);
        assert_eq!(c.encoding_name(), "boxed");
        assert_eq!(c.decode_all(), decimals);
    }
}
