//! Memory accounting for the §3.6 claim: the columnar cache "can reduce
//! memory footprint by an order of magnitude" versus storing rows as
//! (boxed) objects. The `mem_footprint` bench binary prints both numbers.

use crate::batch::ColumnarBatch;
use catalyst::row::Row;

/// Approximate footprint of rows cached as boxed objects (Spark's native
/// object cache analogue).
pub fn object_cache_bytes(rows: &[Row]) -> u64 {
    rows.iter().map(Row::approx_bytes).sum()
}

/// Footprint of the same data in encoded columnar batches.
pub fn columnar_cache_bytes(batches: &[ColumnarBatch]) -> u64 {
    batches.iter().map(ColumnarBatch::bytes).sum()
}

/// Compression ratio (object bytes / columnar bytes).
pub fn compression_ratio(rows: &[Row], batches: &[ColumnarBatch]) -> f64 {
    let obj = object_cache_bytes(rows) as f64;
    let col = columnar_cache_bytes(batches).max(1) as f64;
    obj / col
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::batch_rows;
    use catalyst::schema::Schema;
    use catalyst::types::{DataType, StructField};
    use catalyst::value::Value;
    use std::sync::Arc;

    #[test]
    fn repetitive_data_compresses_an_order_of_magnitude() {
        // Low-cardinality strings + slowly-changing ints: the §3.6 case.
        let schema = Arc::new(Schema::new(vec![
            StructField::new("country", DataType::String, false),
            StructField::new("day", DataType::Int, false),
            StructField::new("flag", DataType::Boolean, false),
        ]));
        let rows: Vec<Row> = (0..10_000)
            .map(|i| {
                Row::new(vec![
                    Value::str(["US", "DE", "JP", "BR"][i % 4]),
                    Value::Int((i / 500) as i32),
                    Value::Boolean(i % 2 == 0),
                ])
            })
            .collect();
        let batches = batch_rows(schema, rows.clone(), 4096);
        let ratio = compression_ratio(&rows, &batches);
        assert!(ratio > 10.0, "expected ≥10x compression, got {ratio:.1}x");
    }
}
