//! Per-column min/max/null statistics, used to skip whole batches during
//! cached scans and columnar-file scans.

use catalyst::ndv::NdvSketch;
use catalyst::source::Filter;
use catalyst::value::Value;
use std::cmp::Ordering;

/// Statistics for one column of one batch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Minimum non-null value.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Number of nulls.
    pub null_count: u64,
    /// Number of rows.
    pub row_count: u64,
    /// Distinct-count sketch over the non-null values; merged across
    /// batches exactly like min/max, and serialized in the colfile
    /// footer so file scans report NDV without decoding data pages.
    pub ndv: NdvSketch,
}

impl ColumnStats {
    /// Compute stats over a value slice.
    pub fn from_values(values: &[Value]) -> Self {
        let mut s = ColumnStats {
            row_count: values.len() as u64,
            ..Default::default()
        };
        for v in values {
            s.update(v);
        }
        s
    }

    /// Fold one value in.
    pub fn update(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        self.ndv.insert(v);
        match &self.min {
            Some(m) if v.total_cmp(m) != Ordering::Less => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v.total_cmp(m) != Ordering::Greater => {}
            _ => self.max = Some(v.clone()),
        }
    }

    /// Could any row in this batch satisfy `filter`? `false` means the
    /// batch can be skipped entirely. Conservative: unknown ⇒ `true`.
    pub fn may_match(&self, filter: &Filter) -> bool {
        let all_null = self.null_count == self.row_count;
        match filter {
            Filter::IsNull(_) => self.null_count > 0,
            Filter::IsNotNull(_) => !all_null,
            _ if all_null => false,
            Filter::Eq(_, v) => self.contains(v),
            Filter::Gt(_, v) => match &self.max {
                Some(max) => max.total_cmp(v) == Ordering::Greater,
                None => true,
            },
            Filter::GtEq(_, v) => match &self.max {
                Some(max) => max.total_cmp(v) != Ordering::Less,
                None => true,
            },
            Filter::Lt(_, v) => match &self.min {
                Some(min) => min.total_cmp(v) == Ordering::Less,
                None => true,
            },
            Filter::LtEq(_, v) => match &self.min {
                Some(min) => min.total_cmp(v) != Ordering::Greater,
                None => true,
            },
            Filter::In(_, vs) => vs.iter().any(|v| self.contains(v)),
            // Prefix match: min/max on strings bound the prefix range.
            Filter::StringStartsWith(_, p) => match (&self.min, &self.max) {
                (Some(Value::Str(min)), Some(Value::Str(max))) => {
                    min.as_ref() <= p.as_str() || min.starts_with(p.as_str()) || {
                        // p could sort between min and max.
                        max.as_ref() >= p.as_str()
                    }
                }
                _ => true,
            },
            Filter::StringContains(_, _) => true,
        }
    }

    fn contains(&self, v: &Value) -> bool {
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => {
                min.total_cmp(v) != Ordering::Greater && max.total_cmp(v) != Ordering::Less
            }
            _ => true,
        }
    }

    /// Fold another batch's stats for the same column into this one.
    pub fn merge(&mut self, other: &ColumnStats) {
        self.null_count += other.null_count;
        self.row_count += other.row_count;
        self.ndv.merge(&other.ndv);
        if let Some(m) = &other.min {
            match &self.min {
                Some(mine) if m.total_cmp(mine) != Ordering::Less => {}
                _ => self.min = Some(m.clone()),
            }
        }
        if let Some(m) = &other.max {
            match &self.max {
                Some(mine) if m.total_cmp(mine) != Ordering::Greater => {}
                _ => self.max = Some(m.clone()),
            }
        }
    }
}

/// Aggregate per-batch column stats into relation-level
/// [`catalyst::source::ColumnStatistics`], one entry per column — what a
/// columnar source reports to the constraint pass. Returns `None` when
/// there are no batches (no information, not an empty relation).
pub fn relation_statistics<'a>(
    batches: impl IntoIterator<Item = &'a crate::ColumnarBatch>,
    num_columns: usize,
) -> Option<Vec<catalyst::source::ColumnStatistics>> {
    let mut merged: Vec<ColumnStats> = vec![ColumnStats::default(); num_columns];
    let mut any = false;
    for b in batches {
        any = true;
        for (i, m) in merged.iter_mut().enumerate() {
            m.merge(b.stats(i));
        }
    }
    if !any {
        // Zero batches means zero rows — report exact empty statistics.
        return Some(
            (0..num_columns)
                .map(|_| catalyst::source::ColumnStatistics {
                    null_count: Some(0),
                    row_count: Some(0),
                    ndv: Some(0),
                    ..Default::default()
                })
                .collect(),
        );
    }
    Some(
        merged
            .into_iter()
            .map(|s| catalyst::source::ColumnStatistics {
                min: s.min,
                max: s.max,
                null_count: Some(s.null_count),
                row_count: Some(s.row_count),
                ndv: Some(s.ndv.estimate()),
                partial: false,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(vals: &[i64]) -> ColumnStats {
        let values: Vec<Value> = vals.iter().map(|&v| Value::Long(v)).collect();
        ColumnStats::from_values(&values)
    }

    #[test]
    fn min_max_null_count() {
        let mut values: Vec<Value> = vec![Value::Long(5), Value::Null, Value::Long(-2)];
        values.push(Value::Long(9));
        let s = ColumnStats::from_values(&values);
        assert_eq!(s.min, Some(Value::Long(-2)));
        assert_eq!(s.max, Some(Value::Long(9)));
        assert_eq!(s.null_count, 1);
    }

    #[test]
    fn skipping_out_of_range_batches() {
        let s = stats(&[10, 20, 30]);
        assert!(!s.may_match(&Filter::Gt("x".into(), Value::Long(30))));
        assert!(s.may_match(&Filter::Gt("x".into(), Value::Long(29))));
        assert!(!s.may_match(&Filter::Lt("x".into(), Value::Long(10))));
        assert!(s.may_match(&Filter::LtEq("x".into(), Value::Long(10))));
        assert!(!s.may_match(&Filter::Eq("x".into(), Value::Long(5))));
        assert!(s.may_match(&Filter::Eq("x".into(), Value::Long(25))));
        assert!(!s.may_match(&Filter::In(
            "x".into(),
            vec![Value::Long(1), Value::Long(2)]
        )));
    }

    #[test]
    fn null_filters() {
        let s = stats(&[1, 2]);
        assert!(!s.may_match(&Filter::IsNull("x".into())));
        assert!(s.may_match(&Filter::IsNotNull("x".into())));
        let all_null = ColumnStats::from_values(&[Value::Null, Value::Null]);
        assert!(all_null.may_match(&Filter::IsNull("x".into())));
        assert!(!all_null.may_match(&Filter::IsNotNull("x".into())));
        assert!(!all_null.may_match(&Filter::Eq("x".into(), Value::Long(1))));
    }
}
