//! Null bitmaps: one bit per row, set = null.

/// A compact bitset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-clear bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Heap footprint in bytes.
    pub fn bytes(&self) -> u64 {
        (self.words.len() * 8) as u64
    }

    /// Raw word storage (for serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw words and a bit length (for deserialization).
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert!(words.len() * 64 >= len, "not enough words for {len} bits");
        Bitmap { words, len }
    }

    /// Append a bit (grows the map).
    pub fn push(&mut self, set: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if set {
            self.words[self.len / 64] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::new(100);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(99);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(99));
        assert!(!b.get(1) && !b.get(65));
        assert_eq!(b.count_set(), 4);
        assert!(!b.none_set());
    }

    #[test]
    fn push_grows() {
        let mut b = Bitmap::default();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_set(), (0..130).filter(|i| i % 3 == 0).count());
    }
}
