//! Binary serialization of values, data types, and encoded columns — the
//! wire layer of the colfile format (the reproduction's Parquet stand-in)
//! and of operator spill files.
//!
//! Everything is tagged and length-prefixed; readers validate lengths and
//! tags and surface corruption as `DataSource` errors instead of
//! panicking. This module moved here from the `datasources` colfile
//! implementation so that spill files (which live below the data source
//! layer) can share the exact same codec.

use crate::bitmap::Bitmap;
use crate::column::{ColumnData, EncodedColumn};
use crate::stats::ColumnStats;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use catalyst::error::{CatalystError, Result};
use catalyst::ndv::NdvSketch;
use catalyst::types::{DataType, StructField};
use catalyst::value::Value;
use std::sync::Arc;

// ---- value serialization (tagged) ----

/// Append one tagged value.
pub fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Boolean(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(x) => {
            buf.put_u8(2);
            buf.put_i32(*x);
        }
        Value::Long(x) => {
            buf.put_u8(3);
            buf.put_i64(*x);
        }
        Value::Float(x) => {
            buf.put_u8(4);
            buf.put_f32(*x);
        }
        Value::Double(x) => {
            buf.put_u8(5);
            buf.put_f64(*x);
        }
        Value::Decimal(u, p, s) => {
            buf.put_u8(6);
            buf.put_i128(*u);
            buf.put_u8(*p);
            buf.put_u8(*s);
        }
        Value::Str(s) => {
            buf.put_u8(7);
            put_str(buf, s);
        }
        Value::Date(d) => {
            buf.put_u8(8);
            buf.put_i32(*d);
        }
        Value::Timestamp(t) => {
            buf.put_u8(9);
            buf.put_i64(*t);
        }
        Value::Binary(b) => {
            buf.put_u8(10);
            buf.put_u32(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Array(items) => {
            buf.put_u8(11);
            buf.put_u32(items.len() as u32);
            for i in items.iter() {
                put_value(buf, i);
            }
        }
        Value::Struct(items) => {
            buf.put_u8(12);
            buf.put_u32(items.len() as u32);
            for i in items.iter() {
                put_value(buf, i);
            }
        }
    }
}

/// Read one tagged value.
pub fn get_value(buf: &mut Bytes) -> Result<Value> {
    let tag = checked_u8(buf)?;
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Boolean(checked_u8(buf)? != 0),
        2 => Value::Int(checked(buf, 4)?.get_i32()),
        3 => Value::Long(checked(buf, 8)?.get_i64()),
        4 => Value::Float(checked(buf, 4)?.get_f32()),
        5 => Value::Double(checked(buf, 8)?.get_f64()),
        6 => {
            let u = checked(buf, 16)?.get_i128();
            let p = checked_u8(buf)?;
            let s = checked_u8(buf)?;
            Value::Decimal(u, p, s)
        }
        7 => Value::Str(Arc::from(get_str(buf)?)),
        8 => Value::Date(checked(buf, 4)?.get_i32()),
        9 => Value::Timestamp(checked(buf, 8)?.get_i64()),
        10 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = vec![0u8; n];
            checked(buf, n)?.copy_to_slice(&mut v);
            Value::Binary(Arc::from(v.into_boxed_slice()))
        }
        11 | 12 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get_value(buf)?);
            }
            if tag == 11 {
                Value::Array(Arc::new(items))
            } else {
                Value::Struct(Arc::new(items))
            }
        }
        other => return Err(corrupt(format!("bad value tag {other}"))),
    })
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut Bytes) -> Result<String> {
    let n = checked(buf, 4)?.get_u32() as usize;
    let mut v = vec![0u8; n];
    checked(buf, n)?.copy_to_slice(&mut v);
    String::from_utf8(v).map_err(|_| corrupt("invalid utf8"))
}

/// The error readers surface for malformed input.
pub fn corrupt(msg: impl Into<String>) -> CatalystError {
    CatalystError::DataSource(format!("corrupt column data: {}", msg.into()))
}

/// Bounds-check that `n` more bytes are available.
pub fn checked(buf: &mut Bytes, n: usize) -> Result<&mut Bytes> {
    if buf.remaining() < n {
        Err(corrupt("unexpected end of data"))
    } else {
        Ok(buf)
    }
}

/// Bounds-checked single byte read.
pub fn checked_u8(buf: &mut Bytes) -> Result<u8> {
    Ok(checked(buf, 1)?.get_u8())
}

// ---- data type serialization ----

/// Append one tagged data type.
pub fn put_dtype(buf: &mut BytesMut, t: &DataType) {
    match t {
        DataType::Null => buf.put_u8(0),
        DataType::Boolean => buf.put_u8(1),
        DataType::Int => buf.put_u8(2),
        DataType::Long => buf.put_u8(3),
        DataType::Float => buf.put_u8(4),
        DataType::Double => buf.put_u8(5),
        DataType::Decimal(p, s) => {
            buf.put_u8(6);
            buf.put_u8(*p);
            buf.put_u8(*s);
        }
        DataType::String => buf.put_u8(7),
        DataType::Date => buf.put_u8(8),
        DataType::Timestamp => buf.put_u8(9),
        DataType::Binary => buf.put_u8(10),
        DataType::Array(e) => {
            buf.put_u8(11);
            put_dtype(buf, e);
        }
        DataType::Struct(fields) => {
            buf.put_u8(12);
            buf.put_u32(fields.len() as u32);
            for f in fields.iter() {
                put_str(buf, &f.name);
                put_dtype(buf, &f.dtype);
                buf.put_u8(u8::from(f.nullable));
            }
        }
        DataType::Map(k, v) => {
            buf.put_u8(13);
            put_dtype(buf, k);
            put_dtype(buf, v);
        }
    }
}

/// Read one tagged data type.
pub fn get_dtype(buf: &mut Bytes) -> Result<DataType> {
    Ok(match checked_u8(buf)? {
        0 => DataType::Null,
        1 => DataType::Boolean,
        2 => DataType::Int,
        3 => DataType::Long,
        4 => DataType::Float,
        5 => DataType::Double,
        6 => DataType::Decimal(checked_u8(buf)?, checked_u8(buf)?),
        7 => DataType::String,
        8 => DataType::Date,
        9 => DataType::Timestamp,
        10 => DataType::Binary,
        11 => DataType::Array(Box::new(get_dtype(buf)?)),
        12 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = get_str(buf)?;
                let dtype = get_dtype(buf)?;
                let nullable = checked_u8(buf)? != 0;
                fields.push(StructField::new(name, dtype, nullable));
            }
            DataType::struct_type(fields)
        }
        13 => DataType::Map(Box::new(get_dtype(buf)?), Box::new(get_dtype(buf)?)),
        other => return Err(corrupt(format!("bad type tag {other}"))),
    })
}

// ---- column serialization ----

/// Append one encoded column (type, nulls, stats, payload).
pub fn put_column(buf: &mut BytesMut, c: &EncodedColumn) {
    put_dtype(buf, &c.dtype);
    buf.put_u64(c.len() as u64);
    match &c.nulls {
        None => buf.put_u8(0),
        Some(b) => {
            buf.put_u8(1);
            buf.put_u32(b.words().len() as u32);
            for w in b.words() {
                buf.put_u64(*w);
            }
        }
    }
    // Stats.
    put_value(buf, &c.stats.min.clone().unwrap_or(Value::Null));
    put_value(buf, &c.stats.max.clone().unwrap_or(Value::Null));
    buf.put_u64(c.stats.null_count);
    buf.put_u64(c.stats.row_count);
    // NDV sketch: capacity, then the retained minimum hashes.
    buf.put_u32(c.stats.ndv.k() as u32);
    buf.put_u32(c.stats.ndv.hashes().len() as u32);
    for h in c.stats.ndv.hashes() {
        buf.put_u64(*h);
    }
    // Payload.
    match &c.data {
        ColumnData::Int(v) => {
            buf.put_u8(0);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|x| buf.put_i32(*x));
        }
        ColumnData::Long(v) => {
            buf.put_u8(1);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|x| buf.put_i64(*x));
        }
        ColumnData::RleInt(runs) => {
            buf.put_u8(2);
            buf.put_u32(runs.len() as u32);
            runs.iter().for_each(|(x, n)| {
                buf.put_i32(*x);
                buf.put_u32(*n);
            });
        }
        ColumnData::RleLong(runs) => {
            buf.put_u8(3);
            buf.put_u32(runs.len() as u32);
            runs.iter().for_each(|(x, n)| {
                buf.put_i64(*x);
                buf.put_u32(*n);
            });
        }
        ColumnData::Float(v) => {
            buf.put_u8(4);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|x| buf.put_f32(*x));
        }
        ColumnData::Double(v) => {
            buf.put_u8(5);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|x| buf.put_f64(*x));
        }
        ColumnData::Str(v) => {
            buf.put_u8(6);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|s| put_str(buf, s));
        }
        ColumnData::DictStr { dict, codes } => {
            buf.put_u8(7);
            buf.put_u32(dict.len() as u32);
            dict.iter().for_each(|s| put_str(buf, s));
            buf.put_u32(codes.len() as u32);
            codes.iter().for_each(|c| buf.put_u32(*c));
        }
        ColumnData::Bool { words, len } => {
            buf.put_u8(8);
            buf.put_u64(*len as u64);
            buf.put_u32(words.len() as u32);
            words.iter().for_each(|w| buf.put_u64(*w));
        }
        ColumnData::Values(v) => {
            buf.put_u8(9);
            buf.put_u32(v.len() as u32);
            v.iter().for_each(|x| put_value(buf, x));
        }
        ColumnData::StructCols(cols) => {
            buf.put_u8(10);
            buf.put_u32(cols.len() as u32);
            cols.iter().for_each(|c| put_column(buf, c));
        }
    }
}

/// Read one encoded column.
pub fn get_column(buf: &mut Bytes) -> Result<EncodedColumn> {
    let dtype = get_dtype(buf)?;
    let len = checked(buf, 8)?.get_u64() as usize;
    let nulls = match checked_u8(buf)? {
        0 => None,
        _ => {
            let nwords = checked(buf, 4)?.get_u32() as usize;
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(checked(buf, 8)?.get_u64());
            }
            Some(Bitmap::from_words(words, len))
        }
    };
    let min = get_value(buf)?;
    let max = get_value(buf)?;
    let null_count = checked(buf, 8)?.get_u64();
    let row_count = checked(buf, 8)?.get_u64();
    let ndv_k = checked(buf, 4)?.get_u32() as usize;
    let ndv_len = checked(buf, 4)?.get_u32() as usize;
    let mut ndv_hashes = Vec::with_capacity(ndv_len.min(4096));
    for _ in 0..ndv_len {
        ndv_hashes.push(checked(buf, 8)?.get_u64());
    }
    let stats = ColumnStats {
        min: if min.is_null() { None } else { Some(min) },
        max: if max.is_null() { None } else { Some(max) },
        null_count,
        row_count,
        ndv: NdvSketch::from_hashes(ndv_k, ndv_hashes),
    };
    let data = match checked_u8(buf)? {
        0 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(checked(buf, 4)?.get_i32());
            }
            ColumnData::Int(v)
        }
        1 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(checked(buf, 8)?.get_i64());
            }
            ColumnData::Long(v)
        }
        2 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let x = checked(buf, 4)?.get_i32();
                let c = checked(buf, 4)?.get_u32();
                v.push((x, c));
            }
            ColumnData::RleInt(v)
        }
        3 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let x = checked(buf, 8)?.get_i64();
                let c = checked(buf, 4)?.get_u32();
                v.push((x, c));
            }
            ColumnData::RleLong(v)
        }
        4 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(checked(buf, 4)?.get_f32());
            }
            ColumnData::Float(v)
        }
        5 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(checked(buf, 8)?.get_f64());
            }
            ColumnData::Double(v)
        }
        6 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(Arc::from(get_str(buf)?));
            }
            ColumnData::Str(v)
        }
        7 => {
            let nd = checked(buf, 4)?.get_u32() as usize;
            let mut dict = Vec::with_capacity(nd);
            for _ in 0..nd {
                dict.push(Arc::from(get_str(buf)?));
            }
            let nc = checked(buf, 4)?.get_u32() as usize;
            let mut codes = Vec::with_capacity(nc);
            for _ in 0..nc {
                codes.push(checked(buf, 4)?.get_u32());
            }
            ColumnData::DictStr { dict, codes }
        }
        8 => {
            let blen = checked(buf, 8)?.get_u64() as usize;
            let nwords = checked(buf, 4)?.get_u32() as usize;
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(checked(buf, 8)?.get_u64());
            }
            ColumnData::Bool { words, len: blen }
        }
        9 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(get_value(buf)?);
            }
            ColumnData::Values(v)
        }
        10 => {
            let n = checked(buf, 4)?.get_u32() as usize;
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                cols.push(get_column(buf)?);
            }
            ColumnData::StructCols(cols)
        }
        other => return Err(corrupt(format!("bad column tag {other}"))),
    };
    Ok(EncodedColumn::from_parts(dtype, nulls, stats, data, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_all_variants() {
        let vs = vec![
            Value::Null,
            Value::Boolean(true),
            Value::Int(-7),
            Value::Long(1 << 40),
            Value::Float(1.5),
            Value::Double(-2.25),
            Value::Decimal(12345, 10, 2),
            Value::str("héllo"),
            Value::Date(19000),
            Value::Timestamp(1_700_000_000_000),
            Value::Binary(Arc::from(vec![1u8, 2, 3].into_boxed_slice())),
            Value::Array(Arc::new(vec![Value::Int(1), Value::Null])),
            Value::Struct(Arc::new(vec![Value::str("x"), Value::Long(2)])),
        ];
        let mut buf = BytesMut::new();
        for v in &vs {
            put_value(&mut buf, v);
        }
        let mut data = buf.freeze();
        for v in &vs {
            assert_eq!(&get_value(&mut data).unwrap(), v);
        }
        assert_eq!(data.remaining(), 0);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = BytesMut::new();
        put_value(&mut buf, &Value::Long(42));
        let full = buf.freeze();
        let mut short = full.slice(0..full.len() - 1);
        assert!(get_value(&mut short).is_err());
    }
}
