//! Column encodings (§3.6: "columnar compression schemes such as
//! dictionary encoding and run-length encoding").

use catalyst::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Run-length encode a sequence.
pub fn rle_encode<T: PartialEq + Copy>(values: &[T]) -> Vec<(T, u32)> {
    let mut runs: Vec<(T, u32)> = Vec::new();
    for &v in values {
        match runs.last_mut() {
            Some((rv, n)) if *rv == v => *n += 1,
            _ => runs.push((v, 1)),
        }
    }
    runs
}

/// Decode a run-length sequence.
pub fn rle_decode<T: Copy>(runs: &[(T, u32)]) -> Vec<T> {
    let total: usize = runs.iter().map(|(_, n)| *n as usize).sum();
    let mut out = Vec::with_capacity(total);
    for &(v, n) in runs {
        out.extend(std::iter::repeat_n(v, n as usize));
    }
    out
}

/// Value at logical index `i` of a run-length sequence (linear scan —
/// fine for iteration-with-cursor use; random access uses decode).
pub fn rle_get<T: Copy>(runs: &[(T, u32)], mut i: usize) -> Option<T> {
    for &(v, n) in runs {
        if i < n as usize {
            return Some(v);
        }
        i -= n as usize;
    }
    None
}

/// Dictionary-encode strings: returns (dictionary, codes).
pub fn dict_encode(values: &[Arc<str>]) -> (Vec<Arc<str>>, Vec<u32>) {
    let mut dict: Vec<Arc<str>> = Vec::new();
    let mut index: HashMap<Arc<str>, u32> = HashMap::new();
    let mut codes = Vec::with_capacity(values.len());
    for v in values {
        let code = *index.entry(v.clone()).or_insert_with(|| {
            dict.push(v.clone());
            (dict.len() - 1) as u32
        });
        codes.push(code);
    }
    (dict, codes)
}

/// Pack booleans into u64 words; returns (words, validity of packing).
pub fn bool_pack(values: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; values.len().div_ceil(64)];
    for (i, &b) in values.iter().enumerate() {
        if b {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

/// Read bit `i` of a packed boolean column.
#[inline]
pub fn bool_get(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Approximate heap bytes of a string payload.
pub fn str_bytes(s: &Arc<str>) -> u64 {
    16 + s.len() as u64
}

/// Approximate heap bytes of a boxed [`Value`] (used for the fallback
/// plain-value encoding of complex types).
pub fn value_bytes(v: &Value) -> u64 {
    v.approx_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_roundtrip() {
        let data = [1i64, 1, 1, 2, 2, 3, 1, 1];
        let runs = rle_encode(&data);
        assert_eq!(runs, vec![(1, 3), (2, 2), (3, 1), (1, 2)]);
        assert_eq!(rle_decode(&runs), data);
        assert_eq!(rle_get(&runs, 4), Some(2));
        assert_eq!(rle_get(&runs, 7), Some(1));
        assert_eq!(rle_get(&runs, 8), None);
    }

    #[test]
    fn dict_roundtrip() {
        let vals: Vec<Arc<str>> = ["a", "b", "a", "c", "b"]
            .iter()
            .map(|s| Arc::from(*s))
            .collect();
        let (dict, codes) = dict_encode(&vals);
        assert_eq!(dict.len(), 3);
        let decoded: Vec<Arc<str>> = codes.iter().map(|&c| dict[c as usize].clone()).collect();
        assert_eq!(decoded, vals);
    }

    #[test]
    fn bool_pack_roundtrip() {
        let vals: Vec<bool> = (0..100).map(|i| i % 7 == 0).collect();
        let words = bool_pack(&vals);
        for (i, &b) in vals.iter().enumerate() {
            assert_eq!(bool_get(&words, i), b);
        }
    }
}
