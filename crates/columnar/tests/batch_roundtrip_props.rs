//! Property tests for the columnar ↔ vectorized-execution bridge:
//! `encode → decode_vector`, `from_rows → to_row_batch(projection)`, and
//! the `from_row_batch` re-encode must all round-trip arbitrary typed
//! data — including null-heavy, all-null, and empty batches — with no
//! intermediate `Vec<Row>`.
//!
//! Deterministic seeded sweeps in the style of `encoding_props.rs` (the
//! build environment vendors only a minimal rand shim).

use catalyst::row::Row;
use catalyst::schema::{Schema, SchemaRef};
use catalyst::types::{DataType, StructField};
use catalyst::value::Value;
use columnar::{ColumnarBatch, EncodedColumn};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::sync::Arc;

fn arb_dtype(rng: &mut StdRng) -> DataType {
    match rng.random_range(0u32..6) {
        0 => DataType::Long,
        1 => DataType::Int,
        2 => DataType::Double,
        3 => DataType::Float,
        4 => DataType::String,
        _ => DataType::Boolean,
    }
}

/// One value of `dtype`, drawn from regimes that force every encoding
/// (RLE via low cardinality, dictionary via pooled strings, plain via
/// high entropy).
fn arb_value(rng: &mut StdRng, dtype: &DataType, null_p: f64) -> Value {
    if rng.random_bool(null_p) {
        return Value::Null;
    }
    match dtype {
        DataType::Long => {
            if rng.random_bool(0.5) {
                Value::Long(rng.random_range(-3i64..3))
            } else {
                Value::Long(rng.next_u64() as i64)
            }
        }
        DataType::Int => Value::Int(rng.random_range(0i64..100) as i32 - 50),
        DataType::Double => Value::Double(rng.random_range(0i64..1000) as f64 / 8.0),
        DataType::Float => Value::Float(rng.random_range(0i64..1000) as f32 / 8.0),
        DataType::String => {
            const POOL: &[&str] = &["a", "bb", "ccc", ""];
            if rng.random_bool(0.5) {
                Value::str(POOL[rng.random_range(0..POOL.len())])
            } else {
                Value::str(format!("s{}", rng.next_u64() % 10_000))
            }
        }
        _ => Value::Boolean(rng.random_bool(0.5)),
    }
}

/// Null regimes: none, moderate, heavy (90%), and all-null.
fn arb_null_p(rng: &mut StdRng) -> f64 {
    match rng.random_range(0u32..4) {
        0 => 0.0,
        1 => 0.25,
        2 => 0.9,
        _ => 1.0,
    }
}

fn arb_schema(rng: &mut StdRng) -> SchemaRef {
    let fields = (0..rng.random_range(1usize..5))
        .map(|i| StructField::new(format!("c{i}"), arb_dtype(rng), true))
        .collect();
    Arc::new(Schema::new(fields))
}

fn arb_rows(rng: &mut StdRng, schema: &SchemaRef, len: usize) -> Vec<Row> {
    let null_ps: Vec<f64> = schema.fields().iter().map(|_| arb_null_p(rng)).collect();
    (0..len)
        .map(|_| {
            Row::new(
                schema
                    .fields()
                    .iter()
                    .zip(&null_ps)
                    .map(|(f, &p)| arb_value(rng, &f.dtype, p))
                    .collect(),
            )
        })
        .collect()
}

/// `encode → decode_vector`: every lane equals the source value, and the
/// vector agrees lane-for-lane with the row-path `decode_all`.
#[test]
fn decode_vector_matches_source_and_row_decode() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x0DEC ^ (seed * 0x9E37_79B9));
        let dtype = arb_dtype(&mut rng);
        let null_p = arb_null_p(&mut rng);
        let len = rng.random_range(0usize..300);
        let vals: Vec<Value> = (0..len)
            .map(|_| arb_value(&mut rng, &dtype, null_p))
            .collect();
        let encoded = EncodedColumn::encode(&dtype, &vals);
        let vector = encoded.decode_vector();
        assert_eq!(vector.len(), vals.len(), "seed {seed}: length");
        let row_decoded = encoded.decode_all();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&vector.get(i), v, "seed {seed}: lane {i} vs source");
            assert_eq!(
                vector.get(i),
                row_decoded[i],
                "seed {seed}: lane {i} vs decode_all"
            );
            assert_eq!(vector.is_null(i), v.is_null(), "seed {seed}: null flag {i}");
        }
    }
}

/// `from_rows → to_row_batch(projection)`: the projected vectors equal
/// the row-path `decode(projection)`, for full, partial, and empty
/// projections — and for empty batches.
#[test]
fn to_row_batch_matches_row_decode_under_projection() {
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(0xBA7C ^ (seed * 0x85EB_CA6B));
        let schema = arb_schema(&mut rng);
        let len = if rng.random_bool(0.1) {
            0
        } else {
            rng.random_range(1usize..300)
        };
        let rows = arb_rows(&mut rng, &schema, len);
        let batch = ColumnarBatch::from_rows(schema.clone(), rows.clone());
        assert_eq!(batch.num_rows(), rows.len(), "seed {seed}");

        let projection: Option<Vec<usize>> = match rng.random_range(0u32..3) {
            0 => None,
            1 => Some((0..schema.len()).filter(|_| rng.random_bool(0.5)).collect()),
            _ => Some(vec![rng.random_range(0..schema.len() as u32) as usize]),
        };
        let rb = batch.to_row_batch(projection.as_deref());
        assert_eq!(rb.num_rows(), rows.len(), "seed {seed}: batch length");
        assert!(
            rb.selection().is_none(),
            "seed {seed}: plain decode has no selection"
        );
        let expect = batch.decode(projection.as_deref());
        let got: Vec<Row> = (0..rb.num_rows()).map(|i| rb.row(i)).collect();
        assert_eq!(got, expect, "seed {seed}: projection {projection:?}");
    }
}

/// `from_rows → to_row_batch → from_row_batch`: re-encoding an execution
/// batch reproduces the original rows; with a selection vector applied it
/// compacts to exactly the selected rows.
#[test]
fn from_row_batch_reencodes_with_and_without_selection() {
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ (seed * 0xC2B2_AE35));
        let schema = arb_schema(&mut rng);
        let len = if rng.random_bool(0.1) {
            0
        } else {
            rng.random_range(1usize..300)
        };
        let rows = arb_rows(&mut rng, &schema, len);
        let batch = ColumnarBatch::from_rows(schema.clone(), rows.clone());
        let rb = batch.to_row_batch(None);

        // Full round-trip: encode(decode_vector(encode(rows))) == rows.
        let re = ColumnarBatch::from_row_batch(schema.clone(), &rb);
        assert_eq!(re.num_rows(), rows.len(), "seed {seed}");
        assert_eq!(re.decode(None), rows, "seed {seed}: full re-encode");

        // Selected round-trip: only the selected rows survive, in order.
        let selection: Vec<u32> = (0..len)
            .filter(|_| rng.random_bool(0.4))
            .map(|i| i as u32)
            .collect();
        let expect: Vec<Row> = selection
            .iter()
            .map(|&i| rows[i as usize].clone())
            .collect();
        let selected = rb.clone().with_selection(selection);
        let re = ColumnarBatch::from_row_batch(schema.clone(), &selected);
        assert_eq!(re.num_rows(), expect.len(), "seed {seed}: selected count");
        assert_eq!(re.decode(None), expect, "seed {seed}: selected re-encode");
    }
}
