//! Property tests: every encoding path round-trips arbitrary typed data,
//! statistics are sound (never skip a batch containing a match), and
//! compression never corrupts.

use catalyst::row::Row;
use catalyst::schema::Schema;
use catalyst::source::Filter;
use catalyst::types::{DataType, StructField};
use catalyst::value::Value;
use columnar::{batch_rows, ColumnarBatch, EncodedColumn};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_long_col() -> impl Strategy<Value = Vec<Value>> {
    prop_oneof![
        // Repetitive (forces RLE).
        proptest::collection::vec((-3i64..3).prop_map(Value::Long), 0..300),
        // Random (forces plain).
        proptest::collection::vec(any::<i64>().prop_map(Value::Long), 0..300),
        // With nulls.
        proptest::collection::vec(
            proptest::option::of(any::<i64>()).prop_map(|o| o.map(Value::Long).unwrap_or(Value::Null)),
            0..300
        ),
    ]
}

fn arb_str_col() -> impl Strategy<Value = Vec<Value>> {
    prop_oneof![
        // Low cardinality (forces dictionary).
        proptest::collection::vec(
            proptest::sample::select(vec!["a", "b", "c"]).prop_map(Value::str),
            0..300
        ),
        // High cardinality (forces plain).
        proptest::collection::vec("[a-z]{0,12}".prop_map(Value::str), 0..300),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn long_column_roundtrip(values in arb_long_col()) {
        let c = EncodedColumn::encode(&DataType::Long, &values);
        prop_assert_eq!(c.decode_all(), values.clone());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&c.get(i), v);
        }
    }

    #[test]
    fn string_column_roundtrip(values in arb_str_col()) {
        let c = EncodedColumn::encode(&DataType::String, &values);
        prop_assert_eq!(c.decode_all(), values);
    }

    #[test]
    fn bool_column_roundtrip(values in proptest::collection::vec(
        proptest::option::of(any::<bool>()).prop_map(|o| o.map(Value::Boolean).unwrap_or(Value::Null)),
        0..300
    )) {
        let c = EncodedColumn::encode(&DataType::Boolean, &values);
        prop_assert_eq!(c.decode_all(), values);
    }

    #[test]
    fn double_column_roundtrip(values in proptest::collection::vec(
        any::<f64>().prop_map(Value::Double), 0..200
    )) {
        let c = EncodedColumn::encode(&DataType::Double, &values);
        prop_assert_eq!(c.decode_all(), values);
    }

    /// Soundness of batch skipping: if a batch is skipped for a filter,
    /// no row in it matches the filter.
    #[test]
    fn stats_skipping_is_sound(
        values in proptest::collection::vec(-100i64..100, 1..200),
        threshold in -120i64..120,
    ) {
        let schema = Arc::new(Schema::new(vec![StructField::new("x", DataType::Long, false)]));
        let rows: Vec<Row> = values.iter().map(|&v| Row::new(vec![Value::Long(v)])).collect();
        let batches = batch_rows(schema, &rows, 16);
        for (fi, filter) in [
            Filter::Gt("x".into(), Value::Long(threshold)),
            Filter::Lt("x".into(), Value::Long(threshold)),
            Filter::Eq("x".into(), Value::Long(threshold)),
            Filter::GtEq("x".into(), Value::Long(threshold)),
            Filter::LtEq("x".into(), Value::Long(threshold)),
        ]
        .into_iter()
        .enumerate()
        {
            let mut matched_in_skipped = 0usize;
            for b in &batches {
                if !b.may_match(std::slice::from_ref(&filter)) {
                    for row in b.decode(None) {
                        if filter.matches(row.get(0)) {
                            matched_in_skipped += 1;
                        }
                    }
                }
            }
            prop_assert_eq!(matched_in_skipped, 0, "filter #{} skipped a matching batch", fi);
        }
    }

    /// Multi-column batches preserve row alignment.
    #[test]
    fn batch_alignment(data in proptest::collection::vec((any::<i64>(), "[a-c]{1,2}", any::<bool>()), 0..150)) {
        let schema = Arc::new(Schema::new(vec![
            StructField::new("n", DataType::Long, false),
            StructField::new("s", DataType::String, false),
            StructField::new("b", DataType::Boolean, false),
        ]));
        let rows: Vec<Row> = data
            .iter()
            .map(|(n, s, b)| Row::new(vec![Value::Long(*n), Value::str(s), Value::Boolean(*b)]))
            .collect();
        let batch = ColumnarBatch::from_rows(schema, &rows);
        prop_assert_eq!(batch.decode(None), rows.clone());
        // Projection keeps alignment too.
        let projected = batch.decode(Some(&[2, 0]));
        for (p, r) in projected.iter().zip(&rows) {
            prop_assert_eq!(p.get(0), r.get(2));
            prop_assert_eq!(p.get(1), r.get(0));
        }
    }
}
