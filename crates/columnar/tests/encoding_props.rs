//! Property tests: every encoding path round-trips arbitrary typed data,
//! statistics are sound (never skip a batch containing a match), and
//! compression never corrupts.
//!
//! Deterministic seeded sweeps (formerly proptest; rewritten because the
//! build environment vendors only a minimal rand shim).

use catalyst::row::Row;
use catalyst::schema::Schema;
use catalyst::source::Filter;
use catalyst::types::{DataType, StructField};
use catalyst::value::Value;
use columnar::{batch_rows, ColumnarBatch, EncodedColumn};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::sync::Arc;

/// A long column from one of three regimes: repetitive (forces RLE),
/// random (forces plain), and nullable.
fn arb_long_col(rng: &mut StdRng) -> Vec<Value> {
    let len = rng.random_range(0usize..300);
    match rng.random_range(0u32..3) {
        0 => (0..len)
            .map(|_| Value::Long(rng.random_range(-3i64..3)))
            .collect(),
        1 => (0..len)
            .map(|_| Value::Long(rng.next_u64() as i64))
            .collect(),
        _ => (0..len)
            .map(|_| {
                if rng.random_bool(0.3) {
                    Value::Null
                } else {
                    Value::Long(rng.next_u64() as i64)
                }
            })
            .collect(),
    }
}

fn arb_str(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.random_range(0usize..max_len + 1);
    (0..len)
        .map(|_| char::from(rng.random_range(b'a'..b'z' + 1)))
        .collect()
}

/// A string column: low cardinality (forces dictionary) or high
/// cardinality (forces plain).
fn arb_str_col(rng: &mut StdRng) -> Vec<Value> {
    let len = rng.random_range(0usize..300);
    if rng.random_bool(0.5) {
        const POOL: &[&str] = &["a", "b", "c"];
        (0..len)
            .map(|_| Value::str(POOL[rng.random_range(0..POOL.len())]))
            .collect()
    } else {
        (0..len).map(|_| Value::str(arb_str(rng, 12))).collect()
    }
}

#[test]
fn long_column_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_2001);
    for _ in 0..64 {
        let values = arb_long_col(&mut rng);
        let c = EncodedColumn::encode(&DataType::Long, &values);
        assert_eq!(c.decode_all(), values);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(&c.get(i), v);
        }
    }
}

#[test]
fn string_column_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_2002);
    for _ in 0..64 {
        let values = arb_str_col(&mut rng);
        let c = EncodedColumn::encode(&DataType::String, &values);
        assert_eq!(c.decode_all(), values);
    }
}

#[test]
fn bool_column_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_2003);
    for _ in 0..64 {
        let len = rng.random_range(0usize..300);
        let values: Vec<Value> = (0..len)
            .map(|_| {
                if rng.random_bool(0.2) {
                    Value::Null
                } else {
                    Value::Boolean(rng.random_bool(0.5))
                }
            })
            .collect();
        let c = EncodedColumn::encode(&DataType::Boolean, &values);
        assert_eq!(c.decode_all(), values);
    }
}

#[test]
fn double_column_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_2004);
    for _ in 0..64 {
        let len = rng.random_range(0usize..200);
        let values: Vec<Value> = (0..len)
            .map(|_| Value::Double(f64::from_bits(rng.next_u64())))
            .collect();
        let c = EncodedColumn::encode(&DataType::Double, &values);
        assert_eq!(c.decode_all(), values);
    }
}

/// Soundness of batch skipping: if a batch is skipped for a filter,
/// no row in it matches the filter.
#[test]
fn stats_skipping_is_sound() {
    let mut rng = StdRng::seed_from_u64(0x5EED_2005);
    for _ in 0..64 {
        let len = rng.random_range(1usize..200);
        let values: Vec<i64> = (0..len).map(|_| rng.random_range(-100i64..100)).collect();
        let threshold = rng.random_range(-120i64..120);
        let schema = Arc::new(Schema::new(vec![StructField::new(
            "x",
            DataType::Long,
            false,
        )]));
        let rows: Vec<Row> = values
            .iter()
            .map(|&v| Row::new(vec![Value::Long(v)]))
            .collect();
        let batches = batch_rows(schema, rows.clone(), 16);
        for (fi, filter) in [
            Filter::Gt("x".into(), Value::Long(threshold)),
            Filter::Lt("x".into(), Value::Long(threshold)),
            Filter::Eq("x".into(), Value::Long(threshold)),
            Filter::GtEq("x".into(), Value::Long(threshold)),
            Filter::LtEq("x".into(), Value::Long(threshold)),
        ]
        .into_iter()
        .enumerate()
        {
            let mut matched_in_skipped = 0usize;
            for b in &batches {
                if !b.may_match(std::slice::from_ref(&filter)) {
                    for row in b.decode(None) {
                        if filter.matches(row.get(0)) {
                            matched_in_skipped += 1;
                        }
                    }
                }
            }
            assert_eq!(
                matched_in_skipped, 0,
                "filter #{fi} skipped a matching batch"
            );
        }
    }
}

/// Multi-column batches preserve row alignment.
#[test]
fn batch_alignment() {
    let mut rng = StdRng::seed_from_u64(0x5EED_2006);
    for _ in 0..64 {
        let len = rng.random_range(0usize..150);
        let schema = Arc::new(Schema::new(vec![
            StructField::new("n", DataType::Long, false),
            StructField::new("s", DataType::String, false),
            StructField::new("b", DataType::Boolean, false),
        ]));
        let rows: Vec<Row> = (0..len)
            .map(|_| {
                let s: String = (0..rng.random_range(1usize..3))
                    .map(|_| char::from(rng.random_range(b'a'..b'd')))
                    .collect();
                Row::new(vec![
                    Value::Long(rng.next_u64() as i64),
                    Value::str(&s),
                    Value::Boolean(rng.random_bool(0.5)),
                ])
            })
            .collect();
        let batch = ColumnarBatch::from_rows(schema, rows.clone());
        assert_eq!(batch.decode(None), rows);
        // Projection keeps alignment too.
        let projected = batch.decode(Some(&[2, 0]));
        for (p, r) in projected.iter().zip(&rows) {
            assert_eq!(p.get(0), r.get(2));
            assert_eq!(p.get(1), r.get(0));
        }
    }
}
