//! DataFrame-based machine learning pipelines (§5.2, Figure 7 of the
//! Spark SQL paper): Transformer/Estimator stages exchanging DataFrames,
//! a vector user-defined type stored as four primitive fields, and a
//! Tokenizer → HashingTF → LogisticRegression pipeline reproducing the
//! paper's example end to end.

#![warn(missing_docs)]

pub mod hashing_tf;
pub mod logistic_regression;
pub mod pipeline;
pub mod tokenizer;
pub mod vector;

pub use hashing_tf::HashingTF;
pub use logistic_regression::{accuracy, LogisticRegression, LogisticRegressionModel};
pub use pipeline::{Estimator, Pipeline, PipelineModel, PipelineStage, Transformer};
pub use tokenizer::Tokenizer;
pub use vector::{Vector, VectorUdt};
