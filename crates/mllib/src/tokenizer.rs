//! Tokenizer: text column → array-of-words column (Figure 7's first
//! stage). Implemented as pure Catalyst expressions (lower + split), so
//! the whole stage participates in optimization.

use crate::pipeline::Transformer;
use catalyst::error::Result;
use catalyst::expr::{col, Expr, ScalarFunc};
use spark_sql::DataFrame;

/// Splits a string column on whitespace after lowercasing.
pub struct Tokenizer {
    input_col: String,
    output_col: String,
}

impl Tokenizer {
    /// Create with input/output column names.
    pub fn new(input_col: impl Into<String>, output_col: impl Into<String>) -> Self {
        Tokenizer {
            input_col: input_col.into(),
            output_col: output_col.into(),
        }
    }
}

impl Transformer for Tokenizer {
    fn name(&self) -> &str {
        "tokenizer"
    }

    fn transform(&self, df: &DataFrame) -> Result<DataFrame> {
        let lowered = Expr::ScalarFn {
            func: ScalarFunc::Lower,
            args: vec![col(self.input_col.as_str())],
        };
        let words = Expr::ScalarFn {
            func: ScalarFunc::SplitWords,
            args: vec![lowered],
        };
        df.with_column(&self.output_col, words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyst::value::Value;
    use catalyst::Row;
    use catalyst::{DataType, Schema, StructField};
    use spark_sql::SQLContext;
    use std::sync::Arc;

    #[test]
    fn tokenizes_text_column() {
        let ctx = SQLContext::new_local(2);
        let schema = Arc::new(Schema::new(vec![StructField::new(
            "text",
            DataType::String,
            false,
        )]));
        let df = ctx
            .create_dataframe(
                schema,
                vec![Row::new(vec![Value::str("Hello World Again")])],
            )
            .unwrap();
        let out = Tokenizer::new("text", "words").transform(&df).unwrap();
        assert_eq!(out.columns(), vec!["text", "words"]);
        let rows = out.collect().unwrap();
        match rows[0].get(1) {
            Value::Array(words) => {
                let w: Vec<&str> = words.iter().filter_map(Value::as_str).collect();
                assert_eq!(w, vec!["hello", "world", "again"]);
            }
            other => panic!("expected array, got {other}"),
        }
    }
}
