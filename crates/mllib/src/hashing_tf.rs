//! HashingTF: words → sparse term-frequency vector (Figure 7's second
//! stage), producing values of the vector UDT.

use crate::pipeline::Transformer;
use crate::vector::{Vector, VectorUdt};
use catalyst::error::Result;
use catalyst::expr::{col, Expr, UdfImpl};
use catalyst::value::Value;
use spark_sql::DataFrame;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Hashing term-frequency featurizer.
pub struct HashingTF {
    input_col: String,
    output_col: String,
    num_features: usize,
}

impl HashingTF {
    /// Create with `num_features` hash buckets.
    pub fn new(
        input_col: impl Into<String>,
        output_col: impl Into<String>,
        num_features: usize,
    ) -> Self {
        HashingTF {
            input_col: input_col.into(),
            output_col: output_col.into(),
            num_features: num_features.max(1),
        }
    }

    /// Bucket index of one term.
    pub fn bucket(term: &str, num_features: usize) -> usize {
        let mut h = DefaultHasher::new();
        term.hash(&mut h);
        (h.finish() % num_features as u64) as usize
    }

    /// Featurize a word list.
    pub fn featurize(words: &[&str], num_features: usize) -> Vector {
        let mut counts: HashMap<usize, f64> = HashMap::new();
        for w in words {
            *counts.entry(Self::bucket(w, num_features)).or_insert(0.0) += 1.0;
        }
        let mut pairs: Vec<(usize, f64)> = counts.into_iter().collect();
        pairs.sort_unstable_by_key(|(i, _)| *i);
        Vector::Sparse {
            size: num_features,
            indices: pairs.iter().map(|(i, _)| *i).collect(),
            values: pairs.iter().map(|(_, v)| *v).collect(),
        }
    }
}

impl Transformer for HashingTF {
    fn name(&self) -> &str {
        "hashing_tf"
    }

    fn transform(&self, df: &DataFrame) -> Result<DataFrame> {
        let num_features = self.num_features;
        let udf = Arc::new(UdfImpl {
            name: Arc::from("hashing_tf"),
            return_type: catalyst::udt::UserDefinedType::data_type(&VectorUdt),
            func: Box::new(move |args: &[Value]| {
                let words: Vec<&str> = match &args[0] {
                    Value::Array(items) => items.iter().filter_map(Value::as_str).collect(),
                    Value::Null => vec![],
                    other => {
                        return Err(catalyst::CatalystError::eval(format!(
                            "hashing_tf expects an array of strings, got {}",
                            other.dtype()
                        )))
                    }
                };
                Ok(VectorUdt::to_value(&HashingTF::featurize(
                    &words,
                    num_features,
                )))
            }),
        });
        let expr = Expr::Udf {
            udf,
            args: vec![col(self.input_col.as_str())],
        };
        df.with_column(&self.output_col, expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn featurize_counts_terms() {
        let v = HashingTF::featurize(&["a", "b", "a"], 16);
        match &v {
            Vector::Sparse { size, values, .. } => {
                assert_eq!(*size, 16);
                let total: f64 = values.iter().sum();
                assert_eq!(total, 3.0);
            }
            other => panic!("{other:?}"),
        }
        // Same term always lands in the same bucket.
        assert_eq!(
            HashingTF::bucket("spark", 100),
            HashingTF::bucket("spark", 100)
        );
    }

    #[test]
    fn empty_input_gives_empty_vector() {
        let v = HashingTF::featurize(&[], 8);
        assert_eq!(
            v,
            Vector::Sparse {
                size: 8,
                indices: vec![],
                values: vec![]
            }
        );
    }
}
