//! ML vectors and their user-defined type (§5.2).
//!
//! The vector UDT stores dense and sparse vectors as four primitive
//! fields — exactly the layout the paper describes: "a boolean for the
//! type (dense or sparse), a size for the vector, an array of indices
//! (for sparse coordinates), and an array of double values".

use catalyst::error::{CatalystError, Result};
use catalyst::row::Row;
use catalyst::types::{DataType, StructField};
use catalyst::udt::UserDefinedType;
use catalyst::value::Value;
use std::sync::Arc;

/// A dense or sparse numeric vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Vector {
    /// All coordinates.
    Dense(Vec<f64>),
    /// Sorted indices + their non-zero values.
    Sparse {
        /// Dimensionality.
        size: usize,
        /// Non-zero coordinate indices (ascending).
        indices: Vec<usize>,
        /// Non-zero coordinate values.
        values: Vec<f64>,
    },
}

impl Vector {
    /// Dimensionality.
    pub fn size(&self) -> usize {
        match self {
            Vector::Dense(v) => v.len(),
            Vector::Sparse { size, .. } => *size,
        }
    }

    /// Coordinate `i`.
    pub fn get(&self, i: usize) -> f64 {
        match self {
            Vector::Dense(v) => v.get(i).copied().unwrap_or(0.0),
            Vector::Sparse {
                indices, values, ..
            } => indices
                .binary_search(&i)
                .map(|pos| values[pos])
                .unwrap_or(0.0),
        }
    }

    /// Dot product with a dense weight slice.
    pub fn dot(&self, weights: &[f64]) -> f64 {
        match self {
            Vector::Dense(v) => v.iter().zip(weights).map(|(a, b)| a * b).sum(),
            Vector::Sparse {
                indices, values, ..
            } => indices
                .iter()
                .zip(values)
                .map(|(&i, &v)| v * weights.get(i).copied().unwrap_or(0.0))
                .sum(),
        }
    }

    /// Accumulate `scale * self` into a dense buffer.
    pub fn add_scaled_into(&self, scale: f64, out: &mut [f64]) {
        match self {
            Vector::Dense(v) => {
                for (o, x) in out.iter_mut().zip(v) {
                    *o += scale * x;
                }
            }
            Vector::Sparse {
                indices, values, ..
            } => {
                for (&i, &v) in indices.iter().zip(values) {
                    if let Some(o) = out.get_mut(i) {
                        *o += scale * v;
                    }
                }
            }
        }
    }

    /// Convert to dense.
    pub fn to_dense(&self) -> Vec<f64> {
        match self {
            Vector::Dense(v) => v.clone(),
            Vector::Sparse {
                size,
                indices,
                values,
            } => {
                let mut out = vec![0.0; *size];
                for (&i, &v) in indices.iter().zip(values) {
                    out[i] = v;
                }
                out
            }
        }
    }
}

/// The vector UDT.
pub struct VectorUdt;

impl VectorUdt {
    /// Serialize directly into a [`Value::Struct`] (for embedding in
    /// DataFrame columns).
    pub fn to_value(v: &Vector) -> Value {
        let row = VectorUdt.serialize(v);
        Value::Struct(Arc::new(row.into_values()))
    }

    /// Deserialize a struct value back into a vector.
    pub fn from_value(v: &Value) -> Result<Vector> {
        match v {
            Value::Struct(fields) => VectorUdt.deserialize(&Row::new(fields.as_ref().clone())),
            other => Err(CatalystError::eval(format!(
                "expected vector struct, got {}",
                other.dtype()
            ))),
        }
    }
}

impl UserDefinedType<Vector> for VectorUdt {
    fn data_type(&self) -> DataType {
        DataType::struct_type(vec![
            StructField::new("dense", DataType::Boolean, false),
            StructField::new("size", DataType::Int, false),
            StructField::new("indices", DataType::Array(Box::new(DataType::Int)), false),
            StructField::new("values", DataType::Array(Box::new(DataType::Double)), false),
        ])
    }

    fn serialize(&self, v: &Vector) -> Row {
        match v {
            Vector::Dense(values) => Row::new(vec![
                Value::Boolean(true),
                Value::Int(values.len() as i32),
                Value::Array(Arc::new(vec![])),
                Value::Array(Arc::new(values.iter().map(|&x| Value::Double(x)).collect())),
            ]),
            Vector::Sparse {
                size,
                indices,
                values,
            } => Row::new(vec![
                Value::Boolean(false),
                Value::Int(*size as i32),
                Value::Array(Arc::new(
                    indices.iter().map(|&i| Value::Int(i as i32)).collect(),
                )),
                Value::Array(Arc::new(values.iter().map(|&x| Value::Double(x)).collect())),
            ]),
        }
    }

    fn deserialize(&self, row: &Row) -> Result<Vector> {
        let dense = row.get_bool(0);
        let size = row.get_long(1) as usize;
        let values: Vec<f64> = match row.get(3) {
            Value::Array(items) => items.iter().filter_map(Value::as_f64).collect(),
            _ => return Err(CatalystError::eval("bad vector values")),
        };
        if dense {
            Ok(Vector::Dense(values))
        } else {
            let indices: Vec<usize> = match row.get(2) {
                Value::Array(items) => items
                    .iter()
                    .filter_map(|v| v.as_i64().map(|i| i as usize))
                    .collect(),
                _ => return Err(CatalystError::eval("bad vector indices")),
            };
            Ok(Vector::Sparse {
                size,
                indices,
                values,
            })
        }
    }

    fn name(&self) -> &str {
        "vector"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let v = Vector::Dense(vec![1.0, 2.0, 3.0]);
        let value = VectorUdt::to_value(&v);
        assert_eq!(VectorUdt::from_value(&value).unwrap(), v);
    }

    #[test]
    fn sparse_roundtrip_and_access() {
        let v = Vector::Sparse {
            size: 10,
            indices: vec![1, 7],
            values: vec![0.5, -2.0],
        };
        let value = VectorUdt::to_value(&v);
        let back = VectorUdt::from_value(&value).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get(7), -2.0);
        assert_eq!(back.get(3), 0.0);
        assert_eq!(back.size(), 10);
    }

    #[test]
    fn dot_products_agree_between_representations() {
        let d = Vector::Dense(vec![0.0, 0.5, 0.0, -2.0]);
        let s = Vector::Sparse {
            size: 4,
            indices: vec![1, 3],
            values: vec![0.5, -2.0],
        };
        let w = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(d.dot(&w), s.dot(&w));
        assert_eq!(d.to_dense(), s.to_dense());
    }

    #[test]
    fn add_scaled() {
        let s = Vector::Sparse {
            size: 3,
            indices: vec![0, 2],
            values: vec![1.0, 2.0],
        };
        let mut buf = vec![0.0; 3];
        s.add_scaled_into(2.0, &mut buf);
        assert_eq!(buf, vec![2.0, 0.0, 4.0]);
    }
}
