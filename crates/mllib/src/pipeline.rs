//! ML pipelines over DataFrames (§5.2): "a graph of transformations on
//! data … each of which exchange datasets", where datasets are DataFrames
//! and every stage names its input and output columns so it can run on
//! any subset of fields while retaining the original record.

use catalyst::error::Result;
use spark_sql::DataFrame;
use std::sync::Arc;

/// A stage that maps a DataFrame to a DataFrame (feature extractor,
/// fitted model, …).
pub trait Transformer: Send + Sync {
    /// Stage name (for describing pipelines).
    fn name(&self) -> &str;
    /// Apply to a dataset.
    fn transform(&self, df: &DataFrame) -> Result<DataFrame>;
}

/// A stage that must be fit on data to produce a [`Transformer`].
pub trait Estimator: Send + Sync {
    /// Fitted model type.
    type Model: Transformer + 'static;
    /// Stage name.
    fn name(&self) -> &str;
    /// Fit on a dataset.
    fn fit(&self, df: &DataFrame) -> Result<Self::Model>;
}

/// Object-safe adapter over [`Estimator`].
pub trait AnyEstimator: Send + Sync {
    /// Stage name.
    fn name(&self) -> &str;
    /// Fit, type-erased.
    fn fit_any(&self, df: &DataFrame) -> Result<Arc<dyn Transformer>>;
}

impl<E: Estimator> AnyEstimator for E {
    fn name(&self) -> &str {
        Estimator::name(self)
    }
    fn fit_any(&self, df: &DataFrame) -> Result<Arc<dyn Transformer>> {
        Ok(Arc::new(self.fit(df)?))
    }
}

/// One pipeline stage.
#[derive(Clone)]
pub enum PipelineStage {
    /// Already a transformer (Tokenizer, HashingTF, …).
    Transformer(Arc<dyn Transformer>),
    /// Needs fitting (LogisticRegression, …).
    Estimator(Arc<dyn AnyEstimator>),
}

/// An unfitted pipeline: an ordered list of stages.
#[derive(Default, Clone)]
pub struct Pipeline {
    stages: Vec<PipelineStage>,
}

impl Pipeline {
    /// Empty pipeline.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Append a transformer stage.
    pub fn add_transformer(mut self, t: impl Transformer + 'static) -> Self {
        self.stages.push(PipelineStage::Transformer(Arc::new(t)));
        self
    }

    /// Append an estimator stage.
    pub fn add_estimator(mut self, e: impl Estimator + 'static) -> Self {
        self.stages.push(PipelineStage::Estimator(Arc::new(e)));
        self
    }

    /// Stage names in order.
    pub fn stage_names(&self) -> Vec<String> {
        self.stages
            .iter()
            .map(|s| match s {
                PipelineStage::Transformer(t) => t.name().to_string(),
                PipelineStage::Estimator(e) => e.name().to_string(),
            })
            .collect()
    }

    /// Fit the whole pipeline: transformers feed forward, estimators are
    /// fit on the current dataset and replaced by their fitted models.
    pub fn fit(&self, df: &DataFrame) -> Result<PipelineModel> {
        let mut current = df.clone();
        let mut fitted: Vec<Arc<dyn Transformer>> = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let t: Arc<dyn Transformer> = match stage {
                PipelineStage::Transformer(t) => t.clone(),
                PipelineStage::Estimator(e) => e.fit_any(&current)?,
            };
            current = t.transform(&current)?;
            fitted.push(t);
        }
        Ok(PipelineModel { stages: fitted })
    }
}

/// A fitted pipeline: pure transformers applied in order.
pub struct PipelineModel {
    stages: Vec<Arc<dyn Transformer>>,
}

impl PipelineModel {
    /// Fitted stages.
    pub fn stages(&self) -> &[Arc<dyn Transformer>] {
        &self.stages
    }
}

impl Transformer for PipelineModel {
    fn name(&self) -> &str {
        "pipeline_model"
    }

    fn transform(&self, df: &DataFrame) -> Result<DataFrame> {
        let mut current = df.clone();
        for s in &self.stages {
            current = s.transform(&current)?;
        }
        Ok(current)
    }
}
