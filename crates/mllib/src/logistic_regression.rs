//! Logistic regression via distributed gradient descent (Figure 7's final
//! stage). Training runs as engine jobs over the DataFrame's RDD; the
//! fitted model is both a pipeline [`Transformer`] and a plain prediction
//! function usable as a UDF (§3.7's `ctx.udf.register("predict", …)`).

use crate::pipeline::{Estimator, Transformer};
use crate::vector::{Vector, VectorUdt};
use catalyst::error::{CatalystError, Result};
use catalyst::expr::{col, Expr, UdfImpl};
use catalyst::types::DataType;
use catalyst::value::Value;
use spark_sql::DataFrame;
use std::sync::Arc;

/// Unfitted logistic regression.
pub struct LogisticRegression {
    features_col: String,
    label_col: String,
    prediction_col: String,
    iterations: usize,
    learning_rate: f64,
}

impl LogisticRegression {
    /// Create with default output column `prediction`.
    pub fn new(features_col: impl Into<String>, label_col: impl Into<String>) -> Self {
        LogisticRegression {
            features_col: features_col.into(),
            label_col: label_col.into(),
            prediction_col: "prediction".into(),
            iterations: 50,
            learning_rate: 1.0,
        }
    }

    /// Set iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Set learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Set prediction column name.
    pub fn with_prediction_col(mut self, name: impl Into<String>) -> Self {
        self.prediction_col = name.into();
        self
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Estimator for LogisticRegression {
    type Model = LogisticRegressionModel;

    fn name(&self) -> &str {
        "logistic_regression"
    }

    fn fit(&self, df: &DataFrame) -> Result<LogisticRegressionModel> {
        // Project to (features, label) and keep the RDD cached across
        // gradient iterations — the iterative workload §3.6 calls out.
        let pairs = df
            .select(vec![
                col(self.features_col.as_str()),
                col(self.label_col.as_str()),
            ])?
            .to_rdd()?
            .map(|row| {
                let features = VectorUdt::from_value(row.get(0)).expect("features must be vectors");
                let label = row.get(1).as_f64().unwrap_or(0.0);
                (features, label)
            })
            .cache();

        let dims = match pairs.first() {
            Some((f, _)) => f.size(),
            None => {
                return Err(CatalystError::analysis(
                    "cannot fit logistic regression on an empty dataset",
                ))
            }
        };
        let count = pairs.count() as f64;

        let mut weights = vec![0.0f64; dims];
        let mut bias = 0.0f64;
        for _ in 0..self.iterations {
            let w = Arc::new(weights.clone());
            let b = bias;
            // One distributed pass: per-partition gradient sums.
            let partials = pairs
                .run_job(move |_, it| {
                    let mut grad = vec![0.0f64; w.len()];
                    let mut grad_bias = 0.0f64;
                    for (x, y) in it {
                        let err = sigmoid(x.dot(&w) + b) - y;
                        x.add_scaled_into(err, &mut grad);
                        grad_bias += err;
                    }
                    (grad, grad_bias)
                })
                .map_err(|e| CatalystError::Internal(format!("training job failed: {e}")))?;
            let mut grad = vec![0.0f64; dims];
            let mut grad_bias = 0.0;
            for (g, gb) in partials {
                for (a, b) in grad.iter_mut().zip(g) {
                    *a += b;
                }
                grad_bias += gb;
            }
            let step = self.learning_rate / count;
            for (wi, gi) in weights.iter_mut().zip(&grad) {
                *wi -= step * gi;
            }
            bias -= step * grad_bias;
        }

        Ok(LogisticRegressionModel {
            weights: Arc::new(weights),
            bias,
            features_col: self.features_col.clone(),
            prediction_col: self.prediction_col.clone(),
        })
    }
}

/// A fitted logistic regression model.
#[derive(Clone)]
pub struct LogisticRegressionModel {
    /// Learned weights.
    pub weights: Arc<Vec<f64>>,
    /// Learned intercept.
    pub bias: f64,
    features_col: String,
    prediction_col: String,
}

impl LogisticRegressionModel {
    /// P(label = 1 | features).
    pub fn predict_probability(&self, features: &Vector) -> f64 {
        sigmoid(features.dot(&self.weights) + self.bias)
    }

    /// Hard 0/1 prediction.
    pub fn predict(&self, features: &Vector) -> f64 {
        if self.predict_probability(features) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }

    /// Expose the model as a scalar UDF expression over a vector column
    /// (the MADlib-style SQL integration of §3.7/§5.2).
    pub fn prediction_udf(&self, input: Expr) -> Expr {
        let model = self.clone();
        let udf = Arc::new(UdfImpl {
            name: Arc::from("predict"),
            return_type: DataType::Double,
            func: Box::new(move |args: &[Value]| {
                let v = VectorUdt::from_value(&args[0])?;
                Ok(Value::Double(model.predict(&v)))
            }),
        });
        Expr::Udf {
            udf,
            args: vec![input],
        }
    }
}

impl Transformer for LogisticRegressionModel {
    fn name(&self) -> &str {
        "logistic_regression_model"
    }

    fn transform(&self, df: &DataFrame) -> Result<DataFrame> {
        let expr = self.prediction_udf(col(self.features_col.as_str()));
        df.with_column(&self.prediction_col, expr)
    }
}

/// Fraction of rows where `prediction_col == label_col`.
pub fn accuracy(df: &DataFrame, prediction_col: &str, label_col: &str) -> Result<f64> {
    let rows = df
        .select(vec![col(prediction_col), col(label_col)])?
        .collect()?;
    if rows.is_empty() {
        return Ok(0.0);
    }
    let correct = rows
        .iter()
        .filter(|r| {
            (r.get(0).as_f64().unwrap_or(f64::NAN) - r.get(1).as_f64().unwrap_or(f64::NAN)).abs()
                < 1e-9
        })
        .count();
    Ok(correct as f64 / rows.len() as f64)
}
