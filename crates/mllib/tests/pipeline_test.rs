//! End-to-end test of the Figure 7 pipeline: (text, label) → Tokenizer →
//! HashingTF → LogisticRegression, on a learnable synthetic corpus.

use catalyst::value::Value;
use catalyst::Row;
use mllib::{accuracy, Estimator, HashingTF, LogisticRegression, Pipeline, Tokenizer, Transformer};
use spark_sql::prelude::*;
use std::sync::Arc;

fn training_df(ctx: &SQLContext) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![
        StructField::new("text", DataType::String, false),
        StructField::new("label", DataType::Double, false),
    ]));
    // Positive docs talk about spark; negative docs about cooking.
    let mut rows = Vec::new();
    for i in 0..40 {
        let (text, label) = if i % 2 == 0 {
            (format!("spark sql query engine fast distributed {i}"), 1.0)
        } else {
            (format!("soup recipe cooking pot tasty dinner {i}"), 0.0)
        };
        rows.push(Row::new(vec![Value::str(text), Value::Double(label)]));
    }
    ctx.create_dataframe(schema, rows).unwrap()
}

#[test]
fn figure7_pipeline_learns_to_separate() {
    let ctx = SQLContext::new_local(2);
    let df = training_df(&ctx);

    // The Figure 7 pipeline.
    let pipeline = Pipeline::new()
        .add_transformer(Tokenizer::new("text", "words"))
        .add_transformer(HashingTF::new("words", "features", 256))
        .add_estimator(LogisticRegression::new("features", "label").with_iterations(60));
    assert_eq!(
        pipeline.stage_names(),
        vec!["tokenizer", "hashing_tf", "logistic_regression"]
    );

    let model = pipeline.fit(&df).unwrap();
    let scored = model.transform(&df).unwrap();

    // Schema grew exactly as Figure 7 shows: original columns retained,
    // new columns appended per stage.
    assert_eq!(
        scored.columns(),
        vec!["text", "label", "words", "features", "prediction"]
    );
    let acc = accuracy(&scored, "prediction", "label").unwrap();
    assert!(acc > 0.95, "expected near-perfect separation, got {acc}");
}

#[test]
fn model_usable_as_sql_udf() {
    // §3.7: register the model's prediction function and call it in SQL.
    let ctx = SQLContext::new_local(2);
    let df = training_df(&ctx);
    let features = Pipeline::new()
        .add_transformer(Tokenizer::new("text", "words"))
        .add_transformer(HashingTF::new("words", "features", 256))
        .fit(&df)
        .unwrap()
        .transform(&df)
        .unwrap();
    let model = LogisticRegression::new("features", "label")
        .with_iterations(60)
        .fit(&features)
        .unwrap();

    features.register_temp_table("featurized");
    let m = model.clone();
    ctx.register_udf("predict", DataType::Double, move |args| {
        let v = mllib::VectorUdt::from_value(&args[0])?;
        Ok(Value::Double(m.predict(&v)))
    });
    let rows = ctx
        .sql("SELECT label, predict(features) FROM featurized")
        .unwrap()
        .collect()
        .unwrap();
    let correct = rows
        .iter()
        .filter(|r| (r.get_double(0) - r.get_double(1)).abs() < 1e-9)
        .count();
    assert!(correct as f64 / rows.len() as f64 > 0.95);
}

#[test]
fn predictions_on_fresh_data() {
    let ctx = SQLContext::new_local(2);
    let df = training_df(&ctx);
    let pipeline = Pipeline::new()
        .add_transformer(Tokenizer::new("text", "words"))
        .add_transformer(HashingTF::new("words", "features", 256))
        .add_estimator(LogisticRegression::new("features", "label").with_iterations(60));
    let model = pipeline.fit(&df).unwrap();

    let schema = Arc::new(Schema::new(vec![
        StructField::new("text", DataType::String, false),
        StructField::new("label", DataType::Double, false),
    ]));
    let test = ctx
        .create_dataframe(
            schema,
            vec![
                Row::new(vec![
                    Value::str("distributed spark engine"),
                    Value::Double(1.0),
                ]),
                Row::new(vec![Value::str("tasty soup dinner"), Value::Double(0.0)]),
            ],
        )
        .unwrap();
    let scored = model.transform(&test).unwrap().collect().unwrap();
    let pred_idx = 4;
    assert_eq!(scored[0].get_double(pred_idx), 1.0);
    assert_eq!(scored[1].get_double(pred_idx), 0.0);
}

#[test]
fn empty_training_set_errors() {
    let ctx = SQLContext::new_local(1);
    let schema = Arc::new(Schema::new(vec![
        StructField::new(
            "features",
            catalyst::udt::UserDefinedType::data_type(&mllib::VectorUdt),
            false,
        ),
        StructField::new("label", DataType::Double, false),
    ]));
    let df = ctx.create_dataframe(schema, vec![]).unwrap();
    assert!(LogisticRegression::new("features", "label")
        .fit(&df)
        .is_err());
}
