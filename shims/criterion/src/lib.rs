//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the macro/API surface the benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`) but replaces the
//! statistical machinery with a simple timed loop: warm up once, run
//! `sample_size` samples, report min/median/mean per benchmark on stdout.
//! Good enough to compare configurations; not a rigorous estimator.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`function/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("func", param)` renders as `func/param`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, adaptively batching very fast routines so each sample is
    /// long enough to measure.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: how many calls fit in ~1ms?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &mut b.samples);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &mut b.samples);
        self
    }

    /// End the group (formatting no-op here).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{group}/{id}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
        samples.len()
    );
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Fresh driver with default settings.
    pub fn new() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(1);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _c: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.default_sample_size.max(1);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: n,
        };
        f(&mut b);
        report("bench", &id.to_string(), &mut b.samples);
        self
    }

    /// Criterion's config hook; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Define a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
