//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses — `StdRng::seed_from_u64`
//! plus `RngExt::random_range` over integer and float ranges — with a
//! xoshiro256** generator. Deterministic per seed, which is all the
//! benchmarks and data generators need; it makes no cryptographic claims.

use std::ops::Range;

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods (the crate's `Rng` extension trait).
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (half-open).
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniform f64 in `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        // 53 mantissa bits of the next word.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform bool.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_unit() < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleRange: Sized {
    /// Sample uniformly from `[range.start, range.end)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty random_range");
                let span = range.end.abs_diff(range.start) as u64;
                // Modulo bias is ≤ span/2^64 — irrelevant for test data.
                let offset = rng.next_u64() % span;
                range.start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_int_sample!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty random_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + (range.end - range.start) * unit
    }
}

impl SampleRange for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample(rng, range.start as f64..range.end as f64) as f32
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the seed into the full state and
            // guarantees a non-zero state for any seed.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000i64), b.random_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20i32);
            assert!((10..20).contains(&v));
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let u = rng.random_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn values_spread_over_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
