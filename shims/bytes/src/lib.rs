//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the colfile format uses: `BytesMut` as an
//! append-only builder implementing [`BufMut`], frozen into [`Bytes`] — a
//! cheaply cloneable shared buffer with a read cursor implementing
//! [`Buf`]. All multi-byte accessors are big-endian, like the real crate.

use std::sync::Arc;

/// Read-side cursor methods.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Advance the cursor without reading.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
    /// Read a big-endian i32.
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }
    /// Read a big-endian i64.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }
    /// Read a big-endian i128.
    fn get_i128(&mut self) -> i128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        i128::from_be_bytes(b)
    }
    /// Read a big-endian f32.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }
    /// Read a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write-side builder methods.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian i32.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian i128.
    fn put_i128(&mut self, v: i128) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian f32.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
    /// Append a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Growable byte builder.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable shared byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// A buffer over a static byte string.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data)
    }

    /// A new buffer over a sub-range of the unread bytes. Unlike the
    /// real crate this copies; the colfile paths only slice in tests.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        let view = &self.as_slice()[range];
        Bytes::from(view)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data.into_boxed_slice()),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice past end of Bytes"
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_i32(-5);
        b.put_i64(-6);
        b.put_i128(-7);
        b.put_f32(1.5);
        b.put_f64(-2.25);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_i32(), -5);
        assert_eq!(r.get_i64(), -6);
        assert_eq!(r.get_i128(), -7);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.get_f64(), -2.25);
        let mut s = [0u8; 3];
        r.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut b = BytesMut::new();
        b.put_u32(1);
        assert_eq!(b.freeze().as_slice(), &[0, 0, 0, 1]);
    }
}
