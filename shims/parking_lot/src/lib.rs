//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny API subset the repo actually uses: `Mutex::lock`,
//! `RwLock::read`/`write` returning guards directly (no `Result`, no
//! poisoning). Backed by `std::sync` primitives; a poisoned std lock is
//! recovered rather than propagated, matching parking_lot's behavior of
//! not poisoning on panic.

use std::sync::{self, PoisonError};

/// Mutual exclusion primitive (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
